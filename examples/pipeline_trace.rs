//! Figure 2, live: every stage of the execution model for one query.
//!
//! 1  comprehension → combinators (the `comp!` macro, at Rust compile
//! time) · 2  combinators → table algebra (loop-lifting) · 3  algebra →
//! SQL:1999 · 4  execution on the coprocessor · 5  tabular results ·
//! 6  stitched value.
//!
//! ```sh
//! cargo run --example pipeline_trace
//! ```

use ferry::pipeline::trace;
use ferry::prelude::*;
use ferry_bench::workload::paper_dataset;
use ferry_sql::generate_sql;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let conn = Connection::new(paper_dataset()).with_optimizer(ferry_optimizer::rewriter());

    // 1 — the comprehension desugars into combinators at compile time
    let q: Q<Vec<(String, i64)>> = ferry::comp!(
        (pair(the(cat), length(fac)))
        for (fac, cat) in table::<(String, String)>("facilities"),
        group by snd
    );

    let t = trace(&conn, &q)?;

    println!("== 1  combinators (the kernel term) ==");
    println!("{}\n", t.combinators);

    println!(
        "== 2  table algebra (loop-lifted bundle of {} quer{}) ==",
        t.bundle.queries.len(),
        if t.bundle.queries.len() == 1 {
            "y"
        } else {
            "ies"
        }
    );
    for (i, plan) in t.plans.iter().enumerate() {
        println!("-- plan of query {} --\n{plan}", i + 1);
    }

    println!("== 3  SQL:1999 ==");
    for (i, qd) in t.bundle.queries.iter().enumerate() {
        let sql = generate_sql(&conn.snapshot(), &t.bundle.plan, qd.root)?;
        println!("-- query {} --\n{}\n", i + 1, sql.sql);
    }

    println!("== 4/5  tabular results ==");
    for (i, rel) in t.tables.iter().enumerate() {
        println!("-- result of query {} --\n{rel}", i + 1);
    }

    println!("== 6  the stitched value ==");
    println!("{}", t.value);
    Ok(())
}

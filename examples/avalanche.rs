//! Table 1, live: watch the query avalanche happen (and not happen).
//!
//! Runs the running example both ways over a growing `facilities` table
//! and prints query counts and wall-clock times — the in-process
//! regeneration of Table 1.
//!
//! ```sh
//! cargo run --release --example avalanche
//! ```

use ferry::prelude::*;
use ferry_bench::table1::{normalise, run_dsh, run_haskelldb};
use ferry_bench::workload::scaled_dataset;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("# categories | HaskellDB #queries |  time (s) | DSH #queries |  time (s)");
    println!("-------------+--------------------+-----------+--------------+----------");
    for categories in [100usize, 300, 1000, 3000] {
        let conn = Connection::new(scaled_dataset(categories, 2))
            .with_optimizer(ferry_optimizer::rewriter());

        let t0 = Instant::now();
        let (dsh, dsh_q) = run_dsh(&conn)?;
        let dsh_t = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let (hdb, hdb_q) = run_haskelldb(conn.database())?;
        let hdb_t = t0.elapsed().as_secs_f64();

        assert_eq!(normalise(dsh), normalise(hdb), "the two must agree");
        println!("{categories:>12} | {hdb_q:>18} | {hdb_t:>9.3} | {dsh_q:>12} | {dsh_t:>8.3}");
    }
    println!();
    println!(
        "the HaskellDB column is the avalanche: #queries grows with the data \
         (N+1) and so does the per-query cost; the DSH column stays at the \
         type-determined 2."
    );
    Ok(())
}

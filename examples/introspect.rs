//! Querying Ferry about Ferry: the system tables under the `ferry.`
//! namespace expose telemetry, catalog, storage and slow-query state as
//! ordinary relations — so the observability query language is the same
//! `Q<T>` DSL every other query uses.
//!
//! ```sh
//! cargo run --example introspect
//! ```

use ferry::prelude::*;
use ferry::TraceStatus;
use ferry_bench::workload::paper_dataset;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let conn = Connection::new(paper_dataset()).with_optimizer(ferry_optimizer::rewriter());
    conn.set_telemetry_config(TelemetryConfig::Counters);
    // capture anything slower than 50µs into the slow-query log
    conn.set_slow_query_threshold(Some(Duration::from_micros(50)));

    // a workload to observe: one query, dispatched a few times
    let workload: Q<Vec<(String, i64)>> = ferry::comp!(
        (pair(the(cat), length(fac)))
        for (fac, cat) in table::<(String, String)>("facilities"),
        group by snd
    );
    for _ in 0..4 {
        conn.from_q(&workload)?;
    }

    // ferry.tables — the catalog describing itself (columns, like every
    // table the DSL sees, in alphabetical order)
    println!("== ferry.tables ==");
    let tables: Vec<(i64, String, i64, String, i64, i64)> = conn.from_q(&table("ferry.tables"))?;
    for (bytes, name, rows, _shard_key, _shards, _wal) in &tables {
        println!("  {name:<12} {rows:>6} rows  {bytes:>8} bytes");
    }

    // ferry.metrics with a DSL filter — only the engine counters
    println!("\n== engine counters (filter over ferry.metrics) ==");
    let engine: Vec<(String, i64)> = conn.from_q(&ferry::comp!(
        (pair(name, value))
        for (kind, name, value) in table::<(String, String, i64)>("ferry.metrics"),
        if kind.eq(&toq(&"counter".to_string()))
    ))?;
    for (name, value) in engine.iter().filter(|(n, _)| n.starts_with("engine.")) {
        println!("  {name:<28} {value}");
    }

    // the headline join: which recent dispatches came from a cached
    // plan, and how hot is that plan? ferry.queries ⋈ ferry.plan_cache
    // on the shared i64 hash encoding
    println!("\n== recent dispatches joined to their plan-cache entry ==");
    let joined: Vec<(i64, i64, i64)> = conn.from_q(&ferry::comp!(
        (tuple3(query_id, elapsed_us, hits))
        for (elapsed_us, nodes, plan_hash, query_id, roots, trace_id)
            in table::<(i64, i64, i64, i64, i64, i64)>("ferry.queries"),
        for (exp_hash, hits, operators, queries, schema_version)
            in table::<(i64, i64, i64, i64, i64)>("ferry.plan_cache"),
        if plan_hash.eq(&exp_hash)
    ))?;
    for (qid, us, hits) in &joined {
        println!("  query {qid:>3}  {us:>6}µs  plan hits so far: {hits}");
    }

    // the slow-query log, rendered
    println!("\n== slow queries ==");
    let slow = conn.database().slow_queries();
    match slow.first() {
        None => println!("  (none crossed the 50µs threshold)"),
        Some(rec) => {
            println!("  {} captured; rendering the first:\n", slow.len());
            let report = conn
                .slow_query_report(rec.query_id)
                .expect("record still retained");
            println!("{report}");
        }
    }

    // the typed trace disposition: why trace_json_for returned None
    let last = conn.last_query_id();
    match conn.trace_status_for(last) {
        TraceStatus::Captured(_) => println!("query {last}: trace captured"),
        TraceStatus::NotTraced => {
            println!("query {last}: ran untraced (telemetry below Full)")
        }
        TraceStatus::Evicted => println!("query {last}: trace aged out"),
        TraceStatus::UnknownQuery => println!("query {last}: unknown id"),
    }

    // the same registry, rendered for a Prometheus scrape
    println!("\n== /metrics (Prometheus text exposition, first lines) ==");
    let text = conn.telemetry().registry().render_prometheus();
    for line in text.lines().take(8) {
        println!("  {line}");
    }
    Ok(())
}

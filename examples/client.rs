//! Talk to a running ferry server over the wire.
//!
//! ```sh
//! cargo run --example server            # in one terminal
//! cargo run --example client            # in another (default 127.0.0.1:4816)
//! cargo run --example client -- 127.0.0.1:9999
//! ```
//!
//! The tour: a one-shot query, a prepared statement re-executed with
//! different parameters (watch the plan cache), the server describing
//! its own sessions via `ferry.connections`, and the Prometheus
//! exposition fetched over the same socket.

use ferry_algebra::Value;
use ferry_server::Client;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:4816".to_string());
    let mut c = Client::connect(addr.as_str())?;
    println!("connected to {addr}");

    // one-shot query
    let rs = c.query(
        "SELECT e.dept AS d, COUNT (*) AS n, SUM (e.sal) AS total \
         FROM emp AS e GROUP BY e.dept ORDER BY d ASC;",
    )?;
    println!("\ndepartments:");
    for row in &rs.rows {
        println!("  {row:?}");
    }

    // prepared statement, re-executed with different parameters — the
    // compiled plan is cached server-side by content
    let (stmt, _) = c.prepare(
        "SELECT e.name AS who, e.sal AS sal FROM emp AS e \
         WHERE e.sal >= $1 ORDER BY sal DESC;",
    )?;
    for floor in [80, 60, 60] {
        let rs = c.execute(stmt, &[Value::Int(floor)])?;
        println!("sal >= {floor}: {} row(s)", rs.rows.len());
    }
    let rs = c.query(
        "SELECT p.hits AS hits, p.queries AS q FROM ferry.plan_cache AS p \
         ORDER BY hits DESC;",
    )?;
    println!("hottest plan-cache entry: {:?}", rs.rows.first());

    // the server, about itself, over its own wire
    let rs = c.query(
        "SELECT c.id AS id, c.peer AS peer, c.queries AS q \
         FROM ferry.connections AS c ORDER BY id ASC;",
    )?;
    println!("\nlive sessions (one of these is this client):");
    for row in &rs.rows {
        println!("  {row:?}");
    }

    // metrics exposition over the wire — grep the server.* families
    let text = c.metrics()?;
    println!("\nserver.* metrics:");
    for line in text.lines().filter(|l| l.contains("server_")) {
        println!("  {line}");
    }

    c.close()?;
    println!("\nclosed cleanly");
    Ok(())
}

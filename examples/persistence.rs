//! Durable databases: write-ahead logging, crash recovery, snapshots.
//!
//! Run twice and watch the second run recover the catalog from disk:
//!
//! ```sh
//! cargo run --example persistence
//! cargo run --example persistence
//! ```

use ferry::prelude::*;
use ferry_algebra::{Schema, Ty, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("ferry-persistence-demo");

    // open (or recover) the database; every mutation below is WAL-logged
    // and fsynced before it is acknowledged
    let conn = Connection::open_durable(&dir, DurabilityConfig::with_fsync(FsyncPolicy::Always))?;

    match conn.database().recovery_report() {
        Some(report) if report.last_lsn > 0 => {
            println!("recovered an existing database:\n{}", report.render())
        }
        _ => println!("fresh database at {}", dir.display()),
    }

    if conn.database().table("products").is_none() {
        // one transaction: table + seed rows commit (and recover) together
        conn.database().transact(|db| {
            db.create_table(
                "products",
                Schema::of(&[("name", Ty::Str), ("price", Ty::Int)]),
                vec!["name"],
            )?;
            db.insert(
                "products",
                vec![
                    vec![Value::str("anvil"), Value::Int(120)],
                    vec![Value::str("banana"), Value::Int(2)],
                    vec![Value::str("compass"), Value::Int(30)],
                ],
            )
        })?;
    } else {
        // each run appends one more row — surviving restarts is the point
        let n = conn.database().table("products").unwrap().rows.rows().len() as i64;
        conn.database().insert(
            "products",
            vec![vec![Value::str(format!("gadget_{n}")), Value::Int(n)]],
        )?;
    }

    // queries are oblivious to durability: same plans, same results
    let affordable: Vec<String> = conn.from_q(&ferry::comp!(
        (name.clone())
        for (name, price) in table::<(String, i64)>("products"),
        if price.lt(&toq(&100i64))
    ))?;
    println!("affordable products: {affordable:?}");

    // snapshot the catalog and compact the log; the next open restores
    // from the snapshot and replays only the WAL tail
    let covered_lsn = conn.checkpoint()?;
    println!("checkpointed (snapshot covers lsn {covered_lsn})");
    Ok(())
}

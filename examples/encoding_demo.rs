//! Figure 3, live: the relational encoding of order and nesting.
//!
//! Compiles two tiny queries and prints the serialized tables so the
//! `pos` column (Fig. 3a) and the surrogate/`nest` linkage between the
//! outer and inner query of a nested result (Fig. 3b) are visible.
//!
//! ```sh
//! cargo run --example encoding_demo
//! ```

use ferry::prelude::*;
use ferry_engine::Database;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let conn = Connection::new(Database::new());

    // Fig. 3a — a flat ordered list: one table, a pos column
    let flat = toq(&vec!["x1".to_string(), "x2".to_string(), "x3".to_string()]);
    let t = ferry::pipeline::trace(&conn, &flat)?;
    println!("== Fig. 3(a): encoding the flat list [x1, x2, x3] ==");
    println!("{}", t.tables[0]);
    println!("(first column: iter — all rows belong to the one top-level value;");
    println!(" second column: pos — the runtime-accessible encoding of list order)\n");

    // Fig. 3b — a nested list: a bundle of two queries, surrogates @i
    let nested = toq(&vec![
        vec!["x11".to_string(), "x12".to_string()],
        vec![], // an empty inner list: its surrogate never shows up in Q2
        vec!["x31".to_string()],
    ]);
    let t = ferry::pipeline::trace(&conn, &nested)?;
    println!("== Fig. 3(b): encoding [[x11, x12], [], [x31]] ==");
    println!("-- Q1 (outer list; the item column holds surrogates @i) --");
    println!("{}", t.tables[0]);
    println!("-- Q2 (all inner lists, keyed by surrogate in `nest`) --");
    println!("{}", t.tables[1]);
    println!("(the empty second inner list has a surrogate in Q1 but no rows in");
    println!(" Q2 — \"its surrogate @i will not appear in the nest column\")");
    println!();
    println!("stitched back: {}", t.value);
    Ok(())
}

//! Quickstart: the database as a coprocessor in five minutes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ferry::prelude::*;
use ferry_algebra::{Schema, Ty, Value};
use ferry_engine::Database;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. a database with one table: products(name, price)
    let db = Database::new();
    db.create_table(
        "products",
        Schema::of(&[("name", Ty::Str), ("price", Ty::Int)]),
        vec!["name"],
    )?;
    db.insert(
        "products",
        vec![
            vec![Value::str("anvil"), Value::Int(120)],
            vec![Value::str("banana"), Value::Int(2)],
            vec![Value::str("compass"), Value::Int(30)],
            vec![Value::str("dynamite"), Value::Int(45)],
        ],
    )?;
    let conn = Connection::new(db).with_optimizer(ferry_optimizer::rewriter());

    // 2. write an ordinary list program against the table. The row tuple
    //    follows the columns in alphabetical order: (name, price).
    let affordable: Q<Vec<String>> = map(
        |p: Q<(String, i64)>| p.fst(),
        filter(
            |p: Q<(String, i64)>| p.snd().lt(&toq(&100i64)),
            table("products"),
        ),
    );

    // ... or the same with comprehension notation:
    let affordable2: Q<Vec<String>> = ferry::comp!(
        (name.clone())
        for (name, price) in table::<(String, i64)>("products"),
        if price.lt(&toq(&100i64))
    );

    // 3. `from_q` compiles the whole program into a bundle of relational
    //    queries (here: exactly one — the result type has one list
    //    constructor), ships it to the database, and decodes the answer.
    let names: Vec<String> = conn.from_q(&affordable)?;
    println!("affordable products: {names:?}");
    assert_eq!(names, vec!["banana", "compass", "dynamite"]);
    assert_eq!(conn.from_q(&affordable2)?, names);

    // 4. aggregation runs inside the database too — one round trip, one
    //    number back:
    let total: i64 = conn.from_q(&sum(map(
        |p: Q<(String, i64)>| p.snd(),
        table::<(String, i64)>("products"),
    )))?;
    println!("total inventory value: {total}");
    assert_eq!(total, 197);

    // 5. avalanche safety in one line: query count depends on the type,
    //    never on the data.
    let bundle = conn.compile(&affordable)?;
    println!(
        "result type [Text] compiles to {} quer{} — guaranteed by the type, \
         not by the 4 rows",
        bundle.queries.len(),
        if bundle.queries.len() == 1 {
            "y"
        } else {
            "ies"
        }
    );
    Ok(())
}

//! Serve a database over TCP.
//!
//! ```sh
//! cargo run --example server            # binds 127.0.0.1:4816
//! cargo run --example server 0.0.0.0:9999
//! ```
//!
//! Seeds the README's `emp` table, binds the wire protocol, and serves
//! until you press Enter — then performs a graceful drain-then-close
//! shutdown. Talk to it with `cargo run --example client` (or any
//! program speaking the frame format in `DESIGN.md` §8).

use ferry::Connection;
use ferry_algebra::{Schema, Ty, Value};
use ferry_engine::Database;
use ferry_server::{Server, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:4816".to_string());

    let db = Database::new();
    db.create_table(
        "emp",
        Schema::of(&[("dept", Ty::Str), ("name", Ty::Str), ("sal", Ty::Int)]),
        vec!["name"],
    )?;
    db.insert(
        "emp",
        vec![
            vec![Value::str("eng"), Value::str("ada"), Value::Int(90)],
            vec![Value::str("eng"), Value::str("bob"), Value::Int(70)],
            vec![Value::str("ops"), Value::str("cy"), Value::Int(50)],
        ],
    )?;
    let conn = Connection::new(db).with_optimizer(ferry_optimizer::rewriter());

    let cfg = ServerConfig::default();
    println!(
        "admission control: {} connections, {} workers, queue depth {}",
        cfg.max_connections, cfg.workers, cfg.queue_depth
    );
    let handle = Server::bind(conn, addr.as_str(), cfg)?;
    println!("serving on {}", handle.addr());
    println!("try:  cargo run --example client -- {}", handle.addr());
    println!("press Enter to drain and shut down");

    let mut line = String::new();
    std::io::stdin().read_line(&mut line)?;

    println!("draining {} live session(s)…", handle.live_sessions());
    handle.shutdown();
    println!("bye");
    Ok(())
}

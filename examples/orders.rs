//! A small analytics application: customers → orders → line items, the
//! kind of "data-intensive and data-parallel computation" the paper's
//! introduction motivates. The whole three-level report ships to the
//! coprocessor as **three** queries (one per list constructor in the
//! result type), never one-per-customer or one-per-order.
//!
//! ```sh
//! cargo run --example orders
//! ```

#![allow(clippy::type_complexity)]

use ferry::prelude::*;
use ferry_algebra::{Schema, Ty, Value};
use ferry_engine::Database;

type Customer = (i64, String); // customers(cid, name) — alphabetical: cid, name
type Order = (i64, i64); // orders(cid, oid)
type Item = (i64, i64, String); // items(oid, price, product)

fn database() -> Database {
    let db = Database::new();
    db.create_table(
        "customers",
        Schema::of(&[("cid", Ty::Int), ("name", Ty::Str)]),
        vec!["cid"],
    )
    .unwrap();
    db.create_table(
        "orders",
        Schema::of(&[("cid", Ty::Int), ("oid", Ty::Int)]),
        vec!["oid"],
    )
    .unwrap();
    db.create_table(
        "items",
        Schema::of(&[("oid", Ty::Int), ("price", Ty::Int), ("product", Ty::Str)]),
        vec!["oid", "product"],
    )
    .unwrap();
    let i = Value::Int;
    let s = Value::str;
    db.insert(
        "customers",
        vec![
            vec![i(1), s("Ada")],
            vec![i(2), s("Grace")],
            vec![i(3), s("Edsger")],
        ],
    )
    .unwrap();
    db.insert(
        "orders",
        vec![vec![i(1), i(10)], vec![i(1), i(11)], vec![i(2), i(20)]],
    )
    .unwrap();
    db.insert(
        "items",
        vec![
            vec![i(10), i(120), s("anvil")],
            vec![i(10), i(2), s("banana")],
            vec![i(11), i(30), s("compass")],
            vec![i(20), i(45), s("dynamite")],
            vec![i(20), i(45), s("fuse")],
        ],
    )
    .unwrap();
    db
}

/// The full nested report: every customer with every order and its items.
/// Type: `[(name, [(oid, [(product, price)])])]` — three list constructors
/// ⇒ three queries, whatever the data size.
fn report() -> Q<Vec<(String, Vec<(i64, Vec<(String, i64)>)>)>> {
    map(
        |c: Q<Customer>| {
            let (cid, name) = c.view();
            let orders = filter(
                move |o: Q<Order>| o.fst().eq(&cid),
                table::<Order>("orders"),
            );
            pair(
                name,
                map(
                    |o: Q<Order>| {
                        let oid = o.snd();
                        let items = map(
                            |it: Q<Item>| pair(it.proj3_2(), it.proj3_1()),
                            filter(
                                {
                                    let oid = oid.clone();
                                    move |it: Q<Item>| it.proj3_0().eq(&oid)
                                },
                                table::<Item>("items"),
                            ),
                        );
                        pair(oid, items)
                    },
                    orders,
                ),
            )
        },
        table::<Customer>("customers"),
    )
}

/// Revenue per customer, biggest spender first — aggregation composed over
/// the same generators.
fn revenue() -> Q<Vec<(String, i64)>> {
    reverse(sort_with(
        |p: Q<(String, i64)>| p.snd(),
        map(
            |c: Q<Customer>| {
                let (cid, name) = c.view();
                let spent = sum(ferry::comp!(
                    (price.clone())
                    for (ocid, oid) in table::<Order>("orders"),
                    if ocid.eq(&cid),
                    for (ioid, price, product) in table::<Item>("items"),
                    if ioid.eq(&oid),
                    let _unused = product
                ));
                pair(name, spent)
            },
            table::<Customer>("customers"),
        ),
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let conn = Connection::new(database()).with_optimizer(ferry_optimizer::rewriter());

    println!("== the nested report (one bundle of 3 queries) ==");
    let bundle = conn.compile(&report())?;
    println!("bundle size: {} queries\n", bundle.queries.len());
    for (name, orders) in conn.from_q(&report())? {
        println!("{name}:");
        if orders.is_empty() {
            println!("  (no orders)");
        }
        for (oid, items) in orders {
            let parts: Vec<String> = items
                .iter()
                .map(|(prod, price)| format!("{prod} (${price})"))
                .collect();
            println!("  order {oid}: {}", parts.join(", "));
        }
    }

    println!("\n== revenue per customer ==");
    conn.database().reset_stats();
    for (name, spent) in conn.from_q(&revenue())? {
        println!("  {name:<8} ${spent}");
    }
    println!(
        "(computed in {} database round trip)",
        conn.database().stats().queries
    );
    Ok(())
}

//! The prepared-statement runtime: compile once, execute many, from any
//! thread — and watch the plan cache work.
//!
//! ```sh
//! cargo run --example prepared
//! ```

use ferry::prelude::*;
use ferry_algebra::{Schema, Ty, Value};
use ferry_engine::Database;
use ferry_sql::SqlBackend;
use std::sync::Arc;
use std::thread;

fn database() -> Result<Database, Box<dyn std::error::Error>> {
    let db = Database::new();
    db.create_table(
        "products",
        Schema::of(&[("name", Ty::Str), ("price", Ty::Int)]),
        vec!["name"],
    )?;
    db.insert(
        "products",
        vec![
            vec![Value::str("anvil"), Value::Int(120)],
            vec![Value::str("banana"), Value::Int(2)],
            vec![Value::str("compass"), Value::Int(30)],
            vec![Value::str("dynamite"), Value::Int(45)],
        ],
    )?;
    Ok(db)
}

fn affordable(limit: i64) -> Q<Vec<String>> {
    ferry::comp!(
        (name.clone())
        for (name, price) in table::<(String, i64)>("products"),
        if price.lt(&toq(&limit))
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let conn = Connection::new(database()?).with_optimizer(ferry_optimizer::rewriter());

    println!("== prepare once, execute many ==");
    let prepared = conn.prepare(&affordable(100))?;
    for day in 1..=3 {
        let names: Vec<String> = conn.execute(&prepared)?;
        println!("day {day}: {names:?}");
    }

    // a freshly built AST of the same query is served from the cache
    let again: Vec<String> = conn.from_q(&affordable(100))?;
    let stats = conn.database().stats();
    println!(
        "rebuilt query returned {again:?} — plan cache: {} hit(s), {} miss(es)",
        stats.cache_hits, stats.cache_misses
    );

    println!("\n== clones share everything; Prepared is Send + Sync ==");
    let shared = Arc::new(prepared);
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let conn = conn.clone();
            let shared = shared.clone();
            thread::spawn(move || {
                let names: Vec<String> = conn.execute(&shared).unwrap();
                println!("thread {t}: {} affordable products", names.len());
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    println!("\n== DDL invalidates, DML does not ==");
    conn.database()
        .insert("products", vec![vec![Value::str("fuse"), Value::Int(45)]])?;
    conn.prepare(&affordable(100))?; // still a hit: plans are data-independent
    conn.database()
        .create_table("reviews", Schema::of(&[("id", Ty::Int)]), vec!["id"])?;
    conn.prepare(&affordable(100))?; // schema changed: recompile
    let stats = conn.database().stats();
    println!(
        "after one insert and one CREATE TABLE: {} hit(s), {} miss(es)",
        stats.cache_hits, stats.cache_misses
    );

    println!("\n== the same query through the SQL:1999 backend ==");
    let sql_conn = conn.with_backend(Arc::new(SqlBackend));
    let via_sql: Vec<String> = sql_conn.from_q(&affordable(100))?;
    println!("via SQL round trip: {via_sql:?}");
    let explain = sql_conn.explain(&affordable(100))?;
    let sql_section = explain.split("(sql) --").nth(1).unwrap_or("").trim();
    println!("explain now renders the shipped SQL:\n{sql_section}");

    Ok(())
}

//! The paper's running example (§2), end to end: *what features are
//! characteristic for the various query facility categories?*
//!
//! Loads the Figure 1 tables, runs the comprehension-based program, prints
//! the nested result of §2 and the two-member SQL:1999 bundle of the
//! appendix.
//!
//! ```sh
//! cargo run --example facilities
//! ```

use ferry::prelude::*;
use ferry_bench::table1::{dsh_query, run_dsh};
use ferry_bench::workload::paper_dataset;
use ferry_sql::generate_sql;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let conn = Connection::new(paper_dataset()).with_optimizer(ferry_optimizer::rewriter());

    let (result, queries) = run_dsh(&conn)?;
    println!("-- the §2 result value ------------------------------------");
    for (cat, meanings) in &result {
        let ms: Vec<String> = meanings.iter().map(|m| format!("{m:?}")).collect();
        println!("(\"{cat}\", [{}])", ms.join(", "));
    }
    println!();
    println!(
        "dispatched {queries} queries — [(String, [String])] has two list \
         constructors, so the bundle has exactly two members (avalanche \
         safety), whether the database holds 9 facilities or 9 million."
    );
    println!();

    println!("-- the appendix: the emitted SQL:1999 bundle ---------------");
    let bundle = conn.compile(&dsh_query())?;
    for (i, qd) in bundle.queries.iter().enumerate() {
        let sql = generate_sql(&conn.snapshot(), &bundle.plan, qd.root)?;
        println!("-- query Q{} --", i + 1);
        println!("{}", sql.sql);
        println!();
    }
    Ok(())
}

//! Sparse-vector multiplication (Fig. 5/6) — the Data Parallel Haskell
//! comparison of §4.2.
//!
//! Runs `dotp sv v` three ways (database coprocessor, DPH-style vectorised
//! bulk operations, sequential loop) on the exact instance of Fig. 6, then
//! prints the compiled table-algebra plan so the structural correspondence
//! of Fig. 6 is visible: `bpermuteP` ⇔ an equi-join on `pos`, `*ˆ` ⇔ a
//! lifted multiplication, `sumP` ⇔ a grouped SUM.
//!
//! ```sh
//! cargo run --example dotp
//! ```

use ferry::prelude::*;
use ferry_bench::dotp::{dotp_database, dotp_query, dotp_scalar, dotp_vectorised};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // the Fig. 6 instance
    let sv = vec![(1i64, 0.1f64), (3, 1.0), (4, 0.0)];
    let v = vec![10.0, 20.0, 30.0, 40.0, 50.0];
    println!("sv = {sv:?}");
    println!("v  = {v:?}");

    let conn = Connection::new(dotp_database(&sv, &v)).with_optimizer(ferry_optimizer::rewriter());
    let on_db: f64 = conn.from_q(&dotp_query())?;
    let vectorised = dotp_vectorised(&sv, &v);
    let scalar = dotp_scalar(&sv, &v);
    println!();
    println!("database coprocessor : {on_db}");
    println!("DPH-style vectorised : {vectorised}");
    println!("sequential           : {scalar}");
    assert_eq!(on_db, scalar);
    assert_eq!(vectorised, scalar);

    println!();
    println!("-- the DSH side of Fig. 6: the compiled table-algebra plan --");
    let bundle = conn.compile(&dotp_query())?;
    println!(
        "{}",
        ferry_algebra::pretty::render(&bundle.plan, bundle.queries[0].root)
    );
    println!("(the equi-join implements bpermuteP; the computed * column is the");
    println!(" lifted multiplication; the grouped SUM is sumP)");
    Ok(())
}

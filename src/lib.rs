//! # `ferry-repro` — facade crate
//!
//! Re-exports every crate of the FERRY reproduction workspace under one
//! roof so that examples and integration tests (which live at the workspace
//! root) can reach the whole system, and so that downstream users can
//! depend on a single crate.
//!
//! See `README.md` for the tour, `DESIGN.md` for the architecture, and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

pub use ferry;
pub use ferry_algebra as algebra;
pub use ferry_baseline as baseline;
pub use ferry_engine as engine;
pub use ferry_optimizer as optimizer;
pub use ferry_server as server;
pub use ferry_sql as sql;

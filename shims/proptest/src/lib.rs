//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of the proptest 1.x API its property tests use:
//! [`Strategy`] with `prop_map` / `prop_flat_map` / `prop_recursive` /
//! `boxed`, [`Just`], [`any`], range and tuple strategies, a tiny
//! character-class string strategy, [`collection::vec`],
//! [`sample::select`], [`option::of`], and the [`proptest!`],
//! [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`] macros.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! * generation is **deterministic** — each test function derives its RNG
//!   seed from its own name, so failures reproduce exactly across runs;
//! * there is **no shrinking** — a failing case panics with the generated
//!   inputs left to the assertion message.

use std::ops::Range;
use std::sync::Arc;

// ---------------------------------------------------------------- RNG

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        (self.next_u64() % bound as u64) as usize
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// FNV-1a — used to derive per-test seeds from test names.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ----------------------------------------------------------- Strategy

/// A generator of values of type `Value`. Unlike real proptest there is
/// no shrinking: a strategy is just a (deterministic) sampling function.
pub trait Strategy: 'static {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Arc::new(move |rng| self.generate(rng)))
    }

    fn prop_map<U: 'static, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        BoxedStrategy(Arc::new(move |rng| f(self.generate(rng))))
    }

    fn prop_flat_map<S2, F>(self, f: F) -> BoxedStrategy<S2::Value>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + 'static,
    {
        BoxedStrategy(Arc::new(move |rng| f(self.generate(rng)).generate(rng)))
    }

    fn prop_filter<F>(self, _whence: &'static str, f: F) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        BoxedStrategy(Arc::new(move |rng| {
            for _ in 0..1000 {
                let v = self.generate(rng);
                if f(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates in a row");
        }))
    }

    /// Build a recursive strategy `levels` deep: level 0 is `self` (the
    /// leaf), level k+1 is `recurse` applied to a mix of the leaf and
    /// level k. `_desired_size`/`_branch` are accepted for API parity.
    fn prop_recursive<R, F>(
        self,
        levels: u32,
        _desired_size: u32,
        _branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..levels {
            // mix in the leaf so expected size stays bounded even when
            // `recurse` only produces composite forms
            let deeper = recurse(cur).boxed();
            let l = leaf.clone();
            cur = BoxedStrategy(Arc::new(move |rng: &mut TestRng| {
                if rng.below(4) == 0 {
                    l.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            }));
        }
        cur
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between alternatives (backs [`prop_oneof!`]).
pub fn one_of<T: 'static>(alts: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!alts.is_empty(), "prop_oneof! of zero alternatives");
    BoxedStrategy(Arc::new(move |rng| {
        let i = rng.below(alts.len());
        alts[i].generate(rng)
    }))
}

/// The constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ------------------------------------------------- primitive strategies

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy over empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Types with a canonical strategy, reachable through [`any`].
pub trait Arbitrary: Sized + 'static {
    fn arbitrary() -> BoxedStrategy<Self>;
}

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<bool> {
        BoxedStrategy(Arc::new(|rng| rng.bool()))
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<$t> {
                BoxedStrategy(Arc::new(|rng| rng.next_u64() as $t))
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

// strings: a minimal regex-flavoured strategy supporting the patterns
// this workspace uses — a single character class with a `{m,n}` repeat,
// e.g. `"[a-z ]{0,6}"`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_class_pattern(self).unwrap_or_else(|| {
            panic!("string strategy {self:?}: only `[class]{{m,n}}` patterns are supported")
        });
        let len = min + rng.below(max - min + 1);
        (0..len).map(|_| chars[rng.below(chars.len())]).collect()
    }
}

/// Parse `[a-z0-9 _]{m,n}` into (alphabet, m, n).
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            for c in lo..=hi {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let quant = &rest[close + 1..];
    let body = quant.strip_prefix('{')?.strip_suffix('}')?;
    let (m, n) = match body.split_once(',') {
        Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
        None => {
            let k = body.trim().parse().ok()?;
            (k, k)
        }
    };
    (m <= n).then_some((chars, m, n))
}

// tuple strategies
macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

// ------------------------------------------------------------- modules

pub mod collection {
    use super::{BoxedStrategy, Strategy};
    use std::ops::Range;
    use std::sync::Arc;

    /// `vec(element, size_range)` — a vector with uniformly drawn length.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> BoxedStrategy<Vec<S::Value>>
    where
        S::Value: 'static,
    {
        assert!(size.start < size.end, "vec with empty size range");
        BoxedStrategy(Arc::new(move |rng| {
            let len = size.start + rng.below(size.end - size.start);
            (0..len).map(|_| element.generate(rng)).collect()
        }))
    }
}

pub mod sample {
    use super::{BoxedStrategy, Strategy};
    use std::sync::Arc;

    /// Uniform choice from a fixed set.
    pub fn select<T: Clone + 'static>(options: Vec<T>) -> BoxedStrategy<T> {
        assert!(!options.is_empty(), "select from empty set");
        BoxedStrategy(Arc::new(move |rng| {
            options[rng.below(options.len())].clone()
        }))
    }

    impl<T: Clone + 'static> Strategy for Vec<T> {
        type Value = T;
        fn generate(&self, rng: &mut super::TestRng) -> T {
            self[rng.below(self.len())].clone()
        }
    }
}

pub mod option {
    use super::{BoxedStrategy, Strategy};
    use std::sync::Arc;

    /// `None` a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> BoxedStrategy<Option<S::Value>>
    where
        S::Value: 'static,
    {
        BoxedStrategy(Arc::new(move |rng| {
            if rng.below(4) == 0 {
                None
            } else {
                Some(inner.generate(rng))
            }
        }))
    }
}

pub mod test_runner {
    /// Runner configuration. Only `cases` is consulted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }
}

pub mod strategy {
    pub use super::{BoxedStrategy, Just, Strategy};
}

pub mod prelude {
    pub use super::test_runner::ProptestConfig;
    pub use super::{any, BoxedStrategy, Just, Strategy, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// -------------------------------------------------------------- macros

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        // weights are ignored: uniform choice
        $crate::one_of(vec![$($crate::Strategy::boxed($strat)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// The test-harness macro: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let base = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)).as_bytes());
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::TestRng::new(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_oneof() {
        let mut rng = TestRng::new(3);
        let s = prop_oneof![(0i64..5).prop_map(|x| x * 2), Just(100i64)];
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v == 100 || (v % 2 == 0 && v < 10));
        }
    }

    #[test]
    fn string_class_pattern() {
        let mut rng = TestRng::new(9);
        for _ in 0..50 {
            let s = "[a-c ]{0,6}".generate(&mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | ' ')));
        }
    }

    #[test]
    fn collections_and_options() {
        let mut rng = TestRng::new(11);
        let v = super::collection::vec(0i64..10, 2..5).generate(&mut rng);
        assert!((2..5).contains(&v.len()));
        let o = super::option::of(0i64..10).generate(&mut rng);
        assert!(o.is_none() || o.unwrap() < 10);
        let pick = super::sample::select(vec!["a", "b"]).generate(&mut rng);
        assert!(pick == "a" || pick == "b");
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Debug, Clone)]
        enum T {
            #[allow(dead_code)]
            Leaf(i64),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 1,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = (0i64..10)
            .prop_map(T::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::new(5);
        for _ in 0..50 {
            assert!(depth(&s.generate(&mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
        #[test]
        fn harness_macro_runs(x in 0i64..100, v in crate::collection::vec(0i64..10, 0..4)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 4);
        }
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *small* subset of the rand 0.8 API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over integer ranges. The generator is SplitMix64 —
//! deterministic, seedable, and statistically more than good enough for
//! workload generation (the only use in this repository). It is **not**
//! the rand crate: no cryptographic guarantees, no distributions, no
//! thread-local RNG.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything reduces to a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (`seed_from_u64` only).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing RNG methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 <= p
    }
}

impl<R: RngCore> Rng for R {}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator, API-compatible (for this
    /// workspace's purposes) with `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014)
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000i64), b.gen_range(0..1000i64));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-50..50i64);
            assert!((-50..50).contains(&v));
            let u = rng.gen_range(1..=3);
            assert!((1..=3).contains(&u));
            let w: usize = rng.gen_range(0..5usize);
            assert!(w < 5);
        }
    }

    #[test]
    fn covers_full_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[rng.gen_range(0..3usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

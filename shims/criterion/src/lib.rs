//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of the criterion 0.5 API its benches use:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark runs one untimed warm-up iteration,
//! then `sample_size` timed samples of one iteration each (batched up to
//! a minimum per-sample duration for very fast bodies). Median / mean /
//! min / max per-iteration times are printed to stderr. No statistics,
//! plots, baselines, or outlier analysis — just honest wall-clock numbers
//! so relative comparisons (the only thing the paper's tables need)
//! remain meaningful without the real harness.
//!
//! Like the real criterion, passing `--test` on the bench command line
//! (`cargo bench -- --test`) switches to smoke mode: every benchmark body
//! executes exactly once, untimed — CI uses this to keep benches from
//! bit-rotting without paying measurement time.
//!
//! Setting the `BENCH_JSON` environment variable to a file path makes the
//! shim additionally **append one JSON line per benchmark** to that file:
//! `{"bench":"<group>/<id>","median_ns":…,"mean_ns":…,"min_ns":…,
//! "max_ns":…,"samples":…}`. The `bench_check` tool in `ferry-bench`
//! diffs these lines against the medians recorded in `BENCH_engine.json`
//! and fails on regressions.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Identifier `function_name/parameter` for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// An opaque barrier against the optimiser, same contract as
/// `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Smoke mode (`--test`): run the body once, collect nothing.
    test_mode: bool,
    /// Mean per-iteration durations of each sample, filled by `iter`.
    collected: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        if self.test_mode {
            black_box(body());
            return;
        }
        // untimed warm-up
        black_box(body());
        // batch fast bodies so each sample is at least ~50µs of work
        let probe = Instant::now();
        black_box(body());
        let once = probe.elapsed();
        let batch = (Duration::from_micros(50).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000)
            as usize;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(body());
            }
            self.collected.push(start.elapsed() / batch as u32);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            test_mode: self.test_mode,
            collected: Vec::new(),
        };
        f(&mut b);
        self.report(&id, &b.collected);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            test_mode: self.test_mode,
            collected: Vec::new(),
        };
        f(&mut b, input);
        self.report(&id, &b.collected);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        if self.test_mode {
            eprintln!("{}/{}: test mode, ran once", self.name, id.id);
            return;
        }
        if samples.is_empty() {
            eprintln!("{}/{}: no samples collected", self.name, id.id);
            return;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2
        };
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = sorted.first().unwrap();
        let max = sorted.last().unwrap();
        eprintln!(
            "{}/{}: median {:?}  mean {:?}  min {:?}  max {:?}  ({} samples)",
            self.name,
            id.id,
            median,
            mean,
            min,
            max,
            samples.len()
        );
        if let Some(path) = std::env::var_os("BENCH_JSON") {
            use std::io::Write;
            match std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                Ok(mut f) => {
                    let _ = writeln!(
                        f,
                        "{{\"bench\":\"{}/{}\",\"median_ns\":{},\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{}}}",
                        json_escape(&self.name),
                        json_escape(&id.id),
                        median.as_nanos(),
                        mean.as_nanos(),
                        min.as_nanos(),
                        max.as_nanos(),
                        samples.len()
                    );
                }
                Err(e) => eprintln!("BENCH_JSON: cannot open {path:?}: {e}"),
            }
        }
    }
}

/// Escape the characters JSON strings cannot hold verbatim (bench names
/// are code-controlled, but a stray quote must not corrupt the stream).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }

    /// Honour the one command-line flag CI relies on: `--test` runs every
    /// benchmark body once without timing (`cargo bench -- --test`).
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function(BenchmarkId::new("sum", 100), |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        let n = 50u64;
        group.bench_with_input(BenchmarkId::new("sum_input", n), &n, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(test_benches, sample_bench);

    #[test]
    fn harness_runs() {
        test_benches();
    }

    #[test]
    fn bench_json_emits_one_line_per_benchmark() {
        let path =
            std::env::temp_dir().join(format!("criterion_shim_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("BENCH_JSON", &path);
        test_benches();
        std::env::remove_var("BENCH_JSON");
        let text = std::fs::read_to_string(&path).expect("JSONL file written");
        let _ = std::fs::remove_file(&path);
        // `harness_runs` may interleave and append too — demand at least
        // the two benches of `sample_bench`, all well-formed
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 2, "got: {text}");
        assert!(lines
            .iter()
            .any(|l| l.contains("\"bench\":\"shim/sum/100\"")));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"bench\":\"shim/sum_input/50\"")));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "line: {l}");
            assert!(l.contains("\"median_ns\":"), "line: {l}");
            assert!(l.contains("\"samples\":"), "line: {l}");
        }
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain/name"), "plain/name");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }
}

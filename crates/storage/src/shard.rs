//! Hash-partitioned durability: one WAL + snapshot per shard, sealed by
//! a shared commit log.
//!
//! A sharded directory holds, for a shard count `S` (1..=64):
//!
//! * [`SHARD_META_FILE`] — replace-installed metadata: `S`, the
//!   checkpoint watermark GSN, and every table's definition (schema,
//!   keys, optional shard key, row count at the watermark);
//! * [`COMMIT_LOG`] — a [`Wal`](crate::wal::Wal) of *commit frames*:
//!   each commit is one CRC-atomic frame carrying its DDL records plus a
//!   trailing [`WalRecord::ShardCommit`] marker `{gsn, mask}`;
//! * `wal-{k}` — shard `k`'s WAL of [`WalRecord::ShardRows`] frames (at
//!   most one frame per shard per commit, so a frame's CRC makes the
//!   shard's slice of the commit all-or-nothing);
//! * `snap-{k}` — shard `k`'s snapshot: that shard's rows per table,
//!   each tagged with its *absolute position* in the table's global
//!   insert order.
//!
//! Storage is hash-agnostic: the engine's versioned `ShardHash` decides
//! row→shard placement and absolute positions; this layer only persists
//! and reassembles them. Because every row is positioned, application is
//! idempotent — replaying a record over snapshot-restored state rewrites
//! the same positions with the same values, which is what makes every
//! checkpoint crash window consistent without coordination.
//!
//! **Durability protocol** (group commit): shard WALs are fsynced
//! *before* the commit log, so a durable marker implies durable
//! participant rows. **Recovery** replays all shard logs in parallel,
//! then walks the commit log in order and applies each marker whose
//! participant shards (per `mask`) all hold its GSN. The first marker
//! past the checkpoint watermark with a missing participant defines the
//! *epoch-consistent cut*: it and everything after it — acked by no one,
//! because acks wait for the group fsync — are truncated away across all
//! logs, exactly the single-WAL nack contract, but multiplied by S.

use crate::codec::{Dec, Enc};
use crate::frame::{scan, write_frame, Tail};
use crate::fs::Vfs;
use crate::wal::{replay_wal, Wal, WalReplay, WAL_MAGIC};
use crate::{DurabilityConfig, StorageError, StorageMetrics, WalRecord};
use ferry_algebra::{Row, Schema};
use ferry_telemetry::Registry;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The commit log's file name inside the storage directory.
pub const COMMIT_LOG: &str = "commitlog";

/// Replace-installed shard metadata file.
pub const SHARD_META_FILE: &str = "shard-meta";

/// Magic + format version of the metadata file.
pub const SHARD_META_MAGIC: &[u8; 8] = b"FSMT0001";

/// Magic + format version of a per-shard snapshot file.
pub const SHARD_SNAP_MAGIC: &[u8; 8] = b"FSSH0001";

/// Hard shard-count ceiling (participant masks are a `u64`).
pub const MAX_SHARDS: usize = 64;

/// `shard_of` sentinel for rows that live in the commit log itself
/// (an `InstallTable` payload) rather than in any shard WAL.
pub const NO_SHARD: u32 = u32::MAX;

/// Positions are engine selection-vector indices (`u32`); anything
/// larger in a log is hostile input, not data.
const MAX_POSITION: u64 = u32::MAX as u64;

/// Shard `k`'s WAL file name.
pub fn shard_wal_file(k: usize) -> String {
    format!("wal-{k}")
}

/// Shard `k`'s snapshot file name.
pub fn shard_snap_file(k: usize) -> String {
    format!("snap-{k}")
}

/// One table's definition as the sharded layer persists it.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardTableDef {
    pub name: String,
    pub schema: Schema,
    pub keys: Vec<String>,
    /// The declared partitioning column; `None` for unsharded tables
    /// (whose rows the engine routes whole to their home shard).
    pub shard_key: Option<String>,
}

/// A table with its rows in global insert order plus each row's owning
/// shard — checkpoint input (where every entry must be a real shard) and
/// recovery output (where [`NO_SHARD`] marks commit-log-resident rows).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardTableImage {
    pub def: ShardTableDef,
    pub rows: Vec<Row>,
    pub shard_of: Vec<u32>,
}

/// What [`ShardedStorage::open`] found and did across all S logs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardRecoveryReport {
    pub shards: usize,
    /// Checkpoint watermark GSN from the metadata file.
    pub watermark_gsn: u64,
    /// Last GSN in the recovered state — the epoch-consistent cut.
    pub cut_gsn: u64,
    /// Commit markers applied / dropped past the cut.
    pub markers_applied: usize,
    pub markers_dropped: usize,
    /// Frames decoded across the commit log and every shard WAL.
    pub wal_frames: usize,
    pub wal_bytes: u64,
    pub snapshot_bytes: u64,
    /// Files truncated (torn tails or the cut).
    pub repairs: usize,
    pub elapsed_us: u64,
}

impl ShardRecoveryReport {
    /// Render the recovery timeline, one phase per line — the sharded
    /// sibling of `RecoveryReport::render`.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "-- sharded recovery timeline ({} shards, {}us) --",
            self.shards, self.elapsed_us
        );
        let _ = writeln!(
            out,
            "load shard snaps   watermark gsn {:>6}  {} bytes",
            self.watermark_gsn, self.snapshot_bytes
        );
        let _ = writeln!(
            out,
            "replay shard logs  {} frames  {} bytes  {} markers applied",
            self.wal_frames, self.wal_bytes, self.markers_applied
        );
        let _ = writeln!(
            out,
            "epoch cut          gsn {}  {} markers dropped  {} files repaired",
            self.cut_gsn, self.markers_dropped, self.repairs
        );
        out
    }
}

/// The recovered tables plus the attached, ready-to-append storage.
#[derive(Debug)]
pub struct ShardRecovered {
    pub storage: ShardedStorage,
    pub tables: Vec<ShardTableImage>,
    pub report: ShardRecoveryReport,
}

/// The sharded durability orchestrator: S shard WALs + the commit log,
/// group-committed together under one GSN sequence.
#[derive(Debug)]
pub struct ShardedStorage {
    vfs: Arc<dyn Vfs>,
    shards: usize,
    commit: Mutex<Wal>,
    wals: Vec<Mutex<Wal>>,
    config: DurabilityConfig,
    /// Last allocated group sequence number.
    next_gsn: AtomicU64,
    /// Highest GSN whose commit frame is fully appended (stored while
    /// holding the commit-log lock, so a load ordered before capturing
    /// sync targets is covered by those targets).
    completed_gsn: AtomicU64,
    /// Highest GSN the group fsync protocol has made durable.
    durable_gsn: AtomicU64,
    records_since_checkpoint: AtomicU64,
    metrics: StorageMetrics,
}

// ---------------------------------------------------------------- meta

#[derive(Debug)]
struct Meta {
    shards: usize,
    watermark: u64,
    /// Each table's definition plus its row count at the watermark.
    tables: Vec<(ShardTableDef, u64)>,
}

fn write_meta(vfs: &dyn Vfs, meta: &Meta) -> Result<(), StorageError> {
    let mut buf = Vec::new();
    buf.extend_from_slice(SHARD_META_MAGIC);
    let mut head = Enc::new();
    head.u32(meta.shards as u32);
    head.u64(meta.watermark);
    head.u32(meta.tables.len() as u32);
    write_frame(&mut buf, &head.into_bytes())?;
    for (def, total) in &meta.tables {
        let mut e = Enc::new();
        e.str(&def.name);
        e.schema(&def.schema);
        e.strings(&def.keys);
        match &def.shard_key {
            Some(k) => {
                e.u8(1);
                e.str(k);
            }
            None => e.u8(0),
        }
        e.u64(*total);
        write_frame(&mut buf, &e.into_bytes())?;
    }
    vfs.replace(SHARD_META_FILE, &buf)
}

fn read_meta(vfs: &dyn Vfs) -> Result<Option<Meta>, StorageError> {
    let bytes = match vfs.read(SHARD_META_FILE)? {
        None => return Ok(None),
        Some(b) => b,
    };
    if bytes.len() < SHARD_META_MAGIC.len() || &bytes[..SHARD_META_MAGIC.len()] != SHARD_META_MAGIC
    {
        return Err(StorageError::Corrupt("bad shard-meta magic".into()));
    }
    let out = scan(&bytes[SHARD_META_MAGIC.len()..])?;
    if out.tail != Tail::Clean {
        return Err(StorageError::Corrupt(
            "shard-meta has a damaged frame (meta is installed atomically)".into(),
        ));
    }
    let mut frames = out.frames.into_iter();
    let head = frames
        .next()
        .ok_or_else(|| StorageError::Corrupt("shard-meta missing head frame".into()))?;
    let mut d = Dec::new(head);
    let shards = d.u32()? as usize;
    let watermark = d.u64()?;
    let count = d.u32()? as usize;
    d.finish()?;
    if shards == 0 || shards > MAX_SHARDS {
        return Err(StorageError::Corrupt(format!(
            "shard-meta declares {shards} shards (1..={MAX_SHARDS})"
        )));
    }
    let mut tables = Vec::with_capacity(count.min(1 << 16));
    for payload in frames {
        let mut d = Dec::new(payload);
        let name = d.str()?.to_string();
        let schema = d.schema()?;
        let keys = d.strings()?;
        let shard_key = match d.u8()? {
            0 => None,
            1 => Some(d.str()?.to_string()),
            t => {
                return Err(StorageError::Corrupt(format!(
                    "bad shard-key tag {t} in shard-meta"
                )))
            }
        };
        let total = d.u64()?;
        d.finish()?;
        tables.push((
            ShardTableDef {
                name,
                schema,
                keys,
                shard_key,
            },
            total,
        ));
    }
    if tables.len() != count {
        return Err(StorageError::Corrupt(format!(
            "shard-meta declares {count} tables but holds {}",
            tables.len()
        )));
    }
    Ok(Some(Meta {
        shards,
        watermark,
        tables,
    }))
}

// ------------------------------------------------------ shard snapshots

/// One table's slice inside a shard snapshot: `(name, positions, rows)`.
type SnapTable = (String, Vec<u64>, Vec<Row>);

fn write_shard_snap(
    vfs: &dyn Vfs,
    file: &str,
    gsn: u64,
    tables: &[SnapTable],
) -> Result<u64, StorageError> {
    let mut buf = Vec::new();
    buf.extend_from_slice(SHARD_SNAP_MAGIC);
    let mut head = Enc::new();
    head.u64(gsn);
    head.u32(tables.len() as u32);
    write_frame(&mut buf, &head.into_bytes())?;
    for (name, idx, rows) in tables {
        let mut e = Enc::new();
        e.str(name);
        e.u64(idx.len() as u64);
        for i in idx {
            e.u64(*i);
        }
        e.rows(rows);
        write_frame(&mut buf, &e.into_bytes())?;
    }
    let bytes = buf.len() as u64;
    vfs.replace(file, &buf)?;
    Ok(bytes)
}

struct ShardSnap {
    tables: Vec<SnapTable>,
    bytes: u64,
}

fn read_shard_snap(vfs: &dyn Vfs, file: &str) -> Result<Option<ShardSnap>, StorageError> {
    let bytes = match vfs.read(file)? {
        None => return Ok(None),
        Some(b) => b,
    };
    if bytes.len() < SHARD_SNAP_MAGIC.len() || &bytes[..SHARD_SNAP_MAGIC.len()] != SHARD_SNAP_MAGIC
    {
        return Err(StorageError::Corrupt(format!("bad magic in {file}")));
    }
    let out = scan(&bytes[SHARD_SNAP_MAGIC.len()..])?;
    if out.tail != Tail::Clean {
        return Err(StorageError::Corrupt(format!(
            "{file} has a damaged frame (shard snapshots are installed atomically)"
        )));
    }
    let mut frames = out.frames.into_iter();
    let head = frames
        .next()
        .ok_or_else(|| StorageError::Corrupt(format!("{file} missing head frame")))?;
    let mut d = Dec::new(head);
    let _gsn = d.u64()?;
    let count = d.u32()? as usize;
    d.finish()?;
    let mut tables = Vec::with_capacity(count.min(1 << 16));
    for payload in frames {
        let mut d = Dec::new(payload);
        let name = d.str()?.to_string();
        let n = d.u64()?;
        let mut idx = Vec::with_capacity(n.min(1 << 20) as usize);
        for _ in 0..n {
            idx.push(d.u64()?);
        }
        let rows = d.rows()?;
        d.finish()?;
        if idx.len() != rows.len() {
            return Err(StorageError::Corrupt(format!(
                "{file}: {} positions for {} rows",
                idx.len(),
                rows.len()
            )));
        }
        tables.push((name, idx, rows));
    }
    if tables.len() != count {
        return Err(StorageError::Corrupt(format!(
            "{file} declares {count} tables but holds {}",
            tables.len()
        )));
    }
    Ok(Some(ShardSnap {
        tables,
        bytes: bytes.len() as u64,
    }))
}

// ------------------------------------------------------------- recovery

/// Position-addressed row storage during recovery; dense-checked at the
/// end (a hole means the logs and snapshots disagree).
#[derive(Debug, Default)]
struct SparseRows {
    slots: Vec<Option<(Row, u32)>>,
}

impl SparseRows {
    fn set(&mut self, pos: u64, row: Row, shard: u32) -> Result<(), StorageError> {
        if pos > MAX_POSITION {
            return Err(StorageError::Corrupt(format!(
                "row position {pos} exceeds the engine's u32 space"
            )));
        }
        let pos = pos as usize;
        if pos >= self.slots.len() {
            self.slots.resize_with(pos + 1, || None);
        }
        self.slots[pos] = Some((row, shard));
        Ok(())
    }

    fn install(&mut self, rows: &[Row]) {
        self.slots = rows.iter().map(|r| Some((r.clone(), NO_SHARD))).collect();
    }
}

/// One decoded shard-WAL frame: the `ShardRows` records it carries (a
/// bare record or a same-GSN batch). Frames own their records — the
/// apply loop moves the row payloads out instead of cloning, which is
/// most of what single-core replay throughput is made of.
struct ShardFrame {
    gsn: u64,
    lsn: u64,
    recs: Vec<WalRecord>,
}

/// Validate one shard WAL's replayed records (GSN-monotone `ShardRows`
/// frames only), consuming them into owned [`ShardFrame`]s. Because
/// frames are GSN-ordered, the commit walk finds each participant with
/// a cursor instead of a by-GSN hash index.
fn index_shard_log(
    file: &str,
    records: Vec<(u64, WalRecord)>,
) -> Result<Vec<ShardFrame>, StorageError> {
    let mut frames = Vec::with_capacity(records.len());
    let mut last_gsn = 0u64;
    for (lsn, rec) in records {
        let recs: Vec<WalRecord> = match rec {
            WalRecord::ShardRows { .. } => vec![rec],
            WalRecord::Batch(members)
                if !members.is_empty()
                    && members
                        .iter()
                        .all(|m| matches!(m, WalRecord::ShardRows { .. })) =>
            {
                members
            }
            other => {
                return Err(StorageError::Corrupt(format!(
                    "{file}: unexpected record {other:?} in a shard WAL"
                )))
            }
        };
        let gsn = match &recs[0] {
            WalRecord::ShardRows { gsn, .. } => *gsn,
            _ => unreachable!("validated above"),
        };
        if recs
            .iter()
            .any(|r| !matches!(r, WalRecord::ShardRows { gsn: g, .. } if *g == gsn))
        {
            return Err(StorageError::Corrupt(format!(
                "{file}: mixed GSNs inside one shard frame"
            )));
        }
        if gsn <= last_gsn {
            return Err(StorageError::Corrupt(format!(
                "{file}: non-monotone GSN {gsn} after {last_gsn}"
            )));
        }
        last_gsn = gsn;
        frames.push(ShardFrame { gsn, lsn, recs });
    }
    Ok(frames)
}

/// One decoded commit-log frame: DDL records plus the trailing marker.
struct CommitFrame {
    ddl: Vec<WalRecord>,
    gsn: u64,
    mask: u64,
}

fn index_commit_log(replay: &WalReplay) -> Result<Vec<CommitFrame>, StorageError> {
    let mut out = Vec::with_capacity(replay.records.len());
    let mut last_gsn = 0u64;
    for (_lsn, rec) in &replay.records {
        let (ddl, gsn, mask) = match rec {
            WalRecord::ShardCommit { gsn, mask } => (Vec::new(), *gsn, *mask),
            WalRecord::Batch(members) => match members.split_last() {
                Some((WalRecord::ShardCommit { gsn, mask }, ddl))
                    if ddl.iter().all(|r| {
                        matches!(
                            r,
                            WalRecord::CreateTable { .. }
                                | WalRecord::CreateTableSharded { .. }
                                | WalRecord::InstallTable { .. }
                        )
                    }) =>
                {
                    (ddl.to_vec(), *gsn, *mask)
                }
                _ => {
                    return Err(StorageError::Corrupt(
                        "malformed commit frame (expected DDL* + ShardCommit)".into(),
                    ))
                }
            },
            other => {
                return Err(StorageError::Corrupt(format!(
                    "unexpected record {other:?} in the commit log"
                )))
            }
        };
        if gsn <= last_gsn {
            return Err(StorageError::Corrupt(format!(
                "commit log: non-monotone GSN {gsn} after {last_gsn}"
            )));
        }
        last_gsn = gsn;
        out.push(CommitFrame { ddl, gsn, mask });
    }
    Ok(out)
}

/// Apply one commit's DDL to the recovering state. Creates are
/// create-if-absent (idempotent re-application over snapshot-restored
/// state must not wipe positioned rows); installs replace the table
/// wholesale — self-contained, so later positioned records rebuild
/// anything they overwrite.
fn apply_ddl(
    defs: &mut BTreeMap<String, ShardTableDef>,
    rows: &mut HashMap<String, SparseRows>,
    rec: &WalRecord,
) -> Result<(), StorageError> {
    match rec {
        WalRecord::CreateTable { name, schema, keys } => {
            defs.entry(name.clone()).or_insert_with(|| ShardTableDef {
                name: name.clone(),
                schema: schema.clone(),
                keys: keys.clone(),
                shard_key: None,
            });
        }
        WalRecord::CreateTableSharded {
            name,
            schema,
            keys,
            shard_key,
        } => {
            defs.entry(name.clone()).or_insert_with(|| ShardTableDef {
                name: name.clone(),
                schema: schema.clone(),
                keys: keys.clone(),
                shard_key: Some(shard_key.clone()),
            });
        }
        WalRecord::InstallTable {
            name,
            schema,
            keys,
            rows: payload,
        } => {
            defs.insert(
                name.clone(),
                ShardTableDef {
                    name: name.clone(),
                    schema: schema.clone(),
                    keys: keys.clone(),
                    shard_key: None,
                },
            );
            rows.entry(name.clone()).or_default().install(payload);
        }
        other => {
            return Err(StorageError::Corrupt(format!(
                "record {other:?} is not commit-log DDL"
            )))
        }
    }
    Ok(())
}

impl ShardedStorage {
    /// Open (or create) a sharded directory: load the metadata and every
    /// shard snapshot, replay all shard WALs **in parallel**, walk the
    /// commit log to find the epoch-consistent cut, truncate every log
    /// back to it, and return the reassembled tables (rows in global
    /// insert order, each tagged with its owning shard).
    ///
    /// `shards` must match the on-disk shard count of an existing
    /// directory — resharding is not supported.
    pub fn open(
        vfs: Arc<dyn Vfs>,
        shards: usize,
        config: DurabilityConfig,
        registry: &Registry,
    ) -> Result<ShardRecovered, StorageError> {
        if shards == 0 || shards > MAX_SHARDS {
            return Err(StorageError::Corrupt(format!(
                "shard count {shards} out of range (1..={MAX_SHARDS})"
            )));
        }
        let start = Instant::now();
        let mut span = ferry_telemetry::span("storage.recover", "storage");
        span.attr("shards", shards);
        let metrics = StorageMetrics::new(registry);
        let shard_wal_bytes = registry
            .counter("storage.shard.wal_bytes")
            .unwrap_or_default();
        let mut report = ShardRecoveryReport {
            shards,
            ..ShardRecoveryReport::default()
        };

        // 1. metadata (written at creation, so its absence means fresh)
        let meta = match read_meta(vfs.as_ref())? {
            Some(m) => {
                if m.shards != shards {
                    return Err(StorageError::Corrupt(format!(
                        "directory is sharded {} ways, {shards} requested; \
                         resharding is unsupported",
                        m.shards
                    )));
                }
                m
            }
            None => {
                let m = Meta {
                    shards,
                    watermark: 0,
                    tables: Vec::new(),
                };
                write_meta(vfs.as_ref(), &m)?;
                m
            }
        };
        report.watermark_gsn = meta.watermark;

        // 2. snapshots + shard logs, loaded in parallel (one thread per
        //    shard; decode dominates, and the Vfs is Send + Sync). On a
        //    single-core host the threads can only interleave, so the
        //    spawn/join overhead is pure loss — load serially instead.
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        type ShardLoad = Result<(Option<ShardSnap>, WalReplay), StorageError>;
        let load_shard = |k: usize| -> ShardLoad {
            let snap = read_shard_snap(vfs.as_ref(), &shard_snap_file(k))?;
            let bytes = vfs.read(&shard_wal_file(k))?;
            let replay = replay_wal(bytes.as_deref())?;
            Ok((snap, replay))
        };
        let loaded: Vec<ShardLoad> = if shards > 1 && cores > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..shards)
                    .map(|k| scope.spawn(move || load_shard(k)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard load thread panicked"))
                    .collect()
            })
        } else {
            (0..shards).map(load_shard).collect()
        };
        let commit_replay = replay_wal(vfs.read(COMMIT_LOG)?.as_deref())?;

        let mut snaps = Vec::with_capacity(shards);
        let mut shard_replays = Vec::with_capacity(shards);
        for res in loaded {
            let (snap, replay) = res?;
            snaps.push(snap);
            shard_replays.push(replay);
        }

        // 3. rebuild state: defs from meta, rows from snapshots, then
        //    commit-by-commit replay in GSN order
        let mut defs: BTreeMap<String, ShardTableDef> = BTreeMap::new();
        let mut totals: HashMap<String, u64> = HashMap::new();
        for (def, total) in &meta.tables {
            defs.insert(def.name.clone(), def.clone());
            totals.insert(def.name.clone(), *total);
        }
        let mut rows: HashMap<String, SparseRows> = HashMap::new();
        for (k, snap) in snaps.into_iter().enumerate() {
            let Some(snap) = snap else { continue };
            report.snapshot_bytes += snap.bytes;
            for (name, idx, payload) in snap.tables {
                let table = rows.entry(name).or_default();
                for (pos, row) in idx.into_iter().zip(payload) {
                    table.set(pos, row, k as u32)?;
                }
            }
        }

        let mut shard_frames = Vec::with_capacity(shards);
        for (k, replay) in shard_replays.iter_mut().enumerate() {
            report.wal_frames += replay.records.len();
            report.wal_bytes += replay.good_bytes;
            let frames = index_shard_log(&shard_wal_file(k), std::mem::take(&mut replay.records))?;
            shard_frames.push(frames);
        }
        report.wal_frames += commit_replay.records.len();
        report.wal_bytes += commit_replay.good_bytes;
        let commits = index_commit_log(&commit_replay)?;

        let mut cut = meta.watermark;
        let mut applied_commits = 0usize;
        let mut applied_ops = 0u64;
        // per-log keep extents: (frame count, byte length) per shard log
        // and for the commit log, advanced as commits are accepted
        let mut shard_keep: Vec<(usize, u64)> = (0..shards)
            .map(|_| (0usize, WAL_MAGIC.len() as u64))
            .collect();
        let mut commit_keep = (0usize, WAL_MAGIC.len() as u64);
        // per-shard frame cursor: commits walk in GSN order and each
        // shard's frames are GSN-monotone, so every participant lookup
        // is an O(1) peek (dead unmarked frames are skipped in passing)
        let mut cursor = vec![0usize; shards];
        for (ci, commit) in commits.iter().enumerate() {
            if commit.mask >> shards != 0 {
                return Err(StorageError::Corrupt(format!(
                    "commit gsn {} references shards beyond {}",
                    commit.gsn, shards
                )));
            }
            let complete = (0..shards)
                .filter(|k| commit.mask & (1 << k) != 0)
                .all(|k| {
                    let frames = &shard_frames[k];
                    let mut c = cursor[k];
                    while c < frames.len() && frames[c].gsn < commit.gsn {
                        c += 1;
                    }
                    cursor[k] = c;
                    c < frames.len() && frames[c].gsn == commit.gsn
                });
            if !complete {
                if commit.gsn <= meta.watermark {
                    // markers at or below the watermark only exist while
                    // all logs are still fully intact (the commit log is
                    // truncated before the shard WALs), so a missing
                    // participant here is real damage, not a crash window
                    return Err(StorageError::Corrupt(format!(
                        "commit gsn {} (≤ watermark {}) is missing shard frames",
                        commit.gsn, meta.watermark
                    )));
                }
                // the epoch-consistent cut: this commit and everything
                // after it was never acked — drop them all
                report.markers_dropped = commits.len() - ci;
                break;
            }
            for rec in &commit.ddl {
                apply_ddl(&mut defs, &mut rows, rec)?;
                applied_ops += 1;
            }
            for k in (0..shards).filter(|k| commit.mask & (1 << k) != 0) {
                let fi = cursor[k];
                cursor[k] = fi + 1;
                for rec in std::mem::take(&mut shard_frames[k][fi].recs) {
                    let WalRecord::ShardRows {
                        table,
                        idx,
                        rows: payload,
                        ..
                    } = rec
                    else {
                        unreachable!("index_shard_log validated");
                    };
                    if !defs.contains_key(&table) {
                        return Err(StorageError::Corrupt(format!(
                            "shard {k} WAL inserts into {table} which nothing created"
                        )));
                    }
                    let t = rows.entry(table).or_default();
                    for (pos, row) in idx.into_iter().zip(payload) {
                        t.set(pos, row, k as u32)?;
                    }
                    applied_ops += 1;
                }
                // the keep extent advances to cover this frame (plus any
                // unmarked frames before it, which stay as dead bytes)
                let (ref mut kept, ref mut bytes) = shard_keep[k];
                while *kept <= fi {
                    *bytes += shard_replays[k].frame_lens[*kept];
                    *kept += 1;
                }
            }
            commit_keep.1 += commit_replay.frame_lens[ci];
            commit_keep.0 += 1;
            cut = commit.gsn;
            if commit.gsn > meta.watermark {
                applied_commits += 1;
            }
        }
        report.cut_gsn = cut;
        report.markers_applied = applied_commits;

        // 4. truncate every log back to the cut (and repair torn tails);
        //    also (re)create any file a crash left missing
        let mut repair = |file: &str,
                          keep: u64,
                          replay: &WalReplay,
                          existed: bool|
         -> Result<u64, StorageError> {
            if !existed {
                vfs.append(file, WAL_MAGIC)?;
                vfs.sync(file)?;
                return Ok(WAL_MAGIC.len() as u64);
            }
            let current = replay.good_bytes;
            if keep < current || replay.tail != Tail::Clean || current == 0 {
                let keep = keep.max(WAL_MAGIC.len() as u64);
                if current == 0 {
                    // even the magic was torn off: start the file over
                    vfs.truncate(file, 0)?;
                    vfs.append(file, WAL_MAGIC)?;
                } else {
                    vfs.truncate(file, keep)?;
                }
                vfs.sync(file)?;
                report.repairs += 1;
                return Ok(keep);
            }
            Ok(current)
        };
        let mut shard_lens = Vec::with_capacity(shards);
        for k in 0..shards {
            let existed = vfs.size(&shard_wal_file(k))?.is_some();
            let len = repair(
                &shard_wal_file(k),
                shard_keep[k].1,
                &shard_replays[k],
                existed,
            )?;
            shard_lens.push(len);
        }
        let commit_existed = vfs.size(COMMIT_LOG)?.is_some();
        let commit_len = repair(COMMIT_LOG, commit_keep.1, &commit_replay, commit_existed)?;

        // 5. reassemble dense tables and verify against the metadata
        let mut tables = Vec::with_capacity(defs.len());
        for (name, def) in &defs {
            let sparse = rows.remove(name).unwrap_or_default();
            let mut out_rows = Vec::with_capacity(sparse.slots.len());
            let mut shard_of = Vec::with_capacity(sparse.slots.len());
            for (pos, slot) in sparse.slots.into_iter().enumerate() {
                match slot {
                    Some((row, shard)) => {
                        out_rows.push(row);
                        shard_of.push(shard);
                    }
                    None => {
                        return Err(StorageError::Corrupt(format!(
                            "table {name} has no row at position {pos} \
                             (snapshots and logs disagree)"
                        )));
                    }
                }
            }
            if let Some(total) = totals.get(name) {
                if (out_rows.len() as u64) < *total {
                    return Err(StorageError::Corrupt(format!(
                        "table {name} recovered {} rows, checkpoint recorded {total}",
                        out_rows.len()
                    )));
                }
            }
            tables.push(ShardTableImage {
                def: def.clone(),
                rows: out_rows,
                shard_of,
            });
        }
        if let Some(name) = rows.keys().next() {
            return Err(StorageError::Corrupt(format!(
                "recovered rows for {name} but no definition created it"
            )));
        }

        // 6. resume the appenders past the kept extents
        let shard_next_lsn = |k: usize| {
            shard_frames[k]
                .get(shard_keep[k].0.wrapping_sub(1))
                .filter(|_| shard_keep[k].0 > 0)
                .map(|f| f.lsn + 1)
                .unwrap_or(1)
        };
        let wals = (0..shards)
            .map(|k| {
                Mutex::new(Wal::resume(
                    vfs.clone(),
                    &shard_wal_file(k),
                    config.fsync,
                    shard_next_lsn(k),
                    shard_lens[k],
                    shard_wal_bytes.clone(),
                    metrics.fsyncs.clone(),
                ))
            })
            .collect();
        let commit_next_lsn = commit_replay
            .records
            .get(commit_keep.0.wrapping_sub(1))
            .filter(|_| commit_keep.0 > 0)
            .map(|(lsn, _)| lsn + 1)
            .unwrap_or(1);
        let commit = Mutex::new(Wal::resume(
            vfs.clone(),
            COMMIT_LOG,
            config.fsync,
            commit_next_lsn,
            commit_len,
            metrics.wal_bytes.clone(),
            metrics.fsyncs.clone(),
        ));

        report.elapsed_us = start.elapsed().as_micros() as u64;
        metrics.recoveries.inc();
        span.attr("tables", tables.len())
            .attr("applied", applied_ops)
            .attr("cut_gsn", cut);
        Ok(ShardRecovered {
            storage: ShardedStorage {
                vfs,
                shards,
                commit,
                wals,
                config,
                next_gsn: AtomicU64::new(cut),
                completed_gsn: AtomicU64::new(cut),
                durable_gsn: AtomicU64::new(cut),
                records_since_checkpoint: AtomicU64::new(applied_ops),
                metrics,
            },
            tables,
            report,
        })
    }

    /// Log one transaction across the shards; returns its GSN. `ddl`
    /// rides in the commit log; `shard_rows[k]` are the
    /// [`WalRecord::ShardRows`] appends for shard `k` (their `gsn`
    /// fields are assigned here). Per shard the records coalesce into a
    /// single CRC-atomic frame, and the commit's DDL + marker form one
    /// frame in the commit log — so every per-file slice of the commit
    /// is all-or-nothing.
    ///
    /// Under [`FsyncPolicy::Always`](crate::FsyncPolicy::Always) *no*
    /// fsync happens here: the caller must not ack until
    /// [`ShardedStorage::group_sync`] reports the GSN durable.
    pub fn log_commit(
        &self,
        ddl: Vec<WalRecord>,
        shard_rows: Vec<(usize, Vec<WalRecord>)>,
    ) -> Result<u64, StorageError> {
        if ddl.is_empty() && shard_rows.iter().all(|(_, r)| r.is_empty()) {
            return Err(StorageError::Codec("empty sharded transaction".into()));
        }
        let gsn = self.next_gsn.fetch_add(1, Ordering::SeqCst) + 1;
        let mut mask = 0u64;
        let mut ops = 0u64;
        for (k, mut recs) in shard_rows {
            if recs.is_empty() {
                continue;
            }
            if k >= self.shards {
                return Err(StorageError::Codec(format!(
                    "shard {k} out of range (S={})",
                    self.shards
                )));
            }
            for rec in &mut recs {
                match rec {
                    WalRecord::ShardRows { gsn: g, .. } => *g = gsn,
                    other => {
                        return Err(StorageError::Codec(format!(
                            "shard payload must be ShardRows, got {other:?}"
                        )))
                    }
                }
            }
            ops += recs.iter().map(WalRecord::op_count).sum::<u64>();
            let frame = if recs.len() == 1 {
                recs.pop().expect("len checked")
            } else {
                WalRecord::Batch(recs)
            };
            self.wals[k].lock().unwrap().append_deferred(&frame)?;
            mask |= 1 << k;
        }
        ops += ddl.iter().map(WalRecord::op_count).sum::<u64>();
        let marker = WalRecord::ShardCommit { gsn, mask };
        let frame = if ddl.is_empty() {
            marker
        } else {
            let mut members = ddl;
            members.push(marker);
            WalRecord::Batch(members)
        };
        {
            let mut commit = self.commit.lock().unwrap();
            commit.append_deferred(&frame)?;
            // ordered inside the lock: a group-sync leader that reads
            // this gsn afterwards will capture sync targets covering it
            self.completed_gsn.store(gsn, Ordering::SeqCst);
        }
        self.metrics.wal_records.add(ops);
        self.records_since_checkpoint
            .fetch_add(ops, Ordering::Relaxed);
        Ok(gsn)
    }

    /// One group fsync across every dirty log; returns the highest GSN
    /// now durable. Shard WALs sync **before** the commit log, so a
    /// durable marker always implies durable participant rows. The
    /// fsyncs run outside the WAL locks — concurrent `log_commit`
    /// callers keep enqueuing into the next batch.
    ///
    /// Any fsync failure nacks the whole unsynced tail on *every* log
    /// (truncate back to the synced prefix, poison) — one shard's dead
    /// disk must not let a marker outlive its participant rows.
    pub fn group_sync(&self) -> Result<u64, StorageError> {
        // the completed watermark is read first: its marker (and, by the
        // commit protocol, its shard rows) were appended before this
        // load, so the targets captured below cover it
        let completed = self.completed_gsn.load(Ordering::SeqCst);
        let mut shard_targets = Vec::with_capacity(self.shards);
        for wal in &self.wals {
            let wal = wal.lock().unwrap();
            wal.check_poisoned()?;
            let (lsn, bytes) = wal.sync_target();
            shard_targets.push((lsn > wal.synced_lsn()).then_some((lsn, bytes)));
        }
        let commit_target = {
            let commit = self.commit.lock().unwrap();
            commit.check_poisoned()?;
            let (lsn, bytes) = commit.sync_target();
            (lsn > commit.synced_lsn()).then_some((lsn, bytes))
        };
        let fail_all = |err: StorageError| -> StorageError {
            for wal in &self.wals {
                wal.lock().unwrap().fail_sync();
            }
            self.commit.lock().unwrap().fail_sync();
            err
        };
        for (k, target) in shard_targets.iter().enumerate() {
            let Some((lsn, bytes)) = target else { continue };
            match self.vfs.sync(&shard_wal_file(k)) {
                Ok(()) => self.wals[k].lock().unwrap().mark_synced(*lsn, *bytes),
                Err(e) => return Err(fail_all(e)),
            }
        }
        if let Some((lsn, bytes)) = commit_target {
            match self.vfs.sync(COMMIT_LOG) {
                Ok(()) => self.commit.lock().unwrap().mark_synced(lsn, bytes),
                Err(e) => return Err(fail_all(e)),
            }
        }
        self.durable_gsn.fetch_max(completed, Ordering::SeqCst);
        Ok(self.durable_gsn.load(Ordering::SeqCst))
    }

    /// Does the configured `checkpoint_every` call for a checkpoint now?
    pub fn checkpoint_due(&self) -> bool {
        self.config
            .checkpoint_every
            .is_some_and(|n| self.records_since_checkpoint.load(Ordering::Relaxed) >= n.max(1))
    }

    /// Checkpoint: sync every log, write one snapshot per shard, install
    /// the metadata, then compact all logs. The caller must hold its
    /// commit lock (no transaction in flight) and every `shard_of` entry
    /// must name a real shard — the engine assigns unsharded tables'
    /// rows to their home shard before calling.
    ///
    /// Crash-ordering: snapshots first (each atomic), metadata second
    /// (atomic), then the **commit log is truncated before the shard
    /// WALs** — so logs still holding markers are always fully intact,
    /// and positioned application makes re-replaying them a no-op.
    pub fn checkpoint(&self, images: &[ShardTableImage]) -> Result<u64, StorageError> {
        let mut span = ferry_telemetry::span("storage.checkpoint", "storage");
        for img in images {
            if img.rows.len() != img.shard_of.len() {
                return Err(StorageError::Codec(format!(
                    "checkpoint image {}: {} rows, {} shard assignments",
                    img.def.name,
                    img.rows.len(),
                    img.shard_of.len()
                )));
            }
            if img.shard_of.iter().any(|&s| s as usize >= self.shards) {
                return Err(StorageError::Codec(format!(
                    "checkpoint image {}: shard assignment out of range",
                    img.def.name
                )));
            }
        }
        for wal in &self.wals {
            wal.lock().unwrap().sync()?;
        }
        self.commit.lock().unwrap().sync()?;
        let watermark = self.completed_gsn.load(Ordering::SeqCst);
        let mut bytes = 0u64;
        for k in 0..self.shards {
            let tables: Vec<SnapTable> = images
                .iter()
                .filter_map(|img| {
                    let (idx, rows): (Vec<u64>, Vec<Row>) = img
                        .shard_of
                        .iter()
                        .enumerate()
                        .filter(|(_, &s)| s as usize == k)
                        .map(|(i, _)| (i as u64, img.rows[i].clone()))
                        .unzip();
                    (!idx.is_empty()).then(|| (img.def.name.clone(), idx, rows))
                })
                .collect();
            bytes += write_shard_snap(self.vfs.as_ref(), &shard_snap_file(k), watermark, &tables)?;
        }
        write_meta(
            self.vfs.as_ref(),
            &Meta {
                shards: self.shards,
                watermark,
                tables: images
                    .iter()
                    .map(|img| (img.def.clone(), img.rows.len() as u64))
                    .collect(),
            },
        )?;
        self.commit.lock().unwrap().truncate_to_header()?;
        for wal in &self.wals {
            wal.lock().unwrap().truncate_to_header()?;
        }
        self.records_since_checkpoint.store(0, Ordering::Relaxed);
        self.durable_gsn.fetch_max(watermark, Ordering::SeqCst);
        self.metrics.snapshots.inc();
        span.attr("gsn", watermark)
            .attr("bytes", bytes)
            .attr("shards", self.shards);
        Ok(watermark)
    }

    /// Force-fsync every log regardless of policy (shutdown hook).
    pub fn sync(&self) -> Result<(), StorageError> {
        self.group_sync().map(|_| ())
    }

    /// Highest GSN guaranteed durable under the configured policy.
    pub fn durable_gsn(&self) -> u64 {
        self.durable_gsn.load(Ordering::SeqCst)
    }

    /// The GSN the next commit will be assigned.
    pub fn next_gsn(&self) -> u64 {
        self.next_gsn.load(Ordering::SeqCst) + 1
    }

    /// Has any log refused further I/O after an unrecoverable
    /// write/fsync failure? Reopening the database is the only cure.
    pub fn poisoned(&self) -> bool {
        self.wals.iter().any(|w| w.lock().unwrap().poisoned())
            || self.commit.lock().unwrap().poisoned()
    }

    pub fn config(&self) -> DurabilityConfig {
        self.config
    }

    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Total bytes across all shard WALs + the commit log.
    pub fn wal_size(&self) -> Result<u64, StorageError> {
        let mut total = self.vfs.size(COMMIT_LOG)?.unwrap_or(0);
        for k in 0..self.shards {
            total += self.vfs.size(&shard_wal_file(k))?.unwrap_or(0);
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::{Fault, FaultFs};
    use crate::FsyncPolicy;
    use ferry_algebra::{Ty, Value};

    fn open(vfs: &Arc<FaultFs>, shards: usize) -> ShardRecovered {
        let registry = Registry::default();
        ShardedStorage::open(
            vfs.clone() as Arc<dyn Vfs>,
            shards,
            DurabilityConfig::default(),
            &registry,
        )
        .unwrap()
    }

    fn create_t(shard_key: &str) -> WalRecord {
        WalRecord::CreateTableSharded {
            name: "t".into(),
            schema: Schema::of(&[("k", Ty::Int)]),
            keys: vec!["k".into()],
            shard_key: shard_key.into(),
        }
    }

    fn rows_rec(positions: &[u64]) -> WalRecord {
        WalRecord::ShardRows {
            gsn: 0,
            table: "t".into(),
            idx: positions.to_vec(),
            rows: positions
                .iter()
                .map(|p| vec![Value::Int(*p as i64)])
                .collect(),
        }
    }

    #[test]
    fn fresh_open_log_reopen_roundtrip() {
        let vfs = Arc::new(FaultFs::new());
        let r = open(&vfs, 4);
        assert!(r.tables.is_empty());
        // gsn 1: create + rows 0,2 on shard 1 and row 1 on shard 3
        let gsn = r
            .storage
            .log_commit(
                vec![create_t("k")],
                vec![(1, vec![rows_rec(&[0, 2])]), (3, vec![rows_rec(&[1])])],
            )
            .unwrap();
        assert_eq!(gsn, 1);
        assert_eq!(r.storage.group_sync().unwrap(), 1);
        assert_eq!(r.storage.durable_gsn(), 1);

        vfs.crash();
        let r2 = open(&vfs, 4);
        assert_eq!(r2.tables.len(), 1);
        let t = &r2.tables[0];
        assert_eq!(t.def.shard_key.as_deref(), Some("k"));
        assert_eq!(
            t.rows,
            vec![
                vec![Value::Int(0)],
                vec![Value::Int(1)],
                vec![Value::Int(2)]
            ],
            "rows reassemble in global insert order"
        );
        assert_eq!(t.shard_of, vec![1, 3, 1]);
        assert_eq!(r2.report.cut_gsn, 1);
        assert_eq!(r2.storage.next_gsn(), 2);
    }

    #[test]
    fn shard_count_mismatch_refuses_to_open() {
        let vfs = Arc::new(FaultFs::new());
        open(&vfs, 4);
        let registry = Registry::default();
        let err = ShardedStorage::open(
            vfs.clone() as Arc<dyn Vfs>,
            2,
            DurabilityConfig::default(),
            &registry,
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
    }

    #[test]
    fn unsynced_shard_rows_drop_the_commit_at_the_cut() {
        // Os policy: the commit-log marker survives a crash but one
        // shard's rows do not — the whole commit must fall at the cut,
        // and so must every later commit
        let vfs = Arc::new(FaultFs::new());
        let registry = Registry::default();
        let r = ShardedStorage::open(
            vfs.clone() as Arc<dyn Vfs>,
            4,
            DurabilityConfig::with_fsync(FsyncPolicy::Os),
            &registry,
        )
        .unwrap();
        r.storage
            .log_commit(vec![create_t("k")], vec![(0, vec![rows_rec(&[0])])])
            .unwrap();
        r.storage.sync().unwrap(); // gsn 1 fully durable
        r.storage
            .log_commit(Vec::new(), vec![(2, vec![rows_rec(&[1])])])
            .unwrap();
        r.storage
            .log_commit(Vec::new(), vec![(0, vec![rows_rec(&[2])])])
            .unwrap();
        // make the commit log + shard 0 durable, but not shard 2: the
        // gsn-2 marker now outlives its shard-2 rows
        vfs.sync(COMMIT_LOG).unwrap();
        vfs.sync(&shard_wal_file(0)).unwrap();
        vfs.crash();

        let r2 = open(&vfs, 4);
        assert_eq!(r2.report.cut_gsn, 1, "gsn 2 incomplete, 3 dropped with it");
        assert_eq!(r2.report.markers_dropped, 2);
        assert_eq!(r2.tables[0].rows, vec![vec![Value::Int(0)]]);
        // dropped frames are truncated out of every log, so a re-open
        // sees a clean prefix
        let r3 = open(&vfs, 4);
        assert_eq!(r3.report.cut_gsn, 1);
        assert_eq!(r3.report.markers_dropped, 0);
        assert_eq!(r3.storage.next_gsn(), 2);
    }

    #[test]
    fn checkpoint_compacts_and_windows_are_idempotent() {
        let vfs = Arc::new(FaultFs::new());
        let r = open(&vfs, 2);
        r.storage
            .log_commit(
                vec![create_t("k")],
                vec![(0, vec![rows_rec(&[0])]), (1, vec![rows_rec(&[1])])],
            )
            .unwrap();
        r.storage.group_sync().unwrap();
        let images = open(&vfs, 2).tables;
        let before = vfs.written_len(COMMIT_LOG) + vfs.written_len(&shard_wal_file(0));
        assert_eq!(r.storage.checkpoint(&images).unwrap(), 1);
        let after = vfs.written_len(COMMIT_LOG) + vfs.written_len(&shard_wal_file(0));
        assert!(after < before, "logs compacted");
        // post-checkpoint commits replay on top of the snapshots
        r.storage
            .log_commit(Vec::new(), vec![(1, vec![rows_rec(&[2])])])
            .unwrap();
        r.storage.group_sync().unwrap();
        vfs.crash();
        let r2 = open(&vfs, 2);
        assert_eq!(r2.report.watermark_gsn, 1);
        assert_eq!(r2.report.cut_gsn, 2);
        assert_eq!(r2.tables[0].rows.len(), 3);
        assert_eq!(r2.tables[0].shard_of, vec![0, 1, 1]);
    }

    #[test]
    fn failed_shard_fsync_nacks_and_poisons_every_log() {
        let vfs = Arc::new(FaultFs::new());
        let r = open(&vfs, 2);
        r.storage
            .log_commit(vec![create_t("k")], vec![(0, vec![rows_rec(&[0])])])
            .unwrap();
        r.storage.group_sync().unwrap();
        let acked = vfs.written_len(&shard_wal_file(0));
        r.storage
            .log_commit(Vec::new(), vec![(0, vec![rows_rec(&[1])])])
            .unwrap();
        vfs.inject(Fault::FailFsync {
            path: shard_wal_file(0),
        });
        assert!(matches!(r.storage.group_sync(), Err(StorageError::Io(_))));
        assert!(r.storage.poisoned());
        assert_eq!(vfs.written_len(&shard_wal_file(0)), acked);
        assert!(matches!(
            r.storage
                .log_commit(Vec::new(), vec![(1, vec![rows_rec(&[9])])]),
            Err(StorageError::Io(_))
        ));
        vfs.crash();
        let r2 = open(&vfs, 2);
        assert_eq!(r2.tables[0].rows, vec![vec![Value::Int(0)]]);
    }

    #[test]
    fn install_table_rides_the_commit_log() {
        let vfs = Arc::new(FaultFs::new());
        let r = open(&vfs, 2);
        r.storage
            .log_commit(
                vec![WalRecord::InstallTable {
                    name: "u".into(),
                    schema: Schema::of(&[("x", Ty::Int)]),
                    keys: vec![],
                    rows: vec![vec![Value::Int(5)], vec![Value::Int(6)]],
                }],
                Vec::new(),
            )
            .unwrap();
        r.storage.group_sync().unwrap();
        vfs.crash();
        let r2 = open(&vfs, 2);
        let u = &r2.tables[0];
        assert_eq!(u.def.shard_key, None);
        assert_eq!(u.rows, vec![vec![Value::Int(5)], vec![Value::Int(6)]]);
        assert_eq!(u.shard_of, vec![NO_SHARD, NO_SHARD]);
    }

    #[test]
    fn shard_metrics_land_in_registry() {
        let vfs: Arc<dyn Vfs> = Arc::new(FaultFs::new());
        let registry = Registry::default();
        let r = ShardedStorage::open(vfs, 2, DurabilityConfig::default(), &registry).unwrap();
        r.storage
            .log_commit(vec![create_t("k")], vec![(0, vec![rows_rec(&[0])])])
            .unwrap();
        r.storage.group_sync().unwrap();
        let text = registry.render();
        assert!(text.contains("storage.shard.wal_bytes"), "{text}");
        assert!(text.contains("storage.wal_records"), "{text}");
    }
}

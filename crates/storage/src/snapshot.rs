//! Snapshots: a full materialisation of the catalog at one LSN, enabling
//! WAL compaction.
//!
//! File layout: the 8-byte magic [`SNAP_MAGIC`], a meta
//! [frame](crate::frame) `[snapshot_lsn: u64][table_count: u32]`, then
//! one frame per table: `[name][schema][keys][rows]`.
//!
//! Snapshots are installed with [`Vfs::replace`] (sidecar + fsync +
//! rename), so a crash during checkpointing leaves either the previous
//! snapshot or the new one — never a torn file. Any damage found when
//! *reading* a snapshot is therefore unrepairable media corruption and
//! fails recovery with a typed error; the torn-tail tolerance of the WAL
//! does not apply here.

use crate::codec::{Dec, Enc};
use crate::frame::{scan, write_frame, Tail};
use crate::fs::Vfs;
use crate::{StorageError, TableImage};

/// Magic + format version of the snapshot file ("FSNP" + version 0001).
pub const SNAP_MAGIC: &[u8; 8] = b"FSNP0001";

/// Default snapshot file name inside the storage directory.
pub const SNAP_FILE: &str = "snapshot";

/// Serialize `tables` as a snapshot at `lsn` and atomically install it.
/// Returns the encoded size in bytes.
pub fn write_snapshot(vfs: &dyn Vfs, lsn: u64, tables: &[TableImage]) -> Result<u64, StorageError> {
    write_snapshot_at(vfs, SNAP_FILE, lsn, tables)
}

/// [`write_snapshot`] to an explicit VFS path (sharded storage keeps one
/// snapshot file per shard).
pub fn write_snapshot_at(
    vfs: &dyn Vfs,
    file: &str,
    lsn: u64,
    tables: &[TableImage],
) -> Result<u64, StorageError> {
    let mut buf = Vec::new();
    buf.extend_from_slice(SNAP_MAGIC);
    let mut meta = Enc::new();
    meta.u64(lsn);
    meta.u32(tables.len() as u32);
    write_frame(&mut buf, &meta.into_bytes())?;
    for t in tables {
        let mut e = Enc::new();
        e.str(&t.name);
        e.schema(&t.schema);
        e.strings(&t.keys);
        e.rows(&t.rows);
        // a table over MAX_FRAME_LEN refuses to snapshot (typed error)
        // rather than writing a frame replay could never read back
        write_frame(&mut buf, &e.into_bytes())?;
    }
    let bytes = buf.len() as u64;
    vfs.replace(file, &buf)?;
    Ok(bytes)
}

/// A decoded snapshot: the LSN it covers and the table images.
#[derive(Debug)]
pub struct Snapshot {
    pub lsn: u64,
    pub tables: Vec<TableImage>,
    pub bytes: u64,
}

/// Read the snapshot, if one exists. Every defect is
/// [`StorageError::Corrupt`] (see the module docs for why there is no
/// torn-tail tolerance here).
pub fn read_snapshot(vfs: &dyn Vfs) -> Result<Option<Snapshot>, StorageError> {
    read_snapshot_at(vfs, SNAP_FILE)
}

/// [`read_snapshot`] from an explicit VFS path.
pub fn read_snapshot_at(vfs: &dyn Vfs, file: &str) -> Result<Option<Snapshot>, StorageError> {
    let bytes = match vfs.read(file)? {
        None => return Ok(None),
        Some(b) => b,
    };
    if bytes.len() < SNAP_MAGIC.len() || &bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC {
        return Err(StorageError::Corrupt("bad snapshot magic".into()));
    }
    let out = scan(&bytes[SNAP_MAGIC.len()..])?;
    if out.tail != Tail::Clean {
        return Err(StorageError::Corrupt(
            "snapshot has a damaged frame (snapshots are installed atomically; \
             a bad frame is media corruption)"
                .into(),
        ));
    }
    let mut frames = out.frames.into_iter();
    let meta = frames
        .next()
        .ok_or_else(|| StorageError::Corrupt("snapshot missing meta frame".into()))?;
    let mut d = Dec::new(meta);
    let lsn = d.u64()?;
    let count = d.u32()? as usize;
    d.finish()?;
    let mut tables = Vec::with_capacity(count);
    for payload in frames {
        let mut d = Dec::new(payload);
        let t = TableImage {
            name: d.str()?.to_string(),
            schema: d.schema()?,
            keys: d.strings()?,
            rows: d.rows()?,
        };
        d.finish()?;
        tables.push(t);
    }
    if tables.len() != count {
        return Err(StorageError::Corrupt(format!(
            "snapshot declares {count} tables but holds {}",
            tables.len()
        )));
    }
    Ok(Some(Snapshot {
        lsn,
        tables,
        bytes: bytes.len() as u64,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::FaultFs;
    use ferry_algebra::{Schema, Ty, Value};

    fn images() -> Vec<TableImage> {
        vec![
            TableImage {
                name: "t".into(),
                schema: Schema::of(&[("k", Ty::Int), ("v", Ty::Str)]),
                keys: vec!["k".into()],
                rows: vec![
                    vec![Value::Int(1), Value::str("one")],
                    vec![Value::Int(2), Value::str("two")],
                ],
            },
            TableImage {
                name: "empty".into(),
                schema: Schema::of(&[("x", Ty::Nat)]),
                keys: vec![],
                rows: vec![],
            },
        ]
    }

    #[test]
    fn snapshot_roundtrip() {
        let vfs = FaultFs::new();
        assert!(read_snapshot(&vfs).unwrap().is_none());
        let bytes = write_snapshot(&vfs, 42, &images()).unwrap();
        let snap = read_snapshot(&vfs).unwrap().unwrap();
        assert_eq!(snap.lsn, 42);
        assert_eq!(snap.bytes, bytes);
        assert_eq!(snap.tables, images());
    }

    #[test]
    fn identical_states_encode_byte_identically() {
        let a = FaultFs::new();
        let b = FaultFs::new();
        write_snapshot(&a, 7, &images()).unwrap();
        write_snapshot(&b, 7, &images()).unwrap();
        assert_eq!(
            a.read(SNAP_FILE).unwrap().unwrap(),
            b.read(SNAP_FILE).unwrap().unwrap()
        );
    }

    #[test]
    fn any_bit_flip_is_detected() {
        let vfs = FaultFs::new();
        write_snapshot(&vfs, 1, &images()).unwrap();
        let clean = vfs.read(SNAP_FILE).unwrap().unwrap();
        for offset in [0usize, 4, 8, 12, 20, clean.len() - 1] {
            let mut bad = clean.clone();
            bad[offset] ^= 0x40;
            let dst = FaultFs::new();
            dst.replace(SNAP_FILE, &bad).unwrap();
            assert!(
                read_snapshot(&dst).is_err(),
                "flip at byte {offset} went undetected"
            );
        }
    }

    #[test]
    fn table_count_mismatch_is_corrupt() {
        let vfs = FaultFs::new();
        // meta frame claims 3 tables, only 2 follow
        let mut buf = Vec::new();
        buf.extend_from_slice(SNAP_MAGIC);
        let mut meta = Enc::new();
        meta.u64(1);
        meta.u32(3);
        write_frame(&mut buf, &meta.into_bytes()).unwrap();
        for t in images() {
            let mut e = Enc::new();
            e.str(&t.name);
            e.schema(&t.schema);
            e.strings(&t.keys);
            e.rows(&t.rows);
            write_frame(&mut buf, &e.into_bytes()).unwrap();
        }
        vfs.replace(SNAP_FILE, &buf).unwrap();
        assert!(matches!(read_snapshot(&vfs), Err(StorageError::Corrupt(_))));
    }
}

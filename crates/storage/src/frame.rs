//! Checksummed, length-prefixed frames — the unit of torn-write detection.
//!
//! Both durable files (WAL and snapshot) are a fixed 8-byte header
//! followed by a sequence of frames:
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [payload: len bytes]
//! ```
//!
//! The CRC (IEEE 802.3, implemented in-house — no crates.io access)
//! covers the payload *and* the length prefix, so a bit flip in `len` is
//! detected as a checksum failure rather than sending the scanner to a
//! garbage offset.
//!
//! [`scan`] walks a byte buffer and classifies how it ends:
//!
//! * **clean** — every frame checks out to the last byte;
//! * **torn** — the final frame is incomplete or fails its CRC and
//!   nothing valid follows: the signature of a crash mid-append. The
//!   caller truncates the file back to the last good frame;
//! * **corrupt** — a frame fails its CRC but a *valid* frame follows it.
//!   That is not a torn tail, it is data loss in the middle of the log;
//!   recovery must fail with a typed error rather than silently drop
//!   committed suffixes.

use crate::StorageError;

/// Bytes of the `[len][crc]` prefix of every frame.
pub const FRAME_HEADER: usize = 8;

/// Hard ceiling on one frame's payload (64 MiB). A length beyond this is
/// treated as corruption — it bounds allocation on hostile/garbled input.
/// [`write_frame`] enforces the same ceiling, so a record too large to
/// replay is rejected (and never acked) instead of written.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// How far past a damaged frame [`scan`] probes for a valid successor
/// when classifying torn tail vs mid-log corruption. Damage from a
/// single torn write or bit flip is confined to one frame, so a genuine
/// successor frame must start within one maximal frame of the damage.
const PROBE_WINDOW: usize = FRAME_HEADER + MAX_FRAME_LEN as usize;

/// Ceiling on the payload bytes CRC'd while probing. Each candidate
/// offset otherwise costs a CRC over its claimed length — quadratic in
/// the tail on adversarial garbage. Candidates that would overdraw the
/// budget are skipped (best effort: realistic single-frame damage is
/// classified exactly; a crafted tail degrades to "torn").
const PROBE_CRC_BUDGET: u64 = 4 * MAX_FRAME_LEN as u64;

/// CRC-32 (IEEE, reflected, polynomial 0xEDB88320), table-driven. The
/// table is built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC-32 of `bytes`, continuing from `seed` (pass 0 to start).
pub fn crc32(seed: u32, bytes: &[u8]) -> u32 {
    let mut crc = !seed;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Append one frame wrapping `payload` onto `out`. A payload over
/// [`MAX_FRAME_LEN`] is refused with nothing written: the scanner rejects
/// such lengths on replay, so writing one would produce an acked record
/// that recovery can never read back.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) -> Result<(), StorageError> {
    if payload.len() > MAX_FRAME_LEN as usize {
        return Err(StorageError::Codec(format!(
            "frame payload of {} bytes exceeds MAX_FRAME_LEN ({MAX_FRAME_LEN}); \
             the record would be unreadable on replay",
            payload.len()
        )));
    }
    let len = payload.len() as u32;
    let crc = crc32(crc32(0, &len.to_le_bytes()), payload);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

/// How a frame sequence ends (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tail {
    /// All bytes accounted for by valid frames.
    Clean,
    /// Invalid/incomplete final frame starting at `offset` (relative to
    /// the start of the scanned region); bytes before it are good.
    Torn { offset: u64 },
}

/// The payloads of a frame sequence plus its tail classification.
#[derive(Debug)]
pub struct ScanOutcome<'a> {
    pub frames: Vec<&'a [u8]>,
    pub tail: Tail,
    /// Bytes covered by valid frames (torn tails start here).
    pub good_bytes: u64,
}

/// Does a frame with a valid checksum start at `buf[at..]`?
fn valid_frame_at(buf: &[u8], at: usize) -> bool {
    if buf.len() - at < FRAME_HEADER {
        return false;
    }
    let len = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap());
    if len > MAX_FRAME_LEN {
        return false;
    }
    let len = len as usize;
    if buf.len() - at - FRAME_HEADER < len {
        return false;
    }
    let stored = u32::from_le_bytes(buf[at + 4..at + 8].try_into().unwrap());
    let payload = &buf[at + FRAME_HEADER..at + FRAME_HEADER + len];
    crc32(crc32(0, &(len as u32).to_le_bytes()), payload) == stored
}

/// Walk `buf` frame by frame. Returns the valid payload sequence and the
/// tail classification; mid-log corruption (an invalid frame with a valid
/// frame after it) is a hard [`StorageError::Corrupt`].
pub fn scan(buf: &[u8]) -> Result<ScanOutcome<'_>, StorageError> {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        if valid_frame_at(buf, pos) {
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            frames.push(&buf[pos + FRAME_HEADER..pos + FRAME_HEADER + len]);
            pos += FRAME_HEADER + len;
            continue;
        }
        // The frame at `pos` is bad. Torn tail or mid-log corruption?
        // A torn write damages only the *last* frame, so probe later
        // offsets: any valid frame beyond `pos` means bytes we know were
        // once committed are unreadable — that is corruption. The probe
        // is bounded (start window + CRC budget, see the constants) so
        // recovery stays linear in the tail instead of quadratic.
        let max_start = buf.len().saturating_sub(FRAME_HEADER);
        let window_end = max_start.min(pos.saturating_add(PROBE_WINDOW));
        let mut budget = PROBE_CRC_BUDGET;
        for probe in pos + 1..=window_end {
            let len = u32::from_le_bytes(buf[probe..probe + 4].try_into().unwrap());
            if len > MAX_FRAME_LEN
                || buf.len() - probe - FRAME_HEADER < len as usize
                || u64::from(len) > budget
            {
                continue;
            }
            budget -= u64::from(len);
            if valid_frame_at(buf, probe) {
                return Err(StorageError::Corrupt(format!(
                    "invalid frame at offset {pos} followed by a valid frame at {probe}: \
                     mid-log corruption, not a torn tail"
                )));
            }
        }
        return Ok(ScanOutcome {
            frames,
            tail: Tail::Torn { offset: pos as u64 },
            good_bytes: pos as u64,
        });
    }
    Ok(ScanOutcome {
        frames,
        tail: Tail::Clean,
        good_bytes: pos as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_known_vector() {
        // the canonical IEEE CRC-32 check value
        assert_eq!(crc32(0, b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(0, b""), 0);
        // incremental == one-shot
        assert_eq!(crc32(crc32(0, b"1234"), b"56789"), crc32(0, b"123456789"));
    }

    fn frames(payloads: &[&[u8]]) -> Vec<u8> {
        let mut buf = Vec::new();
        for p in payloads {
            write_frame(&mut buf, p).unwrap();
        }
        buf
    }

    #[test]
    fn oversize_payload_is_refused_with_nothing_written() {
        let mut buf = Vec::new();
        let payload = vec![0u8; MAX_FRAME_LEN as usize + 1];
        let err = write_frame(&mut buf, &payload).unwrap_err();
        assert!(matches!(err, StorageError::Codec(_)), "{err}");
        assert!(
            buf.is_empty(),
            "a refused frame must not leave bytes behind"
        );
    }

    #[test]
    fn scan_roundtrip() {
        let buf = frames(&[b"alpha", b"", b"gamma-gamma"]);
        let out = scan(&buf).unwrap();
        assert_eq!(out.frames, vec![&b"alpha"[..], b"", b"gamma-gamma"]);
        assert_eq!(out.tail, Tail::Clean);
        assert_eq!(out.good_bytes, buf.len() as u64);
    }

    #[test]
    fn every_truncation_point_is_a_torn_tail() {
        let buf = frames(&[b"first", b"second"]);
        let first_len = FRAME_HEADER + 5;
        for cut in 0..buf.len() {
            let out = scan(&buf[..cut]).unwrap();
            let expect_frames = usize::from(cut >= first_len) + usize::from(cut == buf.len());
            assert_eq!(out.frames.len(), expect_frames, "cut at {cut}");
            if cut == 0 || cut == first_len {
                // clean cut exactly at a frame boundary
                assert_eq!(out.tail, Tail::Clean);
            } else if cut < buf.len() {
                assert!(matches!(out.tail, Tail::Torn { .. }), "cut at {cut}");
                let good = if cut < first_len { 0 } else { first_len as u64 };
                assert_eq!(out.good_bytes, good);
            }
        }
    }

    #[test]
    fn bit_flip_in_last_frame_is_torn() {
        let mut buf = frames(&[b"first", b"second"]);
        let n = buf.len();
        buf[n - 2] ^= 0x10; // inside the last payload
        let out = scan(&buf).unwrap();
        assert_eq!(out.frames.len(), 1);
        assert_eq!(
            out.tail,
            Tail::Torn {
                offset: (FRAME_HEADER + 5) as u64
            }
        );
    }

    #[test]
    fn bit_flip_mid_log_is_corruption() {
        let mut buf = frames(&[b"first", b"second"]);
        buf[FRAME_HEADER + 1] ^= 0x01; // inside the FIRST payload
        match scan(&buf) {
            Err(StorageError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn length_flip_is_detected() {
        let mut buf = frames(&[b"only"]);
        buf[0] ^= 0x04; // corrupt the length prefix itself
        let out = scan(&buf).unwrap();
        assert_eq!(out.frames.len(), 0);
        assert_eq!(out.tail, Tail::Torn { offset: 0 });
    }

    #[test]
    fn insane_length_is_bounded() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0; 12]);
        let out = scan(&buf).unwrap();
        assert_eq!(out.frames.len(), 0);
        assert!(matches!(out.tail, Tail::Torn { offset: 0 }));
    }
}

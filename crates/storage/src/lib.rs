//! # `ferry-storage` — the durability substrate
//!
//! Ferry treats the database as the coprocessor that holds authoritative
//! data; this crate is what makes that data survive the process. It sits
//! *below* `ferry-engine` (which calls in from its catalog mutation API)
//! and knows nothing about plans or queries — only about the algebra's
//! data model (`Value`/`Row`/`Schema`) and bytes on disk:
//!
//! * [`codec`] — versioned binary encoding of the data model;
//! * [`frame`] — length-prefixed, CRC-32-checksummed frames, the unit of
//!   torn-write detection;
//! * [`wal`] — the append-only log of committed catalog mutations, with
//!   monotone LSNs and a configurable [`FsyncPolicy`];
//! * [`snapshot`] — full-catalog snapshots installed atomically,
//!   enabling WAL compaction;
//! * [`fs`] — the VFS the above are written against: [`fs::StdFs`] for
//!   real directories and [`fs::FaultFs`], an in-memory file system with
//!   crash semantics and scriptable fault injection (torn writes, bit
//!   flips, short/failed fsyncs) that the recovery test suite drives;
//! * [`Storage`] — the orchestrator: `open` = load snapshot ⊕ replay WAL
//!   tail (repairing a torn final frame by truncation), `log` = append
//!   before ack, `checkpoint` = snapshot + truncate the log.
//!
//! Recovery correctness is *proven by fault injection rather than
//! asserted*: for arbitrary mutation sequences crashed at arbitrary
//! points, `open` either restores a prefix-consistent state or fails
//! with a typed [`StorageError`] — never a panic, never a divergent
//! table (see `tests/faults.rs`).

pub mod codec;
pub mod frame;
pub mod fs;
pub mod shard;
pub mod snapshot;
pub mod wal;

pub use fs::{Fault, FaultFs, StdFs, Vfs};
pub use shard::{
    shard_wal_file, ShardRecovered, ShardRecoveryReport, ShardTableDef, ShardTableImage,
    ShardedStorage, COMMIT_LOG, MAX_SHARDS, NO_SHARD,
};
pub use wal::{WalRecord, WAL_FILE};

use crate::frame::Tail;
use crate::wal::{replay_wal, Wal, WAL_MAGIC};
use ferry_algebra::{Row, Schema};
use ferry_telemetry::{Counter, Registry};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Anything that can go wrong persisting or recovering the catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An operating-system I/O failure (message carries the errno text).
    Io(String),
    /// A record that passed its checksum failed to decode — writer and
    /// reader disagree about the format.
    Codec(String),
    /// The durable state is internally inconsistent: damaged frames that
    /// are not a torn tail, bad magic, non-monotone LSNs, replay against
    /// a missing table. Recovery refuses to guess.
    Corrupt(String),
    /// A fault injected by [`fs::FaultFs`] — only ever seen by tests,
    /// where it marks the simulated crash point.
    Injected(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(m) => write!(f, "storage I/O error: {m}"),
            StorageError::Codec(m) => write!(f, "storage codec error: {m}"),
            StorageError::Corrupt(m) => write!(f, "storage corruption: {m}"),
            StorageError::Injected(m) => write!(f, "injected fault: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// When WAL appends become durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// fsync after every record: an acked mutation survives any crash.
    #[default]
    Always,
    /// fsync once per `n` records: bounded data loss, amortised cost.
    EveryN(u32),
    /// Never fsync; durability rides on the OS page cache. Fastest, and
    /// what a crash loses is whatever the OS had not written back — but
    /// always a *suffix*: recovery still yields a consistent prefix.
    Os,
}

/// Durability knobs passed to `Database::open`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurabilityConfig {
    pub fsync: FsyncPolicy,
    /// Checkpoint (snapshot + compact the WAL) automatically once the log
    /// holds this many records. `None` = only explicit checkpoints.
    pub checkpoint_every: Option<u64>,
}

impl DurabilityConfig {
    pub fn with_fsync(fsync: FsyncPolicy) -> DurabilityConfig {
        DurabilityConfig {
            fsync,
            ..DurabilityConfig::default()
        }
    }
}

/// A storage-level view of one base table — the unit snapshots and
/// recovery trade in. The engine converts to/from its richer catalog
/// entry (`BaseTable`).
#[derive(Debug, Clone, PartialEq)]
pub struct TableImage {
    pub name: String,
    pub schema: Schema,
    pub keys: Vec<String>,
    pub rows: Vec<Row>,
}

/// What `Storage::open` found and did — the recovery timeline rendered
/// into an `explain_analyze`-style report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// LSN covered by the loaded snapshot (0 = no snapshot).
    pub snapshot_lsn: u64,
    pub snapshot_tables: usize,
    pub snapshot_bytes: u64,
    /// Frames decoded from the WAL, including ones the snapshot already
    /// covered.
    pub wal_frames: usize,
    /// Records actually applied (LSN beyond the snapshot).
    pub wal_records_applied: usize,
    pub wal_bytes: u64,
    /// Offset the WAL was truncated to after a torn tail (`None` = log
    /// was clean).
    pub torn_tail_repaired_at: Option<u64>,
    /// Highest LSN in the recovered state.
    pub last_lsn: u64,
    pub elapsed_us: u64,
}

impl RecoveryReport {
    /// Render the recovery timeline, one phase per line (the durable
    /// sibling of `explain_analyze`'s span timeline).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "-- recovery timeline ({}us) --", self.elapsed_us);
        if self.snapshot_lsn > 0 || self.snapshot_tables > 0 {
            let _ = writeln!(
                out,
                "load snapshot      lsn {:>6}  {} tables  {} bytes",
                self.snapshot_lsn, self.snapshot_tables, self.snapshot_bytes
            );
        } else {
            let _ = writeln!(out, "load snapshot      (none)");
        }
        let _ = writeln!(
            out,
            "replay wal tail    {} frames  {} applied  {} bytes",
            self.wal_frames, self.wal_records_applied, self.wal_bytes
        );
        match self.torn_tail_repaired_at {
            Some(at) => {
                let _ = writeln!(out, "repair torn tail   truncated to byte {at}");
            }
            None => {
                let _ = writeln!(out, "repair torn tail   (log clean)");
            }
        }
        let _ = writeln!(out, "recovered state    last lsn {}", self.last_lsn);
        out
    }
}

/// The recovered catalog plus the attached, ready-to-append [`Storage`].
#[derive(Debug)]
pub struct Recovered {
    pub storage: Storage,
    pub tables: Vec<TableImage>,
    pub report: RecoveryReport,
}

/// Handles into the telemetry registry the storage layer maintains.
#[derive(Debug)]
struct StorageMetrics {
    wal_bytes: Arc<Counter>,
    fsyncs: Arc<Counter>,
    wal_records: Arc<Counter>,
    snapshots: Arc<Counter>,
    recoveries: Arc<Counter>,
}

impl StorageMetrics {
    fn new(registry: &Registry) -> StorageMetrics {
        // storage metric names are code-controlled, so a kind conflict is
        // impossible; degrade to detached handles rather than panic if a
        // foreign registrant ever claims one
        let counter = |name: &str| registry.counter(name).unwrap_or_default();
        StorageMetrics {
            wal_bytes: counter("storage.wal_bytes"),
            fsyncs: counter("storage.fsyncs"),
            wal_records: counter("storage.wal_records"),
            snapshots: counter("storage.snapshots"),
            recoveries: counter("storage.recoveries"),
        }
    }
}

/// The durability orchestrator one `Database` owns: WAL appender,
/// checkpointer, and the recovery entry point.
///
/// All methods take `&self`: the WAL sits behind a mutex so concurrent
/// committers can append, and [`Storage::group_sync`] deliberately
/// releases that mutex around the fsync itself — the window in which
/// other appenders enqueue is what group commit batches over.
#[derive(Debug)]
pub struct Storage {
    vfs: Arc<dyn Vfs>,
    wal: Mutex<Wal>,
    config: DurabilityConfig,
    /// Operations in the WAL since the last checkpoint (drives
    /// `checkpoint_every`).
    wal_records_since_checkpoint: AtomicU64,
    metrics: StorageMetrics,
}

impl Storage {
    /// Open (or create) the durable state behind `vfs`: load the
    /// snapshot if one exists, replay the WAL tail beyond it, repair a
    /// torn final frame by truncating, and return the recovered tables
    /// together with a [`Storage`] ready to append. Telemetry lands in
    /// `registry` (`storage.*` counters) and a `storage.recover` span.
    pub fn open(
        vfs: Arc<dyn Vfs>,
        config: DurabilityConfig,
        registry: &Registry,
    ) -> Result<Recovered, StorageError> {
        let start = Instant::now();
        let mut span = ferry_telemetry::span("storage.recover", "storage");
        let metrics = StorageMetrics::new(registry);
        let mut report = RecoveryReport::default();

        // 1. snapshot
        let mut tables: BTreeMap<String, TableImage> = BTreeMap::new();
        if let Some(snap) = snapshot::read_snapshot(vfs.as_ref())? {
            report.snapshot_lsn = snap.lsn;
            report.snapshot_tables = snap.tables.len();
            report.snapshot_bytes = snap.bytes;
            for t in snap.tables {
                tables.insert(t.name.clone(), t);
            }
        }

        // 2. WAL replay (tail beyond the snapshot)
        let wal_bytes = vfs.read(WAL_FILE)?;
        let replay = replay_wal(wal_bytes.as_deref())?;
        report.wal_frames = replay.records.len();
        report.wal_bytes = replay.good_bytes;
        let mut last_lsn = report.snapshot_lsn;
        let mut applied_records = 0u64;
        for (lsn, rec) in &replay.records {
            if *lsn <= report.snapshot_lsn {
                // pre-checkpoint records surviving a crash between
                // snapshot install and log truncation
                continue;
            }
            apply(&mut tables, rec)?;
            last_lsn = *lsn;
            applied_records += rec.op_count();
            report.wal_records_applied += rec.op_count() as usize;
        }

        // 3. torn-tail repair + (re)create the log file
        match replay.tail {
            Tail::Torn { .. } if wal_bytes.is_some() => {
                vfs.truncate(WAL_FILE, replay.good_bytes)?;
                if replay.good_bytes == 0 {
                    // even the magic was torn off: start the file over
                    vfs.append(WAL_FILE, WAL_MAGIC)?;
                }
                vfs.sync(WAL_FILE)?;
                report.torn_tail_repaired_at = Some(replay.good_bytes);
            }
            _ if wal_bytes.is_none() => {
                vfs.append(WAL_FILE, WAL_MAGIC)?;
                vfs.sync(WAL_FILE)?;
            }
            _ => {}
        }

        report.last_lsn = last_lsn;
        report.elapsed_us = start.elapsed().as_micros() as u64;
        metrics.recoveries.inc();
        span.attr("tables", tables.len())
            .attr("applied", applied_records)
            .attr("last_lsn", last_lsn);

        // after step 3 the file is exactly the valid region (recreated as
        // a bare header when even the magic was torn) and fully synced
        let wal_file_len = replay.good_bytes.max(WAL_MAGIC.len() as u64);
        let wal = Wal::resume(
            vfs.clone(),
            WAL_FILE,
            config.fsync,
            last_lsn + 1,
            wal_file_len,
            metrics.wal_bytes.clone(),
            metrics.fsyncs.clone(),
        );
        Ok(Recovered {
            storage: Storage {
                vfs,
                wal: Mutex::new(wal),
                config,
                wal_records_since_checkpoint: AtomicU64::new(applied_records),
                metrics,
            },
            tables: tables.into_values().collect(),
            report,
        })
    }

    /// Append one mutation to the WAL; durable per the configured
    /// [`FsyncPolicy`] when this returns. The caller applies the mutation
    /// in memory only after this succeeds (log-before-ack).
    pub fn log(&self, rec: &WalRecord) -> Result<u64, StorageError> {
        let lsn = self.wal.lock().unwrap().append(rec)?;
        self.note_logged(rec.op_count());
        Ok(lsn)
    }

    /// Append one transaction for group commit: a single operation is
    /// logged as its bare record, several as one atomic
    /// [`WalRecord::Batch`] frame. Under [`FsyncPolicy::Always`] *no*
    /// fsync happens here — the caller must not ack until
    /// [`Storage::group_sync`] (run by whichever committer becomes the
    /// batch leader) reports the returned LSN durable.
    pub fn log_batch(&self, mut recs: Vec<WalRecord>) -> Result<u64, StorageError> {
        let rec = match recs.len() {
            0 => return Err(StorageError::Codec("empty transaction batch".into())),
            1 => recs.pop().expect("len checked"),
            _ => WalRecord::Batch(recs),
        };
        let ops = rec.op_count();
        let lsn = self.wal.lock().unwrap().append_deferred(&rec)?;
        self.note_logged(ops);
        Ok(lsn)
    }

    fn note_logged(&self, ops: u64) {
        self.metrics.wal_records.add(ops);
        self.wal_records_since_checkpoint
            .fetch_add(ops, Ordering::Relaxed);
    }

    /// One fsync covering every record appended so far; returns the
    /// highest LSN it made durable. The fsync itself runs *outside* the
    /// WAL mutex so concurrent `log_batch` callers keep enqueuing into
    /// the next batch — the overlap is the group-commit win. If the log
    /// is already fully synced this is free (no fsync at all).
    ///
    /// Failure has exactly the PR-5 fsync-failure contract: the unsynced
    /// tail (whose committers are being told "failed") is truncated back
    /// to the synced prefix, the LSN allocator rolls back with it, and
    /// the WAL is poisoned until reopen.
    pub fn group_sync(&self) -> Result<u64, StorageError> {
        let (lsn, bytes) = {
            let wal = self.wal.lock().unwrap();
            wal.check_poisoned()?;
            let (lsn, bytes) = wal.sync_target();
            if lsn <= wal.synced_lsn() {
                return Ok(wal.synced_lsn());
            }
            (lsn, bytes)
        };
        match self.vfs.sync(WAL_FILE) {
            Ok(()) => {
                self.wal.lock().unwrap().mark_synced(lsn, bytes);
                Ok(lsn)
            }
            Err(e) => {
                self.wal.lock().unwrap().fail_sync();
                Err(e)
            }
        }
    }

    /// Does the configured `checkpoint_every` call for a checkpoint now?
    pub fn checkpoint_due(&self) -> bool {
        self.config
            .checkpoint_every
            .is_some_and(|n| self.wal_records_since_checkpoint.load(Ordering::Relaxed) >= n.max(1))
    }

    /// Write a snapshot of `tables` at the current LSN and compact the
    /// WAL down to its header. Crash-ordering: the snapshot is installed
    /// atomically *first*; recovery skips WAL records at or below the
    /// snapshot LSN, so a crash between the two steps double-applies
    /// nothing. The WAL mutex is held throughout: the caller must ensure
    /// no commit is in flight (the engine holds its commit lock), so the
    /// snapshot provably covers every logged record.
    pub fn checkpoint(&self, tables: &[TableImage]) -> Result<u64, StorageError> {
        let mut span = ferry_telemetry::span("storage.checkpoint", "storage");
        let mut wal = self.wal.lock().unwrap();
        let lsn = wal.next_lsn() - 1;
        // anything the policy left unsynced must be durable before the
        // snapshot claims to cover it
        wal.sync()?;
        let bytes = snapshot::write_snapshot(self.vfs.as_ref(), lsn, tables)?;
        wal.truncate_to_header()?;
        self.wal_records_since_checkpoint
            .store(0, Ordering::Relaxed);
        self.metrics.snapshots.inc();
        span.attr("lsn", lsn).attr("bytes", bytes);
        Ok(lsn)
    }

    /// Force-fsync the WAL regardless of policy (shutdown hook).
    pub fn sync(&self) -> Result<(), StorageError> {
        self.group_sync().map(|_| ())
    }

    /// The LSN the next mutation will be assigned.
    pub fn next_lsn(&self) -> u64 {
        self.wal.lock().unwrap().next_lsn()
    }

    /// Highest LSN guaranteed durable under the configured policy.
    pub fn synced_lsn(&self) -> u64 {
        self.wal.lock().unwrap().synced_lsn()
    }

    /// Has the WAL refused further mutation I/O after an unrecoverable
    /// write/fsync failure? Reopening the database is the only cure.
    pub fn poisoned(&self) -> bool {
        self.wal.lock().unwrap().poisoned()
    }

    pub fn config(&self) -> DurabilityConfig {
        self.config
    }

    /// Current WAL size in bytes (monitoring / compaction heuristics).
    pub fn wal_size(&self) -> Result<u64, StorageError> {
        Ok(self.vfs.size(WAL_FILE)?.unwrap_or(0))
    }
}

/// Apply one WAL record to the recovering catalog image. Replay is
/// strict: a record referencing a missing table means the log and
/// snapshot disagree — corruption, not a shrug.
fn apply(tables: &mut BTreeMap<String, TableImage>, rec: &WalRecord) -> Result<(), StorageError> {
    match rec {
        WalRecord::CreateTable { name, schema, keys } => {
            tables.insert(
                name.clone(),
                TableImage {
                    name: name.clone(),
                    schema: schema.clone(),
                    keys: keys.clone(),
                    rows: Vec::new(),
                },
            );
        }
        WalRecord::InstallTable {
            name,
            schema,
            keys,
            rows,
        } => {
            tables.insert(
                name.clone(),
                TableImage {
                    name: name.clone(),
                    schema: schema.clone(),
                    keys: keys.clone(),
                    rows: rows.clone(),
                },
            );
        }
        WalRecord::Batch(recs) => {
            // one CRC frame ⇒ the whole batch decoded or none of it did;
            // applying member-by-member here can therefore never expose
            // a half-replayed transaction
            for rec in recs {
                apply(tables, rec)?;
            }
        }
        WalRecord::Insert { table, rows } => {
            let t = tables.get_mut(table).ok_or_else(|| {
                StorageError::Corrupt(format!(
                    "WAL inserts into {table} which neither snapshot nor log created"
                ))
            })?;
            for row in rows {
                if row.len() != t.schema.len() {
                    return Err(StorageError::Corrupt(format!(
                        "WAL insert into {table}: row width {} != schema width {}",
                        row.len(),
                        t.schema.len()
                    )));
                }
            }
            t.rows.extend(rows.iter().cloned());
        }
        WalRecord::CreateTableSharded { .. }
        | WalRecord::ShardRows { .. }
        | WalRecord::ShardCommit { .. } => {
            // sharded records never belong in the single-log format; a
            // sharded directory is opened via `ShardedStorage::open`
            return Err(StorageError::Corrupt(
                "sharded WAL record in an unsharded log".into(),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferry_algebra::{Ty, Value};

    fn open(vfs: &Arc<FaultFs>, config: DurabilityConfig) -> Recovered {
        let registry = Registry::default();
        Storage::open(vfs.clone() as Arc<dyn Vfs>, config, &registry).unwrap()
    }

    fn create_t() -> WalRecord {
        WalRecord::CreateTable {
            name: "t".into(),
            schema: Schema::of(&[("k", Ty::Int)]),
            keys: vec!["k".into()],
        }
    }

    fn insert_t(k: i64) -> WalRecord {
        WalRecord::Insert {
            table: "t".into(),
            rows: vec![vec![Value::Int(k)]],
        }
    }

    #[test]
    fn open_log_reopen_roundtrip() {
        let vfs = Arc::new(FaultFs::new());
        let r = open(&vfs, DurabilityConfig::default());
        assert!(r.tables.is_empty());
        assert_eq!(r.storage.log(&create_t()).unwrap(), 1);
        assert_eq!(r.storage.log(&insert_t(7)).unwrap(), 2);
        assert_eq!(r.storage.synced_lsn(), 2);

        let r2 = open(&vfs, DurabilityConfig::default());
        assert_eq!(r2.tables.len(), 1);
        assert_eq!(r2.tables[0].rows, vec![vec![Value::Int(7)]]);
        assert_eq!(r2.report.wal_records_applied, 2);
        assert_eq!(r2.report.last_lsn, 2);
        assert_eq!(r2.storage.next_lsn(), 3);
        let text = r2.report.render();
        assert!(text.contains("replay wal tail"), "{text}");
        assert!(text.contains("last lsn 2"), "{text}");
    }

    #[test]
    fn checkpoint_compacts_and_recovery_matches_full_replay() {
        // two identical workloads: one checkpoints mid-way, one never
        let full = Arc::new(FaultFs::new());
        let compact = Arc::new(FaultFs::new());
        let rf = open(&full, DurabilityConfig::default());
        let rc = open(&compact, DurabilityConfig::default());
        for s in [&rf.storage, &rc.storage] {
            s.log(&create_t()).unwrap();
            s.log(&insert_t(1)).unwrap();
            s.log(&insert_t(2)).unwrap();
        }
        let images = open(&compact, DurabilityConfig::default()).tables;
        let rc = open(&compact, DurabilityConfig::default());
        rc.storage.checkpoint(&images).unwrap();
        rc.storage.log(&insert_t(3)).unwrap();
        rf.storage.log(&insert_t(3)).unwrap();

        let full_state = open(&full, DurabilityConfig::default()).tables;
        let compact_state = open(&compact, DurabilityConfig::default()).tables;
        assert_eq!(full_state, compact_state);
        // compacted log is shorter, snapshot carries the prefix
        assert!(compact.written_len(WAL_FILE) < full.written_len(WAL_FILE));
        // byte-identical snapshots of both recovered states
        let a = FaultFs::new();
        let b = FaultFs::new();
        snapshot::write_snapshot(&a, 4, &full_state).unwrap();
        snapshot::write_snapshot(&b, 4, &compact_state).unwrap();
        assert_eq!(
            a.read(snapshot::SNAP_FILE).unwrap().unwrap(),
            b.read(snapshot::SNAP_FILE).unwrap().unwrap()
        );
    }

    #[test]
    fn checkpoint_due_follows_config() {
        let vfs = Arc::new(FaultFs::new());
        let r = open(
            &vfs,
            DurabilityConfig {
                fsync: FsyncPolicy::Always,
                checkpoint_every: Some(2),
            },
        );
        r.storage.log(&create_t()).unwrap();
        assert!(!r.storage.checkpoint_due());
        r.storage.log(&insert_t(1)).unwrap();
        assert!(r.storage.checkpoint_due());
        let images = vec![TableImage {
            name: "t".into(),
            schema: Schema::of(&[("k", Ty::Int)]),
            keys: vec!["k".into()],
            rows: vec![vec![Value::Int(1)]],
        }];
        r.storage.checkpoint(&images).unwrap();
        assert!(!r.storage.checkpoint_due());
    }

    #[test]
    fn insert_into_unknown_table_is_corrupt() {
        let vfs = Arc::new(FaultFs::new());
        let r = open(&vfs, DurabilityConfig::default());
        r.storage.log(&insert_t(1)).unwrap(); // storage does not validate
        let registry = Registry::default();
        let err = Storage::open(
            vfs.clone() as Arc<dyn Vfs>,
            DurabilityConfig::default(),
            &registry,
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
    }

    #[test]
    fn unsynced_tail_under_os_policy_is_lost_but_consistent() {
        let vfs = Arc::new(FaultFs::new());
        let cfg = DurabilityConfig::with_fsync(FsyncPolicy::Os);
        let r = open(&vfs, cfg);
        r.storage.log(&create_t()).unwrap();
        r.storage.sync().unwrap(); // explicit barrier
        r.storage.log(&insert_t(1)).unwrap();
        r.storage.log(&insert_t(2)).unwrap(); // never synced
        assert_eq!(r.storage.synced_lsn(), 1);
        vfs.crash();
        let r2 = open(&vfs, cfg);
        assert_eq!(r2.tables.len(), 1);
        assert!(r2.tables[0].rows.is_empty(), "unsynced inserts lost");
        assert_eq!(r2.report.last_lsn, 1);
    }

    #[test]
    fn log_batch_is_atomic_across_recovery_and_defers_the_fsync() {
        let vfs = Arc::new(FaultFs::new());
        let r = open(&vfs, DurabilityConfig::default());
        let before = vfs.syncs();
        // a two-operation transaction: one frame, one LSN, no inline sync
        let lsn = r.storage.log_batch(vec![create_t(), insert_t(1)]).unwrap();
        assert_eq!(lsn, 1);
        assert_eq!(vfs.syncs() - before, 0, "Always sync deferred to leader");
        assert_eq!(r.storage.synced_lsn(), 0);
        // the leader's single fsync covers it, and later stale leaders
        // are free (already synced)
        assert_eq!(r.storage.group_sync().unwrap(), 1);
        assert_eq!(vfs.syncs() - before, 1);
        assert_eq!(r.storage.group_sync().unwrap(), 1);
        assert_eq!(vfs.syncs() - before, 1, "fully-synced log skips fsync");
        // ops (not frames) drive checkpoint_every and wal_records
        vfs.crash();
        let r2 = open(&vfs, DurabilityConfig::default());
        assert_eq!(r2.tables.len(), 1);
        assert_eq!(r2.tables[0].rows, vec![vec![Value::Int(1)]]);
        assert_eq!(r2.report.wal_records_applied, 2);
        assert_eq!(r2.report.last_lsn, 1);
    }

    #[test]
    fn single_op_batch_logs_the_bare_record_format() {
        // byte-for-byte compatibility: autocommits look exactly like the
        // pre-batch log format
        let via_batch = Arc::new(FaultFs::new());
        let via_log = Arc::new(FaultFs::new());
        let rb = open(&via_batch, DurabilityConfig::default());
        let rl = open(&via_log, DurabilityConfig::default());
        rb.storage.log_batch(vec![create_t()]).unwrap();
        rb.storage.group_sync().unwrap();
        rl.storage.log(&create_t()).unwrap();
        assert_eq!(
            via_batch.read(WAL_FILE).unwrap().unwrap(),
            via_log.read(WAL_FILE).unwrap().unwrap()
        );
    }

    #[test]
    fn failed_group_sync_nacks_the_whole_tail_and_poisons() {
        let vfs = Arc::new(FaultFs::new());
        let r = open(&vfs, DurabilityConfig::default());
        r.storage.log(&create_t()).unwrap(); // lsn 1, synced inline
        let acked_len = vfs.written_len(WAL_FILE);
        r.storage.log_batch(vec![insert_t(1), insert_t(2)]).unwrap();
        vfs.inject(Fault::FailFsync {
            path: WAL_FILE.into(),
        });
        assert!(matches!(r.storage.group_sync(), Err(StorageError::Io(_))));
        assert!(r.storage.poisoned());
        // the nacked batch is gone from the file: nothing a later fsync
        // could durably commit behind the committers' backs
        assert_eq!(vfs.written_len(WAL_FILE), acked_len);
        assert_eq!(r.storage.next_lsn(), 2);
        assert!(matches!(
            r.storage.log_batch(vec![insert_t(3)]),
            Err(StorageError::Io(_))
        ));
        vfs.crash();
        let r2 = open(&vfs, DurabilityConfig::default());
        assert_eq!(r2.tables.len(), 1);
        assert!(r2.tables[0].rows.is_empty(), "nacked batch not replayed");
    }

    #[test]
    fn storage_metrics_land_in_registry() {
        let vfs: Arc<dyn Vfs> = Arc::new(FaultFs::new());
        let registry = Registry::default();
        let r = Storage::open(vfs, DurabilityConfig::default(), &registry).unwrap();
        r.storage.log(&create_t()).unwrap();
        r.storage.log(&insert_t(1)).unwrap();
        let text = registry.render();
        assert!(text.contains("storage.wal_records 2"), "{text}");
        assert!(text.contains("storage.recoveries 1"), "{text}");
        assert!(text.contains("storage.wal_bytes"), "{text}");
        assert!(text.contains("storage.fsyncs"), "{text}");
    }
}

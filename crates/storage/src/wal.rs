//! The write-ahead log: every committed catalog mutation, in order.
//!
//! File layout: the 8-byte magic [`WAL_MAGIC`] (which embeds the codec
//! version), then one [frame](crate::frame) per logged mutation. Each
//! frame payload is `[lsn: u64][record]` with the record encoded by
//! [`codec`](crate::codec). LSNs are assigned here, start at 1, and are
//! strictly monotone; replay rejects any other sequence as corruption.
//!
//! Appends are acknowledged only after the bytes are handed to the VFS
//! and the [`FsyncPolicy`] has been satisfied — `Always` syncs every
//! record, `EveryN(n)` amortises one fsync over `n` records, `Os` never
//! syncs and leaves durability to the OS page cache (fastest, weakest:
//! a crash can lose any suffix, but never the prefix property).

use crate::codec::{Dec, Enc};
use crate::frame::{scan, write_frame, Tail};
use crate::fs::Vfs;
use crate::{FsyncPolicy, StorageError};
use ferry_algebra::{Row, Schema};
use ferry_telemetry::Counter;
use std::sync::Arc;

/// Magic + format version of the WAL file ("FWAL" + version 0001).
pub const WAL_MAGIC: &[u8; 8] = b"FWAL0001";

/// Default WAL file name inside the storage directory.
pub const WAL_FILE: &str = "wal";

/// One logged catalog mutation — the durable mirror of the `Database`
/// mutation API.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// `Database::create_table` (validated; table starts empty).
    CreateTable {
        name: String,
        schema: Schema,
        keys: Vec<String>,
    },
    /// `Database::install_table` (unvalidated escape hatch; carries the
    /// full row payload it was installed with).
    InstallTable {
        name: String,
        schema: Schema,
        keys: Vec<String>,
        rows: Vec<Row>,
    },
    /// `Database::insert` (type-checked row append).
    Insert { table: String, rows: Vec<Row> },
    /// One multi-operation transaction, logged as a single frame so the
    /// CRC makes it all-or-nothing: a crash either replays the whole
    /// batch or none of it. Single-operation transactions are logged as
    /// their bare record (identical bytes to the pre-batch format).
    Batch(Vec<WalRecord>),
    /// Sharded-mode `create_table` with a declared shard key: rides in
    /// the commit log so recovery learns the partitioning column before
    /// any shard rows are applied. `shard_key` names a column of
    /// `schema`; the engine's versioned `ShardHash` (not storage) maps
    /// rows to shards.
    CreateTableSharded {
        name: String,
        schema: Schema,
        keys: Vec<String>,
        shard_key: String,
    },
    /// One shard's slice of a sharded transaction, appended to that
    /// shard's WAL. `idx[i]` is the *absolute* position of `rows[i]` in
    /// the table's global insert order, so parallel replay of all shard
    /// logs reconstructs the exact unsharded row order; application is
    /// positioned and therefore idempotent across checkpoint windows.
    ShardRows {
        gsn: u64,
        table: String,
        idx: Vec<u64>,
        rows: Vec<Row>,
    },
    /// The commit-log marker that seals group-sequence-number `gsn`:
    /// bit `k` of `mask` set means shard `k`'s WAL holds `ShardRows`
    /// frames for this gsn. Recovery keeps a gsn only if every
    /// participant shard's frames are present — the epoch-consistent
    /// cut.
    ShardCommit { gsn: u64, mask: u64 },
}

impl WalRecord {
    fn encode(&self, e: &mut Enc) {
        match self {
            WalRecord::CreateTable { name, schema, keys } => {
                e.u8(1);
                e.str(name);
                e.schema(schema);
                e.strings(keys);
            }
            WalRecord::InstallTable {
                name,
                schema,
                keys,
                rows,
            } => {
                e.u8(2);
                e.str(name);
                e.schema(schema);
                e.strings(keys);
                e.rows(rows);
            }
            WalRecord::Insert { table, rows } => {
                e.u8(3);
                e.str(table);
                e.rows(rows);
            }
            WalRecord::Batch(recs) => {
                e.u8(4);
                e.u64(recs.len() as u64);
                for rec in recs {
                    rec.encode(e);
                }
            }
            WalRecord::CreateTableSharded {
                name,
                schema,
                keys,
                shard_key,
            } => {
                e.u8(5);
                e.str(name);
                e.schema(schema);
                e.strings(keys);
                e.str(shard_key);
            }
            WalRecord::ShardRows {
                gsn,
                table,
                idx,
                rows,
            } => {
                e.u8(6);
                e.u64(*gsn);
                e.str(table);
                e.u64(idx.len() as u64);
                for i in idx {
                    e.u64(*i);
                }
                e.rows(rows);
            }
            WalRecord::ShardCommit { gsn, mask } => {
                e.u8(7);
                e.u64(*gsn);
                e.u64(*mask);
            }
        }
    }

    fn decode(d: &mut Dec<'_>) -> Result<WalRecord, StorageError> {
        Self::decode_nested(d, false)
    }

    /// `decode`, tracking whether we are already inside a batch. The
    /// engine never writes `Batch` inside `Batch`, so a nested tag-4
    /// frame is corruption — rejecting it also bounds the recursion
    /// depth (a crafted ~10-bytes-per-level log would otherwise
    /// overflow the stack during recovery instead of erroring).
    fn decode_nested(d: &mut Dec<'_>, in_batch: bool) -> Result<WalRecord, StorageError> {
        Ok(match d.u8()? {
            1 => WalRecord::CreateTable {
                name: d.str()?.to_string(),
                schema: d.schema()?,
                keys: d.strings()?,
            },
            2 => WalRecord::InstallTable {
                name: d.str()?.to_string(),
                schema: d.schema()?,
                keys: d.strings()?,
                rows: d.rows()?,
            },
            3 => WalRecord::Insert {
                table: d.str()?.to_string(),
                rows: d.rows()?,
            },
            4 => {
                if in_batch {
                    return Err(StorageError::Codec("nested WAL batch record".to_string()));
                }
                let n = d.u64()?;
                let mut recs = Vec::with_capacity(n.min(1 << 20) as usize);
                for _ in 0..n {
                    recs.push(WalRecord::decode_nested(d, true)?);
                }
                WalRecord::Batch(recs)
            }
            5 => WalRecord::CreateTableSharded {
                name: d.str()?.to_string(),
                schema: d.schema()?,
                keys: d.strings()?,
                shard_key: d.str()?.to_string(),
            },
            6 => {
                let gsn = d.u64()?;
                let table = d.str()?.to_string();
                let n = d.u64()?;
                let mut idx = Vec::with_capacity(n.min(1 << 20) as usize);
                for _ in 0..n {
                    idx.push(d.u64()?);
                }
                let rows = d.rows()?;
                if idx.len() != rows.len() {
                    return Err(StorageError::Codec(format!(
                        "shard rows record carries {} positions for {} rows",
                        idx.len(),
                        rows.len()
                    )));
                }
                WalRecord::ShardRows {
                    gsn,
                    table,
                    idx,
                    rows,
                }
            }
            7 => WalRecord::ShardCommit {
                gsn: d.u64()?,
                mask: d.u64()?,
            },
            t => return Err(StorageError::Codec(format!("unknown WAL record tag {t}"))),
        })
    }

    /// Rows carried by this record (for span/report accounting).
    pub fn row_count(&self) -> usize {
        match self {
            WalRecord::CreateTable { .. }
            | WalRecord::CreateTableSharded { .. }
            | WalRecord::ShardCommit { .. } => 0,
            WalRecord::InstallTable { rows, .. }
            | WalRecord::Insert { rows, .. }
            | WalRecord::ShardRows { rows, .. } => rows.len(),
            WalRecord::Batch(recs) => recs.iter().map(WalRecord::row_count).sum(),
        }
    }

    /// Operations carried by this record (1 for bare records, the batch
    /// length for [`WalRecord::Batch`]) — the `storage.wal_records` unit.
    pub fn op_count(&self) -> u64 {
        match self {
            WalRecord::Batch(recs) => recs.iter().map(WalRecord::op_count).sum(),
            _ => 1,
        }
    }
}

/// The appender half of the WAL. Holds the fsync policy, the LSN
/// allocator, and the metric handles it bumps on the hot path.
#[derive(Debug)]
pub struct Wal {
    vfs: Arc<dyn Vfs>,
    /// VFS path of the log this handle appends to (`wal` for the single
    /// log; `wal-{k}` / `commitlog` under sharded storage).
    file: String,
    policy: FsyncPolicy,
    next_lsn: u64,
    /// Highest LSN known durable under the current policy (== last acked
    /// LSN for `Always`; trails it for `EveryN`/`Os`).
    synced_lsn: u64,
    unsynced: u64,
    /// Total bytes in the WAL file (magic included) as this handle knows
    /// it — the rollback target after a failed append.
    bytes_len: u64,
    /// Byte length of the prefix covered by the last successful fsync —
    /// the rollback target after a failed fsync.
    synced_bytes: u64,
    /// Set after a write/fsync failure this handle could not roll back
    /// (or any fsync failure — see [`Wal::sync`]): every further
    /// operation fails until the database is reopened.
    poisoned: bool,
    wal_bytes: Arc<Counter>,
    fsyncs: Arc<Counter>,
}

impl Wal {
    /// Resume appending after recovery: `next_lsn` continues where the
    /// recovered log left off. The file (with magic) must already exist,
    /// be `file_len` bytes long, and be fully synced.
    pub(crate) fn resume(
        vfs: Arc<dyn Vfs>,
        file: &str,
        policy: FsyncPolicy,
        next_lsn: u64,
        file_len: u64,
        wal_bytes: Arc<Counter>,
        fsyncs: Arc<Counter>,
    ) -> Wal {
        Wal {
            vfs,
            file: file.to_string(),
            policy,
            next_lsn,
            synced_lsn: next_lsn - 1,
            unsynced: 0,
            bytes_len: file_len,
            synced_bytes: file_len,
            poisoned: false,
            wal_bytes,
            fsyncs,
        }
    }

    pub(crate) fn check_poisoned(&self) -> Result<(), StorageError> {
        if self.poisoned {
            return Err(StorageError::Io(
                "WAL poisoned by an earlier write/fsync failure; \
                 reopen the database to recover"
                    .into(),
            ));
        }
        Ok(())
    }

    /// Append one record; returns its LSN. The record is durable per the
    /// policy when this returns — callers ack their client only after.
    /// On failure nothing is acked and nothing of the record can ever
    /// become durable: the file is rolled back to its pre-call length
    /// (on a failed write) or to the synced prefix (on a failed fsync),
    /// and if even that is impossible the handle is poisoned so no later
    /// append can flush the rejected bytes.
    pub fn append(&mut self, rec: &WalRecord) -> Result<u64, StorageError> {
        let lsn = self.append_nosync(rec)?;
        let due = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.unsynced >= n.max(1) as u64,
            FsyncPolicy::Os => false,
        };
        if due {
            self.sync()?;
        }
        Ok(lsn)
    }

    /// [`Wal::append`] for group commit: the `Always` sync is *deferred*
    /// to the batch leader (which fsyncs once for every record enqueued
    /// while it ran), so only the `EveryN` cadence is honoured inline.
    /// The caller must not ack until the leader reports the LSN durable.
    pub(crate) fn append_deferred(&mut self, rec: &WalRecord) -> Result<u64, StorageError> {
        let lsn = self.append_nosync(rec)?;
        if let FsyncPolicy::EveryN(n) = self.policy {
            if self.unsynced >= n.max(1) as u64 {
                self.sync()?;
            }
        }
        Ok(lsn)
    }

    /// Write the frame without any fsync; returns its LSN.
    fn append_nosync(&mut self, rec: &WalRecord) -> Result<u64, StorageError> {
        self.check_poisoned()?;
        let lsn = self.next_lsn;
        let mut span = ferry_telemetry::span("wal.append", "storage");
        let mut e = Enc::new();
        e.u64(lsn);
        rec.encode(&mut e);
        let payload = e.into_bytes();
        let mut framed = Vec::with_capacity(payload.len() + 8);
        // an oversized record is refused before any I/O: state unchanged,
        // the LSN is reused by the next append
        write_frame(&mut framed, &payload)?;
        span.attr("lsn", lsn)
            .attr("bytes", framed.len())
            .attr("rows", rec.row_count());
        if let Err(e) = self.vfs.append(&self.file, &framed) {
            // the write may have landed partially; cut back to the last
            // known-good length, else refuse all further I/O
            if self.vfs.truncate(&self.file, self.bytes_len).is_err() {
                self.poisoned = true;
            }
            return Err(e);
        }
        self.bytes_len += framed.len() as u64;
        self.wal_bytes.add(framed.len() as u64);
        self.next_lsn += 1;
        self.unsynced += 1;
        Ok(lsn)
    }

    /// The `(lsn, bytes_len)` pair a group-commit leader's fsync will
    /// cover. The leader captures this under the WAL lock, performs the
    /// fsync *without* the lock (so concurrent appenders keep enqueuing —
    /// that overlap is the whole batching win), then reports back via
    /// [`Wal::mark_synced`] or [`Wal::fail_sync`].
    pub(crate) fn sync_target(&self) -> (u64, u64) {
        (self.next_lsn - 1, self.bytes_len)
    }

    /// A leader's unlocked fsync succeeded for the [`Wal::sync_target`]
    /// captured as `(lsn, bytes)`. Monotone-max because a slow leader may
    /// report after a faster one already advanced the watermark.
    pub(crate) fn mark_synced(&mut self, lsn: u64, bytes: u64) {
        self.fsyncs.inc();
        self.synced_lsn = self.synced_lsn.max(lsn);
        self.synced_bytes = self.synced_bytes.max(bytes);
        self.unsynced = (self.next_lsn - 1).saturating_sub(self.synced_lsn);
    }

    /// A leader's unlocked fsync failed: same contract as the error arm
    /// of [`Wal::sync`] — truncate the nacked tail back to the synced
    /// prefix (rolling the LSN allocator with it) and poison the handle.
    pub(crate) fn fail_sync(&mut self) {
        if self.vfs.truncate(&self.file, self.synced_bytes).is_ok() {
            self.bytes_len = self.synced_bytes;
            self.next_lsn = self.synced_lsn + 1;
            self.unsynced = 0;
        }
        self.poisoned = true;
    }

    /// Force an fsync regardless of policy (checkpoints, shutdown).
    ///
    /// On failure the unsynced tail holds records whose callers were (or
    /// are being) told "failed" — it is truncated back to the synced
    /// prefix (rolling `next_lsn` back with it) so no later fsync can
    /// durably commit a nacked record, and the handle is poisoned
    /// regardless: after a failed fsync the kernel may have dropped the
    /// dirty pages, so only a reopen that re-reads the file is sound.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.check_poisoned()?;
        match self.vfs.sync(&self.file) {
            Ok(()) => {
                self.fsyncs.inc();
                self.unsynced = 0;
                self.synced_lsn = self.next_lsn - 1;
                self.synced_bytes = self.bytes_len;
                Ok(())
            }
            Err(e) => {
                if self.vfs.truncate(&self.file, self.synced_bytes).is_ok() {
                    self.bytes_len = self.synced_bytes;
                    self.next_lsn = self.synced_lsn + 1;
                    self.unsynced = 0;
                }
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Truncate the log back to its header after a checkpoint and make
    /// the truncation durable. LSNs keep counting — the snapshot covers
    /// the removed prefix. A failure here poisons the handle: the file
    /// length is no longer known.
    pub(crate) fn truncate_to_header(&mut self) -> Result<(), StorageError> {
        self.check_poisoned()?;
        let header = WAL_MAGIC.len() as u64;
        if let Err(e) = self
            .vfs
            .truncate(&self.file, header)
            .and_then(|()| self.vfs.sync(&self.file))
        {
            self.poisoned = true;
            return Err(e);
        }
        self.bytes_len = header;
        self.synced_bytes = header;
        Ok(())
    }

    /// The LSN the next append will get.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Highest LSN guaranteed durable so far (see the field docs).
    pub fn synced_lsn(&self) -> u64 {
        self.synced_lsn
    }

    /// Has this handle refused further I/O after an unrecoverable
    /// write/fsync failure? Reopening the database is the only cure.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }
}

/// Result of reading a WAL file back.
#[derive(Debug)]
pub struct WalReplay {
    /// The decoded records, in LSN order.
    pub records: Vec<(u64, WalRecord)>,
    /// On-disk size of each record's frame (header included), aligned
    /// with `records` — lets sharded recovery compute the byte offset of
    /// any frame (for cut-point truncation) without re-encoding.
    pub frame_lens: Vec<u64>,
    /// Tail classification from the frame scanner.
    pub tail: Tail,
    /// Byte length of the valid region (magic + good frames); a torn
    /// file is truncated back to this.
    pub good_bytes: u64,
}

/// Decode the WAL from raw file bytes. `None` input (no file yet) is an
/// empty log. Frame-level damage at the tail is reported as [`Tail::Torn`]
/// (the caller repairs by truncating); anything else — bad magic, decode
/// failure inside a CRC-valid frame, non-monotone LSNs, valid frames
/// after a bad one — is [`StorageError::Corrupt`]/[`StorageError::Codec`].
pub fn replay_wal(bytes: Option<&[u8]>) -> Result<WalReplay, StorageError> {
    let bytes = match bytes {
        None => {
            return Ok(WalReplay {
                records: Vec::new(),
                frame_lens: Vec::new(),
                tail: Tail::Clean,
                good_bytes: 0,
            })
        }
        Some(b) => b,
    };
    if bytes.len() < WAL_MAGIC.len() {
        // a crash can tear even the magic of a freshly created log
        return Ok(WalReplay {
            records: Vec::new(),
            frame_lens: Vec::new(),
            tail: Tail::Torn { offset: 0 },
            good_bytes: 0,
        });
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(StorageError::Corrupt(format!(
            "bad WAL magic {:?} (expected {:?})",
            &bytes[..WAL_MAGIC.len()],
            WAL_MAGIC
        )));
    }
    let body = &bytes[WAL_MAGIC.len()..];
    let out = scan(body)?;
    let mut records = Vec::with_capacity(out.frames.len());
    let mut frame_lens = Vec::with_capacity(out.frames.len());
    let mut last_lsn = 0u64;
    for payload in out.frames {
        let mut d = Dec::new(payload);
        let lsn = d.u64()?;
        let rec = WalRecord::decode(&mut d)?;
        d.finish()?;
        if lsn <= last_lsn {
            return Err(StorageError::Corrupt(format!(
                "non-monotone LSN {lsn} after {last_lsn}"
            )));
        }
        last_lsn = lsn;
        records.push((lsn, rec));
        frame_lens.push(payload.len() as u64 + crate::frame::FRAME_HEADER as u64);
    }
    Ok(WalReplay {
        records,
        frame_lens,
        tail: out.tail,
        good_bytes: WAL_MAGIC.len() as u64 + out.good_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::{Fault, FaultFs};
    use ferry_algebra::{Ty, Value};

    fn counters() -> (Arc<Counter>, Arc<Counter>) {
        (Arc::new(Counter::default()), Arc::new(Counter::default()))
    }

    fn fresh_wal(vfs: Arc<dyn Vfs>, policy: FsyncPolicy) -> Wal {
        vfs.append(WAL_FILE, WAL_MAGIC).unwrap();
        vfs.sync(WAL_FILE).unwrap();
        let (b, f) = counters();
        Wal::resume(vfs, WAL_FILE, policy, 1, WAL_MAGIC.len() as u64, b, f)
    }

    fn sample_records() -> Vec<WalRecord> {
        let schema = Schema::of(&[("k", Ty::Int), ("v", Ty::Str)]);
        vec![
            WalRecord::CreateTable {
                name: "t".into(),
                schema: schema.clone(),
                keys: vec!["k".into()],
            },
            WalRecord::Insert {
                table: "t".into(),
                rows: vec![
                    vec![Value::Int(1), Value::str("one")],
                    vec![Value::Int(2), Value::str("two")],
                ],
            },
            WalRecord::InstallTable {
                name: "u".into(),
                schema,
                keys: vec![],
                rows: vec![vec![Value::Int(9), Value::str("nine")]],
            },
        ]
    }

    #[test]
    fn append_replay_roundtrip() {
        let vfs = Arc::new(FaultFs::new());
        let mut wal = fresh_wal(vfs.clone(), FsyncPolicy::Always);
        let recs = sample_records();
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(wal.append(r).unwrap(), (i + 1) as u64);
        }
        assert_eq!(wal.synced_lsn(), 3);
        let bytes = vfs.read(WAL_FILE).unwrap().unwrap();
        let replay = replay_wal(Some(&bytes)).unwrap();
        assert_eq!(replay.tail, Tail::Clean);
        assert_eq!(
            replay.records,
            recs.into_iter()
                .enumerate()
                .map(|(i, r)| ((i + 1) as u64, r))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn decode_roundtrips_flat_batch_but_rejects_nested() {
        let flat = WalRecord::Batch(sample_records());
        let mut e = Enc::new();
        flat.encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(WalRecord::decode(&mut d).unwrap(), flat);
        d.finish().unwrap();

        // the engine never writes Batch-inside-Batch, so a nested tag-4
        // frame is corruption — and must fail as a codec error rather
        // than recurse (a ~10-byte-per-level chain would otherwise
        // overflow the stack during recovery)
        let nested = WalRecord::Batch(vec![WalRecord::Batch(sample_records())]);
        let mut e = Enc::new();
        nested.encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(matches!(
            WalRecord::decode(&mut d),
            Err(StorageError::Codec(_))
        ));
    }

    #[test]
    fn fsync_policies_sync_at_the_right_cadence() {
        for (policy, expect_syncs) in [
            (FsyncPolicy::Always, 3),
            (FsyncPolicy::EveryN(2), 1),
            (FsyncPolicy::Os, 0),
        ] {
            let vfs = Arc::new(FaultFs::new());
            let mut wal = fresh_wal(vfs.clone(), policy);
            let before = vfs.syncs(); // the magic write syncs once
            for r in sample_records() {
                wal.append(&r).unwrap();
            }
            assert_eq!(vfs.syncs() - before, expect_syncs, "{policy:?}");
            match policy {
                FsyncPolicy::Always => assert_eq!(wal.synced_lsn(), 3),
                FsyncPolicy::EveryN(2) => assert_eq!(wal.synced_lsn(), 2),
                _ => assert_eq!(wal.synced_lsn(), 0),
            }
        }
    }

    #[test]
    fn empty_and_missing_logs_replay_empty() {
        let replay = replay_wal(None).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(replay.tail, Tail::Clean);
        let replay = replay_wal(Some(WAL_MAGIC)).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(replay.good_bytes, 8);
    }

    #[test]
    fn bad_magic_is_corrupt() {
        assert!(matches!(
            replay_wal(Some(b"NOTAWAL0rest")),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn torn_magic_is_a_torn_tail() {
        let replay = replay_wal(Some(b"FWA")).unwrap();
        assert_eq!(replay.tail, Tail::Torn { offset: 0 });
        assert_eq!(replay.good_bytes, 0);
    }

    #[test]
    fn failed_fsync_rolls_back_the_rejected_record_and_poisons() {
        let vfs = Arc::new(FaultFs::new());
        let mut wal = fresh_wal(vfs.clone(), FsyncPolicy::Always);
        let recs = sample_records();
        wal.append(&recs[0]).unwrap();
        let acked_len = vfs.written_len(WAL_FILE);
        vfs.inject(Fault::FailFsync {
            path: WAL_FILE.into(),
        });
        assert!(matches!(wal.append(&recs[1]), Err(StorageError::Io(_))));
        // the nacked record is cut out of the file, so no later fsync —
        // by us or the OS — can ever durably commit it
        assert_eq!(vfs.written_len(WAL_FILE), acked_len);
        assert_eq!(wal.next_lsn(), 2, "the rejected LSN is rolled back");
        // and the handle refuses all further I/O until reopen
        assert!(wal.poisoned());
        assert!(matches!(wal.append(&recs[2]), Err(StorageError::Io(_))));
        assert!(matches!(wal.sync(), Err(StorageError::Io(_))));
        assert_eq!(vfs.written_len(WAL_FILE), acked_len);
        // replay (as a reopen would) sees exactly the acked prefix
        let bytes = vfs.read(WAL_FILE).unwrap().unwrap();
        let replay = replay_wal(Some(&bytes)).unwrap();
        assert_eq!(replay.records, vec![(1, recs[0].clone())]);
    }

    #[test]
    fn oversized_record_is_refused_and_its_lsn_reused() {
        let vfs = Arc::new(FaultFs::new());
        let mut wal = fresh_wal(vfs.clone(), FsyncPolicy::Always);
        let huge = WalRecord::Insert {
            table: "t".into(),
            rows: vec![vec![Value::str(
                "x".repeat(crate::frame::MAX_FRAME_LEN as usize + 1),
            )]],
        };
        let err = wal.append(&huge).unwrap_err();
        assert!(matches!(err, StorageError::Codec(_)), "{err}");
        // nothing was written or acked; the next record takes LSN 1
        assert!(!wal.poisoned());
        assert_eq!(vfs.written_len(WAL_FILE), WAL_MAGIC.len() as u64);
        assert_eq!(wal.append(&sample_records()[0]).unwrap(), 1);
    }

    #[test]
    fn batch_record_is_one_frame_and_roundtrips() {
        let vfs = Arc::new(FaultFs::new());
        let mut wal = fresh_wal(vfs.clone(), FsyncPolicy::Always);
        let batch = WalRecord::Batch(sample_records());
        assert_eq!(batch.op_count(), 3);
        assert_eq!(batch.row_count(), 3);
        assert_eq!(wal.append(&batch).unwrap(), 1, "one LSN for the batch");
        assert_eq!(wal.next_lsn(), 2);
        let bytes = vfs.read(WAL_FILE).unwrap().unwrap();
        let replay = replay_wal(Some(&bytes)).unwrap();
        assert_eq!(replay.records, vec![(1, batch)]);
    }

    #[test]
    fn torn_batch_frame_replays_none_of_its_operations() {
        // a batch is all-or-nothing: tearing any byte of its single frame
        // drops the whole transaction at replay, never a prefix of it
        let vfs = Arc::new(FaultFs::new());
        let mut wal = fresh_wal(vfs.clone(), FsyncPolicy::Always);
        wal.append(&sample_records()[0]).unwrap();
        let intact = vfs.written_len(WAL_FILE);
        wal.append(&WalRecord::Batch(sample_records()[1..].to_vec()))
            .unwrap();
        let torn = intact + (vfs.written_len(WAL_FILE) - intact) / 2;
        vfs.truncate(WAL_FILE, torn).unwrap();
        let bytes = vfs.read(WAL_FILE).unwrap().unwrap();
        let replay = replay_wal(Some(&bytes)).unwrap();
        assert_eq!(replay.records.len(), 1, "only the pre-batch record");
        assert!(matches!(replay.tail, Tail::Torn { .. }));
        assert_eq!(replay.good_bytes, intact);
    }

    #[test]
    fn deferred_append_skips_the_always_sync_until_marked() {
        let vfs = Arc::new(FaultFs::new());
        let mut wal = fresh_wal(vfs.clone(), FsyncPolicy::Always);
        let before = vfs.syncs();
        for r in sample_records() {
            wal.append_deferred(&r).unwrap();
        }
        assert_eq!(vfs.syncs() - before, 0, "syncs are the leader's job");
        assert_eq!(wal.synced_lsn(), 0);
        let (lsn, bytes) = wal.sync_target();
        assert_eq!(lsn, 3);
        vfs.sync(WAL_FILE).unwrap();
        wal.mark_synced(lsn, bytes);
        assert_eq!(wal.synced_lsn(), 3);
        // a stale leader reporting an older target must not move
        // watermarks backwards
        wal.mark_synced(1, 8);
        assert_eq!(wal.synced_lsn(), 3);
    }

    #[test]
    fn fail_sync_rolls_back_like_a_failed_inline_fsync() {
        let vfs = Arc::new(FaultFs::new());
        let mut wal = fresh_wal(vfs.clone(), FsyncPolicy::Always);
        wal.append(&sample_records()[0]).unwrap();
        let acked_len = vfs.written_len(WAL_FILE);
        wal.append_deferred(&sample_records()[1]).unwrap();
        wal.fail_sync();
        assert!(wal.poisoned());
        assert_eq!(vfs.written_len(WAL_FILE), acked_len);
        assert_eq!(wal.next_lsn(), 2, "rejected LSN rolled back");
        let bytes = vfs.read(WAL_FILE).unwrap().unwrap();
        let replay = replay_wal(Some(&bytes)).unwrap();
        assert_eq!(replay.records.len(), 1);
    }

    #[test]
    fn sharded_records_roundtrip() {
        let schema = Schema::of(&[("k", Ty::Int), ("v", Ty::Str)]);
        let recs = vec![
            WalRecord::CreateTableSharded {
                name: "t".into(),
                schema,
                keys: vec!["k".into()],
                shard_key: "k".into(),
            },
            WalRecord::ShardRows {
                gsn: 7,
                table: "t".into(),
                idx: vec![0, 3, 5],
                rows: vec![
                    vec![Value::Int(1), Value::str("a")],
                    vec![Value::Int(2), Value::str("b")],
                    vec![Value::Int(3), Value::str("c")],
                ],
            },
            WalRecord::ShardCommit {
                gsn: 7,
                mask: 0b1010,
            },
        ];
        assert_eq!(recs[1].row_count(), 3);
        assert_eq!(recs[2].row_count(), 0);
        for rec in &recs {
            let mut e = Enc::new();
            rec.encode(&mut e);
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes);
            assert_eq!(&WalRecord::decode(&mut d).unwrap(), rec);
            d.finish().unwrap();
        }
    }

    #[test]
    fn shard_rows_position_count_mismatch_is_codec_error() {
        // hand-encode a tag-6 record whose idx list is shorter than its
        // row payload — recovery must reject it, not misalign positions
        let mut e = Enc::new();
        e.u8(6);
        e.u64(1); // gsn
        e.str("t");
        e.u64(1); // one position...
        e.u64(0);
        e.rows(&[vec![Value::Int(1)], vec![Value::Int(2)]]); // ...two rows
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(matches!(
            WalRecord::decode(&mut d),
            Err(StorageError::Codec(_))
        ));
    }

    #[test]
    fn non_monotone_lsn_is_corrupt() {
        let vfs = Arc::new(FaultFs::new());
        let mut wal = fresh_wal(vfs.clone(), FsyncPolicy::Always);
        let rec = &sample_records()[0];
        wal.append(rec).unwrap();
        // duplicate LSN 1 by appending a hand-built frame
        let mut e = Enc::new();
        e.u64(1);
        rec.encode(&mut e);
        let mut framed = Vec::new();
        write_frame(&mut framed, &e.into_bytes()).unwrap();
        vfs.append(WAL_FILE, &framed).unwrap();
        let bytes = vfs.read(WAL_FILE).unwrap().unwrap();
        assert!(matches!(
            replay_wal(Some(&bytes)),
            Err(StorageError::Corrupt(_))
        ));
    }
}

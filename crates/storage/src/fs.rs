//! The storage VFS: a minimal file-system surface the WAL and snapshot
//! layers are written against, with three implementations:
//!
//! * [`StdFs`] — real files under a root directory (what
//!   `Database::open` uses);
//! * [`FaultFs`] — an in-memory file system with *crash semantics*
//!   (volatile vs durable bytes, advanced by `fsync`) and scriptable
//!   fault injection: torn writes at a chosen byte offset, bit flips at
//!   chosen offsets, short and failed fsyncs. The recovery test harness
//!   runs whole workloads against it, "crashes" the machine, and reopens.
//!
//! The trait is deliberately tiny — append, read, truncate, atomic
//! replace — because that is all a WAL + snapshot design needs, and every
//! operation has well-defined crash behaviour.

use crate::StorageError;
use std::collections::HashMap;
use std::fmt;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;

fn io_err(path: &str, op: &str, e: std::io::Error) -> StorageError {
    StorageError::Io(format!("{op} {path}: {e}"))
}

/// The file operations durable storage is built from. Paths are plain
/// relative names (`"wal"`, `"snapshot"`); implementations anchor them.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Full contents of `path`, or `None` if it does not exist.
    fn read(&self, path: &str) -> Result<Option<Vec<u8>>, StorageError>;
    /// Append `data` at the end of `path`, creating it if absent.
    fn append(&self, path: &str, data: &[u8]) -> Result<(), StorageError>;
    /// Make everything written to `path` so far durable.
    fn sync(&self, path: &str) -> Result<(), StorageError>;
    /// Cut `path` down to `len` bytes (used to repair torn tails).
    fn truncate(&self, path: &str, len: u64) -> Result<(), StorageError>;
    /// Atomically replace the contents of `path` with `data` (write a
    /// sidecar, fsync, rename). After a crash the file holds either the
    /// old contents or the new — never a mixture.
    fn replace(&self, path: &str, data: &[u8]) -> Result<(), StorageError>;
    /// Size of `path` in bytes, or `None` if it does not exist.
    fn size(&self, path: &str) -> Result<Option<u64>, StorageError>;
}

// ----------------------------------------------------------------- StdFs

/// Real files under a root directory.
#[derive(Debug)]
pub struct StdFs {
    root: PathBuf,
}

impl StdFs {
    /// Anchor a VFS at `root`, creating the directory if needed.
    pub fn new(root: impl Into<PathBuf>) -> Result<StdFs, StorageError> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| io_err(&root.display().to_string(), "create dir", e))?;
        Ok(StdFs { root })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// fsync the root directory itself. Metadata operations — creating a
    /// file, renaming over one — are durable only once the *directory* is
    /// synced; without this a crash can lose a whole file whose contents
    /// were individually fsynced.
    fn sync_root(&self) -> Result<(), StorageError> {
        std::fs::File::open(&self.root)
            .and_then(|d| d.sync_all())
            .map_err(|e| io_err(&self.root.display().to_string(), "fsync dir", e))
    }
}

impl Vfs for StdFs {
    fn read(&self, path: &str) -> Result<Option<Vec<u8>>, StorageError> {
        match std::fs::read(self.path(path)) {
            Ok(data) => Ok(Some(data)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err(path, "read", e)),
        }
    }

    fn append(&self, path: &str, data: &[u8]) -> Result<(), StorageError> {
        let full = self.path(path);
        let created = !full.exists();
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&full)
            .map_err(|e| io_err(path, "open", e))?;
        f.write_all(data).map_err(|e| io_err(path, "append", e))?;
        if created {
            // the new directory entry must be durable before any fsync of
            // the file's own contents means anything
            self.sync_root()?;
        }
        Ok(())
    }

    fn sync(&self, path: &str) -> Result<(), StorageError> {
        std::fs::File::open(self.path(path))
            .and_then(|f| f.sync_all())
            .map_err(|e| io_err(path, "fsync", e))
    }

    fn truncate(&self, path: &str, len: u64) -> Result<(), StorageError> {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(self.path(path))
            .map_err(|e| io_err(path, "open", e))?;
        f.set_len(len).map_err(|e| io_err(path, "truncate", e))?;
        f.sync_all().map_err(|e| io_err(path, "fsync", e))
    }

    fn replace(&self, path: &str, data: &[u8]) -> Result<(), StorageError> {
        let tmp = self.path(&format!("{path}.tmp"));
        {
            let mut f =
                std::fs::File::create(&tmp).map_err(|e| io_err(path, "create sidecar", e))?;
            f.write_all(data)
                .and_then(|()| f.sync_all())
                .map_err(|e| io_err(path, "write sidecar", e))?;
        }
        std::fs::rename(&tmp, self.path(path)).map_err(|e| io_err(path, "rename", e))?;
        // fsync the directory so the rename itself is durable
        self.sync_root()
    }

    fn size(&self, path: &str) -> Result<Option<u64>, StorageError> {
        match std::fs::metadata(self.path(path)) {
            Ok(m) => Ok(Some(m.len())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err(path, "stat", e)),
        }
    }
}

// ---------------------------------------------------------------- FaultFs

/// A scripted fault. Offsets count *appended bytes over the file's
/// lifetime*, so a fault point chosen from one run replays exactly in the
/// next — the harness enumerates crash points deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// The append that reaches byte offset `at` of `path` persists only
    /// up to `at` and fails — a crash mid-write. Every later write to any
    /// file also fails (the machine is down).
    TornAppend { path: String, at: u64 },
    /// Flip bit `bit` of the byte at `offset` in `path`'s durable image
    /// when the crash happens — latent media corruption surfacing on
    /// reboot.
    BitFlip { path: String, offset: u64, bit: u8 },
    /// The next `sync` of `path` reports success but makes only half of
    /// the pending bytes durable — a lying disk cache.
    ShortFsync { path: String },
    /// The next `sync` of `path` fails with an I/O error (and makes
    /// nothing durable).
    FailFsync { path: String },
}

#[derive(Debug, Default, Clone)]
struct FaultFile {
    data: Vec<u8>,
    durable_len: usize,
}

#[derive(Debug, Default)]
struct FaultState {
    files: HashMap<String, FaultFile>,
    faults: Vec<Fault>,
    halted: bool,
    syncs: u64,
    injected: u64,
    /// Simulated device latency per `sync` (see [`FaultFs::set_sync_delay`]).
    sync_delay: std::time::Duration,
}

/// In-memory VFS with crash semantics and fault injection (see the
/// module docs). `crash()` drops every byte not made durable by `sync`,
/// then applies pending bit flips; the same `FaultFs` is then reopened by
/// the recovery path as if the process restarted.
#[derive(Debug, Default)]
pub struct FaultFs {
    state: Mutex<FaultState>,
}

impl FaultFs {
    pub fn new() -> FaultFs {
        FaultFs::default()
    }

    /// Arm a fault. Faults are one-shot: once triggered they are removed.
    pub fn inject(&self, fault: Fault) {
        self.state.lock().unwrap().faults.push(fault);
    }

    /// How many faults have fired so far.
    pub fn injected(&self) -> u64 {
        self.state.lock().unwrap().injected
    }

    /// Number of successful `sync` calls (the `storage.fsyncs` oracle).
    pub fn syncs(&self) -> u64 {
        self.state.lock().unwrap().syncs
    }

    /// Make every `sync` block for `delay` before taking effect — a
    /// stand-in for real device latency, so group-commit tests get the
    /// overlap window a physical fsync would give concurrent appenders.
    /// The sleep happens *outside* the state lock: appends proceed during
    /// the simulated fsync, exactly as page-cache writes do on a real OS.
    pub fn set_sync_delay(&self, delay: std::time::Duration) {
        self.state.lock().unwrap().sync_delay = delay;
    }

    /// Total bytes ever appended to `path` (durable or not).
    pub fn written_len(&self, path: &str) -> u64 {
        let st = self.state.lock().unwrap();
        st.files.get(path).map_or(0, |f| f.data.len() as u64)
    }

    /// Bytes of `path` that would survive a crash right now.
    pub fn durable_len(&self, path: &str) -> u64 {
        let st = self.state.lock().unwrap();
        st.files.get(path).map_or(0, |f| f.durable_len as u64)
    }

    /// Power-cycle: lose all volatile bytes, apply pending bit flips,
    /// clear the halt so the "rebooted machine" can do I/O again.
    pub fn crash(&self) {
        let mut st = self.state.lock().unwrap();
        for f in st.files.values_mut() {
            let durable = f.durable_len;
            f.data.truncate(durable);
        }
        let flips: Vec<Fault> = st
            .faults
            .iter()
            .filter(|f| matches!(f, Fault::BitFlip { .. }))
            .cloned()
            .collect();
        st.faults.retain(|f| !matches!(f, Fault::BitFlip { .. }));
        for flip in flips {
            if let Fault::BitFlip { path, offset, bit } = flip {
                if let Some(f) = st.files.get_mut(&path) {
                    if let Some(b) = f.data.get_mut(offset as usize) {
                        *b ^= 1 << (bit & 7);
                        st.injected += 1;
                    }
                }
            }
        }
        st.halted = false;
    }

    fn take_fault(st: &mut FaultState, pick: impl Fn(&Fault) -> bool) -> Option<Fault> {
        let idx = st.faults.iter().position(pick)?;
        st.injected += 1;
        Some(st.faults.remove(idx))
    }
}

impl Vfs for FaultFs {
    fn read(&self, path: &str) -> Result<Option<Vec<u8>>, StorageError> {
        let st = self.state.lock().unwrap();
        Ok(st.files.get(path).map(|f| f.data.clone()))
    }

    fn append(&self, path: &str, data: &[u8]) -> Result<(), StorageError> {
        let mut st = self.state.lock().unwrap();
        if st.halted {
            return Err(StorageError::Injected("write after crash point".into()));
        }
        let start = st.files.get(path).map_or(0, |f| f.data.len() as u64);
        let end = start + data.len() as u64;
        let torn = Self::take_fault(
            &mut st,
            |f| matches!(f, Fault::TornAppend { path: p, at } if p == path && *at >= start && *at < end),
        );
        let file = st.files.entry(path.to_string()).or_default();
        if let Some(Fault::TornAppend { at, .. }) = torn {
            let keep = (at - start) as usize;
            file.data.extend_from_slice(&data[..keep]);
            // a torn write is a crash mid-append: the bytes that made it
            // to the device surface after reboot whether synced or not
            let total = file.data.len();
            file.durable_len = file.durable_len.max(total);
            st.halted = true;
            return Err(StorageError::Injected(format!(
                "torn append to {path} at byte {at}"
            )));
        }
        file.data.extend_from_slice(data);
        Ok(())
    }

    fn sync(&self, path: &str) -> Result<(), StorageError> {
        let delay = self.state.lock().unwrap().sync_delay;
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        let mut st = self.state.lock().unwrap();
        if st.halted {
            return Err(StorageError::Injected("fsync after crash point".into()));
        }
        if Self::take_fault(
            &mut st,
            |f| matches!(f, Fault::FailFsync { path: p } if p == path),
        )
        .is_some()
        {
            return Err(StorageError::Io(format!(
                "injected fsync failure on {path}"
            )));
        }
        let short = Self::take_fault(
            &mut st,
            |f| matches!(f, Fault::ShortFsync { path: p } if p == path),
        )
        .is_some();
        st.syncs += 1;
        if let Some(f) = st.files.get_mut(path) {
            if short {
                // persist only half of the pending bytes, report success
                f.durable_len += (f.data.len() - f.durable_len) / 2;
            } else {
                f.durable_len = f.data.len();
            }
        }
        Ok(())
    }

    fn truncate(&self, path: &str, len: u64) -> Result<(), StorageError> {
        let mut st = self.state.lock().unwrap();
        if st.halted {
            return Err(StorageError::Injected("truncate after crash point".into()));
        }
        if let Some(f) = st.files.get_mut(path) {
            f.data.truncate(len as usize);
            f.durable_len = f.durable_len.min(len as usize);
        }
        Ok(())
    }

    fn replace(&self, path: &str, data: &[u8]) -> Result<(), StorageError> {
        let mut st = self.state.lock().unwrap();
        if st.halted {
            return Err(StorageError::Injected("replace after crash point".into()));
        }
        // a rename-based replace is atomic: it either fully happens
        // (durable immediately) or, if the crash hits first, not at all —
        // modelled by the torn fault halting the machine instead
        let torn = Self::take_fault(
            &mut st,
            |f| matches!(f, Fault::TornAppend { path: p, .. } if p == path),
        );
        if torn.is_some() {
            st.halted = true;
            return Err(StorageError::Injected(format!(
                "crash during atomic replace of {path}"
            )));
        }
        let file = st.files.entry(path.to_string()).or_default();
        file.data = data.to_vec();
        file.durable_len = data.len();
        Ok(())
    }

    fn size(&self, path: &str) -> Result<Option<u64>, StorageError> {
        let st = self.state.lock().unwrap();
        Ok(st.files.get(path).map(|f| f.data.len() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsynced_bytes_die_in_a_crash() {
        let fs = FaultFs::new();
        fs.append("wal", b"durable").unwrap();
        fs.sync("wal").unwrap();
        fs.append("wal", b" volatile").unwrap();
        fs.crash();
        assert_eq!(fs.read("wal").unwrap().unwrap(), b"durable");
        // the rebooted machine can write again
        fs.append("wal", b"+more").unwrap();
        assert_eq!(fs.read("wal").unwrap().unwrap(), b"durable+more");
    }

    #[test]
    fn torn_append_keeps_a_prefix_and_halts() {
        let fs = FaultFs::new();
        fs.append("wal", b"0123").unwrap();
        fs.sync("wal").unwrap();
        fs.inject(Fault::TornAppend {
            path: "wal".into(),
            at: 6,
        });
        let err = fs.append("wal", b"abcdef").unwrap_err();
        assert!(matches!(err, StorageError::Injected(_)));
        // further I/O fails until the crash is acknowledged
        assert!(fs.append("wal", b"x").is_err());
        assert!(fs.sync("wal").is_err());
        fs.crash();
        assert_eq!(fs.read("wal").unwrap().unwrap(), b"0123ab");
    }

    #[test]
    fn short_fsync_persists_half() {
        let fs = FaultFs::new();
        fs.inject(Fault::ShortFsync { path: "wal".into() });
        fs.append("wal", b"0123456789").unwrap();
        fs.sync("wal").unwrap(); // lies
        fs.crash();
        assert_eq!(fs.read("wal").unwrap().unwrap(), b"01234");
        assert_eq!(fs.syncs(), 1);
    }

    #[test]
    fn bit_flip_applies_at_crash() {
        let fs = FaultFs::new();
        fs.append("wal", b"\x00\x00").unwrap();
        fs.sync("wal").unwrap();
        fs.inject(Fault::BitFlip {
            path: "wal".into(),
            offset: 1,
            bit: 3,
        });
        fs.crash();
        assert_eq!(fs.read("wal").unwrap().unwrap(), vec![0x00, 0x08]);
        assert_eq!(fs.injected(), 1);
    }

    #[test]
    fn replace_is_atomic_under_crash() {
        let fs = FaultFs::new();
        fs.replace("snapshot", b"old").unwrap();
        fs.inject(Fault::TornAppend {
            path: "snapshot".into(),
            at: 0,
        });
        assert!(fs.replace("snapshot", b"new-but-crashed").is_err());
        fs.crash();
        assert_eq!(fs.read("snapshot").unwrap().unwrap(), b"old");
        fs.replace("snapshot", b"new").unwrap();
        fs.crash();
        assert_eq!(fs.read("snapshot").unwrap().unwrap(), b"new");
    }

    #[test]
    fn failed_fsync_persists_nothing() {
        let fs = FaultFs::new();
        fs.append("wal", b"abc").unwrap();
        fs.inject(Fault::FailFsync { path: "wal".into() });
        assert!(fs.sync("wal").is_err());
        fs.crash();
        assert_eq!(fs.read("wal").unwrap().unwrap(), b"");
    }

    #[test]
    fn std_fs_roundtrip() {
        let root =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/tmp/stdfs_rt");
        let _ = std::fs::remove_dir_all(&root);
        let fs = StdFs::new(&root).unwrap();
        assert_eq!(fs.read("wal").unwrap(), None);
        assert_eq!(fs.size("wal").unwrap(), None);
        fs.append("wal", b"hello ").unwrap();
        fs.append("wal", b"world").unwrap();
        fs.sync("wal").unwrap();
        assert_eq!(fs.read("wal").unwrap().unwrap(), b"hello world");
        fs.truncate("wal", 5).unwrap();
        assert_eq!(fs.read("wal").unwrap().unwrap(), b"hello");
        fs.replace("snapshot", b"snap").unwrap();
        assert_eq!(fs.read("snapshot").unwrap().unwrap(), b"snap");
        assert_eq!(fs.size("snapshot").unwrap(), Some(4));
        let _ = std::fs::remove_dir_all(&root);
    }
}

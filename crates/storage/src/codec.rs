//! Versioned binary codec for the algebra's data model.
//!
//! Everything the WAL and snapshot files persist — [`Value`]s, rows,
//! [`Schema`]s and the table/log records built from them — is encoded by
//! hand here: fixed-width little-endian integers, length-prefixed UTF-8
//! strings, one tag byte per variant. No serde in this workspace (offline
//! build), and a hand-rolled format keeps the on-disk representation an
//! explicit, documented contract rather than a derive artefact.
//!
//! The format is versioned by [`CODEC_VERSION`], stamped into every file
//! header (see [`frame`](crate::frame)). Decoders reject unknown versions
//! with a typed error instead of guessing.

use crate::StorageError;
use ferry_algebra::{Row, Schema, Ty, Value};
use std::sync::Arc;

/// Version of the record encoding below. Bump on any layout change and
/// keep a decoder for every version ever shipped.
pub const CODEC_VERSION: u8 = 1;

fn err(detail: impl Into<String>) -> StorageError {
    StorageError::Codec(detail.into())
}

// ---------------------------------------------------------------- writing

/// Append-only encoder over a byte buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Enc {
        Enc::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn ty(&mut self, t: Ty) {
        self.u8(match t {
            Ty::Unit => 0,
            Ty::Bool => 1,
            Ty::Int => 2,
            Ty::Dbl => 3,
            Ty::Str => 4,
            Ty::Nat => 5,
        });
    }

    pub fn value(&mut self, v: &Value) {
        match v {
            Value::Unit => self.u8(0),
            Value::Bool(b) => {
                self.u8(1);
                self.u8(*b as u8);
            }
            Value::Int(i) => {
                self.u8(2);
                self.i64(*i);
            }
            Value::Dbl(d) => {
                self.u8(3);
                self.f64(*d);
            }
            Value::Str(s) => {
                self.u8(4);
                self.str(s);
            }
            Value::Nat(n) => {
                self.u8(5);
                self.u64(*n);
            }
        }
    }

    pub fn row(&mut self, row: &Row) {
        self.u32(row.len() as u32);
        for v in row {
            self.value(v);
        }
    }

    pub fn rows(&mut self, rows: &[Row]) {
        self.u32(rows.len() as u32);
        for r in rows {
            self.row(r);
        }
    }

    pub fn schema(&mut self, schema: &Schema) {
        self.u32(schema.len() as u32);
        for (name, ty) in schema.cols() {
            self.str(name);
            self.ty(*ty);
        }
    }

    pub fn strings(&mut self, ss: &[String]) {
        self.u32(ss.len() as u32);
        for s in ss {
            self.str(s);
        }
    }
}

// ---------------------------------------------------------------- reading

/// Cursor-based decoder over a byte slice. Every accessor bounds-checks
/// and returns [`StorageError::Codec`] on malformed input — corrupted
/// frames that slip past the CRC (or hostile files) must never panic.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// The input must be fully consumed — trailing bytes in a record mean
    /// writer/reader disagreement, which is corruption.
    pub fn finish(self) -> Result<(), StorageError> {
        if self.is_done() {
            Ok(())
        } else {
            Err(err(format!(
                "{} trailing bytes after record",
                self.buf.len() - self.pos
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        if self.buf.len() - self.pos < n {
            return Err(err(format!(
                "truncated record: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, StorageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64, StorageError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, StorageError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A length guard: collection counts are validated against the bytes
    /// actually remaining (each element needs at least one byte), so a
    /// corrupted count cannot trigger a huge allocation.
    fn count(&mut self, elem_min: usize) -> Result<usize, StorageError> {
        let n = self.u32()? as usize;
        if n * elem_min > self.buf.len() - self.pos {
            return Err(err(format!(
                "count {n} exceeds remaining input ({} bytes)",
                self.buf.len() - self.pos
            )));
        }
        Ok(n)
    }

    pub fn str(&mut self) -> Result<&'a str, StorageError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes).map_err(|e| err(format!("invalid UTF-8 string: {e}")))
    }

    pub fn ty(&mut self) -> Result<Ty, StorageError> {
        Ok(match self.u8()? {
            0 => Ty::Unit,
            1 => Ty::Bool,
            2 => Ty::Int,
            3 => Ty::Dbl,
            4 => Ty::Str,
            5 => Ty::Nat,
            t => return Err(err(format!("unknown type tag {t}"))),
        })
    }

    pub fn value(&mut self) -> Result<Value, StorageError> {
        Ok(match self.u8()? {
            0 => Value::Unit,
            1 => match self.u8()? {
                0 => Value::Bool(false),
                1 => Value::Bool(true),
                b => return Err(err(format!("bad bool byte {b}"))),
            },
            2 => Value::Int(self.i64()?),
            3 => Value::Dbl(self.f64()?),
            4 => Value::str(self.str()?),
            5 => Value::Nat(self.u64()?),
            t => return Err(err(format!("unknown value tag {t}"))),
        })
    }

    pub fn row(&mut self) -> Result<Row, StorageError> {
        let n = self.count(1)?;
        (0..n).map(|_| self.value()).collect()
    }

    pub fn rows(&mut self) -> Result<Vec<Row>, StorageError> {
        let n = self.count(4)?;
        (0..n).map(|_| self.row()).collect()
    }

    pub fn schema(&mut self) -> Result<Schema, StorageError> {
        let n = self.count(5)?;
        let mut cols: Vec<(Arc<str>, Ty)> = Vec::with_capacity(n);
        for _ in 0..n {
            let name: Arc<str> = Arc::from(self.str()?);
            let ty = self.ty()?;
            if cols.iter().any(|(n, _)| *n == name) {
                return Err(err(format!("duplicate column {name} in encoded schema")));
            }
            cols.push((name, ty));
        }
        Ok(Schema::new(cols))
    }

    pub fn strings(&mut self) -> Result<Vec<String>, StorageError> {
        let n = self.count(4)?;
        (0..n).map(|_| Ok(self.str()?.to_string())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_value(v: Value) {
        let mut e = Enc::new();
        e.value(&v);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.value().unwrap(), v);
        d.finish().unwrap();
    }

    #[test]
    fn values_roundtrip() {
        for v in [
            Value::Unit,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(i64::MIN),
            Value::Int(-1),
            Value::Int(i64::MAX),
            Value::Dbl(-0.0),
            Value::Dbl(f64::INFINITY),
            Value::str(""),
            Value::str("héllo wörld"),
            Value::Nat(u64::MAX),
        ] {
            roundtrip_value(v);
        }
    }

    #[test]
    fn negative_zero_survives() {
        let mut e = Enc::new();
        e.value(&Value::Dbl(-0.0));
        let bytes = e.into_bytes();
        match Dec::new(&bytes).value().unwrap() {
            Value::Dbl(d) => assert!(d == 0.0 && d.is_sign_negative()),
            other => panic!("expected double, got {other:?}"),
        }
    }

    #[test]
    fn schema_and_rows_roundtrip() {
        let schema = Schema::of(&[("iter", Ty::Nat), ("item", Ty::Int), ("name", Ty::Str)]);
        let rows = vec![
            vec![Value::Nat(1), Value::Int(-5), Value::str("a")],
            vec![Value::Nat(2), Value::Int(7), Value::str("")],
        ];
        let mut e = Enc::new();
        e.schema(&schema);
        e.rows(&rows);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.schema().unwrap(), schema);
        assert_eq!(d.rows().unwrap(), rows);
        d.finish().unwrap();
    }

    #[test]
    fn truncated_input_errors() {
        let mut e = Enc::new();
        e.value(&Value::str("hello"));
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let r = Dec::new(&bytes[..cut]).value();
            assert!(r.is_err(), "decoding a {cut}-byte prefix should fail");
        }
    }

    #[test]
    fn insane_count_is_rejected_without_allocating() {
        let mut e = Enc::new();
        e.u32(u32::MAX); // row count claiming 4B rows in a 4-byte input
        let bytes = e.into_bytes();
        assert!(Dec::new(&bytes).rows().is_err());
    }

    #[test]
    fn trailing_bytes_are_corruption() {
        let mut e = Enc::new();
        e.value(&Value::Int(1));
        e.u8(0xFF);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        d.value().unwrap();
        assert!(d.finish().is_err());
    }

    #[test]
    fn bad_tags_error() {
        assert!(Dec::new(&[9]).value().is_err());
        assert!(Dec::new(&[6]).ty().is_err());
        assert!(Dec::new(&[1, 2]).value().is_err()); // bool byte 2
                                                     // invalid UTF-8 in a string
        let mut e = Enc::new();
        e.u8(4);
        e.u32(2);
        let mut bytes = e.into_bytes();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert!(Dec::new(&bytes).value().is_err());
    }
}

//! Crash-recovery correctness, proven by fault injection.
//!
//! Every test here runs a generated mutation workload against a
//! [`Storage`] over a [`FaultFs`], crashes the "machine" at a scripted
//! fault point (torn write, bit flip, lying or failing fsync), reopens,
//! and checks the recovered catalog against an **independent in-test
//! model** of the mutation semantics. The invariant under test is always
//! the same:
//!
//! > recovery yields *exactly* some prefix of the acked mutation
//! > sequence — or a typed [`StorageError`] — never a panic and never a
//! > state that no prefix produced.
//!
//! The default run samples fault offsets sparsely so `cargo test` stays
//! fast; building with `--features storage-faults` sweeps every byte
//! offset and many more seeds (the CI fault-injection job does this).

use ferry_algebra::{Row, Schema, Ty, Value};
use ferry_storage::{
    snapshot, DurabilityConfig, Fault, FaultFs, FsyncPolicy, Recovered, Storage, StorageError,
    TableImage, Vfs, WalRecord, WAL_FILE,
};
use ferry_telemetry::Registry;
use proptest::TestRng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Sparse sampling stride for fault offsets; 1 (exhaustive) under the
/// `storage-faults` feature.
fn stride() -> usize {
    if cfg!(feature = "storage-faults") {
        1
    } else {
        17
    }
}

fn open(vfs: &Arc<FaultFs>, policy: FsyncPolicy) -> Result<Recovered, StorageError> {
    Storage::open(
        vfs.clone() as Arc<dyn Vfs>,
        DurabilityConfig::with_fsync(policy),
        &Registry::default(),
    )
}

// ----------------------------------------------------------- the model

/// Independent re-implementation of the mutation semantics (deliberately
/// *not* sharing code with `ferry-storage`), folded over record prefixes.
#[derive(Clone, Default, Debug, PartialEq)]
struct Model {
    tables: BTreeMap<String, TableImage>,
}

impl Model {
    fn apply(&mut self, rec: &WalRecord) {
        match rec {
            WalRecord::CreateTable { name, schema, keys } => {
                self.tables.insert(
                    name.clone(),
                    TableImage {
                        name: name.clone(),
                        schema: schema.clone(),
                        keys: keys.clone(),
                        rows: Vec::new(),
                    },
                );
            }
            WalRecord::InstallTable {
                name,
                schema,
                keys,
                rows,
            } => {
                self.tables.insert(
                    name.clone(),
                    TableImage {
                        name: name.clone(),
                        schema: schema.clone(),
                        keys: keys.clone(),
                        rows: rows.clone(),
                    },
                );
            }
            WalRecord::Insert { table, rows } => {
                self.tables
                    .get_mut(table)
                    .expect("workloads only insert into created tables")
                    .rows
                    .extend(rows.iter().cloned());
            }
            WalRecord::Batch(recs) => {
                for rec in recs {
                    self.apply(rec);
                }
            }
            WalRecord::CreateTableSharded { .. }
            | WalRecord::ShardRows { .. }
            | WalRecord::ShardCommit { .. } => {
                unreachable!("this harness drives the unsharded log format only")
            }
        }
    }

    fn images(&self) -> Vec<TableImage> {
        self.tables.values().cloned().collect()
    }
}

/// `states[k]` = catalog after the first `k` records (states[0] = empty).
fn prefix_states(recs: &[WalRecord]) -> Vec<Vec<TableImage>> {
    let mut m = Model::default();
    let mut states = vec![m.images()];
    for rec in recs {
        m.apply(rec);
        states.push(m.images());
    }
    states
}

// -------------------------------------------------- workload generation

fn schema() -> Schema {
    Schema::of(&[("k", Ty::Int), ("v", Ty::Str)])
}

fn gen_rows(rng: &mut TestRng, tag: usize) -> Vec<Row> {
    (0..rng.below(4))
        .map(|j| {
            vec![
                Value::Int((tag * 10 + j) as i64),
                Value::str(format!("r{tag}_{j}")),
            ]
        })
        .collect()
}

/// A random but *valid* mutation sequence: inserts only target tables a
/// prior record created (the storage layer logs blindly; validation is
/// the engine's job).
fn workload(rng: &mut TestRng, n: usize) -> Vec<WalRecord> {
    let mut created: Vec<String> = Vec::new();
    let mut recs = Vec::with_capacity(n);
    for i in 0..n {
        let choice = if created.is_empty() { 0 } else { rng.below(10) };
        match choice {
            0 | 1 => {
                let name = format!("t{}", rng.below(3));
                recs.push(WalRecord::CreateTable {
                    name: name.clone(),
                    schema: schema(),
                    keys: vec!["k".into()],
                });
                if !created.contains(&name) {
                    created.push(name);
                }
            }
            2 => {
                let name = format!("t{}", rng.below(3));
                recs.push(WalRecord::InstallTable {
                    name: name.clone(),
                    schema: schema(),
                    keys: Vec::new(),
                    rows: gen_rows(rng, i),
                });
                if !created.contains(&name) {
                    created.push(name);
                }
            }
            _ => {
                let table = created[rng.below(created.len())].clone();
                recs.push(WalRecord::Insert {
                    table,
                    rows: gen_rows(rng, i),
                });
            }
        }
    }
    recs
}

/// Log the whole workload on a fresh `FaultFs` (no faults) and return the
/// final WAL length — used to enumerate crash offsets.
fn clean_log_len(recs: &[WalRecord]) -> u64 {
    let vfs = Arc::new(FaultFs::new());
    let r = open(&vfs, FsyncPolicy::Always).unwrap();
    for rec in recs {
        r.storage.log(rec).unwrap();
    }
    vfs.written_len(WAL_FILE)
}

/// Reopen after a crash; the recovered catalog must equal at least one of
/// the oracle's prefix states (idempotent records make duplicates, so the
/// matching index is not unique). Returns the recovered catalog.
fn assert_prefix_state(
    vfs: &Arc<FaultFs>,
    states: &[Vec<TableImage>],
    policy: FsyncPolicy,
) -> Vec<TableImage> {
    let r = open(vfs, policy).expect("recovery must succeed");
    assert!(
        states.contains(&r.tables),
        "recovered state matches no oracle prefix: {:?}",
        r.tables
    );
    r.tables
}

// ---------------------------------------------------------------- tests

/// Tear the log at (a sample of) every byte offset. Under
/// `FsyncPolicy::Always`, recovery must restore **exactly** the acked
/// mutations: nothing acked is lost, the torn record never half-applies.
#[test]
fn torn_append_at_any_byte_recovers_exactly_the_acked_prefix() {
    let recs = workload(&mut TestRng::new(42), 12);
    let states = prefix_states(&recs);
    let total = clean_log_len(&recs);
    let mut at = 8; // first byte after the magic
    while at < total {
        let vfs = Arc::new(FaultFs::new());
        vfs.inject(Fault::TornAppend {
            path: WAL_FILE.into(),
            at,
        });
        let r = open(&vfs, FsyncPolicy::Always).unwrap();
        let mut acked = 0usize;
        let mut crashed = false;
        for rec in &recs {
            match r.storage.log(rec) {
                Ok(_) => acked += 1,
                Err(StorageError::Injected(_)) => {
                    crashed = true;
                    break;
                }
                Err(e) => panic!("unexpected error at byte {at}: {e}"),
            }
        }
        assert!(crashed, "fault at byte {at} never fired");
        vfs.crash();
        let recovered = assert_prefix_state(&vfs, &states, FsyncPolicy::Always);
        assert_eq!(
            recovered, states[acked],
            "crash at byte {at}: recovered state differs from the {acked} acked mutations"
        );
        at += stride() as u64;
    }
}

/// Flip (a sample of) every bit position in a fully synced log, then
/// reboot. Recovery must either repair (flip in the final frame = torn
/// tail) or refuse with a typed corruption error (flip anywhere else) —
/// and a repaired log must hold exactly the states minus the last record.
#[test]
fn bit_flips_recover_a_prefix_or_fail_typed_never_panic() {
    let recs = workload(&mut TestRng::new(7), 10);
    let states = prefix_states(&recs);
    let total = clean_log_len(&recs) as usize;
    for offset in (0..total).step_by(stride()) {
        let vfs = Arc::new(FaultFs::new());
        let r = open(&vfs, FsyncPolicy::Always).unwrap();
        for rec in &recs {
            r.storage.log(rec).unwrap();
        }
        vfs.inject(Fault::BitFlip {
            path: WAL_FILE.into(),
            offset: offset as u64,
            bit: (offset % 8) as u8,
        });
        vfs.crash();
        match open(&vfs, FsyncPolicy::Always) {
            Ok(rec) => {
                // a single-bit flip is always caught by the frame CRC, so
                // an Ok recovery means the damage was in the final frame
                // and was truncated away: exactly one record lost
                assert_eq!(
                    rec.tables,
                    states[recs.len() - 1],
                    "flip at byte {offset} recovered a non-prefix state"
                );
                assert!(rec.report.torn_tail_repaired_at.is_some());
            }
            Err(StorageError::Corrupt(_)) | Err(StorageError::Codec(_)) => {}
            Err(e) => panic!("flip at byte {offset}: unexpected error kind {e}"),
        }
    }
}

/// A disk that acknowledges fsync but persists only half the pending
/// bytes. The synced-LSN lower bound is forfeit (the disk lied), but the
/// prefix guarantee must survive.
#[test]
fn lying_fsync_still_yields_a_consistent_prefix() {
    for seed in 0..10u64 {
        let mut rng = TestRng::new(0x5F5F + seed);
        let n = 4 + rng.below(8);
        let recs = workload(&mut rng, n);
        let states = prefix_states(&recs);
        let vfs = Arc::new(FaultFs::new());
        let r = open(&vfs, FsyncPolicy::EveryN(2)).unwrap();
        vfs.inject(Fault::ShortFsync {
            path: WAL_FILE.into(),
        });
        for rec in &recs {
            r.storage.log(rec).unwrap();
        }
        vfs.crash();
        assert_prefix_state(&vfs, &states, FsyncPolicy::EveryN(2));
    }
}

/// A failing fsync surfaces as a typed I/O error on the mutation that
/// needed it; a crash right after still recovers every previously synced
/// mutation.
#[test]
fn failed_fsync_is_an_error_and_synced_prefix_survives() {
    let recs = workload(&mut TestRng::new(99), 8);
    let states = prefix_states(&recs);
    let vfs = Arc::new(FaultFs::new());
    let r = open(&vfs, FsyncPolicy::Always).unwrap();
    let mut acked = 0usize;
    let mut io_failed = false;
    for (i, rec) in recs.iter().enumerate() {
        if i == 4 {
            vfs.inject(Fault::FailFsync {
                path: WAL_FILE.into(),
            });
        }
        match r.storage.log(rec) {
            Ok(_) => acked += 1,
            Err(StorageError::Io(_)) => {
                io_failed = true;
                break;
            }
            Err(e) => panic!("unexpected error kind {e}"),
        }
    }
    assert!(io_failed);
    assert_eq!(acked, 4);
    vfs.crash();
    let recovered = assert_prefix_state(&vfs, &states, FsyncPolicy::Always);
    assert_eq!(
        recovered, states[acked],
        "every synced mutation survives the crash"
    );
}

/// The dangerous variant of a failed fsync: the process does NOT crash
/// and keeps mutating. The nacked record must never become durable via a
/// later successful append+fsync — the storage poisons itself (every
/// further append fails typed) and cuts the unsynced tail back to the
/// acked prefix, so even reopening without a crash sees only acked
/// mutations.
#[test]
fn failed_fsync_without_crash_never_commits_the_rejected_record() {
    let recs = workload(&mut TestRng::new(123), 8);
    let states = prefix_states(&recs);
    let vfs = Arc::new(FaultFs::new());
    let r = open(&vfs, FsyncPolicy::Always).unwrap();
    let mut acked = 0usize;
    let mut refused = 0usize;
    for (i, rec) in recs.iter().enumerate() {
        if i == 3 {
            vfs.inject(Fault::FailFsync {
                path: WAL_FILE.into(),
            });
        }
        match r.storage.log(rec) {
            Ok(_) => acked += 1,
            Err(StorageError::Io(_)) => refused += 1,
            Err(e) => panic!("unexpected error kind {e}"),
        }
    }
    assert_eq!(acked, 3, "everything before the failed fsync is acked");
    assert_eq!(refused, 5, "the failure and every later append are nacked");
    assert!(r.storage.poisoned());
    drop(r);
    // no crash: reopen over whatever the file holds right now
    let r2 = open(&vfs, FsyncPolicy::Always).unwrap();
    assert_eq!(
        r2.tables, states[acked],
        "a nacked mutation leaked into the recovered state"
    );
}

/// A crash after the snapshot is installed but before the WAL is
/// truncated must not double-apply: recovery skips WAL records the
/// snapshot already covers.
#[test]
fn crash_between_snapshot_and_wal_truncate_double_applies_nothing() {
    let recs = workload(&mut TestRng::new(5), 8);
    let states = prefix_states(&recs);
    let vfs = Arc::new(FaultFs::new());
    let r = open(&vfs, FsyncPolicy::Always).unwrap();
    for rec in &recs {
        r.storage.log(rec).unwrap();
    }
    // the first half of checkpoint(): snapshot installed, log NOT yet
    // truncated — exactly the state a crash inside checkpoint leaves
    snapshot::write_snapshot(vfs.as_ref(), recs.len() as u64, &states[recs.len()]).unwrap();
    vfs.crash();
    let r2 = open(&vfs, FsyncPolicy::Always).unwrap();
    assert_eq!(r2.tables, states[recs.len()]);
    assert_eq!(
        r2.report.wal_records_applied, 0,
        "all WAL records are at or below the snapshot LSN"
    );
    assert_eq!(r2.report.last_lsn, recs.len() as u64);
    assert_eq!(r2.storage.next_lsn(), recs.len() as u64 + 1);
}

/// The headline property: arbitrary workloads, random fsync policies,
/// optional mid-workload checkpoints, crashed at an arbitrary byte.
/// Recovery always lands on an oracle prefix at or beyond the last
/// synced mutation, and a second reopen is idempotent.
#[test]
fn recovery_roundtrip_property() {
    let seeds = if cfg!(feature = "storage-faults") {
        80
    } else {
        16
    };
    for seed in 0..seeds {
        let mut rng = TestRng::new(0xFE44 + seed as u64);
        let n = 4 + rng.below(10);
        let recs = workload(&mut rng, n);
        let states = prefix_states(&recs);
        let policy = match rng.below(3) {
            0 => FsyncPolicy::Always,
            1 => FsyncPolicy::EveryN(1 + rng.below(3) as u32),
            _ => FsyncPolicy::Os,
        };
        let total = clean_log_len(&recs);
        let at = 8 + rng.below((total - 8) as usize) as u64;
        let with_checkpoints = rng.bool();

        let vfs = Arc::new(FaultFs::new());
        vfs.inject(Fault::TornAppend {
            path: WAL_FILE.into(),
            at,
        });
        let r = open(&vfs, policy).unwrap();
        let mut acked = 0usize;
        let mut synced = 0u64;
        for rec in &recs {
            match r.storage.log(rec) {
                Ok(_) => {
                    acked += 1;
                    synced = r.storage.synced_lsn();
                    if with_checkpoints && acked.is_multiple_of(3) {
                        r.storage.checkpoint(&states[acked]).unwrap();
                        synced = r.storage.synced_lsn();
                    }
                }
                Err(StorageError::Injected(_)) => break,
                Err(e) => panic!("seed {seed}: unexpected error {e}"),
            }
        }
        vfs.crash();
        let recovered = assert_prefix_state(&vfs, &states, policy);
        // durable lower bound: the recovered state must be reachable from
        // some prefix at or beyond the last synced mutation (and at or
        // below the acked count — unacked mutations never half-apply)
        assert!(
            states[synced as usize..=acked].contains(&recovered),
            "seed {seed}: recovered state outside [synced={synced}, acked={acked}]"
        );
        // recovery repaired the log; a second open must agree with itself
        let again = open(&vfs, policy).unwrap();
        assert_eq!(
            again.tables, recovered,
            "seed {seed}: reopen not idempotent"
        );
        assert_eq!(again.report.torn_tail_repaired_at, None);
    }
}

/// Compaction equivalence: for every checkpoint position, snapshot ⊕
/// tail replay recovers the same state as full-log replay, and the two
/// states re-encode to byte-identical snapshots.
#[test]
fn snapshot_plus_tail_equals_full_replay_at_every_cut() {
    let recs = workload(&mut TestRng::new(2024), 10);
    let states = prefix_states(&recs);
    let full = Arc::new(FaultFs::new());
    {
        let r = open(&full, FsyncPolicy::Always).unwrap();
        for rec in &recs {
            r.storage.log(rec).unwrap();
        }
    }
    let full_state = open(&full, FsyncPolicy::Always).unwrap().tables;
    for cut in 0..=recs.len() {
        let vfs = Arc::new(FaultFs::new());
        let r = open(&vfs, FsyncPolicy::Always).unwrap();
        for rec in &recs[..cut] {
            r.storage.log(rec).unwrap();
        }
        r.storage.checkpoint(&states[cut]).unwrap();
        for rec in &recs[cut..] {
            r.storage.log(rec).unwrap();
        }
        drop(r);
        let compacted = open(&vfs, FsyncPolicy::Always).unwrap().tables;
        assert_eq!(compacted, full_state, "cut at {cut}");
        // byte-identical re-encoding of the two recovered states
        let a = FaultFs::new();
        let b = FaultFs::new();
        snapshot::write_snapshot(&a, 1, &full_state).unwrap();
        snapshot::write_snapshot(&b, 1, &compacted).unwrap();
        assert_eq!(
            a.read(snapshot::SNAP_FILE).unwrap().unwrap(),
            b.read(snapshot::SNAP_FILE).unwrap().unwrap(),
            "cut at {cut}: snapshots not byte-identical"
        );
    }
}

/// Group commit under torn-write crashes. Transactions are logged as one
/// frame each via `log_batch` (multi-op ⇒ an atomic `Batch` record) and
/// acked only after `group_sync` reports their LSN durable — the engine's
/// commit protocol. Crashing at (a sample of) every byte offset, recovery
/// must restore exactly the acked transactions: group commit defers the
/// fsync but must never weaken the acked ⇒ durable contract, and a torn
/// batch must vanish whole, never replay a prefix of its operations.
#[test]
fn group_commit_torn_append_recovers_exactly_the_acked_transactions() {
    // chunk a generated workload into transactions of 1–3 operations
    let flat = workload(&mut TestRng::new(0xB417), 14);
    let mut txs: Vec<Vec<WalRecord>> = Vec::new();
    let mut rest = flat.as_slice();
    let mut size = 1usize;
    while !rest.is_empty() {
        let take = size.min(rest.len());
        txs.push(rest[..take].to_vec());
        rest = &rest[take..];
        size = size % 3 + 1;
    }
    // the tx-granular oracle: each batch applies atomically or not at all
    let units: Vec<WalRecord> = txs
        .iter()
        .map(|t| {
            if t.len() == 1 {
                t[0].clone()
            } else {
                WalRecord::Batch(t.clone())
            }
        })
        .collect();
    let states = prefix_states(&units);
    let total = {
        let vfs = Arc::new(FaultFs::new());
        let r = open(&vfs, FsyncPolicy::Always).unwrap();
        for tx in &txs {
            r.storage.log_batch(tx.clone()).unwrap();
            r.storage.group_sync().unwrap();
        }
        vfs.written_len(WAL_FILE)
    };

    let mut at = 8;
    while at < total {
        let vfs = Arc::new(FaultFs::new());
        vfs.inject(Fault::TornAppend {
            path: WAL_FILE.into(),
            at,
        });
        let r = open(&vfs, FsyncPolicy::Always).unwrap();
        let mut acked = 0usize;
        let mut crashed = false;
        for tx in &txs {
            let committed = r
                .storage
                .log_batch(tx.clone())
                .and_then(|lsn| r.storage.group_sync().map(|synced| synced >= lsn));
            match committed {
                Ok(covered) => {
                    assert!(covered, "group_sync returned a stale LSN");
                    acked += 1;
                }
                Err(StorageError::Injected(_)) | Err(StorageError::Io(_)) => {
                    crashed = true;
                    break;
                }
                Err(e) => panic!("unexpected error at byte {at}: {e}"),
            }
        }
        assert!(crashed, "fault at byte {at} never fired");
        vfs.crash();
        let recovered = assert_prefix_state(&vfs, &states, FsyncPolicy::Always);
        assert_eq!(
            recovered, states[acked],
            "crash at byte {at}: recovered state differs from the {acked} acked transactions"
        );
        at += stride() as u64;
    }
}

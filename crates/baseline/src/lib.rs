//! # `ferry-baseline` — the HaskellDB-style comparator
//!
//! A faithful Rust transliteration of the embedding style of HaskellDB
//! \[17\] as used in the paper's Figure 4: queries are built with a
//! relational-monad-flavoured combinator API (`table`, `restrict`,
//! `project`, `unique`) and **each `Query` value compiles to exactly one
//! SQL statement**. There is no nested-result support and no avalanche
//! safety: a program computing `[(cat, [meaning])]` *must* run one query
//! to enumerate the categories and then loop **in the client**, issuing
//! one further query per category —
//!
//! ```haskell
//! cs <- doQuery getCats
//! sequence $ map (\c -> do m <- doQuery $ getCatFeatures $ c ! cat
//!                          return (c, m)) cs
//! ```
//!
//! — the query avalanche whose cost Table 1 measures. The generated SQL
//! runs through the same `ferry-sql` front-end and the same engine as the
//! Ferry bundles, so Table 1 compares compilation strategies, not engines.

use ferry_algebra::Rel;
use ferry_engine::Database;
use ferry_sql::{execute_sql, SqlError};
use std::fmt::Write;

/// A scalar expression over query columns (the fragment Fig. 4 needs).
#[derive(Debug, Clone)]
pub enum Expr {
    Col { alias: String, name: String },
    Str(String),
    Int(i64),
    Eq(Box<Expr>, Box<Expr>),
    Ne(Box<Expr>, Box<Expr>),
    Lt(Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// `a .==. b`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Eq(Box::new(self), Box::new(other))
    }

    /// `a ./=. b`.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Ne(Box::new(self), Box::new(other))
    }

    /// `a .<. b`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Lt(Box::new(self), Box::new(other))
    }

    /// `a .&&. b`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    fn render(&self, out: &mut String) {
        match self {
            Expr::Col { alias, name } => {
                let _ = write!(out, "{alias}.{name}");
            }
            Expr::Str(s) => {
                let _ = write!(out, "'{}'", s.replace('\'', "''"));
            }
            Expr::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Expr::Eq(l, r) | Expr::Ne(l, r) | Expr::Lt(l, r) | Expr::And(l, r) => {
                let op = match self {
                    Expr::Eq(..) => "=",
                    Expr::Ne(..) => "<>",
                    Expr::Lt(..) => "<",
                    _ => "AND",
                };
                out.push('(');
                l.render(out);
                let _ = write!(out, " {op} ");
                r.render(out);
                out.push(')');
            }
        }
    }
}

/// `constant v` for strings.
pub fn constant(v: &str) -> Expr {
    Expr::Str(v.to_string())
}

/// `constant v` for integers.
pub fn constant_int(v: i64) -> Expr {
    Expr::Int(v)
}

/// A handle to one `table …` generator inside a query (HaskellDB's `Rel`).
#[derive(Debug, Clone)]
pub struct RelHandle {
    alias: String,
}

impl RelHandle {
    /// `rel ! field`.
    pub fn col(&self, name: &str) -> Expr {
        Expr::Col {
            alias: self.alias.clone(),
            name: name.to_string(),
        }
    }
}

/// One HaskellDB-style query: compiles to exactly one SQL statement.
#[derive(Debug, Clone, Default)]
pub struct Query {
    froms: Vec<(String, String)>,
    restricts: Vec<Expr>,
    projection: Vec<(String, Expr)>,
    unique: bool,
    order_by: Vec<(String, bool)>,
}

impl Query {
    pub fn new() -> Query {
        Query::default()
    }

    /// `t <- table name`.
    pub fn table(&mut self, name: &str) -> RelHandle {
        let alias = format!("a{:04}", self.froms.len());
        self.froms.push((name.to_string(), alias.clone()));
        RelHandle { alias }
    }

    /// `restrict expr`.
    pub fn restrict(&mut self, e: Expr) {
        self.restricts.push(e);
    }

    /// `project (field << expr)` — appends one output column.
    pub fn project(&mut self, name: &str, e: Expr) {
        self.projection.push((name.to_string(), e));
    }

    /// `unique` — duplicate elimination.
    pub fn unique(&mut self) {
        self.unique = true;
    }

    /// deterministic output order (HaskellDB exposes `order`; we use it to
    /// keep measurements reproducible).
    pub fn order(&mut self, col: &str, desc: bool) {
        self.order_by.push((col.to_string(), desc));
    }

    /// Render the single SQL statement this query denotes.
    pub fn sql(&self) -> String {
        let mut sql = String::from("SELECT ");
        if self.unique {
            sql.push_str("DISTINCT ");
        }
        let items: Vec<String> = self
            .projection
            .iter()
            .map(|(name, e)| {
                let mut s = String::new();
                e.render(&mut s);
                format!("{s} AS {name}")
            })
            .collect();
        sql.push_str(&items.join(", "));
        if !self.froms.is_empty() {
            sql.push_str(" FROM ");
            let fs: Vec<String> = self
                .froms
                .iter()
                .map(|(t, a)| format!("{t} AS {a}"))
                .collect();
            sql.push_str(&fs.join(", "));
        }
        if !self.restricts.is_empty() {
            sql.push_str(" WHERE ");
            let ps: Vec<String> = self
                .restricts
                .iter()
                .map(|e| {
                    let mut s = String::new();
                    e.render(&mut s);
                    s
                })
                .collect();
            sql.push_str(&ps.join(" AND "));
        }
        if !self.order_by.is_empty() {
            sql.push_str(" ORDER BY ");
            let os: Vec<String> = self
                .order_by
                .iter()
                .map(|(c, d)| format!("{c} {}", if *d { "DESC" } else { "ASC" }))
                .collect();
            sql.push_str(&os.join(", "));
        }
        sql.push(';');
        sql
    }
}

/// `doQuery` — dispatch the query's single SQL statement to the database.
/// Each call pins its own snapshot: one statement, one catalog version.
pub fn do_query(db: &Database, q: &Query) -> Result<Rel, SqlError> {
    execute_sql(&db.snapshot(), &q.sql())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferry_algebra::{Schema, Ty, Value};

    fn db() -> Database {
        let db = Database::new();
        db.create_table(
            "facilities",
            Schema::of(&[("fac", Ty::Str), ("cat", Ty::Str)]),
            vec!["fac"],
        )
        .unwrap();
        db.insert(
            "facilities",
            vec![
                vec![Value::str("SQL"), Value::str("QLA")],
                vec![Value::str("LINQ"), Value::str("LIN")],
                vec![Value::str("Links"), Value::str("LIN")],
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn renders_fig4_style_sql() {
        let mut q = Query::new();
        let facs = q.table("facilities");
        q.restrict(facs.col("cat").eq(constant("LIN")));
        q.project("fac", facs.col("fac"));
        q.unique();
        q.order("fac", false);
        assert_eq!(
            q.sql(),
            "SELECT DISTINCT a0000.fac AS fac FROM facilities AS a0000 \
             WHERE (a0000.cat = 'LIN') ORDER BY fac ASC;"
        );
    }

    #[test]
    fn one_query_value_is_one_statement() {
        let db = db();
        let mut q = Query::new();
        let facs = q.table("facilities");
        q.project("cat", facs.col("cat"));
        q.unique();
        q.order("cat", false);
        db.reset_stats();
        let r = do_query(&db, &q).unwrap();
        assert_eq!(db.stats().queries, 1);
        let rows = r.rows();
        let cats: Vec<&str> = rows.iter().map(|r| r[0].as_str().unwrap()).collect();
        assert_eq!(cats, vec!["LIN", "QLA"]);
    }

    #[test]
    fn client_side_loop_is_an_avalanche() {
        // the Fig. 4 program shape: one query per category
        let db = db();
        db.reset_stats();
        let mut outer = Query::new();
        let facs = outer.table("facilities");
        outer.project("cat", facs.col("cat"));
        outer.unique();
        outer.order("cat", false);
        let cats = do_query(&db, &outer).unwrap();
        let mut result = Vec::new();
        for row in cats.rows().iter() {
            let cat = row[0].as_str().unwrap().to_string();
            let mut inner = Query::new();
            let f = inner.table("facilities");
            inner.restrict(f.col("cat").eq(constant(&cat)));
            inner.project("fac", f.col("fac"));
            inner.order("fac", false);
            let rows = do_query(&db, &inner).unwrap();
            result.push((cat, rows.len()));
        }
        // 1 outer + 2 inner queries — N+1 by construction
        assert_eq!(db.stats().queries, 3);
        assert_eq!(result, vec![("LIN".to_string(), 2), ("QLA".to_string(), 1)]);
    }

    #[test]
    fn joins_and_int_predicates() {
        let db = db();
        db.create_table(
            "sizes",
            Schema::of(&[("cat", Ty::Str), ("n", Ty::Int)]),
            vec!["cat"],
        )
        .unwrap();
        db.insert(
            "sizes",
            vec![
                vec![Value::str("LIN"), Value::Int(2)],
                vec![Value::str("QLA"), Value::Int(1)],
            ],
        )
        .unwrap();
        let mut q = Query::new();
        let f = q.table("facilities");
        let s = q.table("sizes");
        q.restrict(
            f.col("cat")
                .eq(s.col("cat"))
                .and(constant_int(1).lt(s.col("n"))),
        );
        q.project("fac", f.col("fac"));
        q.order("fac", false);
        let r = do_query(&db, &q).unwrap();
        let rows = r.rows();
        let facs: Vec<&str> = rows.iter().map(|r| r[0].as_str().unwrap()).collect();
        assert_eq!(facs, vec!["LINQ", "Links"]);
    }
}

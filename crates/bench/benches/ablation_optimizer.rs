//! **Experiment X1 — optimizer ablation.** Loop-lifting is deliberately
//! compositional; the Pathfinder-role rewriter (`ferry-optimizer`) exists
//! to make the emitted plans executable at reasonable cost (§3, \[10, 11\]).
//! This bench quantifies the design choice: execution time of the running
//! example and of `dotp` with the optimizer on vs. off, plus the
//! plan-size/width reductions (printed once).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ferry::prelude::*;
use ferry_bench::dotp::{dotp_data, dotp_database, dotp_query};
use ferry_bench::table1::dsh_query;
use ferry_bench::workload::scaled_dataset;
use ferry_optimizer::{optimize_with_stats, reachable_width};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_optimizer");
    group.sample_size(10);

    // Workload sizes are chosen so the *unoptimized* plans stay runnable:
    // without join recovery, loop-lifted plans materialise loop × table
    // crosses, so the raw variants are quadratic in the data — which is
    // precisely the effect this ablation quantifies.

    // workload 1: the running example at 60 categories
    let conn = Connection::new(scaled_dataset(60, 2));
    let bundle = conn.compile(&dsh_query()).expect("compile");
    let roots = bundle.roots();
    let (opt_plan, opt_roots, stats) = optimize_with_stats(&bundle.plan, &roots);
    eprintln!(
        "running example: {} → {} operators, width {} → {}",
        stats.nodes_before,
        stats.nodes_after,
        reachable_width(&bundle.plan, &roots),
        reachable_width(&opt_plan, &opt_roots)
    );
    group.bench_function(BenchmarkId::new("running_example", "raw"), |b| {
        b.iter(|| {
            conn.database()
                .execute_bundle(&bundle.plan, &roots)
                .expect("run")
        })
    });
    group.bench_function(BenchmarkId::new("running_example", "optimized"), |b| {
        b.iter(|| {
            conn.database()
                .execute_bundle(&opt_plan, &opt_roots)
                .expect("run")
        })
    });

    // workload 2: dotp at 2k/200
    let (sv, v) = dotp_data(2_000, 200, 9);
    let conn2 = Connection::new(dotp_database(&sv, &v));
    let bundle2 = conn2.compile(&dotp_query()).expect("compile");
    let roots2 = bundle2.roots();
    let (opt_plan2, opt_roots2, stats2) = optimize_with_stats(&bundle2.plan, &roots2);
    eprintln!(
        "dotp: {} → {} operators, width {} → {}",
        stats2.nodes_before,
        stats2.nodes_after,
        reachable_width(&bundle2.plan, &roots2),
        reachable_width(&opt_plan2, &opt_roots2)
    );
    group.bench_function(BenchmarkId::new("dotp", "raw"), |b| {
        b.iter(|| {
            conn2
                .database()
                .execute_bundle(&bundle2.plan, &roots2)
                .expect("run")
        })
    });
    group.bench_function(BenchmarkId::new("dotp", "optimized"), |b| {
        b.iter(|| {
            conn2
                .database()
                .execute_bundle(&opt_plan2, &opt_roots2)
                .expect("run")
        })
    });

    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

//! Prepared re-execution vs the cold path.
//!
//! The plan cache exists to amortise loop-lifting + optimisation across
//! repeated queries: a cache hit should cost only dispatch + stitch +
//! decode. This bench measures the running example (§2) three ways —
//! cold (cache cleared every iteration: full compile), `from_q` on a
//! warm cache (hash + lookup + execute), and a `Prepared` handle
//! (execute only) — and reports the hit/miss counters `QueryStats`
//! accumulated.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ferry::prelude::*;
use ferry_bench::table1::dsh_query;
use ferry_bench::workload::scaled_dataset;

fn bench_prepared(c: &mut Criterion) {
    let conn = Connection::new(scaled_dataset(17, 2)).with_optimizer(ferry_optimizer::rewriter());
    let q = dsh_query();

    let mut group = c.benchmark_group("prepared");
    group.sample_size(20);

    group.bench_function("cold_compile_and_execute", |b| {
        b.iter(|| {
            conn.clear_plan_cache();
            black_box(conn.from_q(&q).unwrap())
        })
    });

    group.bench_function("from_q_warm_cache", |b| {
        conn.clear_plan_cache();
        b.iter(|| black_box(conn.from_q(&q).unwrap()))
    });

    let prepared = conn.prepare(&q).unwrap();
    group.bench_function("prepared_execute", |b| {
        b.iter(|| black_box(conn.execute(&prepared).unwrap()))
    });

    group.finish();

    let stats = conn.database().stats();
    eprintln!(
        "plan cache over the whole bench: {} hits, {} misses",
        stats.cache_hits, stats.cache_misses
    );
    assert!(
        stats.cache_hits > 0 && stats.cache_misses > 0,
        "both paths must have been exercised: {} hits, {} misses",
        stats.cache_hits,
        stats.cache_misses
    );
}

criterion_group!(benches, bench_prepared);
criterion_main!(benches);

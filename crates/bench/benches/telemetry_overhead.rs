//! Telemetry overhead: the same engine workloads under the three
//! [`TelemetryConfig`] levels.
//!
//! Each iteration does what an instrumented `from_q` does — begin a query
//! (a no-op guard below `Full`), execute, end the query — over the
//! `filter` and `compute_chain` plans of `engine_operators` (serial
//! vectorized engine, so the `off` medians are directly comparable to the
//! pinned `engine/filter_vec` / `engine/compute_chain_vec` baselines).
//! `off` vs `counters` isolates the atomic-counter cost per dispatch;
//! `counters` vs `full` adds span recording, per-node profile retention
//! and the trace-ring drain. The `off` and `counters` medians are pinned
//! in `BENCH_engine.json`: disabled-mode telemetry must stay free.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ferry_algebra::{BinOp, ColName, Expr, NodeId, Plan, Schema, Ty, Value};
use ferry_engine::{Database, ParConfig, TelemetryConfig, VecMode};
use std::sync::Arc;

fn int_table(rows: usize, modulus: i64) -> Vec<Vec<Value>> {
    (0..rows)
        .map(|i| vec![Value::Int(i as i64), Value::Int(i as i64 % modulus)])
        .collect()
}

fn db_at(config: TelemetryConfig) -> Database {
    let db = Database::new();
    db.set_par_config(ParConfig {
        threads: 1,
        vec: VecMode::Auto,
        ..ParConfig::default()
    });
    db.set_telemetry_config(config);
    db
}

fn bench_levels(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    n: usize,
    plan: &Plan,
    root: NodeId,
) {
    let levels = [
        ("off", TelemetryConfig::Off),
        ("counters", TelemetryConfig::Counters),
        ("full", TelemetryConfig::Full),
    ];
    for (tag, config) in levels {
        let db = db_at(config);
        let telemetry = db.telemetry().clone();
        group.bench_with_input(
            BenchmarkId::new(format!("{name}_{tag}"), n),
            &n,
            |bch, _| {
                bch.iter(|| {
                    let _q = telemetry.begin_query(0);
                    db.execute(plan, root).expect(name)
                })
            },
        );
    }
}

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry");
    const M: usize = 100_000;

    // filter at 100k rows — the short-per-node workload where fixed
    // per-dispatch costs show up the most
    {
        let mut plan = Plan::new();
        let l = plan.lit(
            Schema::of(&[("a", Ty::Int), ("k", Ty::Int)]),
            int_table(M, 10),
        );
        let f = plan.select(l, Expr::bin(BinOp::Lt, Expr::col("k"), Expr::lit(5i64)));
        bench_levels(&mut group, "filter", M, &plan, f);
    }

    // the 8-operator arithmetic chain at 100k rows — kernel-bound, so
    // relative overhead is small and per-span cost is what remains
    {
        let mut plan = Plan::new();
        let l = plan.lit(
            Schema::of(&[("a", Ty::Int), ("k", Ty::Int)]),
            int_table(M, 97),
        );
        let a = Expr::col("a");
        let k = Expr::col("k");
        // ((a*2 + k) * 3 - a) + (k * k) - (a % 7) + 1
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(
                BinOp::Sub,
                Expr::bin(
                    BinOp::Add,
                    Expr::bin(
                        BinOp::Sub,
                        Expr::bin(
                            BinOp::Mul,
                            Expr::bin(
                                BinOp::Add,
                                Expr::bin(BinOp::Mul, a.clone(), Expr::lit(2i64)),
                                k.clone(),
                            ),
                            Expr::lit(3i64),
                        ),
                        a.clone(),
                    ),
                    Expr::bin(BinOp::Mul, k.clone(), k.clone()),
                ),
                Expr::bin(BinOp::Mod, a.clone(), Expr::lit(7i64)),
            ),
            Expr::lit(1i64),
        );
        let cch = plan.compute(l, "y", e);
        bench_levels(&mut group, "compute_chain", M, &plan, cch);
    }

    // a full `ferry.metrics` + `ferry.queries` scan: the cost of the
    // database describing itself — registry walk + profile-ring clone,
    // materialised into throwaway tables and filtered. Pinned so the
    // system-table layer cannot silently grow a per-scan cliff.
    {
        let cn = |s: &str| -> ColName { Arc::from(s) };
        let db = db_at(TelemetryConfig::Counters);
        // prime both sources: a few dispatches populate the engine
        // counters and the profile ring
        let mut prime = Plan::new();
        let l = prime.lit(
            Schema::of(&[("a", Ty::Int), ("k", Ty::Int)]),
            int_table(64, 10),
        );
        let f = prime.select(l, Expr::bin(BinOp::Lt, Expr::col("k"), Expr::lit(5i64)));
        for _ in 0..32 {
            db.execute(&prime, f).expect("prime");
        }
        let mut plan = Plan::new();
        let m = plan.table(
            "ferry.metrics",
            vec![
                (cn("kind"), Ty::Str),
                (cn("name"), Ty::Str),
                (cn("value"), Ty::Int),
            ],
            vec![cn("name")],
        );
        let ms = plan.select(m, Expr::bin(BinOp::Ge, Expr::col("value"), Expr::lit(0i64)));
        let q = plan.table(
            "ferry.queries",
            vec![
                (cn("elapsed_us"), Ty::Int),
                (cn("nodes"), Ty::Int),
                (cn("plan_hash"), Ty::Int),
                (cn("query_id"), Ty::Int),
                (cn("roots"), Ty::Int),
                (cn("trace_id"), Ty::Int),
            ],
            vec![cn("query_id")],
        );
        let qs = plan.select(
            q,
            Expr::bin(BinOp::Ge, Expr::col("elapsed_us"), Expr::lit(0i64)),
        );
        group.bench_with_input(BenchmarkId::new("system_scan", 2), &2, |bch, _| {
            bch.iter(|| {
                let snap = db.snapshot();
                let a = snap.execute(&plan, ms).expect("ferry.metrics scan");
                let b = snap.execute(&plan, qs).expect("ferry.queries scan");
                (a, b)
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);

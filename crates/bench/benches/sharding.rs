//! Hash-partitioned shard benchmarks: what partition pruning buys a
//! shard-key equality scan, what the shard-local path costs a group-by,
//! and how fast four shard WALs replay next to one flat WAL. Not a
//! paper artefact — the regression guard for the sharding layer.
//!
//! The `scan_pruned` / `scan_unsharded` pair is the acceptance check
//! for the planner: both run the identical plan over the identical
//! rows, serial, on one core — the only difference is that the sharded
//! scan's selection vector covers one shard in four. The win is
//! pruned *rows*, so it holds on any host regardless of core count.
//! Recovery benches run over the in-memory `FaultFs` (codec + framing
//! cost, not disk): on a single-core host parallel shard replay must
//! not lose to single-WAL replay, and on multi-core hosts the four
//! decoders run concurrently.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ferry_algebra::{
    plan::cn, plan::Aggregate, AggFun, BinOp, Expr, NodeId, Plan, Schema, Ty, Value,
};
use ferry_engine::{Database, DurabilityConfig, FsyncPolicy, FuseMode, ParConfig, VecMode};
use ferry_storage::{FaultFs, Vfs};
use std::sync::Arc;

/// Shard count under test everywhere in this file.
const S: usize = 4;
/// Rows in the scanned / grouped table.
const N: usize = 200_000;
/// Insert batches logged before the recovery benches (each batch is one
/// committed WAL record; sharded databases split it across the shard
/// WALs plus a commit marker). Bulk-load shaped — recovery time should
/// be dominated by row payload decode, which both layouts share, not by
/// per-frame framing, which the sharded layout pays 4× more often.
const BATCHES: usize = 64;
const BATCH_ROWS: usize = 256;

fn schema() -> Schema {
    Schema::of(&[("k", Ty::Int), ("v", Ty::Int)])
}

fn rows(n: usize) -> Vec<Vec<Value>> {
    (0..n)
        .map(|i| vec![Value::Int(i as i64 % 1000), Value::Int(i as i64)])
        .collect()
}

fn serial() -> ParConfig {
    ParConfig {
        threads: 1,
        vec: VecMode::Auto,
        fuse: FuseMode::Auto,
        ..ParConfig::default()
    }
}

/// Config for the group-by pair: shard-local grouping only engages with
/// worker threads (serially it is pure overhead and the planner skips
/// it), so both sides run with four workers.
fn par4() -> ParConfig {
    ParConfig {
        threads: 4,
        min_rows: 1024,
        vec: VecMode::Auto,
        fuse: FuseMode::Auto,
        ..ParConfig::default()
    }
}

/// `orders(k, v)` loaded into either a sharded (on `k`) or flat engine.
fn load(sharded: bool) -> Database {
    let db = if sharded {
        Database::new_sharded(S).expect("shard count")
    } else {
        Database::new()
    };
    db.set_par_config(serial());
    if sharded {
        db.create_table_sharded("orders", schema(), vec!["k"], "k")
            .expect("create");
    } else {
        db.create_table("orders", schema(), vec!["k"])
            .expect("create");
    }
    db.insert("orders", rows(N)).expect("insert");
    db
}

fn scan_plan() -> (Plan, NodeId) {
    let mut plan = Plan::new();
    let t = plan.table(
        "orders",
        vec![(cn("k"), Ty::Int), (cn("v"), Ty::Int)],
        vec![cn("k")],
    );
    let root = plan.select(t, Expr::bin(BinOp::Eq, Expr::col("k"), Expr::lit(37i64)));
    (plan, root)
}

fn group_plan() -> (Plan, NodeId) {
    let mut plan = Plan::new();
    let t = plan.table(
        "orders",
        vec![(cn("k"), Ty::Int), (cn("v"), Ty::Int)],
        vec![cn("k")],
    );
    let root = plan.group_by(
        t,
        vec![cn("k")],
        vec![
            Aggregate {
                fun: AggFun::CountAll,
                input: None,
                output: cn("n"),
            },
            Aggregate {
                fun: AggFun::Sum,
                input: Some(cn("v")),
                output: cn("s"),
            },
        ],
    );
    (plan, root)
}

/// Schema of the recovered table: a string column alongside the ints so
/// replay decodes realistic (allocation-bearing) payloads.
fn wide_schema() -> Schema {
    Schema::of(&[("k", Ty::Int), ("v", Ty::Int), ("tag", Ty::Str)])
}

/// A durable database (sharded or flat) holding the full insert
/// workload, returned as the VFS its WAL(s) live on.
fn prebuilt(sharded: bool) -> Arc<FaultFs> {
    let vfs = Arc::new(FaultFs::new());
    let config = DurabilityConfig::with_fsync(FsyncPolicy::Os);
    let db = if sharded {
        Database::open_sharded_with_vfs(vfs.clone() as Arc<dyn Vfs>, S, config).expect("open")
    } else {
        Database::open_with_vfs(vfs.clone() as Arc<dyn Vfs>, config).expect("open")
    };
    if sharded {
        db.create_table_sharded("orders", wide_schema(), vec!["k"], "k")
            .expect("create");
    } else {
        db.create_table("orders", wide_schema(), vec!["k"])
            .expect("create");
    }
    for b in 0..BATCHES {
        let batch = (0..BATCH_ROWS)
            .map(|j| {
                let i = b * BATCH_ROWS + j;
                vec![
                    Value::Int(i as i64 % 1000),
                    Value::Int(i as i64),
                    Value::str(["alpha", "beta", "gamma"][i % 3]),
                ]
            })
            .collect();
        db.insert("orders", batch).expect("insert");
    }
    db.sync().expect("sync");
    vfs
}

fn bench_sharding(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard");

    // shard-key equality scan: pruned (1 of 4 shards) vs flat full scan
    {
        let (plan, root) = scan_plan();
        let sharded = load(true);
        let flat = load(false);
        let want = flat.execute(&plan, root).expect("flat scan");
        assert_eq!(sharded.execute(&plan, root).expect("pruned scan"), want);
        group.bench_with_input(BenchmarkId::new("scan_pruned", N), &N, |bch, _| {
            bch.iter(|| sharded.execute(&plan, root).expect("pruned scan"))
        });
        group.bench_with_input(BenchmarkId::new("scan_unsharded", N), &N, |bch, _| {
            bch.iter(|| flat.execute(&plan, root).expect("flat scan"))
        });
    }

    // group-by on the shard key: shard-local partitions vs global table,
    // both under four workers (the path the shard-local planner targets)
    {
        let (plan, root) = group_plan();
        let sharded = load(true);
        let flat = load(false);
        sharded.set_par_config(par4());
        flat.set_par_config(par4());
        assert_eq!(
            sharded.execute(&plan, root).expect("sharded group"),
            flat.execute(&plan, root).expect("flat group")
        );
        group.bench_with_input(BenchmarkId::new("group_by", N), &N, |bch, _| {
            bch.iter(|| sharded.execute(&plan, root).expect("sharded group"))
        });
        group.bench_with_input(BenchmarkId::new("group_by_unsharded", N), &N, |bch, _| {
            bch.iter(|| flat.execute(&plan, root).expect("flat group"))
        });
    }

    // recovery: replaying four shard WALs vs one flat WAL of the same
    // workload
    {
        let vfs = prebuilt(true);
        let config = DurabilityConfig::with_fsync(FsyncPolicy::Os);
        group.bench_with_input(
            BenchmarkId::new("recover_parallel", BATCHES),
            &BATCHES,
            |bch, _| {
                bch.iter(|| {
                    let db =
                        Database::open_sharded_with_vfs(vfs.clone() as Arc<dyn Vfs>, S, config)
                            .expect("recover sharded");
                    let t = db.table("orders").expect("orders");
                    assert_eq!(t.rows.rows().len(), BATCHES * BATCH_ROWS);
                    t.rows.rows().len()
                })
            },
        );
        let flat_vfs = prebuilt(false);
        group.bench_with_input(
            BenchmarkId::new("recover_single", BATCHES),
            &BATCHES,
            |bch, _| {
                bch.iter(|| {
                    let db = Database::open_with_vfs(flat_vfs.clone() as Arc<dyn Vfs>, config)
                        .expect("recover flat");
                    let t = db.table("orders").expect("orders");
                    assert_eq!(t.rows.rows().len(), BATCHES * BATCH_ROWS);
                    t.rows.rows().len()
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_sharding);
criterion_main!(benches);

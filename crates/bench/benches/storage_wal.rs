//! Durability-layer micro-benchmarks: WAL append throughput under each
//! fsync policy, and recovery by log replay vs. snapshot restore. Not a
//! paper artefact — a regression guard for the storage substrate.
//!
//! All benches run over the in-memory `FaultFs` so they measure the
//! codec + framing + policy bookkeeping, not the host's disk; real-disk
//! latency is whatever `fsync(2)` costs and is not a property of this
//! code.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ferry_algebra::{Row, Schema, Ty, Value};
use ferry_storage::{DurabilityConfig, FaultFs, FsyncPolicy, Storage, Vfs, WalRecord};
use ferry_telemetry::Registry;
use std::sync::Arc;

/// Number of insert records appended / replayed per iteration.
const RECORDS: usize = 1_000;
/// Rows per insert record.
const ROWS: usize = 8;

fn schema() -> Schema {
    Schema::of(&[("id", Ty::Int), ("name", Ty::Str), ("qty", Ty::Int)])
}

fn rows(tag: usize) -> Vec<Row> {
    (0..ROWS)
        .map(|j| {
            vec![
                Value::Int((tag * ROWS + j) as i64),
                Value::str(format!("name_{tag}_{j}")),
                Value::Int((j * 3) as i64),
            ]
        })
        .collect()
}

fn open(vfs: &Arc<FaultFs>, fsync: FsyncPolicy) -> Storage {
    Storage::open(
        vfs.clone() as Arc<dyn Vfs>,
        DurabilityConfig::with_fsync(fsync),
        &Registry::default(),
    )
    .expect("open")
    .storage
}

/// A log holding the whole workload: `create_table` + RECORDS inserts.
fn prebuilt_log() -> Arc<FaultFs> {
    let vfs = Arc::new(FaultFs::new());
    let storage = open(&vfs, FsyncPolicy::Os);
    storage
        .log(&WalRecord::CreateTable {
            name: "bench".into(),
            schema: schema(),
            keys: vec!["id".into()],
        })
        .unwrap();
    for i in 0..RECORDS {
        storage
            .log(&WalRecord::Insert {
                table: "bench".into(),
                rows: rows(i),
            })
            .unwrap();
    }
    vfs
}

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage");

    // append throughput per fsync policy (FaultFs: the sync itself is a
    // counter bump, so the policies differ only in bookkeeping)
    for (label, policy) in [
        ("wal_append_always", FsyncPolicy::Always),
        ("wal_append_everyn8", FsyncPolicy::EveryN(8)),
        ("wal_append_os", FsyncPolicy::Os),
    ] {
        group.bench_with_input(BenchmarkId::new(label, RECORDS), &RECORDS, |bch, _| {
            bch.iter(|| {
                let vfs = Arc::new(FaultFs::new());
                let storage = open(&vfs, policy);
                for i in 0..RECORDS {
                    storage
                        .log(&WalRecord::Insert {
                            table: "bench".into(),
                            rows: rows(i),
                        })
                        .expect("append");
                }
                storage.sync().expect("sync");
                vfs.written_len(ferry_storage::WAL_FILE)
            })
        });
    }

    // crash recovery: decode + CRC-check + apply the full log
    {
        let vfs = prebuilt_log();
        group.bench_with_input(
            BenchmarkId::new("recover_replay", RECORDS),
            &RECORDS,
            |bch, _| {
                bch.iter(|| {
                    let r = Storage::open(
                        vfs.clone() as Arc<dyn Vfs>,
                        DurabilityConfig::default(),
                        &Registry::default(),
                    )
                    .expect("recover");
                    assert_eq!(r.report.wal_records_applied, RECORDS + 1);
                    r.tables.len()
                })
            },
        );
    }

    // the same state recovered from a snapshot instead of replay
    {
        let vfs = prebuilt_log();
        let storage = open(&vfs, FsyncPolicy::Os);
        let recovered = Storage::open(
            vfs.clone() as Arc<dyn Vfs>,
            DurabilityConfig::default(),
            &Registry::default(),
        )
        .expect("recover");
        storage.checkpoint(&recovered.tables).expect("checkpoint");
        group.bench_with_input(
            BenchmarkId::new("recover_snapshot", RECORDS),
            &RECORDS,
            |bch, _| {
                bch.iter(|| {
                    let r = Storage::open(
                        vfs.clone() as Arc<dyn Vfs>,
                        DurabilityConfig::default(),
                        &Registry::default(),
                    )
                    .expect("recover");
                    assert_eq!(r.report.wal_records_applied, 0);
                    r.tables.len()
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);

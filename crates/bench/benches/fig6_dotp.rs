//! **Experiment F5/F6 — sparse-vector multiplication.** The DPH comparison
//! of §4.2: the same `dotp` program evaluated (a) by the database
//! coprocessor via loop-lifting (Fig. 6 right — `bpermuteP` becomes an
//! equi-join over `pos`), (b) by DPH-style vectorised bulk array
//! operations (Fig. 6 left), and (c) by a plain sequential loop.
//!
//! The figure in the paper is a *structural* comparison of intermediate
//! code (no timings); the structural correspondence is asserted in
//! `ferry-bench`'s unit tests and in `tests/dotp_plan.rs`. This bench adds
//! the runtime dimension: the relational evaluation pays constant
//! per-query overhead but scales in bulk like the vectorised code.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ferry::prelude::*;
use ferry_bench::dotp::{dotp_data, dotp_database, dotp_query, dotp_scalar, dotp_vectorised};

fn bench_dotp(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_dotp");
    for &(n, nnz) in &[(1_000usize, 100usize), (10_000, 1_000), (100_000, 10_000)] {
        let (sv, v) = dotp_data(n, nnz, 42);
        let conn =
            Connection::new(dotp_database(&sv, &v)).with_optimizer(ferry_optimizer::rewriter());
        let expected = dotp_scalar(&sv, &v);
        let bundle = conn.compile(&dotp_query()).expect("compile");

        group.bench_with_input(BenchmarkId::new("ferry_db", n), &n, |b, _| {
            b.iter(|| {
                let rels = conn.execute_bundle(&bundle).expect("execute");
                let val = ferry::stitch::stitch(&rels, &bundle.queries).expect("stitch");
                let got = f64::from_val(&val).expect("decode");
                assert!((got - expected).abs() < 1e-6);
                got
            })
        });
        group.bench_with_input(BenchmarkId::new("dph_vectorised", n), &n, |b, _| {
            b.iter(|| {
                let got = dotp_vectorised(&sv, &v);
                assert!((got - expected).abs() < 1e-9);
                got
            })
        });
        group.bench_with_input(BenchmarkId::new("scalar", n), &n, |b, _| {
            b.iter(|| dotp_scalar(&sv, &v))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dotp);
criterion_main!(benches);

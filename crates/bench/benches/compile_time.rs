//! **Experiment X2 — compile-time scaling.** Loop-lifting is syntax-
//! directed and type-directed: compilation must take time proportional to
//! the *program*, never to the *database*. Two measurements:
//!
//! * the same program compiled against a 10-row and a 100 000-row
//!   database — times must coincide (data-independence),
//! * programs of growing nesting depth — times must grow smoothly with
//!   program size (no blow-up from the compositional translation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ferry::prelude::*;
use ferry_bench::table1::dsh_query;
use ferry_bench::workload::scaled_dataset;

/// A pipeline of `depth` stacked map/filter stages over `facilities`.
fn deep_pipeline(depth: usize) -> Q<Vec<i64>> {
    let base = table::<(String, String)>("facilities");
    let mut out: Q<Vec<i64>> = map(|_t: Q<(String, String)>| toq(&1i64), base);
    for i in 0..depth {
        let k = i as i64;
        out = map(
            move |x: Q<i64>| x + toq(&k),
            filter(|x: Q<i64>| x.ge(&toq(&0i64)), out),
        );
    }
    out
}

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_time");

    // data-independence: same program, databases of very different size
    for &categories in &[5usize, 50_000] {
        let conn = Connection::new(scaled_dataset(categories, 2));
        group.bench_with_input(
            BenchmarkId::new("running_example_dbsize", categories),
            &categories,
            |b, _| b.iter(|| conn.compile(&dsh_query()).expect("compile")),
        );
    }

    // program-size scaling
    let conn = Connection::new(scaled_dataset(5, 2));
    for &depth in &[1usize, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::new("pipeline_depth", depth), &depth, |b, _| {
            b.iter(|| conn.compile(&deep_pipeline(depth)).expect("compile"))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);

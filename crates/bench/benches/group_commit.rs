//! Group-commit throughput: N concurrent writers sharing batched fsyncs
//! versus the same commit count paying one fsync each, over a FaultFs
//! with simulated device latency (`set_sync_delay`) — without it every
//! fsync is a memcpy and batching has nothing to amortise.
//!
//! Alongside the timed medians the bench prints the measured
//! fsyncs-per-commit ratio, the number the paper-repro acceptance pins
//! (≥ 4× fewer fsyncs at 8 writers; the engine test
//! `concurrent_writers_share_fsyncs_at_least_4x_and_stay_durable`
//! enforces it, this bench records it).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ferry_algebra::{Schema, Ty, Value};
use ferry_engine::{Database, DurabilityConfig, FsyncPolicy};
use ferry_storage::{FaultFs, Vfs};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Total commits per iteration (divisible by `WRITERS`).
const COMMITS: usize = 200;
const WRITERS: usize = 8;
/// Simulated fsync latency — modest for bench runtime; the sharing ratio
/// is about overlap, not the absolute delay.
const SYNC_DELAY: Duration = Duration::from_micros(200);

fn open_db() -> (Arc<FaultFs>, Arc<Database>) {
    let vfs = Arc::new(FaultFs::new());
    let db = Database::open_with_vfs(
        vfs.clone() as Arc<dyn Vfs>,
        DurabilityConfig::with_fsync(FsyncPolicy::Always),
    )
    .unwrap();
    db.create_table(
        "ledger",
        Schema::of(&[("writer", Ty::Int), ("seq", Ty::Int)]),
        vec!["writer", "seq"],
    )
    .unwrap();
    vfs.set_sync_delay(SYNC_DELAY);
    (vfs, Arc::new(db))
}

fn commit_burst(db: &Arc<Database>, writers: usize) {
    let per_writer = COMMITS / writers;
    if writers == 1 {
        for seq in 0..COMMITS {
            db.insert("ledger", vec![vec![Value::Int(0), Value::Int(seq as i64)]])
                .unwrap();
        }
        return;
    }
    let handles: Vec<_> = (0..writers)
        .map(|w| {
            let db = db.clone();
            thread::spawn(move || {
                for seq in 0..per_writer {
                    db.insert(
                        "ledger",
                        vec![vec![Value::Int(w as i64), Value::Int(seq as i64)]],
                    )
                    .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

fn fsyncs_for(writers: usize) -> u64 {
    let (vfs, db) = open_db();
    let base = vfs.syncs();
    commit_burst(&db, writers);
    vfs.syncs() - base
}

fn bench(c: &mut Criterion) {
    // evidence line: measured fsync sharing at the acceptance shape
    let solo = fsyncs_for(1);
    let grouped = fsyncs_for(WRITERS);
    eprintln!(
        "group_commit: {COMMITS} commits -> {solo} fsyncs serial, \
         {grouped} fsyncs at {WRITERS} writers ({:.1}x fewer)",
        solo as f64 / grouped as f64
    );
    assert!(
        grouped * 2 <= solo,
        "group commit stopped sharing fsyncs: {grouped} vs {solo}"
    );

    let mut g = c.benchmark_group("storage");
    g.sample_size(10);
    g.bench_with_input(
        BenchmarkId::new("group_commit_w8", COMMITS),
        &COMMITS,
        |b, _| {
            // open outside the timed body: we measure commits, not recovery
            let (_vfs, db) = open_db();
            b.iter(|| commit_burst(&db, WRITERS));
        },
    );
    g.bench_with_input(
        BenchmarkId::new("always_serial", COMMITS),
        &COMMITS,
        |b, _| {
            let (_vfs, db) = open_db();
            b.iter(|| commit_burst(&db, 1));
        },
    );
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Loopback throughput of the wire protocol: prepared re-execution
//! through `ferry-server`, one client and four concurrent clients.
//!
//! What one iteration pays: frame encode/decode both ways, one session
//! round-trip through the bounded work queue and worker pool, one
//! plan-cache hit, one engine dispatch over a pinned snapshot, and the
//! chunked result stream back. The 4-client variant measures how the
//! admission-controlled pool multiplexes concurrent sessions (on the
//! 1-core CI host this is interleaving, not parallelism).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ferry::Connection;
use ferry_algebra::{Schema, Ty, Value};
use ferry_engine::Database;
use ferry_server::{Client, Server, ServerConfig, ServerHandle};
use std::net::SocketAddr;
use std::sync::mpsc;

const ROWS: i64 = 1000;
const STMT: &str = "SELECT n.k AS k, n.v AS v FROM nums AS n \
                    WHERE n.v >= 500 ORDER BY k ASC;";

fn start_server() -> ServerHandle {
    let db = Database::new();
    db.create_table(
        "nums",
        Schema::of(&[("k", Ty::Int), ("v", Ty::Int)]),
        vec!["k"],
    )
    .unwrap();
    db.insert(
        "nums",
        (0..ROWS)
            .map(|k| vec![Value::Int(k), Value::Int((k * 37) % 1000)])
            .collect(),
    )
    .unwrap();
    Server::bind(Connection::new(db), "127.0.0.1:0", ServerConfig::default()).unwrap()
}

/// A client thread that runs one prepared execution per `go` signal.
struct Runner {
    go: mpsc::Sender<()>,
    done: mpsc::Receiver<usize>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Runner {
    fn spawn(addr: SocketAddr) -> Runner {
        let (go, go_rx) = mpsc::channel::<()>();
        let (done_tx, done) = mpsc::channel::<usize>();
        let handle = std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            let (stmt, _) = c.prepare(STMT).unwrap();
            while go_rx.recv().is_ok() {
                let rs = c.execute(stmt, &[]).unwrap();
                done_tx.send(black_box(rs.rows.len())).unwrap();
            }
            let _ = c.close();
        });
        Runner {
            go,
            done,
            handle: Some(handle),
        }
    }
}

impl Drop for Runner {
    fn drop(&mut self) {
        let (tx, _) = mpsc::channel();
        self.go = tx; // close the original sender: the thread's recv errors
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn bench_server_qps(c: &mut Criterion) {
    let handle = start_server();
    let addr = handle.addr();

    let mut group = c.benchmark_group("server");
    group.sample_size(20);

    {
        let mut client = Client::connect(addr).unwrap();
        let (stmt, _) = client.prepare(STMT).unwrap();
        group.bench_function(format!("qps_1client/{ROWS}"), |b| {
            b.iter(|| {
                let rs = client.execute(stmt, &[]).unwrap();
                black_box(rs.rows.len())
            })
        });
        let _ = client.close();
    }

    {
        let runners: Vec<Runner> = (0..4).map(|_| Runner::spawn(addr)).collect();
        group.bench_function(format!("qps_4clients/{ROWS}"), |b| {
            b.iter(|| {
                for r in &runners {
                    r.go.send(()).unwrap();
                }
                let mut total = 0;
                for r in &runners {
                    total += r.done.recv().unwrap();
                }
                black_box(total)
            })
        });
    }

    group.finish();
    handle.shutdown();
}

criterion_group!(benches, bench_server_qps);
criterion_main!(benches);

//! **Experiment T1 — Table 1.** Number of SQL queries emitted and overall
//! program runtime for the running example, HaskellDB-style (avalanche)
//! vs. Ferry/DSH (two-query bundle), as the population of column `cat`
//! grows.
//!
//! The paper's numbers (PostgreSQL 9.0, 2.8 GHz Core 2 Duo):
//!
//! | #categories | HaskellDB #queries | HaskellDB (s) | DSH #queries | DSH (s) |
//! |------------:|-------------------:|--------------:|-------------:|--------:|
//! |       1 000 |              1 001 |        11.712 |            2 |   0.604 |
//! |      10 000 |             10 001 |       291.369 |            2 |   6.419 |
//! |     100 000 |            100 001 |           DNF |            2 |  74.709 |
//!
//! We reproduce the *shape* on the in-process engine: query counts are
//! asserted exactly (N+1 vs. 2); runtimes must show HaskellDB growing
//! super-linearly (per-query cost itself grows with the database) while
//! DSH stays near-linear. Absolute numbers differ from the paper's
//! client/server setup; set `Database::set_dispatch_cost` to model the
//! round-trip and the gap widens further.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ferry::prelude::*;
use ferry_bench::table1::{run_dsh, run_haskelldb};
use ferry_bench::workload::scaled_dataset;

const FACS_PER_CAT: usize = 2;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for &categories in &[100usize, 300, 1000, 3000] {
        let conn = Connection::new(scaled_dataset(categories, FACS_PER_CAT))
            .with_optimizer(ferry_optimizer::rewriter());

        // assert the query counts once per size — the table's first column
        let (_, dsh_queries) = run_dsh(&conn).expect("dsh run");
        assert_eq!(dsh_queries, 2);
        let (_, hdb_queries) = run_haskelldb(conn.database()).expect("haskelldb run");
        assert_eq!(hdb_queries, categories as u64 + 1);
        eprintln!(
            "table1: categories={categories} → HaskellDB {hdb_queries} queries, DSH {dsh_queries} queries"
        );

        group.bench_with_input(BenchmarkId::new("dsh", categories), &categories, |b, _| {
            b.iter(|| run_dsh(&conn).expect("dsh run"))
        });
        // the avalanche side becomes prohibitively slow above 1 000
        // categories (the paper's own DNF regime begins at 100 000) — cap
        // the criterion series; `examples/avalanche.rs` prints single-shot
        // numbers for the larger sizes
        if categories <= 1000 {
            group.bench_with_input(
                BenchmarkId::new("haskelldb", categories),
                &categories,
                |b, _| b.iter(|| run_haskelldb(conn.database()).expect("haskelldb run")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);

//! Engine micro-benchmarks: the bulk operators loop-lifted plans lean on
//! hardest (hash join, row numbering, grouping, duplicate elimination,
//! filtering, projection, serialization, expression evaluation). Not a
//! paper artefact — a regression guard for the substrate that all
//! measured experiments run on.
//!
//! Each operator runs four times: `scalar` (serial row-at-a-time
//! oracle, `VecMode::Off`), `vec` (serial with the vectorized kernels
//! engaged but pipeline fusion off), `fused` (serial, kernels + pipeline
//! fusion) and `par4` (4 worker threads, morsel threshold lowered so
//! the 50k–100k inputs actually split). `scalar` vs `vec` isolates the
//! typed-chunk kernel win on any host; `vec` vs `fused` isolates the
//! per-node materialization cost fusion removes; the `par4` variants
//! additionally measure the morsel scheduler on multi-core hosts (and
//! its overhead on single-core ones).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ferry_algebra::{
    plan::cn, plan::Aggregate, AggFun, BinOp, Dir, Expr, JoinCols, NodeId, Plan, Schema, Ty, Value,
};
use ferry_engine::{Database, FuseMode, ParConfig, VecMode};

fn int_table(rows: usize, modulus: i64) -> Vec<Vec<Value>> {
    (0..rows)
        .map(|i| vec![Value::Int(i as i64), Value::Int(i as i64 % modulus)])
        .collect()
}

/// The engines under comparison: serial scalar (the oracle path), serial
/// vectorized without fusion, serial fused pipelines, and 4 workers with
/// the parallelism threshold low enough for every benched input.
fn engines() -> Vec<(&'static str, Database)> {
    let scalar_db = Database::new();
    scalar_db.set_par_config(ParConfig {
        threads: 1,
        vec: VecMode::Off,
        fuse: FuseMode::Off,
        ..ParConfig::default()
    });
    let vec_db = Database::new();
    vec_db.set_par_config(ParConfig {
        threads: 1,
        vec: VecMode::Auto,
        fuse: FuseMode::Off,
        ..ParConfig::default()
    });
    let fused_db = Database::new();
    fused_db.set_par_config(ParConfig {
        threads: 1,
        vec: VecMode::Auto,
        fuse: FuseMode::Auto,
        ..ParConfig::default()
    });
    let par_db = Database::new();
    par_db.set_par_config(ParConfig {
        threads: 4,
        min_rows: 1024,
        morsel_rows: 0,
        vec: VecMode::Auto,
        fuse: FuseMode::Auto,
    });
    vec![
        ("scalar", scalar_db),
        ("vec", vec_db),
        ("fused", fused_db),
        ("par4", par_db),
    ]
}

fn bench_both(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    n: usize,
    plan: &Plan,
    root: NodeId,
) {
    for (mode, db) in engines() {
        group.bench_with_input(
            BenchmarkId::new(format!("{name}_{mode}"), n),
            &n,
            |bch, _| bch.iter(|| db.execute(plan, root).expect(name)),
        );
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    const N: usize = 50_000;
    const M: usize = 100_000;

    // hash join N × N on a key with ~N/10 duplicates
    {
        let mut plan = Plan::new();
        let l = plan.lit(
            Schema::of(&[("a", Ty::Int), ("k", Ty::Int)]),
            int_table(N, 10),
        );
        let r = plan.lit(
            Schema::of(&[("b", Ty::Int), ("j", Ty::Int)]),
            int_table(N, 50_000),
        );
        let j = plan.equi_join(l, r, JoinCols::single("a", "b"));
        bench_both(&mut group, "equi_join", N, &plan, j);
    }

    // ROW_NUMBER over a 10-partition table
    {
        let mut plan = Plan::new();
        let l = plan.lit(
            Schema::of(&[("a", Ty::Int), ("k", Ty::Int)]),
            int_table(N, 10),
        );
        let rn = plan.rownum(l, "pos", vec![cn("k")], vec![(cn("a"), Dir::Asc)]);
        bench_both(&mut group, "rownum", N, &plan, rn);
    }

    // grouped aggregation, 10 groups
    {
        let mut plan = Plan::new();
        let l = plan.lit(
            Schema::of(&[("a", Ty::Int), ("k", Ty::Int)]),
            int_table(N, 10),
        );
        let g = plan.group_by(
            l,
            vec![cn("k")],
            vec![
                Aggregate {
                    fun: AggFun::CountAll,
                    input: None,
                    output: cn("n"),
                },
                Aggregate {
                    fun: AggFun::Sum,
                    input: Some(cn("a")),
                    output: cn("s"),
                },
            ],
        );
        bench_both(&mut group, "group_by", N, &plan, g);
    }

    // duplicate elimination with heavy duplication
    {
        let mut plan = Plan::new();
        let l0 = plan.lit(
            Schema::of(&[("a", Ty::Int), ("k", Ty::Int)]),
            int_table(N, 100),
        );
        let l = plan.project(l0, vec![(cn("k"), cn("k"))]);
        let d = plan.distinct(l);
        bench_both(&mut group, "distinct", N, &plan, d);
    }

    // filter → project → sort at 100k rows: the copy-free chain — a
    // selection vector, composed with a column remap, composed with a
    // sorted selection vector, all over one shared buffer
    {
        let mut plan = Plan::new();
        let l = plan.lit(
            Schema::of(&[("a", Ty::Int), ("k", Ty::Int)]),
            int_table(M, 10),
        );
        let f = plan.select(l, Expr::bin(BinOp::Lt, Expr::col("k"), Expr::lit(5i64)));
        bench_both(&mut group, "filter", M, &plan, f);
        let pr = plan.project(f, vec![(cn("a"), cn("a"))]);
        bench_both(&mut group, "project", M, &plan, pr);
        let ser = plan.serialize(pr, vec![(cn("a"), Dir::Desc)], vec![cn("a")]);
        bench_both(&mut group, "serialize", M, &plan, ser);
    }

    // an 8-operator arithmetic chain at 100k rows: the expression-bound
    // workload the kernel compiler exists for
    {
        let mut plan = Plan::new();
        let l = plan.lit(
            Schema::of(&[("a", Ty::Int), ("k", Ty::Int)]),
            int_table(M, 97),
        );
        let a = Expr::col("a");
        let k = Expr::col("k");
        // ((a*2 + k) * 3 - a) + (k * k) - (a % 7) + 1
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(
                BinOp::Sub,
                Expr::bin(
                    BinOp::Add,
                    Expr::bin(
                        BinOp::Sub,
                        Expr::bin(
                            BinOp::Mul,
                            Expr::bin(
                                BinOp::Add,
                                Expr::bin(BinOp::Mul, a.clone(), Expr::lit(2i64)),
                                k.clone(),
                            ),
                            Expr::lit(3i64),
                        ),
                        a.clone(),
                    ),
                    Expr::bin(BinOp::Mul, k.clone(), k.clone()),
                ),
                Expr::bin(BinOp::Mod, a.clone(), Expr::lit(7i64)),
            ),
            Expr::lit(1i64),
        );
        let cch = plan.compute(l, "y", e);
        bench_both(&mut group, "compute_chain", M, &plan, cch);
    }

    // compute → filter-on-the-computed-column → row numbering at 100k
    // rows: the pipeline-fusion showcase. Unfused, the compute node
    // materialises all 100k rows before the filter throws 70% of them
    // away; fused, batches stream through the kernel chain and only
    // survivors are ever built
    {
        let mut plan = Plan::new();
        let l = plan.lit(
            Schema::of(&[("a", Ty::Int), ("k", Ty::Int)]),
            int_table(M, 10),
        );
        let y = plan.compute(
            l,
            "y",
            Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, Expr::col("a"), Expr::lit(3i64)),
                Expr::col("k"),
            ),
        );
        let f = plan.select(
            y,
            Expr::bin(
                BinOp::Lt,
                Expr::bin(BinOp::Mod, Expr::col("y"), Expr::lit(10i64)),
                Expr::lit(3i64),
            ),
        );
        let rn = plan.rownum(f, "pos", vec![cn("k")], vec![(cn("y"), Dir::Asc)]);
        bench_both(&mut group, "filter_rownum", M, &plan, rn);
    }

    // scan → filter → join-probe: 100k probe rows filtered to 10k, joined
    // against a 10k build side. Fusion streams filtered probe batches
    // straight into the join's probe loop
    {
        let mut plan = Plan::new();
        let probe = plan.lit(
            Schema::of(&[("a", Ty::Int), ("k", Ty::Int)]),
            int_table(M, 10),
        );
        let build = plan.lit(
            Schema::of(&[("b", Ty::Int), ("j", Ty::Int)]),
            int_table(10_000, 10),
        );
        let f = plan.select(
            probe,
            Expr::bin(BinOp::Lt, Expr::col("a"), Expr::lit(10_000i64)),
        );
        let j = plan.equi_join(f, build, JoinCols::single("a", "b"));
        bench_both(&mut group, "scan_filter_join_probe", M, &plan, j);
    }

    // filter selectivity sweep at 100k rows: 1% / 50% / 99% of rows kept.
    // The fused kernel→selection-vector path pays per *input* row; the
    // scalar path additionally allocates per *output* row
    {
        let mut plan = Plan::new();
        let l = plan.lit(
            Schema::of(&[("a", Ty::Int), ("k", Ty::Int)]),
            int_table(M, 10),
        );
        for (tag, cutoff) in [("1", 1_000i64), ("50", 50_000), ("99", 99_000)] {
            let f = plan.select(l, Expr::bin(BinOp::Lt, Expr::col("a"), Expr::lit(cutoff)));
            bench_both(&mut group, &format!("filter_sel{tag}"), M, &plan, f);
        }
    }

    // typed grouped aggregation at 100k rows over every typed
    // accumulator family (count / sum / min / max / avg)
    {
        let mut plan = Plan::new();
        let l = plan.lit(
            Schema::of(&[("a", Ty::Int), ("k", Ty::Int)]),
            int_table(M, 10),
        );
        let g = plan.group_by(
            l,
            vec![cn("k")],
            vec![
                Aggregate {
                    fun: AggFun::CountAll,
                    input: None,
                    output: cn("n"),
                },
                Aggregate {
                    fun: AggFun::Sum,
                    input: Some(cn("a")),
                    output: cn("s"),
                },
                Aggregate {
                    fun: AggFun::Min,
                    input: Some(cn("a")),
                    output: cn("lo"),
                },
                Aggregate {
                    fun: AggFun::Max,
                    input: Some(cn("a")),
                    output: cn("hi"),
                },
                Aggregate {
                    fun: AggFun::Avg,
                    input: Some(cn("a")),
                    output: cn("avg"),
                },
            ],
        );
        bench_both(&mut group, "group_by_typed", M, &plan, g);
    }

    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);

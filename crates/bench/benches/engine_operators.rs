//! Engine micro-benchmarks: the bulk operators loop-lifted plans lean on
//! hardest (hash join, row numbering, grouping, duplicate elimination,
//! filtering, projection, serialization). Not a paper artefact — a
//! regression guard for the substrate that all measured experiments run
//! on.
//!
//! Each operator runs twice: `serial` (`ParConfig::serial()`) and `par4`
//! (4 worker threads, morsel threshold lowered so the 50k–100k inputs
//! actually split). On a multi-core host the `par4` variants additionally
//! measure the morsel scheduler; on a single-core host they measure its
//! overhead. The copy-free wins (filter/project/serialize emitting views
//! instead of materialised rows) show up in both variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ferry_algebra::{
    plan::cn, plan::Aggregate, AggFun, BinOp, Dir, Expr, JoinCols, NodeId, Plan, Schema, Ty, Value,
};
use ferry_engine::{Database, ParConfig};

fn int_table(rows: usize, modulus: i64) -> Vec<Vec<Value>> {
    (0..rows)
        .map(|i| vec![Value::Int(i as i64), Value::Int(i as i64 % modulus)])
        .collect()
}

/// The two engines under comparison: pure serial, and 4 workers with the
/// parallelism threshold low enough for every benched input.
fn engines() -> Vec<(&'static str, Database)> {
    let par4 = ParConfig {
        threads: 4,
        min_rows: 1024,
        morsel_rows: 0,
    };
    let mut par_db = Database::new();
    par_db.set_par_config(par4);
    let mut serial_db = Database::new();
    serial_db.set_par_config(ParConfig::serial());
    vec![("serial", serial_db), ("par4", par_db)]
}

fn bench_both(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    n: usize,
    plan: &Plan,
    root: NodeId,
) {
    for (mode, db) in engines() {
        group.bench_with_input(
            BenchmarkId::new(format!("{name}_{mode}"), n),
            &n,
            |bch, _| bch.iter(|| db.execute(plan, root).expect(name)),
        );
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    const N: usize = 50_000;
    const M: usize = 100_000;

    // hash join N × N on a key with ~N/10 duplicates
    {
        let mut plan = Plan::new();
        let l = plan.lit(
            Schema::of(&[("a", Ty::Int), ("k", Ty::Int)]),
            int_table(N, 10),
        );
        let r = plan.lit(
            Schema::of(&[("b", Ty::Int), ("j", Ty::Int)]),
            int_table(N, 50_000),
        );
        let j = plan.equi_join(l, r, JoinCols::single("a", "b"));
        bench_both(&mut group, "equi_join", N, &plan, j);
    }

    // ROW_NUMBER over a 10-partition table
    {
        let mut plan = Plan::new();
        let l = plan.lit(
            Schema::of(&[("a", Ty::Int), ("k", Ty::Int)]),
            int_table(N, 10),
        );
        let rn = plan.rownum(l, "pos", vec![cn("k")], vec![(cn("a"), Dir::Asc)]);
        bench_both(&mut group, "rownum", N, &plan, rn);
    }

    // grouped aggregation, 10 groups
    {
        let mut plan = Plan::new();
        let l = plan.lit(
            Schema::of(&[("a", Ty::Int), ("k", Ty::Int)]),
            int_table(N, 10),
        );
        let g = plan.group_by(
            l,
            vec![cn("k")],
            vec![
                Aggregate {
                    fun: AggFun::CountAll,
                    input: None,
                    output: cn("n"),
                },
                Aggregate {
                    fun: AggFun::Sum,
                    input: Some(cn("a")),
                    output: cn("s"),
                },
            ],
        );
        bench_both(&mut group, "group_by", N, &plan, g);
    }

    // duplicate elimination with heavy duplication
    {
        let mut plan = Plan::new();
        let l0 = plan.lit(
            Schema::of(&[("a", Ty::Int), ("k", Ty::Int)]),
            int_table(N, 100),
        );
        let l = plan.project(l0, vec![(cn("k"), cn("k"))]);
        let d = plan.distinct(l);
        bench_both(&mut group, "distinct", N, &plan, d);
    }

    // filter → project → sort at 100k rows: the copy-free chain — a
    // selection vector, composed with a column remap, composed with a
    // sorted selection vector, all over one shared buffer
    {
        let mut plan = Plan::new();
        let l = plan.lit(
            Schema::of(&[("a", Ty::Int), ("k", Ty::Int)]),
            int_table(M, 10),
        );
        let f = plan.select(l, Expr::bin(BinOp::Lt, Expr::col("k"), Expr::lit(5i64)));
        bench_both(&mut group, "filter", M, &plan, f);
        let pr = plan.project(f, vec![(cn("a"), cn("a"))]);
        bench_both(&mut group, "project", M, &plan, pr);
        let ser = plan.serialize(pr, vec![(cn("a"), Dir::Desc)], vec![cn("a")]);
        bench_both(&mut group, "serialize", M, &plan, ser);
    }

    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);

//! Engine micro-benchmarks: the bulk operators loop-lifted plans lean on
//! hardest (hash join, row numbering, grouping, duplicate elimination).
//! Not a paper artefact — a regression guard for the substrate that all
//! measured experiments run on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ferry_algebra::{plan::cn, plan::Aggregate, AggFun, Dir, JoinCols, Plan, Schema, Ty, Value};
use ferry_engine::Database;

fn int_table(rows: usize, modulus: i64) -> Vec<Vec<Value>> {
    (0..rows)
        .map(|i| vec![Value::Int(i as i64), Value::Int(i as i64 % modulus)])
        .collect()
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    let db = Database::new();
    const N: usize = 50_000;

    // hash join N × N on a key with ~N/10 duplicates
    {
        let mut plan = Plan::new();
        let l = plan.lit(
            Schema::of(&[("a", Ty::Int), ("k", Ty::Int)]),
            int_table(N, 10),
        );
        let r = plan.lit(
            Schema::of(&[("b", Ty::Int), ("j", Ty::Int)]),
            int_table(N, 50_000),
        );
        let j = plan.equi_join(l, r, JoinCols::single("a", "b"));
        group.bench_with_input(BenchmarkId::new("equi_join", N), &N, |bch, _| {
            bch.iter(|| db.execute(&plan, j).expect("join"))
        });
    }

    // ROW_NUMBER over a 10-partition table
    {
        let mut plan = Plan::new();
        let l = plan.lit(
            Schema::of(&[("a", Ty::Int), ("k", Ty::Int)]),
            int_table(N, 10),
        );
        let rn = plan.rownum(l, "pos", vec![cn("k")], vec![(cn("a"), Dir::Asc)]);
        group.bench_with_input(BenchmarkId::new("rownum", N), &N, |bch, _| {
            bch.iter(|| db.execute(&plan, rn).expect("rownum"))
        });
    }

    // grouped aggregation, 10 groups
    {
        let mut plan = Plan::new();
        let l = plan.lit(
            Schema::of(&[("a", Ty::Int), ("k", Ty::Int)]),
            int_table(N, 10),
        );
        let g = plan.group_by(
            l,
            vec![cn("k")],
            vec![
                Aggregate {
                    fun: AggFun::CountAll,
                    input: None,
                    output: cn("n"),
                },
                Aggregate {
                    fun: AggFun::Sum,
                    input: Some(cn("a")),
                    output: cn("s"),
                },
            ],
        );
        group.bench_with_input(BenchmarkId::new("group_by", N), &N, |bch, _| {
            bch.iter(|| db.execute(&plan, g).expect("group"))
        });
    }

    // duplicate elimination with heavy duplication
    {
        let mut plan = Plan::new();
        let l0 = plan.lit(
            Schema::of(&[("a", Ty::Int), ("k", Ty::Int)]),
            int_table(N, 100),
        );
        let l = plan.project(l0, vec![(cn("k"), cn("k"))]);
        let d = plan.distinct(l);
        group.bench_with_input(BenchmarkId::new("distinct", N), &N, |bch, _| {
            bch.iter(|| db.execute(&plan, d).expect("distinct"))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);

//! Mixed reader/writer latency: the number the MVCC refactor exists for.
//! Readers pin a snapshot and scan; a background writer commits paced
//! transactions the whole time. Under the old global `RwLock` every
//! commit stalled every reader; under MVCC the reader's p95 with a
//! writer present should sit on top of its reader-only p95.
//!
//! The evidence preamble measures both p95s directly and prints them
//! (for README / BENCH_engine.json documentation); the criterion benches
//! pin the medians behind the regression gate.
//!
//! Host caveat: CI runs on one core, so the writer is *paced* (it sleeps
//! between commits). An unpaced writer on a single core inflates reader
//! latency through CPU time-slicing, which measures the scheduler, not
//! the locking design. The writer also *replaces* its side table per
//! commit, keeping each commit O(side-table) instead of growing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ferry_algebra::{plan::cn, BinOp, Expr, NodeId, Plan, Schema, Ty, Value};
use ferry_engine::Database;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Rows in the table the readers scan.
const ROWS: usize = 20_000;
/// Rows the writer commits per transaction (into a replaced side table).
const WRITER_ROWS: usize = 32;
/// Pause between writer commits — see the pacing caveat above.
const WRITER_PACE: Duration = Duration::from_micros(500);

fn reader_db() -> Arc<Database> {
    let db = Database::new();
    db.create_table(
        "events",
        Schema::of(&[("id", Ty::Int), ("val", Ty::Int)]),
        vec!["id"],
    )
    .unwrap();
    db.insert(
        "events",
        (0..ROWS)
            .map(|i| vec![Value::Int(i as i64), Value::Int((i % 97) as i64)])
            .collect(),
    )
    .unwrap();
    Arc::new(db)
}

/// The read workload: pin a fresh snapshot, filter-scan `events`.
fn read_once(db: &Database, plan: &Plan, root: NodeId) -> usize {
    let snap = db.snapshot();
    snap.execute(plan, root).unwrap().len()
}

fn scan_plan() -> (Plan, NodeId) {
    let mut plan = Plan::new();
    let t = plan.table(
        "events",
        vec![(cn("id"), Ty::Int), (cn("val"), Ty::Int)],
        vec![cn("id")],
    );
    let root = plan.select(
        t,
        Expr::bin(BinOp::Ge, Expr::col("val"), Expr::lit(Value::Int(90))),
    );
    (plan, root)
}

/// Spawn the paced background writer; returns (stop flag, join handle).
fn spawn_writer(db: &Arc<Database>) -> (Arc<AtomicBool>, thread::JoinHandle<u64>) {
    let stop = Arc::new(AtomicBool::new(false));
    let handle = {
        let db = db.clone();
        let stop = stop.clone();
        thread::spawn(move || {
            let mut commits = 0u64;
            while !stop.load(Ordering::Relaxed) {
                db.transact(|tx| {
                    tx.create_table(
                        "side",
                        Schema::of(&[("k", Ty::Int), ("v", Ty::Int)]),
                        vec!["k"],
                    )?;
                    tx.insert(
                        "side",
                        (0..WRITER_ROWS)
                            .map(|i| vec![Value::Int(i as i64), Value::Int(commits as i64)])
                            .collect(),
                    )
                })
                .unwrap();
                commits += 1;
                thread::sleep(WRITER_PACE);
            }
            commits
        })
    };
    (stop, handle)
}

fn p95(mut samples: Vec<Duration>) -> Duration {
    samples.sort_unstable();
    samples[samples.len() * 95 / 100]
}

fn sample_reads(db: &Database, plan: &Plan, root: NodeId, n: usize) -> Vec<Duration> {
    (0..n)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(read_once(db, plan, root));
            t.elapsed()
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let db = reader_db();
    let (plan, root) = scan_plan();
    const PROBE: usize = 300;

    // evidence preamble: reader p95 alone vs under a live writer
    sample_reads(&db, &plan, root, 50); // warm-up
    let alone = sample_reads(&db, &plan, root, PROBE);
    let (stop, writer) = spawn_writer(&db);
    thread::sleep(Duration::from_millis(5)); // writer is definitely live
    let contended = sample_reads(&db, &plan, root, PROBE);
    stop.store(true, Ordering::Relaxed);
    let commits = writer.join().unwrap();
    let (p_alone, p_cont) = (p95(alone), p95(contended));
    eprintln!(
        "mixed_read_write: reader p95 alone {p_alone:?}, with writer {p_cont:?} \
         ({commits} commits landed, epoch now {})",
        db.epoch()
    );
    assert!(commits > 0, "the background writer never committed");

    let mut g = c.benchmark_group("concurrency");
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::new("read_only", ROWS), &ROWS, |b, _| {
        b.iter(|| read_once(&db, &plan, root))
    });
    g.bench_with_input(BenchmarkId::new("read_with_writer", ROWS), &ROWS, |b, _| {
        let (stop, writer) = spawn_writer(&db);
        b.iter(|| read_once(&db, &plan, root));
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! The two measured implementations of the running example (§2 / §4.1).
//!
//! *What features are characteristic for the various query facility
//! categories?* — computed (a) the Ferry/DSH way, compiled into an
//! avalanche-safe **two-query bundle**, and (b) the HaskellDB way
//! (Fig. 4), which issues **one query per category** from a client-side
//! loop. Table 1 reports the query counts and runtimes of exactly these
//! two programs as the number of categories grows.

use ferry::prelude::*;
use ferry_baseline::{constant, do_query, Query as HQuery};
use ferry_engine::Database;
use ferry_sql::SqlError;

/// `descrFacility :: Q String -> Q [String]` — the descriptions of the
/// features of facility `f`.
///
/// §2 writes the guard as one trailing conjunction
/// (`feat ≡ feat' ∧ fac ≡ f`); we hoist each conjunct next to the
/// generator it constrains — a standard, semantics-preserving
/// comprehension normalisation. The placement matters for *performance
/// only*: our join-recovery pass dissolves a `loop × table` cross when
/// the guard sits adjacent to its generator, while the fully deferred
/// conjunction of §2 would need the complete Pathfinder join-graph
/// isolation machinery (see EXPERIMENTS.md, deviation D2).
pub fn descr_facility(f: Q<String>) -> Q<Vec<String>> {
    // [ mean | (fac, feat') <- features, fac == f,
    //          (feat, mean) <- meanings, feat == feat' ]
    ferry::comp!(
        (mean.clone())
        for (fac, feat2) in table::<(String, String)>("features"),
        if fac.eq(&f),
        for (feat, mean) in table::<(String, String)>("meanings"),
        if feat.eq(&feat2)
    )
}

/// The §2 formulation with the guard as a single trailing conjunction —
/// semantically identical to [`descr_facility`]; kept for the equivalence
/// tests and as the showcase of what full join-graph isolation would have
/// to optimise.
pub fn descr_facility_deferred_guard(f: Q<String>) -> Q<Vec<String>> {
    ferry::comp!(
        (mean.clone())
        for (feat, mean) in table::<(String, String)>("meanings"),
        for (fac, feat2) in table::<(String, String)>("features"),
        if feat.eq(&feat2).and(&fac.eq(&f))
    )
}

/// The running example:
/// `[ (the cat, nub (concatMap descrFacility fac))
///  | (cat, fac) <- facilities, then group by cat ]`.
pub fn dsh_query() -> Q<Vec<(String, Vec<String>)>> {
    ferry::comp!(
        (pair(the(cat), nub(concat_map(descr_facility, fac))))
        for (cat, fac) in table::<(String, String)>("facilities"),
        group by fst
    )
}

/// Run the Ferry/DSH implementation; returns the nested result and the
/// number of queries dispatched (always 2 — avalanche safety).
pub fn run_dsh(conn: &Connection) -> Result<(Vec<(String, Vec<String>)>, u64), FerryError> {
    conn.database().reset_stats();
    let result = conn.from_q(&dsh_query())?;
    Ok((result, conn.database().stats().queries))
}

/// `getCats` of Fig. 4.
fn get_cats() -> HQuery {
    let mut q = HQuery::new();
    let facs = q.table("facilities");
    q.project("cat", facs.col("cat"));
    q.unique();
    q.order("cat", false);
    q
}

/// `getCatFeatures cat` of Fig. 4.
fn get_cat_features(cat: &str) -> HQuery {
    let mut q = HQuery::new();
    let facs = q.table("facilities");
    let feats = q.table("features");
    let means = q.table("meanings");
    q.restrict(
        feats
            .col("feature")
            .eq(means.col("feature"))
            .and(facs.col("cat").eq(constant(cat)))
            .and(facs.col("fac").eq(feats.col("fac"))),
    );
    q.project("meaning", means.col("meaning"));
    q.unique();
    q.order("meaning", false);
    q
}

/// Run the HaskellDB implementation (Fig. 4): one query for the category
/// list, then — `sequence $ map (λc → doQuery $ getCatFeatures c) cs` —
/// one query **per category**. Returns the result and the query count
/// (`#categories + 1`).
pub fn run_haskelldb(db: &Database) -> Result<(Vec<(String, Vec<String>)>, u64), SqlError> {
    db.reset_stats();
    let cats = do_query(db, &get_cats())?;
    let mut out = Vec::with_capacity(cats.len());
    for row in cats.rows().iter() {
        let cat = row[0].as_str().expect("cat is text").to_string();
        let means = do_query(db, &get_cat_features(&cat))?;
        let list: Vec<String> = means
            .rows()
            .iter()
            .map(|r| r[0].as_str().expect("meaning is text").to_string())
            .collect();
        out.push((cat, list));
    }
    Ok((out, db.stats().queries))
}

/// Normalise a nested result for cross-implementation comparison: the two
/// systems agree on *sets* of meanings per category (DSH preserves first-
/// occurrence order, the HaskellDB transliteration sorts).
pub fn normalise(mut r: Vec<(String, Vec<String>)>) -> Vec<(String, Vec<String>)> {
    for (_, ms) in r.iter_mut() {
        ms.sort();
    }
    r.sort();
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{paper_dataset, scaled_dataset};

    #[test]
    fn dsh_reproduces_the_papers_result() {
        let conn = Connection::new(paper_dataset());
        let (result, queries) = run_dsh(&conn).unwrap();
        assert_eq!(
            queries, 2,
            "avalanche safety: [(String, [String])] ⇒ 2 queries"
        );
        // the paper's §2 result value
        let cats: Vec<&str> = result.iter().map(|(c, _)| c.as_str()).collect();
        assert_eq!(cats, vec!["API", "LIB", "LIN", "ORM", "QLA"]);
        assert!(result[0].1.is_empty(), "API has no described features");
        assert!(result[1].1.contains(&"respects list order".to_string()));
        assert!(result[2].1.contains(&"supports data nesting".to_string()));
        assert!(result[4].1.contains(&"avoids query avalanches".to_string()));
    }

    #[test]
    fn both_implementations_agree() {
        let conn = Connection::new(paper_dataset());
        let (dsh, _) = run_dsh(&conn).unwrap();
        let (hdb, _) = run_haskelldb(conn.database()).unwrap();
        assert_eq!(normalise(dsh), normalise(hdb));
    }

    #[test]
    fn query_counts_follow_table_1() {
        for k in [5usize, 17] {
            let db = scaled_dataset(k, 2);
            let conn = Connection::new(db);
            let (_, dsh_queries) = run_dsh(&conn).unwrap();
            assert_eq!(dsh_queries, 2);
            let (_, hdb_queries) = run_haskelldb(conn.database()).unwrap();
            assert_eq!(hdb_queries, k as u64 + 1, "HaskellDB: #categories + 1");
        }
    }

    #[test]
    fn implementations_agree_on_scaled_data() {
        let conn = Connection::new(scaled_dataset(12, 3));
        let (dsh, _) = run_dsh(&conn).unwrap();
        let (hdb, _) = run_haskelldb(conn.database()).unwrap();
        assert_eq!(normalise(dsh), normalise(hdb));
    }

    #[test]
    fn dsh_agrees_with_the_interpreter() {
        let conn = Connection::new(paper_dataset());
        let via_db = conn.from_q(&dsh_query()).unwrap();
        let via_interp = conn.interpret(&dsh_query()).unwrap();
        assert_eq!(via_db, via_interp);
    }
}

//! # `ferry-bench` — workloads and experiment drivers
//!
//! The data generators and measured programs behind every table and figure
//! of the paper's evaluation (see `EXPERIMENTS.md` at the workspace root):
//!
//! * [`workload::paper_dataset`] — the verbatim Figure 1 database
//!   (`facilities` / `features` / `meanings`),
//! * [`workload::scaled_dataset`] — the Table 1 generator: `facilities`
//!   with *K* distinct categories,
//! * [`table1`] — the two measured implementations of the running example:
//!   the HaskellDB-style avalanche (Fig. 4) and the Ferry/DSH two-query
//!   bundle, both returning the same nested value,
//! * [`dotp`] — the sparse-vector-multiplication example of Fig. 5/6, as a
//!   Ferry program and as the in-heap vectorised (DPH-style) reference.

#![allow(clippy::type_complexity, clippy::items_after_test_module)]

pub mod dotp;
pub mod table1;
pub mod workload;

//! The evaluation databases.

use ferry_algebra::{Row, Schema, Ty, Value};
use ferry_engine::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn s(x: &str) -> Value {
    Value::str(x)
}

/// The verbatim input tables of Figure 1: nine contemporary query
/// facilities, their categories, their features, and the feature meanings.
pub fn paper_dataset() -> Database {
    let mut db = Database::new();
    create_schema(&mut db);
    let facilities = [
        ("SQL", "QLA"),
        ("ODBC", "API"),
        ("LINQ", "LIN"),
        ("Links", "LIN"),
        ("Rails", "ORM"),
        ("DSH", "LIB"),
        ("ADO.NET", "ORM"),
        ("Kleisli", "QLA"),
        ("HaskellDB", "LIB"),
    ];
    db.insert(
        "facilities",
        facilities.iter().map(|(f, c)| vec![s(f), s(c)]).collect(),
    )
    .unwrap();
    let features = [
        ("SQL", "aval"),
        ("SQL", "type"),
        ("SQL", "SQL!"),
        ("LINQ", "nest"),
        ("LINQ", "comp"),
        ("LINQ", "type"),
        ("Links", "comp"),
        ("Links", "type"),
        ("Links", "SQL!"),
        ("Rails", "nest"),
        ("Rails", "maps"),
        ("DSH", "list"),
        ("DSH", "nest"),
        ("DSH", "comp"),
        ("DSH", "aval"),
        ("DSH", "type"),
        ("DSH", "SQL!"),
        ("ADO.NET", "maps"),
        ("ADO.NET", "comp"),
        ("ADO.NET", "type"),
        ("Kleisli", "list"),
        ("Kleisli", "nest"),
        ("Kleisli", "comp"),
        ("Kleisli", "type"),
        ("HaskellDB", "comp"),
        ("HaskellDB", "type"),
        ("HaskellDB", "SQL!"),
    ];
    db.insert(
        "features",
        features.iter().map(|(f, x)| vec![s(f), s(x)]).collect(),
    )
    .unwrap();
    let meanings = [
        ("list", "respects list order"),
        ("nest", "supports data nesting"),
        ("aval", "avoids query avalanches"),
        ("type", "is statically type-checked"),
        ("SQL!", "guarantees translation to SQL"),
        ("maps", "admits user-defined object mappings"),
        ("comp", "has compositional syntax and semantics"),
    ];
    db.insert(
        "meanings",
        meanings.iter().map(|(f, m)| vec![s(f), s(m)]).collect(),
    )
    .unwrap();
    db
}

fn create_schema(db: &mut Database) {
    db.create_table(
        "facilities",
        Schema::of(&[("fac", Ty::Str), ("cat", Ty::Str)]),
        vec!["fac"],
    )
    .unwrap();
    db.create_table(
        "features",
        Schema::of(&[("fac", Ty::Str), ("feature", Ty::Str)]),
        vec!["fac", "feature"],
    )
    .unwrap();
    db.create_table(
        "meanings",
        Schema::of(&[("feature", Ty::Str), ("meaning", Ty::Str)]),
        vec!["feature"],
    )
    .unwrap();
}

/// The Table 1 generator: the same three tables, with `facilities` scaled
/// to `categories` distinct categories (`facs_per_cat` facilities each).
/// Feature assignment is deterministic pseudo-random so runs are
/// reproducible.
pub fn scaled_dataset(categories: usize, facs_per_cat: usize) -> Database {
    let mut db = Database::new();
    create_schema(&mut db);
    let feature_names = ["list", "nest", "aval", "type", "SQL!", "maps", "comp"];
    let mut rng = StdRng::seed_from_u64(0xFE44_u64 + categories as u64);
    let mut fac_rows: Vec<Row> = Vec::with_capacity(categories * facs_per_cat);
    let mut feat_rows: Vec<Row> = Vec::new();
    for c in 0..categories {
        let cat = format!("cat{c:06}");
        for f in 0..facs_per_cat {
            let fac = format!("fac{c:06}_{f}");
            fac_rows.push(vec![s(&fac), s(&cat)]);
            // each facility gets 1–3 features
            let n = rng.gen_range(1..=3);
            let start = rng.gen_range(0..feature_names.len());
            for k in 0..n {
                let feat = feature_names[(start + k) % feature_names.len()];
                feat_rows.push(vec![s(&fac), s(feat)]);
            }
        }
    }
    db.insert("facilities", fac_rows).unwrap();
    db.insert("features", feat_rows).unwrap();
    let meanings = [
        ("list", "respects list order"),
        ("nest", "supports data nesting"),
        ("aval", "avoids query avalanches"),
        ("type", "is statically type-checked"),
        ("SQL!", "guarantees translation to SQL"),
        ("maps", "admits user-defined object mappings"),
        ("comp", "has compositional syntax and semantics"),
    ];
    db.insert(
        "meanings",
        meanings.iter().map(|(f, m)| vec![s(f), s(m)]).collect(),
    )
    .unwrap();
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dataset_matches_figure_1() {
        let db = paper_dataset();
        assert_eq!(db.table("facilities").unwrap().rows.len(), 9);
        assert_eq!(db.table("features").unwrap().rows.len(), 27);
        assert_eq!(db.table("meanings").unwrap().rows.len(), 7);
    }

    #[test]
    fn scaled_dataset_has_requested_categories() {
        let db = scaled_dataset(50, 2);
        assert_eq!(db.table("facilities").unwrap().rows.len(), 100);
        let cats: std::collections::HashSet<String> = db
            .table("facilities")
            .unwrap()
            .rows
            .iter()
            .map(|r| r[1].as_str().unwrap().to_string())
            .collect();
        assert_eq!(cats.len(), 50);
    }

    #[test]
    fn scaled_dataset_is_deterministic() {
        let a = scaled_dataset(10, 2);
        let b = scaled_dataset(10, 2);
        assert_eq!(
            a.table("features").unwrap().rows,
            b.table("features").unwrap().rows
        );
    }
}

//! Bench regression gate.
//!
//! Reads the JSON-lines file the criterion shim writes when `BENCH_JSON`
//! is set (one `{"bench":"group/name/param","median_ns":…}` object per
//! line) and compares each measured median against the pinned medians in
//! `BENCH_engine.json`'s `"baselines"` map. Exits non-zero when any
//! benchmark regresses beyond the threshold (default 1.5×; override with
//! a third argument). Benchmarks without a pinned baseline are listed but
//! do not fail the run, so adding a bench does not require updating the
//! snapshot in the same commit.
//!
//! Usage: `bench_check <measured.jsonl> <BENCH_engine.json> [threshold]`
//!
//! No serde in this workspace (offline build), so both files are parsed
//! with a small hand-rolled scanner that understands exactly the shapes
//! we emit.

use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: bench_check <measured.jsonl> <baseline.json> [threshold]");
        return ExitCode::from(2);
    }
    let threshold: f64 = match args.get(3) {
        Some(t) => match t.parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("bench_check: bad threshold {t:?}");
                return ExitCode::from(2);
            }
        },
        None => 1.5,
    };
    let measured_text = match std::fs::read_to_string(&args[1]) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_check: cannot read {}: {e}", args[1]);
            return ExitCode::from(2);
        }
    };
    let baseline_text = match std::fs::read_to_string(&args[2]) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_check: cannot read {}: {e}", args[2]);
            return ExitCode::from(2);
        }
    };
    let measured = parse_jsonl(&measured_text);
    let baselines = parse_baselines(&baseline_text);
    if measured.is_empty() {
        eprintln!("bench_check: no measurements in {}", args[1]);
        return ExitCode::from(2);
    }
    if baselines.is_empty() {
        eprintln!("bench_check: no \"baselines\" map in {}", args[2]);
        return ExitCode::from(2);
    }

    let mut regressions = Vec::new();
    let mut checked = 0usize;
    for (bench, median_ns) in &measured {
        let measured_ms = *median_ns / 1e6;
        match baselines.get(bench) {
            Some(&baseline_ms) if baseline_ms > 0.0 => {
                checked += 1;
                let ratio = measured_ms / baseline_ms;
                let verdict = if ratio > threshold {
                    regressions.push((bench.clone(), baseline_ms, measured_ms, ratio));
                    "REGRESSION"
                } else if ratio < 1.0 / threshold {
                    "improved"
                } else {
                    "ok"
                };
                println!(
                    "{bench}: baseline {baseline_ms:.3} ms, measured {measured_ms:.3} ms ({ratio:.2}x) {verdict}"
                );
            }
            _ => println!("{bench}: measured {measured_ms:.3} ms (no baseline pinned)"),
        }
    }
    for name in baselines.keys() {
        if !measured.contains_key(name) {
            println!("{name}: baseline pinned but not measured this run");
        }
    }
    if !regressions.is_empty() {
        eprintln!(
            "bench_check: {} regression(s) beyond {threshold}x:",
            regressions.len()
        );
        for (name, base, got, ratio) in &regressions {
            eprintln!("  {name}: {base:.3} ms -> {got:.3} ms ({ratio:.2}x)");
        }
        return ExitCode::FAILURE;
    }
    println!("bench_check: {checked} benchmark(s) within {threshold}x of baseline");
    ExitCode::SUCCESS
}

/// Parse shim JSONL: one object per line with a `"bench"` string and a
/// `"median_ns"` number. Later lines win on duplicate names (re-runs
/// append).
fn parse_jsonl(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let (Some(name), Some(median)) =
            (string_field(line, "bench"), number_field(line, "median_ns"))
        {
            out.insert(name, median);
        }
    }
    out
}

/// Pull the flat `"baselines": { "name": ms, ... }` map out of the
/// snapshot file. Values are medians in milliseconds.
fn parse_baselines(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let Some(start) = text.find("\"baselines\"") else {
        return out;
    };
    let Some(open) = text[start..].find('{') else {
        return out;
    };
    let body = &text[start + open + 1..];
    let Some(close) = body.find('}') else {
        return out;
    };
    let body = &body[..close];
    let mut rest = body;
    while let Some(q) = rest.find('"') {
        let after = &rest[q + 1..];
        let Some(endq) = find_string_end(after) else {
            break;
        };
        let key = unescape(&after[..endq]);
        let after_key = &after[endq + 1..];
        let Some(colon) = after_key.find(':') else {
            break;
        };
        let val_text = after_key[colon + 1..].trim_start();
        let num: String = val_text
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.insert(key, v);
        }
        rest = &after_key[colon + 1..];
    }
    out
}

/// Value of `"key": "string"` in a one-line JSON object.
fn string_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let at = line.find(&pat)?;
    let after = &line[at + pat.len()..];
    let colon = after.find(':')?;
    let after = after[colon + 1..].trim_start();
    let inner = after.strip_prefix('"')?;
    let end = find_string_end(inner)?;
    Some(unescape(&inner[..end]))
}

/// Value of `"key": number` in a one-line JSON object.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let at = line.find(&pat)?;
    let after = &line[at + pat.len()..];
    let colon = after.find(':')?;
    let val = after[colon + 1..].trim_start();
    let num: String = val
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    num.parse().ok()
}

/// Index of the closing quote of a JSON string (the text *after* the
/// opening quote), honouring backslash escapes.
fn find_string_end(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_parses_shim_lines() {
        let text = "\n{\"bench\":\"engine/filter_vec/100000\",\"median_ns\":1500000,\"mean_ns\":1600000,\"min_ns\":1,\"max_ns\":2,\"samples\":10}\n{\"bench\":\"engine/x/1\",\"median_ns\":2.5e6,\"samples\":10}\n";
        let m = parse_jsonl(text);
        assert_eq!(m.len(), 2);
        assert_eq!(m["engine/filter_vec/100000"], 1_500_000.0);
        assert_eq!(m["engine/x/1"], 2_500_000.0);
    }

    #[test]
    fn baselines_parse_flat_map() {
        let text = r#"{
  "description": "x",
  "baselines": {
    "engine/filter_vec/100000": 1.23,
    "engine/group_by_typed_vec/100000": 0.5
  },
  "benches": { "other": { "a/b": { "before_ms": 1 } } }
}"#;
        let b = parse_baselines(text);
        assert_eq!(b.len(), 2);
        assert_eq!(b["engine/filter_vec/100000"], 1.23);
        assert_eq!(b["engine/group_by_typed_vec/100000"], 0.5);
    }

    #[test]
    fn duplicate_bench_lines_take_the_last() {
        let text = "{\"bench\":\"a\",\"median_ns\":1000}\n{\"bench\":\"a\",\"median_ns\":2000}\n";
        let m = parse_jsonl(text);
        assert_eq!(m["a"], 2000.0);
    }
}

//! Sparse-vector multiplication — the DPH comparison of §4.2 (Fig. 5/6).
//!
//! ```haskell
//! dotp :: SparseVector -> Vector -> Float
//! dotp sv v = sumP [: x * (v !: i) | (i, x) <- sv :]
//! ```
//!
//! Three implementations:
//! * [`dotp_ferry`] — the Ferry program; loop-lifting turns the positional
//!   lookup `v !: i` into an equi-join over `pos` (Fig. 6 right),
//! * [`dotp_vectorised`] — the DPH-style flat data-parallel evaluation
//!   (`fstˆ`, `sndˆ`, `bpermuteP`, `*ˆ`, `sumP` as bulk array operations,
//!   Fig. 6 left),
//! * [`dotp_scalar`] — a plain sequential loop, as the ground truth.

use ferry::prelude::*;
use ferry_algebra::{Schema, Ty, Value};
use ferry_engine::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `dotp sv v` as a Ferry query. Indices are 0-based positions into `v`.
pub fn dotp_ferry(sv: Q<Vec<(i64, f64)>>, v: Q<Vec<f64>>) -> Q<f64> {
    sum(map(
        move |p: Q<(i64, f64)>| {
            let (i, x) = p.view();
            x * index(v.clone(), i)
        },
        sv,
    ))
}

/// The Ferry query over database-resident `sparse (idx, val)` and
/// `dense (pos, val)` tables.
pub fn dotp_query() -> Q<f64> {
    // sparse columns alphabetically: (idx, val); dense: (pos, val)
    let sv = map(|r: Q<(i64, f64)>| r, table::<(i64, f64)>("sparse"));
    let v = map(|r: Q<(i64, f64)>| r.snd(), table::<(i64, f64)>("dense"));
    dotp_ferry(sv, v)
}

/// DPH-style vectorised evaluation: every step is a bulk operation over
/// whole arrays (the left-hand side of Fig. 6).
pub fn dotp_vectorised(sv: &[(i64, f64)], v: &[f64]) -> f64 {
    let idx: Vec<i64> = sv.iter().map(|p| p.0).collect(); // fstˆ sv
    let xs: Vec<f64> = sv.iter().map(|p| p.1).collect(); // sndˆ sv
    let perm: Vec<f64> = idx.iter().map(|&i| v[i as usize]).collect(); // bpermuteP v
    xs.iter().zip(&perm).map(|(a, b)| a * b).sum() // sumP (xs *ˆ perm)
}

/// Plain sequential reference.
pub fn dotp_scalar(sv: &[(i64, f64)], v: &[f64]) -> f64 {
    sv.iter().map(|&(i, x)| x * v[i as usize]).sum()
}

/// Deterministic random instance: a dense vector of length `n` and a
/// sparse vector with `nnz` non-zeros.
pub fn dotp_data(n: usize, nnz: usize, seed: u64) -> (Vec<(i64, f64)>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let v: Vec<f64> = (0..n)
        .map(|_| (rng.gen_range(-50..50) as f64) / 4.0)
        .collect();
    let mut idx: Vec<i64> = (0..n as i64).collect();
    for i in (1..idx.len()).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    let sv: Vec<(i64, f64)> = idx
        .into_iter()
        .take(nnz)
        .map(|i| (i, (rng.gen_range(-40..40) as f64) / 8.0))
        .collect();
    (sv, v)
}

/// Load a dot-product instance into database tables `sparse` and `dense`.
pub fn dotp_database(sv: &[(i64, f64)], v: &[f64]) -> Database {
    let db = Database::new();
    db.create_table(
        "sparse",
        Schema::of(&[("idx", Ty::Int), ("val", Ty::Dbl)]),
        vec!["idx"],
    )
    .unwrap();
    db.insert(
        "sparse",
        sv.iter()
            .map(|&(i, x)| vec![Value::Int(i), Value::Dbl(x)])
            .collect(),
    )
    .unwrap();
    db.create_table(
        "dense",
        Schema::of(&[("pos", Ty::Int), ("val", Ty::Dbl)]),
        vec!["pos"],
    )
    .unwrap();
    db.insert(
        "dense",
        v.iter()
            .enumerate()
            .map(|(i, &x)| vec![Value::Int(i as i64), Value::Dbl(x)])
            .collect(),
    )
    .unwrap();
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_fig5_instance() {
        // sv = [:(1, 0.1), (3, 1.0), (4, 0.0):], v = [:10,20,30,40,50:]
        let sv = vec![(1, 0.1), (3, 1.0), (4, 0.0)];
        let v = vec![10.0, 20.0, 30.0, 40.0, 50.0];
        let expected = 0.1 * 20.0 + 1.0 * 40.0;
        assert_eq!(dotp_scalar(&sv, &v), expected);
        assert_eq!(dotp_vectorised(&sv, &v), expected);
        let conn = Connection::new(dotp_database(&sv, &v));
        assert_eq!(conn.from_q(&dotp_query()).unwrap(), expected);
    }

    #[test]
    fn all_implementations_agree_on_random_data() {
        let (sv, v) = dotp_data(64, 16, 7);
        let expected = dotp_scalar(&sv, &v);
        assert_eq!(dotp_vectorised(&sv, &v), expected);
        let conn = Connection::new(dotp_database(&sv, &v));
        let got = conn.from_q(&dotp_query()).unwrap();
        assert!((got - expected).abs() < 1e-9, "{got} vs {expected}");
    }

    #[test]
    fn ferry_compiles_dotp_to_one_query() {
        let (sv, v) = dotp_data(16, 4, 1);
        let conn = Connection::new(dotp_database(&sv, &v));
        let bundle = conn.compile(&dotp_query()).unwrap();
        assert_eq!(bundle.queries.len(), 1, "scalar result ⇒ single query");
    }

    #[test]
    fn the_plan_contains_the_fig6_backbone() {
        // bpermuteP ⇔ an equi-join; the multiply ⇔ a Compute; sumP ⇔ a
        // grouped SUM
        let (sv, v) = dotp_data(16, 4, 2);
        let conn = Connection::new(dotp_database(&sv, &v));
        let bundle = conn.compile(&dotp_query()).unwrap();
        let nodes = bundle.plan.reachable(bundle.queries[0].root);
        let mut joins = 0;
        let mut multiplies = 0;
        let mut sums = 0;
        for id in nodes {
            match bundle.plan.node(id) {
                ferry_algebra::Node::EquiJoin { .. } => joins += 1,
                ferry_algebra::Node::Compute { expr, .. } if format!("{expr}").contains('*') => {
                    multiplies += 1;
                }
                ferry_algebra::Node::GroupBy { aggs, .. }
                    if aggs.iter().any(|a| a.fun == ferry_algebra::AggFun::Sum) =>
                {
                    sums += 1;
                }
                _ => {}
            }
        }
        assert!(joins >= 1, "positional lookup must compile to an equi-join");
        assert!(multiplies >= 1, "the lifted multiplication");
        assert!(sums >= 1, "sumP as a grouped SUM");
    }
}

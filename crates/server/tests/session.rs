//! End-to-end session behaviour over loopback: concurrent clients get
//! byte-identical results vs in-process execution, prepared statements
//! hit the shared plan cache, the server answers questions about itself
//! (`ferry.connections`, metrics) over its own wire, overload is a
//! typed refusal, and shutdown drains.

use ferry::Connection;
use ferry_algebra::{Row, Schema, Ty, Value};
use ferry_engine::Database;
use ferry_server::proto::ErrorCode;
use ferry_server::{Client, ClientError, Server, ServerConfig, ServerHandle};
use ferry_storage::codec::Enc;
use std::time::Duration;

fn seeded_connection() -> Connection {
    let db = Database::new();
    db.create_table(
        "emp",
        Schema::of(&[("dept", Ty::Str), ("name", Ty::Str), ("sal", Ty::Int)]),
        vec!["name"],
    )
    .unwrap();
    db.insert(
        "emp",
        vec![
            vec![Value::str("eng"), Value::str("ada"), Value::Int(90)],
            vec![Value::str("eng"), Value::str("bob"), Value::Int(70)],
            vec![Value::str("ops"), Value::str("cy"), Value::Int(50)],
        ],
    )
    .unwrap();
    Connection::new(db)
}

fn start(cfg: ServerConfig) -> (Connection, ServerHandle) {
    let conn = seeded_connection();
    let handle = Server::bind(conn.clone(), "127.0.0.1:0", cfg).unwrap();
    (conn, handle)
}

/// The differential suite's deterministic query shapes (every one
/// carries a total ORDER BY, so results are byte-comparable).
const SHAPES: &[&str] = &[
    "SELECT e.name AS who, e.sal AS sal FROM emp AS e \
     WHERE e.sal >= 70 ORDER BY sal DESC;",
    "SELECT e.dept AS d, COUNT (*) AS n, SUM (e.sal) AS total \
     FROM emp AS e GROUP BY e.dept ORDER BY d ASC;",
    "SELECT a.name AS x, b.name AS y FROM emp AS a, emp AS b \
     WHERE a.dept = b.dept AND a.name < b.name ORDER BY x ASC, y ASC;",
    "SELECT e.name AS who, \
     ROW_NUMBER () OVER (PARTITION BY e.dept ORDER BY e.sal DESC) AS rn_nat \
     FROM emp AS e ORDER BY who ASC;",
    "WITH hi (who) AS (SELECT e.name AS who FROM emp AS e WHERE e.sal > 60), \
     lo (who) AS (SELECT e.name AS who FROM emp AS e WHERE e.sal < 80) \
     SELECT h.who AS who FROM hi AS h \
     EXCEPT SELECT l.who AS who FROM lo AS l ORDER BY who ASC;",
    "SELECT 1 AS x UNION ALL SELECT 2 AS x ORDER BY x DESC;",
    "SELECT e.name AS who, \
     CASE WHEN e.sal >= 70 THEN 'high' ELSE 'low' END AS band, \
     CAST(e.sal AS DOUBLE PRECISION) / 2.0 AS half \
     FROM emp AS e ORDER BY who ASC;",
    "SELECT DISTINCT d.dept AS dept \
     FROM (SELECT e.dept AS dept FROM emp AS e) AS d ORDER BY dept ASC;",
];

/// Canonical bytes of a result: schema then rows through the storage
/// codec — the same encoding the wire itself uses.
fn result_bytes(schema: &Schema, rows: &[Row]) -> Vec<u8> {
    let mut e = Enc::new();
    e.schema(schema);
    e.rows(rows);
    e.into_bytes()
}

#[test]
fn concurrent_clients_match_in_process_byte_for_byte() {
    let (conn, handle) = start(ServerConfig::default());
    // ground truth, in-process
    let expected: Vec<Vec<u8>> = SHAPES
        .iter()
        .map(|sql| {
            let snap = conn.snapshot();
            let rel = ferry_sql::exec::execute_sql(&snap, sql).unwrap();
            result_bytes(&rel.schema, &rel.rows())
        })
        .collect();
    let addr = handle.addr();
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for (sql, want) in SHAPES.iter().zip(&expected) {
                    let rs = c.query(sql).unwrap();
                    let got = result_bytes(&rs.schema, &rs.rows);
                    assert_eq!(&got, want, "wire and in-process disagree on: {sql}");
                }
                c.close().unwrap();
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    handle.shutdown();
}

#[test]
fn prepared_reexecution_hits_the_shared_plan_cache() {
    let (_conn, handle) = start(ServerConfig::default());
    let mut c = Client::connect(handle.addr()).unwrap();
    let sql = "SELECT e.dept AS d, SUM (e.sal) AS total \
               FROM emp AS e GROUP BY e.dept ORDER BY d ASC;";
    let (stmt, schema) = c.prepare(sql).unwrap();
    assert_eq!(schema.cols().len(), 2); // parameterless: schema known at prepare
    for _ in 0..5 {
        let rs = c.execute(stmt, &[]).unwrap();
        assert_eq!(rs.rows.len(), 2);
    }
    // the statement's cache entry is visible — with hits — through the
    // same wire that executed it
    let rs = c
        .query(
            "SELECT p.hits AS hits FROM ferry.plan_cache AS p \
             ORDER BY hits DESC;",
        )
        .unwrap();
    let top_hits = rs.rows[0][0].clone();
    match top_hits {
        Value::Int(h) => assert!(h >= 5, "expected >=5 plan-cache hits, saw {h}"),
        other => panic!("hits column should be Int, got {other:?}"),
    }
    c.close().unwrap();
    handle.shutdown();
}

#[test]
fn parameterised_statements_substitute_and_execute() {
    let (_conn, handle) = start(ServerConfig::default());
    let mut c = Client::connect(handle.addr()).unwrap();
    let (stmt, _) = c
        .prepare(
            "SELECT e.name AS who FROM emp AS e \
             WHERE e.sal >= $1 AND e.dept = $2 ORDER BY who ASC;",
        )
        .unwrap();
    let rs = c
        .execute(stmt, &[Value::Int(80), Value::str("eng")])
        .unwrap();
    assert_eq!(rs.rows, vec![vec![Value::str("ada")]]);
    let rs = c
        .execute(stmt, &[Value::Int(0), Value::str("eng")])
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    // arity mismatch is a typed SQL error, session intact
    let err = c.execute(stmt, &[Value::Int(1)]).unwrap_err();
    assert!(
        matches!(
            err,
            ClientError::Server {
                code: ErrorCode::Sql,
                ..
            }
        ),
        "{err:?}"
    );
    c.close().unwrap();
    handle.shutdown();
}

#[test]
fn the_server_can_answer_questions_about_itself() {
    let (_conn, handle) = start(ServerConfig::default());
    let mut c = Client::connect(handle.addr()).unwrap();
    // warm up: one query so this session has served something
    c.query("SELECT 1 AS x").unwrap();
    // ferry.connections over the wire, about the very session asking
    let rs = c
        .query(
            "SELECT c.id AS id, c.peer AS peer, c.queries AS q \
             FROM ferry.connections AS c ORDER BY id ASC;",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 1, "exactly this session is live");
    assert!(matches!(rs.rows[0][0], Value::Int(_)));
    match &rs.rows[0][1] {
        Value::Str(peer) => assert!(peer.starts_with("127.0.0.1:"), "peer = {peer}"),
        other => panic!("peer should be Str, got {other:?}"),
    }
    // metrics over the wire: the server's own counters are in there
    let text = c.metrics().unwrap();
    assert!(text.contains("server_accepts"), "{text}");
    assert!(text.contains("server_requests"), "{text}");
    assert!(text.contains("server_connections"), "{text}");
    c.close().unwrap();
    handle.shutdown();
}

#[test]
fn connection_limit_is_a_typed_busy() {
    let cfg = ServerConfig {
        max_connections: 2,
        ..ServerConfig::default()
    };
    let (_conn, handle) = start(cfg);
    let mut a = Client::connect(handle.addr()).unwrap();
    a.query("SELECT 1 AS x").unwrap(); // roundtrip ⇒ registered
    let mut b = Client::connect(handle.addr()).unwrap();
    b.query("SELECT 1 AS x").unwrap();
    // third connection is over the limit: its first exchange surfaces
    // the Busy frame the server sent before closing
    let mut c = Client::connect(handle.addr()).unwrap();
    let err = c.query("SELECT 1 AS x").unwrap_err();
    assert!(
        matches!(
            err,
            ClientError::Server {
                code: ErrorCode::Busy,
                ..
            }
        ) || matches!(err, ClientError::Closed | ClientError::Io(_)),
        "{err:?}"
    );
    // a slot frees up when a client leaves
    a.close().unwrap();
    // the server processes the close asynchronously; retry briefly
    let mut admitted = false;
    for _ in 0..100 {
        let mut d = match Client::connect(handle.addr()) {
            Ok(d) => d,
            Err(_) => continue,
        };
        if d.query("SELECT 1 AS x").is_ok() {
            admitted = true;
            let _ = d.close();
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(admitted, "freed slot was never re-admitted");
    let _ = b.close();
    handle.shutdown();
}

#[test]
fn overload_never_hangs_and_refusals_are_typed() {
    let cfg = ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    };
    let (_conn, handle) = start(cfg);
    let addr = handle.addr();
    // more concurrent work than one worker + one queue slot can hold:
    // every request must resolve — success or typed refusal — promptly
    let threads: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for _ in 0..5 {
                    match c.query(
                        "SELECT a.name AS x, b.name AS y FROM emp AS a, emp AS b \
                         WHERE a.dept = b.dept ORDER BY x ASC, y ASC;",
                    ) {
                        Ok(rs) => assert_eq!(rs.rows.len(), 5),
                        Err(ClientError::Server {
                            code: ErrorCode::QueueFull | ErrorCode::Busy,
                            ..
                        }) => {}
                        Err(other) => panic!("untyped overload failure: {other:?}"),
                    }
                }
                let _ = c.close();
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap(); // a hang here fails via the test harness timeout
    }
    handle.shutdown();
}

#[test]
fn varying_parameters_cannot_grow_the_plan_cache_without_bound() {
    let (conn, handle) = start(ServerConfig::default());
    conn.set_plan_cache_capacity(8);
    let mut c = Client::connect(handle.addr()).unwrap();
    let (stmt, _) = c
        .prepare("SELECT e.name AS who FROM emp AS e WHERE e.sal >= $1 ORDER BY who ASC;")
        .unwrap();
    // every distinct parameter value substitutes its own statement text
    // (its own cache key); the LRU bound must hold regardless
    for i in 0..50 {
        let rs = c.execute(stmt, &[Value::Int(i)]).unwrap();
        assert!(rs.rows.len() <= 3);
    }
    assert!(
        conn.plan_cache_len() <= 8,
        "plan cache must stay bounded under varying parameters, len = {}",
        conn.plan_cache_len()
    );
    c.close().unwrap();
    handle.shutdown();
}

#[test]
fn colliding_content_hashes_never_serve_the_wrong_plan() {
    use ferry::shred::{CompiledBundle, QueryDesc, VLayout};
    // the compile path wire statements take, minus the hashing — so the
    // test can force two different texts under one content hash
    fn compile(conn: &Connection, sql: &str, hash: u64) -> CompiledBundle {
        let snap = conn.snapshot();
        let stmt = ferry_sql::parser::parse(sql).unwrap();
        let (plan, root) = ferry_sql::binder::bind(&snap, &stmt).unwrap();
        CompiledBundle {
            plan,
            queries: vec![QueryDesc {
                root,
                is_list: false,
                layout: VLayout::Atom(0),
            }],
            ty: ferry::Ty::Unit,
            opt: None,
            exp_hash: hash,
        }
    }
    let conn = seeded_connection();
    const H: u64 = 0xDEAD_BEEF;
    let one = "SELECT 1 AS x;";
    let two = "SELECT 2 AS x;";
    let a = conn
        .prepare_raw(H, Some(one), |c| Ok(compile(c, one, H)))
        .unwrap();
    // same hash, different text — a crafted FNV collision. The cache
    // must notice the text mismatch and compile fresh, never reuse a's
    // plan.
    let b = conn
        .prepare_raw(H, Some(two), |c| Ok(compile(c, two, H)))
        .unwrap();
    assert_eq!(
        conn.execute_bundle(&a).unwrap()[0].rows()[0],
        vec![Value::Int(1)]
    );
    assert_eq!(
        conn.execute_bundle(&b).unwrap()[0].rows()[0],
        vec![Value::Int(2)]
    );
    // the resident entry is untouched: the original text still gets its
    // own (correct) plan on the next lookup
    let a2 = conn
        .prepare_raw(H, Some(one), |c| Ok(compile(c, one, H)))
        .unwrap();
    assert_eq!(
        conn.execute_bundle(&a2).unwrap()[0].rows()[0],
        vec![Value::Int(1)]
    );
}

#[test]
fn finished_sessions_are_reaped_under_connection_churn() {
    let (_conn, handle) = start(ServerConfig::default());
    // churn: 50 sequential connect/query/close cycles. Each accept
    // reaps already-finished session threads, so the tracked-handle
    // backlog must stay near the live count instead of growing by one
    // per connection ever served.
    for _ in 0..50 {
        let mut c = Client::connect(handle.addr()).unwrap();
        c.query("SELECT 1 AS x").unwrap();
        c.close().unwrap();
    }
    // give the last session threads a moment to exit, then trigger one
    // final reap with a fresh accept
    let mut backlog = usize::MAX;
    for _ in 0..100 {
        std::thread::sleep(Duration::from_millis(10));
        let mut c = Client::connect(handle.addr()).unwrap();
        c.query("SELECT 1 AS x").unwrap();
        backlog = handle.session_backlog();
        c.close().unwrap();
        if backlog <= 5 {
            break;
        }
    }
    assert!(
        backlog <= 5,
        "finished session handles were never reaped: backlog = {backlog}"
    );
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_and_refuses_late_arrivals() {
    let cfg = ServerConfig {
        workers: 1,
        queue_depth: 4,
        ..ServerConfig::default()
    };
    let (_conn, handle) = start(cfg);
    let addr = handle.addr();
    // two in-flight queries: one running on the single worker, one queued
    let inflight: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.query(
                    "SELECT a.name AS x, b.name AS y, d.name AS z \
                     FROM emp AS a, emp AS b, emp AS d \
                     ORDER BY x ASC, y ASC, z ASC;",
                )
            })
        })
        .collect();
    // let the requests reach the server before pulling the plug
    std::thread::sleep(Duration::from_millis(150));
    handle.shutdown();
    for t in inflight {
        // drained work completes with real results; a request that
        // raced the stop flag gets the typed refusal — never a hang,
        // never a torn response
        match t.join().unwrap() {
            Ok(rs) => assert_eq!(rs.rows.len(), 27),
            Err(ClientError::Server {
                code: ErrorCode::ShuttingDown,
                ..
            }) => {}
            Err(other) => panic!("shutdown tore a response: {other:?}"),
        }
    }
    // the listener is gone: late arrivals cannot connect, or are cut
    // before being served
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut late) => assert!(late.query("SELECT 1 AS x").is_err()),
    }
}

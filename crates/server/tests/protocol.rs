//! Protocol robustness over real sockets: every frame type byte-flipped
//! and truncated at every position, version/tag abuse, oversized frames
//! — the server must answer with typed error frames or close cleanly,
//! never panic, and keep serving afterwards.

use ferry::Connection;
use ferry_algebra::{Schema, Ty, Value};
use ferry_engine::Database;
use ferry_server::proto::{decode_response, encode_request, ErrorCode, Request, Response};
use ferry_server::{frame, Client, Server, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

fn start_server() -> ServerHandle {
    let db = Database::new();
    db.create_table(
        "emp",
        Schema::of(&[("dept", Ty::Str), ("name", Ty::Str), ("sal", Ty::Int)]),
        vec!["name"],
    )
    .unwrap();
    db.insert(
        "emp",
        vec![
            vec![Value::str("eng"), Value::str("ada"), Value::Int(90)],
            vec![Value::str("eng"), Value::str("bob"), Value::Int(70)],
            vec![Value::str("ops"), Value::str("cy"), Value::Int(50)],
        ],
    )
    .unwrap();
    Server::bind(Connection::new(db), "127.0.0.1:0", ServerConfig::default()).unwrap()
}

fn all_requests() -> Vec<Request> {
    vec![
        Request::Prepare {
            sql: "SELECT 1 AS x".into(),
        },
        Request::Execute {
            stmt: 1,
            params: vec![Value::Int(7), Value::str("a")],
        },
        Request::Query {
            sql: "SELECT 1 AS x".into(),
            params: vec![],
        },
        Request::Metrics,
        Request::Close,
    ]
}

/// Send raw bytes, half-close the write side, and drain whatever the
/// server answers until it closes. A bounded read timeout turns a hung
/// server into a test failure rather than a stuck suite.
fn send_raw_and_drain(handle: &ServerHandle, bytes: &[u8]) -> Vec<u8> {
    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    (&stream).write_all(bytes).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut out = Vec::new();
    let mut r = &stream;
    let mut buf = [0u8; 4096];
    loop {
        match r.read(&mut buf) {
            Ok(0) => return out,
            Ok(n) => out.extend_from_slice(&buf[..n]),
            // a flipped length field can leave our bytes unread in the
            // server's receive buffer; its close then arrives as RST,
            // which is still a clean typed disconnect
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => return out,
            Err(e) => panic!("server stopped answering: {e}"),
        }
    }
}

/// Every complete frame the server sent must decode as a response. (An
/// RST close may clip the tail of the stream, so a damaged *final*
/// fragment is tolerated — but nothing after it.)
fn assert_only_wellformed_responses(bytes: &[u8]) {
    let mut cursor = std::io::Cursor::new(bytes.to_vec());
    loop {
        match frame::read_wire_frame_blocking(&mut cursor) {
            Ok(payload) => {
                decode_response(&payload).expect("server frames always decode");
            }
            Err(frame::FrameError::Closed) => return,
            Err(frame::FrameError::Malformed(_)) => return, // clipped tail
            Err(e) => panic!("unreadable server stream: {e}"),
        }
    }
}

#[test]
fn corrupt_frame_matrix_never_kills_the_server() {
    let handle = start_server();
    for req in all_requests() {
        let mut framed = Vec::new();
        frame::write_wire_frame(&mut framed, &encode_request(&req)).unwrap();
        // every single-byte corruption
        for i in 0..framed.len() {
            let mut bad = framed.clone();
            bad[i] ^= 0x40;
            let answer = send_raw_and_drain(&handle, &bad);
            assert_only_wellformed_responses(&answer);
        }
        // every truncation
        for cut in 1..framed.len() {
            let answer = send_raw_and_drain(&handle, &framed[..cut]);
            assert_only_wellformed_responses(&answer);
        }
    }
    // after the whole matrix the server still serves real queries
    let mut c = Client::connect(handle.addr()).unwrap();
    let rs = c
        .query("SELECT e.name AS who FROM emp AS e ORDER BY who ASC")
        .unwrap();
    assert_eq!(rs.rows.len(), 3);
    c.close().unwrap();
    handle.shutdown();
}

#[test]
fn bad_version_and_unknown_tag_get_typed_errors_and_the_session_survives() {
    let handle = start_server();
    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut w = &stream;
    let mut r = &stream;

    // protocol version 9 in an otherwise intact frame
    let mut payload = encode_request(&Request::Metrics);
    payload[0] = 9;
    frame::write_wire_frame(&mut w, &payload).unwrap();
    let resp = decode_response(&frame::read_wire_frame_blocking(&mut r).unwrap()).unwrap();
    assert!(
        matches!(
            resp,
            Response::Error {
                code: ErrorCode::Unsupported,
                ..
            }
        ),
        "{resp:?}"
    );

    // unknown message tag, same connection
    let mut payload = encode_request(&Request::Metrics);
    payload[1] = 42;
    frame::write_wire_frame(&mut w, &payload).unwrap();
    let resp = decode_response(&frame::read_wire_frame_blocking(&mut r).unwrap()).unwrap();
    assert!(
        matches!(
            resp,
            Response::Error {
                code: ErrorCode::Malformed,
                ..
            }
        ),
        "{resp:?}"
    );

    // the session survived both: a valid request still answers
    frame::write_wire_frame(&mut w, &encode_request(&Request::Metrics)).unwrap();
    let resp = decode_response(&frame::read_wire_frame_blocking(&mut r).unwrap()).unwrap();
    assert!(matches!(resp, Response::MetricsText { .. }), "{resp:?}");
    handle.shutdown();
}

#[test]
fn oversized_frame_is_a_typed_goodbye() {
    let handle = start_server();
    // a header announcing a payload beyond the wire ceiling
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    let answer = send_raw_and_drain(&handle, &bytes);
    let mut cursor = std::io::Cursor::new(answer);
    let payload = frame::read_wire_frame_blocking(&mut cursor).unwrap();
    let resp = decode_response(&payload).unwrap();
    assert!(
        matches!(
            resp,
            Response::Error {
                code: ErrorCode::Malformed,
                ..
            }
        ),
        "{resp:?}"
    );
    handle.shutdown();
}

#[test]
fn sql_errors_are_typed_not_fatal() {
    let handle = start_server();
    let mut c = Client::connect(handle.addr()).unwrap();
    // parse error
    let err = c.query("SELEC").unwrap_err();
    assert!(
        matches!(
            err,
            ferry_server::ClientError::Server {
                code: ErrorCode::Sql,
                ..
            }
        ),
        "{err:?}"
    );
    // bind error
    let err = c.query("SELECT g.x AS x FROM ghost AS g").unwrap_err();
    assert!(
        matches!(
            err,
            ferry_server::ClientError::Server {
                code: ErrorCode::Sql,
                ..
            }
        ),
        "{err:?}"
    );
    // unknown statement id
    let err = c.execute(99, &[]).unwrap_err();
    assert!(
        matches!(
            err,
            ferry_server::ClientError::Server {
                code: ErrorCode::UnknownStatement,
                ..
            }
        ),
        "{err:?}"
    );
    // the session shrugged all three off
    let rs = c.query("SELECT 1 AS x").unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Int(1)]]);
    c.close().unwrap();
    handle.shutdown();
}

//! A small blocking client for the wire protocol — enough to embed in
//! tests, benches and examples, and the reference implementation for
//! anyone writing a client in another language.
//!
//! The client is strictly request/response: one request frame out, read
//! response frames until the request is answered. Server-side refusals
//! arrive as typed [`ClientError::Server`] values carrying the
//! [`ErrorCode`], so callers can dispatch on `Busy` vs `QueueFull` vs
//! `Sql` without parsing message strings.

use crate::frame::{self, FrameError};
use crate::proto::{self, ErrorCode, Request, Response};
use ferry_algebra::{Row, Schema, Value};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// How a client call can fail.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// Transport-level failure (socket error, framing damage).
    Io(String),
    /// The server answered with something the protocol does not allow
    /// at this point in the exchange.
    Protocol(String),
    /// A typed refusal from the server.
    Server { code: ErrorCode, message: String },
    /// The server closed the connection.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(d) => write!(f, "io error: {d}"),
            ClientError::Protocol(d) => write!(f, "protocol error: {d}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            ClientError::Closed => write!(f, "connection closed by server"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> ClientError {
        match e {
            FrameError::Closed => ClientError::Closed,
            other => ClientError::Io(other.to_string()),
        }
    }
}

/// A complete query result: the schema and every row, batches already
/// reassembled.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    pub schema: Schema,
    pub rows: Vec<Row>,
}

/// One connection to a ferry server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect. The socket stays fully blocking — the server answers
    /// every request, including refusals, so reads terminate.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        frame::write_wire_frame(&mut self.stream, &proto::encode_request(req))
            .map_err(ClientError::from)
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        let payload = frame::read_wire_frame_blocking(&mut self.stream)?;
        proto::decode_response(&payload).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Read one non-streaming response, converting server `Error`
    /// frames into [`ClientError::Server`].
    fn recv_ok(&mut self) -> Result<Response, ClientError> {
        match self.recv()? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            resp => Ok(resp),
        }
    }

    /// Read a full result stream: `ResultHeader`, any number of
    /// `RowBatch` frames, `ResultDone`.
    fn read_result(&mut self) -> Result<ResultSet, ClientError> {
        let schema = match self.recv_ok()? {
            Response::ResultHeader { schema } => schema,
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected a result header, got {other:?}"
                )))
            }
        };
        let mut rows = Vec::new();
        loop {
            match self.recv_ok()? {
                Response::RowBatch { rows: batch } => rows.extend(batch),
                Response::ResultDone { rows: total } => {
                    if total != rows.len() as u64 {
                        return Err(ClientError::Protocol(format!(
                            "result stream announced {total} rows but carried {}",
                            rows.len()
                        )));
                    }
                    return Ok(ResultSet { schema, rows });
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected a row batch or end-of-result, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Prepare a statement; returns its id and (for parameterless
    /// statements) its result schema.
    pub fn prepare(&mut self, sql: &str) -> Result<(u32, Schema), ClientError> {
        self.send(&Request::Prepare {
            sql: sql.to_string(),
        })?;
        match self.recv_ok()? {
            Response::PrepareOk { stmt, schema } => Ok((stmt, schema)),
            other => Err(ClientError::Protocol(format!(
                "expected prepare-ok, got {other:?}"
            ))),
        }
    }

    /// Execute a prepared statement with positional parameters.
    pub fn execute(&mut self, stmt: u32, params: &[Value]) -> Result<ResultSet, ClientError> {
        self.send(&Request::Execute {
            stmt,
            params: params.to_vec(),
        })?;
        self.read_result()
    }

    /// One-shot query without parameters.
    pub fn query(&mut self, sql: &str) -> Result<ResultSet, ClientError> {
        self.query_params(sql, &[])
    }

    /// One-shot query with positional `$n` parameters.
    pub fn query_params(&mut self, sql: &str, params: &[Value]) -> Result<ResultSet, ClientError> {
        self.send(&Request::Query {
            sql: sql.to_string(),
            params: params.to_vec(),
        })?;
        self.read_result()
    }

    /// Fetch the server's Prometheus metrics exposition over the wire.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.send(&Request::Metrics)?;
        match self.recv_ok()? {
            Response::MetricsText { text } => Ok(text),
            other => Err(ClientError::Protocol(format!(
                "expected metrics text, got {other:?}"
            ))),
        }
    }

    /// Orderly goodbye; waits for the server's ack.
    pub fn close(mut self) -> Result<(), ClientError> {
        self.send(&Request::Close)?;
        match self.recv_ok()? {
            Response::CloseAck => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected close-ack, got {other:?}"
            ))),
        }
    }
}

//! Per-connection sessions: prepared statements, SQL compilation
//! through the shared plan cache, and the `ferry.connections` system
//! table describing the live session set.
//!
//! A session owns a map of statement ids to SQL templates. The heavy
//! work — parse, bind, compile, execute — runs on the worker pool via
//! the free functions here, which need only a [`Connection`] clone and
//! the statement text. Compilation goes through
//! `Connection::prepare_raw`, keyed by a content hash of the SQL text,
//! so wire statements share the runtime plan cache with DSL programs
//! and show up (with hit counts) in `ferry.plan_cache`.
//!
//! Parameters are positional `$1..$n` placeholders, substituted into
//! the statement text as SQL literals *before* the cache lookup:
//! repeating an execution with identical parameters is a cache hit,
//! different parameters compile (and cache) their own plan. The plan
//! cache is capacity-bounded with LRU eviction, so a workload (or a
//! hostile client) cycling through distinct parameter values recycles
//! cache slots instead of growing server memory without bound. String
//! parameters are escaped by quote doubling; the supported dialect is
//! ASCII, so non-ASCII strings are refused with a typed error rather
//! than silently mangled.

use crate::proto::{ErrorCode, Response};
use ferry::shred::{CompiledBundle, QueryDesc, VLayout};
use ferry::{Connection, FerryError};
use ferry_algebra::{validate, Row, Schema, Ty, Value};
use ferry_engine::DispatchCtx;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A refusal on its way to the wire: the typed error frame's content.
#[derive(Debug, Clone)]
pub(crate) struct Reject {
    pub code: ErrorCode,
    pub message: String,
}

impl Reject {
    pub(crate) fn new(code: ErrorCode, message: impl Into<String>) -> Reject {
        Reject {
            code,
            message: message.into(),
        }
    }

    pub(crate) fn response(&self) -> Response {
        Response::Error {
            code: self.code,
            message: self.message.clone(),
        }
    }
}

pub(crate) type SResult<T> = Result<T, Reject>;

// ------------------------------------------------------------- registry

/// Live state of one session, shared between its thread and the
/// `ferry.connections` provider.
#[derive(Debug)]
pub struct SessionInfo {
    pub id: u64,
    pub peer: String,
    /// Prepared statements currently held.
    pub statements: AtomicI64,
    /// Requests served (Prepare/Execute/Query/Metrics).
    pub queries: AtomicI64,
    /// Total time this session's work spent queued, µs.
    pub queue_wait_us: AtomicI64,
}

/// The live session set, queryable as `ferry.connections`.
#[derive(Debug, Default)]
pub struct SessionRegistry {
    next: AtomicU64,
    live: Mutex<BTreeMap<u64, Arc<SessionInfo>>>,
}

impl SessionRegistry {
    pub fn new() -> SessionRegistry {
        SessionRegistry::default()
    }

    pub fn register(&self, peer: String) -> Arc<SessionInfo> {
        let id = self.next.fetch_add(1, Ordering::Relaxed) + 1;
        let info = Arc::new(SessionInfo {
            id,
            peer,
            statements: AtomicI64::new(0),
            queries: AtomicI64::new(0),
            queue_wait_us: AtomicI64::new(0),
        });
        self.live.lock().unwrap().insert(id, info.clone());
        info
    }

    pub fn remove(&self, id: u64) {
        self.live.lock().unwrap().remove(&id);
    }

    pub fn len(&self) -> usize {
        self.live.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `ferry.connections` schema and keys: columns alphabetical (the
    /// canonical system-table order), keyed by session id.
    pub fn table_schema() -> (Schema, Vec<String>) {
        (
            Schema::of(&[
                ("id", Ty::Int),
                ("peer", Ty::Str),
                ("queries", Ty::Int),
                ("queue_wait_us", Ty::Int),
                ("statements", Ty::Int),
            ]),
            vec!["id".to_string()],
        )
    }

    /// Provider rows, in key (session id) order.
    pub fn rows(&self) -> Vec<Row> {
        self.live
            .lock()
            .unwrap()
            .values()
            .map(|s| {
                vec![
                    Value::Int(s.id as i64),
                    Value::str(s.peer.clone()),
                    Value::Int(s.queries.load(Ordering::Relaxed)),
                    Value::Int(s.queue_wait_us.load(Ordering::Relaxed)),
                    Value::Int(s.statements.load(Ordering::Relaxed)),
                ]
            })
            .collect()
    }
}

// ------------------------------------------------- statement compilation

/// FNV-1a over a tagged spelling of the statement text — the content
/// hash wire statements are plan-cached under. The `sql:` tag keeps the
/// hash domain disjoint from `Exp::stable_hash` by construction.
pub(crate) fn sql_hash(sql: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in "sql:".bytes().chain(sql.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn sql_reject(e: impl std::fmt::Display) -> Reject {
    Reject::new(ErrorCode::Sql, e.to_string())
}

/// Parse + bind `sql` and wrap the plan as a single-query
/// [`CompiledBundle`] so it can live in the runtime plan cache and
/// dispatch with full `ferry.queries` attribution.
fn compile_sql(conn: &Connection, sql: &str, hash: u64) -> Result<CompiledBundle, FerryError> {
    let snap = conn.snapshot();
    let stmt = ferry_sql::parser::parse(sql).map_err(|e| FerryError::Engine(e.to_string()))?;
    let (plan, root) =
        ferry_sql::binder::bind(&snap, &stmt).map_err(|e| FerryError::Engine(e.to_string()))?;
    let (plan, root, opt) = match conn.plan_rewriter() {
        Some(rw) => {
            let (plan, roots, report) = rw(&plan, &[root]);
            (plan, roots[0], report)
        }
        None => (plan, root, None),
    };
    Ok(CompiledBundle {
        plan,
        queries: vec![QueryDesc {
            root,
            is_list: false,
            layout: VLayout::Atom(0),
        }],
        ty: ferry::Ty::Unit,
        opt,
        exp_hash: hash,
    })
}

/// Compile-or-fetch `sql` through the shared plan cache; returns the
/// bundle and its statically inferred result schema.
pub(crate) fn prepare_sql(conn: &Connection, sql: &str) -> SResult<(Arc<CompiledBundle>, Schema)> {
    let hash = sql_hash(sql);
    // the statement text rides along as the collision guard: a cache
    // hit is only served when the stored text matches, so a crafted
    // FNV collision can never execute another session's plan
    let bundle = conn
        .prepare_raw(hash, Some(sql), |c| compile_sql(c, sql, hash))
        .map_err(sql_reject)?;
    let root = bundle.queries[0].root;
    let schema = validate(&bundle.plan, root).map_err(sql_reject)?;
    Ok((bundle, schema))
}

/// Execute `sql` (already parameter-substituted) against a freshly
/// pinned MVCC snapshot. One call = one engine dispatch = one
/// internally consistent response.
pub(crate) fn run_sql(conn: &Connection, sql: &str) -> SResult<(Schema, Vec<Row>)> {
    let (bundle, schema) = prepare_sql(conn, sql)?;
    let snap = conn.snapshot();
    let ctx = DispatchCtx {
        plan_hash: bundle.exp_hash,
        opt: bundle.opt.as_ref(),
    };
    let rels = snap
        .execute_bundle_ctx(&bundle.plan, &[bundle.queries[0].root], ctx)
        .map_err(sql_reject)?;
    let rel = rels.into_iter().next().expect("one root, one relation");
    Ok((schema, rel.rows().into_owned()))
}

// ------------------------------------------------------------ parameters

/// Largest placeholder number a statement may reference. The cap keeps
/// digit accumulation overflow-free (a hostile `$9…9` with enough
/// digits would otherwise wrap in release builds and panic in debug)
/// and bounds per-statement parameter bookkeeping.
pub(crate) const MAX_PLACEHOLDER: usize = 10_000;

/// Read the digits of a `$n` placeholder whose `$` has just been
/// consumed. Typed `Sql` rejections for a missing/zero number and for
/// numbers beyond [`MAX_PLACEHOLDER`] — never a wrap or a panic.
fn read_placeholder(chars: &mut std::iter::Peekable<std::str::Chars>) -> SResult<usize> {
    let mut n = 0usize;
    let mut digits = 0;
    while let Some(d) = chars.peek().and_then(|c| c.to_digit(10)) {
        chars.next();
        n = n * 10 + d as usize; // cap below keeps this far from overflow
        digits += 1;
        if n > MAX_PLACEHOLDER {
            return Err(Reject::new(
                ErrorCode::Sql,
                format!("placeholder number exceeds the ${MAX_PLACEHOLDER} limit"),
            ));
        }
    }
    if digits == 0 || n == 0 {
        return Err(Reject::new(
            ErrorCode::Sql,
            "`$` must be followed by a positional parameter number (1-based)",
        ));
    }
    Ok(n)
}

/// Highest `$n` placeholder referenced in `sql` (0 = parameterless).
/// String literals are skipped; a `$` not followed by a digit is a
/// malformed statement.
pub(crate) fn placeholder_count(sql: &str) -> SResult<usize> {
    let mut max = 0usize;
    let mut chars = sql.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                // consume the literal; '' is an escaped quote
                loop {
                    match chars.next() {
                        None => {
                            return Err(Reject::new(ErrorCode::Sql, "unterminated string literal"))
                        }
                        Some('\'') => {
                            if chars.peek() == Some(&'\'') {
                                chars.next();
                            } else {
                                break;
                            }
                        }
                        Some(_) => {}
                    }
                }
            }
            '$' => {
                max = max.max(read_placeholder(&mut chars)?);
            }
            _ => {}
        }
    }
    Ok(max)
}

/// Render one parameter as a SQL literal of the supported dialect.
fn render_param(v: &Value) -> SResult<String> {
    match v {
        Value::Int(i) => Ok(i.to_string()),
        Value::Bool(true) => Ok("TRUE".to_string()),
        Value::Bool(false) => Ok("FALSE".to_string()),
        Value::Dbl(d) => {
            if !d.is_finite() {
                return Err(Reject::new(
                    ErrorCode::Unsupported,
                    "non-finite double parameters are not expressible as SQL literals",
                ));
            }
            // {:?} is the shortest round-tripping spelling; it always
            // carries a '.' or an exponent, so it lexes as a float
            Ok(format!("{d:?}"))
        }
        Value::Str(s) => {
            if !s.is_ascii() {
                return Err(Reject::new(
                    ErrorCode::Unsupported,
                    "non-ASCII string parameters are not supported by the dialect",
                ));
            }
            Ok(format!("'{}'", s.replace('\'', "''")))
        }
        Value::Unit | Value::Nat(_) => Err(Reject::new(
            ErrorCode::Unsupported,
            format!("{v:?} is not usable as a statement parameter"),
        )),
    }
}

/// Substitute `$1..$n` placeholders with `params` rendered as literals.
/// Placeholders inside string literals are left alone.
pub(crate) fn substitute(sql: &str, params: &[Value]) -> SResult<String> {
    let mut out = String::with_capacity(sql.len());
    let mut chars = sql.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                out.push('\'');
                loop {
                    match chars.next() {
                        None => {
                            return Err(Reject::new(ErrorCode::Sql, "unterminated string literal"))
                        }
                        Some('\'') => {
                            out.push('\'');
                            if chars.peek() == Some(&'\'') {
                                out.push('\'');
                                chars.next();
                            } else {
                                break;
                            }
                        }
                        Some(c) => out.push(c),
                    }
                }
            }
            '$' => {
                let n = read_placeholder(&mut chars)?;
                if n > params.len() {
                    return Err(Reject::new(
                        ErrorCode::Sql,
                        format!(
                            "parameter ${n} out of range (statement has {})",
                            params.len()
                        ),
                    ));
                }
                // parenthesised so a negative literal composes under
                // any surrounding operator
                out.push('(');
                out.push_str(&render_param(&params[n - 1])?);
                out.push(')');
            }
            c => out.push(c),
        }
    }
    Ok(out)
}

// -------------------------------------------------------------- sessions

/// One prepared statement held by a session: the SQL template plus the
/// number of positional parameters it takes.
#[derive(Debug, Clone)]
pub(crate) struct PreparedStmt {
    pub sql: Arc<str>,
    pub params: usize,
}

/// Session-thread-side statement registry. The heavy lifting happens on
/// workers via [`prepare_statement`] / [`run_statement`]; this struct
/// only assigns ids and resolves them back to templates.
#[derive(Debug, Default)]
pub(crate) struct Statements {
    held: HashMap<u32, PreparedStmt>,
    next: u32,
}

impl Statements {
    pub fn insert(&mut self, sql: Arc<str>, params: usize) -> u32 {
        self.next += 1;
        self.held.insert(self.next, PreparedStmt { sql, params });
        self.next
    }

    pub fn get(&self, id: u32) -> SResult<PreparedStmt> {
        self.held.get(&id).cloned().ok_or_else(|| {
            Reject::new(
                ErrorCode::UnknownStatement,
                format!("statement {id} was never prepared on this session"),
            )
        })
    }

    pub fn len(&self) -> usize {
        self.held.len()
    }
}

/// Worker-side half of `Prepare`: validate placeholders and (for
/// parameterless statements) compile eagerly so errors and the result
/// schema surface at prepare time. Parameterised statements defer
/// compilation to execute time — their literals aren't known yet — and
/// report an empty schema.
pub(crate) fn prepare_statement(conn: &Connection, sql: &str) -> SResult<(usize, Schema)> {
    let nparams = placeholder_count(sql)?;
    if nparams == 0 {
        let (_, schema) = prepare_sql(conn, sql)?;
        Ok((0, schema))
    } else {
        Ok((nparams, Schema::new(Vec::new())))
    }
}

/// Worker-side half of `Execute`/`Query`: substitute, compile-or-fetch,
/// dispatch.
pub(crate) fn run_statement(
    conn: &Connection,
    sql: &str,
    nparams: usize,
    params: &[Value],
) -> SResult<(Schema, Vec<Row>)> {
    if params.len() != nparams {
        return Err(Reject::new(
            ErrorCode::Sql,
            format!(
                "statement expects {nparams} parameters, got {}",
                params.len()
            ),
        ));
    }
    let text: String;
    let sql = if nparams == 0 {
        sql
    } else {
        text = substitute(sql, params)?;
        &text
    };
    run_sql(conn, sql)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placeholders_are_counted_outside_strings() {
        assert_eq!(placeholder_count("SELECT 1 AS x").unwrap(), 0);
        assert_eq!(placeholder_count("SELECT $1 AS x, $2 AS y").unwrap(), 2);
        assert_eq!(placeholder_count("SELECT '$9' AS x, $3 AS y").unwrap(), 3);
        assert!(placeholder_count("SELECT $ AS x").is_err());
        assert!(placeholder_count("SELECT $0 AS x").is_err());
        assert!(placeholder_count("SELECT 'oops").is_err());
    }

    #[test]
    fn huge_placeholder_numbers_are_typed_rejections_not_overflows() {
        // enough digits to overflow u64 accumulation if unchecked
        let sql = "SELECT $99999999999999999999999 AS x";
        let r = placeholder_count(sql);
        assert!(
            matches!(r, Err(ref rej) if rej.code == ErrorCode::Sql),
            "{r:?}"
        );
        let r = substitute(sql, &[Value::Int(1)]);
        assert!(
            matches!(r, Err(ref rej) if rej.code == ErrorCode::Sql),
            "{r:?}"
        );
        // the cap itself is inclusive
        assert_eq!(
            placeholder_count(&format!("SELECT ${MAX_PLACEHOLDER} AS x")).unwrap(),
            MAX_PLACEHOLDER
        );
        assert!(placeholder_count(&format!("SELECT ${} AS x", MAX_PLACEHOLDER + 1)).is_err());
    }

    #[test]
    fn substitution_renders_literals() {
        let out = substitute(
            "SELECT $1 AS a, $2 AS b, $3 AS c, $4 AS d",
            &[
                Value::Int(-5),
                Value::str("it's"),
                Value::Bool(true),
                Value::Dbl(1.5),
            ],
        )
        .unwrap();
        assert_eq!(
            out,
            "SELECT (-5) AS a, ('it''s') AS b, (TRUE) AS c, (1.5) AS d"
        );
        // placeholders inside string literals survive untouched
        let out = substitute("SELECT '$1' AS a, $1 AS b", &[Value::Int(7)]).unwrap();
        assert_eq!(out, "SELECT '$1' AS a, (7) AS b");
    }

    #[test]
    fn unsupported_parameters_are_typed_rejections() {
        for v in [Value::Unit, Value::Nat(3)] {
            let r = substitute("SELECT $1 AS x", &[v]);
            assert!(matches!(r, Err(ref rej) if rej.code == ErrorCode::Unsupported));
        }
        let r = substitute("SELECT $1 AS x", &[Value::Dbl(f64::NAN)]);
        assert!(matches!(r, Err(ref rej) if rej.code == ErrorCode::Unsupported));
        let r = substitute("SELECT $1 AS x", &[Value::str("héllo")]);
        assert!(matches!(r, Err(ref rej) if rej.code == ErrorCode::Unsupported));
        let r = substitute("SELECT $2 AS x", &[Value::Int(1)]);
        assert!(matches!(r, Err(ref rej) if rej.code == ErrorCode::Sql));
    }

    #[test]
    fn sql_hash_is_stable_and_content_addressed() {
        let a = sql_hash("SELECT 1 AS x");
        assert_eq!(a, sql_hash("SELECT 1 AS x"));
        assert_ne!(a, sql_hash("SELECT 2 AS x"));
    }

    #[test]
    fn connections_schema_is_alphabetical_with_valid_keys() {
        let (schema, keys) = SessionRegistry::table_schema();
        let cols: Vec<&str> = schema.cols().iter().map(|(c, _)| c.as_ref()).collect();
        let mut sorted = cols.clone();
        sorted.sort_unstable();
        assert_eq!(cols, sorted);
        for k in &keys {
            assert!(schema.contains(k.as_str()));
        }
    }

    #[test]
    fn registry_tracks_sessions_in_id_order() {
        let reg = SessionRegistry::new();
        let a = reg.register("1.2.3.4:5".into());
        let b = reg.register("5.6.7.8:9".into());
        a.queries.fetch_add(3, Ordering::Relaxed);
        let rows = reg.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::Int(a.id as i64));
        assert_eq!(rows[0][2], Value::Int(3));
        assert_eq!(rows[1][0], Value::Int(b.id as i64));
        reg.remove(a.id);
        assert_eq!(reg.rows().len(), 1);
    }
}

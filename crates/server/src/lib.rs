//! Ferry's network edge: database-supported program execution *as a
//! service*.
//!
//! Everything below the wire already existed — `Connection::prepare`'s
//! content-addressed plan cache, MVCC snapshots for lock-free readers,
//! the SQL front end, and a Prometheus registry with no port to serve
//! it. This crate adds the missing edge: a threaded TCP server speaking
//! a length-prefixed, CRC-framed binary protocol (the exact
//! `ferry-storage` frame and codec formats, lifted from disk onto the
//! socket), per-connection sessions holding prepared statements over a
//! shared database, and admission control so overload degrades into
//! typed `Busy`/`QueueFull` refusals instead of collapse.
//!
//! Module map:
//!
//! * [`frame`] — `[len][crc32][payload]` frames over a byte stream;
//! * [`proto`] — request/response messages and their binary encoding;
//! * [`session`] — per-connection statement registry, SQL compilation
//!   through the shared plan cache, the `ferry.connections` view;
//! * [`pool`] — the bounded work queue and fixed worker pool;
//! * [`server`] — accept loop, session threads, graceful shutdown;
//! * [`client`] — a small blocking client used by tests, benches and
//!   `examples/client.rs`.

pub mod client;
pub mod frame;
pub mod pool;
pub mod proto;
pub mod server;
pub mod session;

pub use client::{Client, ClientError, ResultSet};
pub use frame::{FrameError, MAX_WIRE_LEN};
pub use proto::{ErrorCode, Request, Response, PROTO_VERSION};
pub use server::{Server, ServerConfig, ServerHandle};
pub use session::SessionRegistry;

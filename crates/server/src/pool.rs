//! The admission-controlled worker pool: a bounded queue in front of a
//! fixed set of worker threads.
//!
//! Overload policy in one sentence: work is either *queued* (bounded,
//! observable as `server.queue_depth`), *running* (at most `workers`
//! at once), or *refused* with a typed `QueueFull` frame — the pool
//! never grows, never blocks the submitting session thread, and never
//! drops an accepted job. Each job learns how long it waited so queue
//! time is attributable per session and in the
//! `server.queue_wait_ns` histogram. Jobs run under `catch_unwind`: a
//! panicking statement answers its session with a typed `Internal`
//! error (its response channel drops on unwind) and the worker
//! survives to serve the next job.

use ferry_telemetry::{Gauge, Histogram};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// A queued unit of work. The closure receives the time the job spent
/// waiting in the queue.
struct Job {
    queued: Instant,
    run: Box<dyn FnOnce(std::time::Duration) + Send>,
}

/// The queue was at capacity; the job was not accepted.
#[derive(Debug)]
pub struct QueueFull;

/// Fixed worker pool with a bounded submission queue.
pub struct Pool {
    tx: Mutex<Option<SyncSender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    depth: Arc<Gauge>,
}

impl Pool {
    /// `workers` threads draining a queue of at most `queue_depth`
    /// pending jobs. Queue state is published through the given gauge
    /// and histogram handles.
    pub fn new(
        workers: usize,
        queue_depth: usize,
        depth: Arc<Gauge>,
        wait: Arc<Histogram>,
    ) -> Pool {
        let (tx, rx) = sync_channel::<Job>(queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers.max(1))
            .map(|i| {
                let rx = rx.clone();
                let depth = depth.clone();
                let wait = wait.clone();
                std::thread::Builder::new()
                    .name(format!("ferry-worker-{i}"))
                    .spawn(move || loop {
                        // hold the receiver lock only for the dequeue
                        let job = match rx.lock().unwrap().recv() {
                            Ok(job) => job,
                            Err(_) => return, // pool shut down
                        };
                        depth.add(-1);
                        let waited = job.queued.elapsed();
                        wait.record(waited.as_nanos() as u64);
                        // a panicking job must not take the worker with
                        // it — capacity would silently shrink panic by
                        // panic until every submit answered QueueFull.
                        // The job's response channel drops on unwind, so
                        // the waiting session observes a typed Internal
                        // error and the worker lives to serve the next
                        // job.
                        let run = job.run;
                        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                            run(waited)
                        }));
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        Pool {
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(handles),
            depth,
        }
    }

    /// Enqueue `run` without blocking. `Err(QueueFull)` is the typed
    /// overload signal — the caller turns it into a `QueueFull` frame.
    pub fn submit(
        &self,
        run: Box<dyn FnOnce(std::time::Duration) + Send>,
    ) -> Result<(), QueueFull> {
        let guard = self.tx.lock().unwrap();
        let Some(tx) = guard.as_ref() else {
            return Err(QueueFull); // shutting down
        };
        let job = Job {
            queued: Instant::now(),
            run,
        };
        match tx.try_send(job) {
            Ok(()) => {
                self.depth.add(1);
                Ok(())
            }
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => Err(QueueFull),
        }
    }

    /// Drain-then-stop: already queued jobs run to completion, new
    /// submissions are refused, workers are joined.
    pub fn shutdown(&self) {
        self.tx.lock().unwrap().take(); // closes the channel when dropped
        for h in self.workers.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferry_telemetry::Registry;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel;

    fn pool(workers: usize, depth: usize) -> Pool {
        let reg = Registry::default();
        Pool::new(
            workers,
            depth,
            reg.gauge("q").unwrap(),
            reg.histogram("w").unwrap(),
        )
    }

    #[test]
    fn jobs_run_and_report_wait() {
        let p = pool(2, 4);
        let done = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel();
        for _ in 0..8 {
            let done = done.clone();
            let tx = tx.clone();
            // a full queue surfaces as QueueFull, not a hang: retry
            while p
                .submit(Box::new({
                    let done = done.clone();
                    let tx = tx.clone();
                    move |_wait| {
                        done.fetch_add(1, Ordering::SeqCst);
                        let _ = tx.send(());
                    }
                }))
                .is_err()
            {
                std::thread::yield_now();
            }
        }
        for _ in 0..8 {
            rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        }
        assert_eq!(done.load(Ordering::SeqCst), 8);
        p.shutdown();
    }

    #[test]
    fn full_queue_is_a_typed_refusal() {
        let p = pool(1, 1);
        let (block_tx, block_rx) = channel::<()>();
        // occupy the single worker
        p.submit(Box::new(move |_| {
            let _ = block_rx.recv();
        }))
        .unwrap();
        // fill the queue, then observe refusal (the worker may or may
        // not have dequeued the blocker yet, so allow up to two accepts)
        let mut refused = false;
        for _ in 0..3 {
            if p.submit(Box::new(|_| {})).is_err() {
                refused = true;
                break;
            }
        }
        assert!(refused, "a bounded queue must refuse, not grow");
        block_tx.send(()).unwrap();
        p.shutdown();
    }

    #[test]
    fn a_panicking_job_does_not_kill_its_worker() {
        let p = pool(1, 4);
        // the only worker runs a panicking job…
        p.submit(Box::new(|_| panic!("statement exploded")))
            .unwrap();
        // …and must survive to run the next one
        let (tx, rx) = channel();
        p.submit(Box::new(move |_| {
            let _ = tx.send(());
        }))
        .unwrap();
        rx.recv_timeout(std::time::Duration::from_secs(5))
            .expect("worker died with the panicking job");
        p.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let p = pool(1, 4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..3 {
            let done = done.clone();
            p.submit(Box::new(move |_| {
                done.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        p.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 3);
        assert!(p.submit(Box::new(|_| {})).is_err());
    }
}

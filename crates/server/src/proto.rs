//! The message layer: typed requests and responses, encoded with
//! `ferry-storage`'s versioned codec inside [`frame`](crate::frame)
//! payloads.
//!
//! Every payload is `[proto version: u8][message tag: u8][body]`; the
//! body reuses the storage `Enc`/`Dec` encodings for values, rows and
//! schemas, so the wire and the WAL speak one data format. Decoders are
//! total: anything malformed comes back as a typed [`ProtoError`],
//! never a panic, and trailing bytes after a message are rejected (a
//! writer/reader disagreement is corruption, exactly as on disk).

use ferry_algebra::{Row, Schema, Value};
use ferry_storage::codec::{Dec, Enc};

/// Protocol version stamped into every message.
pub const PROTO_VERSION: u8 = 1;

/// What a client asks of the server.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Compile SQL text into a session-held prepared statement.
    /// Placeholders `$1..$n` take [`Value`] parameters at execute time.
    Prepare { sql: String },
    /// Execute a prepared statement with positional parameters.
    Execute { stmt: u32, params: Vec<Value> },
    /// One-shot prepare + execute (still plan-cached by content).
    Query { sql: String, params: Vec<Value> },
    /// Fetch the Prometheus exposition of the server's registry.
    Metrics,
    /// Orderly goodbye; the server acks and closes.
    Close,
}

/// What the server answers.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `Prepare` succeeded. For parameterless statements `schema` is the
    /// statement's result schema; parameterised statements defer
    /// inference to execute time and report an empty schema here (the
    /// `ResultHeader` always carries the real one).
    PrepareOk { stmt: u32, schema: Schema },
    /// First frame of a result stream.
    ResultHeader { schema: Schema },
    /// One bounded chunk of result rows (the stream stays under the
    /// frame ceiling regardless of result size).
    RowBatch { rows: Vec<Row> },
    /// End of a result stream; `rows` is the total row count.
    ResultDone { rows: u64 },
    /// The Prometheus exposition text.
    MetricsText { text: String },
    /// Acknowledges `Close`; the connection ends after this frame.
    CloseAck,
    /// Any refusal or failure, typed by [`ErrorCode`].
    Error { code: ErrorCode, message: String },
}

/// Typed failure classes a client can dispatch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request could not be decoded (bad tag, bad body).
    Malformed = 1,
    /// Decodable but outside what this server supports (wrong protocol
    /// version, unsupported parameter type).
    Unsupported = 2,
    /// `Execute` named a statement id this session never prepared.
    UnknownStatement = 3,
    /// SQL-level failure: parse, bind, or execution error.
    Sql = 4,
    /// Admission control: the connection limit is reached.
    Busy = 5,
    /// Admission control: the work queue is full.
    QueueFull = 6,
    /// The server is draining; no new work is admitted.
    ShuttingDown = 7,
    /// A server-side invariant failure (worker died, …).
    Internal = 8,
}

impl ErrorCode {
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::Unsupported,
            3 => ErrorCode::UnknownStatement,
            4 => ErrorCode::Sql,
            5 => ErrorCode::Busy,
            6 => ErrorCode::QueueFull,
            7 => ErrorCode::ShuttingDown,
            8 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::UnknownStatement => "unknown-statement",
            ErrorCode::Sql => "sql",
            ErrorCode::Busy => "busy",
            ErrorCode::QueueFull => "queue-full",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Internal => "internal",
        };
        f.write_str(s)
    }
}

/// Why a message failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The peer speaks a protocol version we don't.
    Version(u8),
    /// The message tag is not one we know.
    UnknownTag(u8),
    /// The body failed the codec's bounds/validity checks.
    Codec(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Version(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            ProtoError::Codec(d) => write!(f, "undecodable message body: {d}"),
        }
    }
}

impl std::error::Error for ProtoError {}

// request tags
const T_PREPARE: u8 = 1;
const T_EXECUTE: u8 = 2;
const T_QUERY: u8 = 3;
const T_METRICS: u8 = 4;
const T_CLOSE: u8 = 5;
// response tags (disjoint from requests so a stray frame read by the
// wrong side decodes to UnknownTag, not garbage)
const T_PREPARE_OK: u8 = 128;
const T_RESULT_HEADER: u8 = 129;
const T_ROW_BATCH: u8 = 130;
const T_RESULT_DONE: u8 = 131;
const T_METRICS_TEXT: u8 = 132;
const T_CLOSE_ACK: u8 = 133;
const T_ERROR: u8 = 255;

fn params(e: &mut Enc, ps: &[Value]) {
    e.u32(ps.len() as u32);
    for p in ps {
        e.value(p);
    }
}

pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(PROTO_VERSION);
    match req {
        Request::Prepare { sql } => {
            e.u8(T_PREPARE);
            e.str(sql);
        }
        Request::Execute { stmt, params: ps } => {
            e.u8(T_EXECUTE);
            e.u32(*stmt);
            params(&mut e, ps);
        }
        Request::Query { sql, params: ps } => {
            e.u8(T_QUERY);
            e.str(sql);
            params(&mut e, ps);
        }
        Request::Metrics => e.u8(T_METRICS),
        Request::Close => e.u8(T_CLOSE),
    }
    e.into_bytes()
}

pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(PROTO_VERSION);
    match resp {
        Response::PrepareOk { stmt, schema } => {
            e.u8(T_PREPARE_OK);
            e.u32(*stmt);
            e.schema(schema);
        }
        Response::ResultHeader { schema } => {
            e.u8(T_RESULT_HEADER);
            e.schema(schema);
        }
        Response::RowBatch { rows } => {
            e.u8(T_ROW_BATCH);
            e.rows(rows);
        }
        Response::ResultDone { rows } => {
            e.u8(T_RESULT_DONE);
            e.u64(*rows);
        }
        Response::MetricsText { text } => {
            e.u8(T_METRICS_TEXT);
            e.str(text);
        }
        Response::CloseAck => e.u8(T_CLOSE_ACK),
        Response::Error { code, message } => {
            e.u8(T_ERROR);
            e.u8(*code as u8);
            e.str(message);
        }
    }
    e.into_bytes()
}

fn header<'a>(payload: &'a [u8]) -> Result<(Dec<'a>, u8), ProtoError> {
    let mut d = Dec::new(payload);
    let v = d.u8().map_err(|e| ProtoError::Codec(e.to_string()))?;
    if v != PROTO_VERSION {
        return Err(ProtoError::Version(v));
    }
    let tag = d.u8().map_err(|e| ProtoError::Codec(e.to_string()))?;
    Ok((d, tag))
}

fn codec<T>(r: Result<T, ferry_storage::StorageError>) -> Result<T, ProtoError> {
    r.map_err(|e| ProtoError::Codec(e.to_string()))
}

fn decode_params(d: &mut Dec<'_>) -> Result<Vec<Value>, ProtoError> {
    let n = codec(d.u32())? as usize;
    // each value is at least one tag byte; a hostile count cannot force
    // a huge allocation
    let mut ps = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        ps.push(codec(d.value())?);
    }
    Ok(ps)
}

pub fn decode_request(payload: &[u8]) -> Result<Request, ProtoError> {
    let (mut d, tag) = header(payload)?;
    let req = match tag {
        T_PREPARE => Request::Prepare {
            sql: codec(d.str())?.to_string(),
        },
        T_EXECUTE => {
            let stmt = codec(d.u32())?;
            let params = decode_params(&mut d)?;
            Request::Execute { stmt, params }
        }
        T_QUERY => {
            let sql = codec(d.str())?.to_string();
            let params = decode_params(&mut d)?;
            Request::Query { sql, params }
        }
        T_METRICS => Request::Metrics,
        T_CLOSE => Request::Close,
        t => return Err(ProtoError::UnknownTag(t)),
    };
    codec(d.finish())?;
    Ok(req)
}

pub fn decode_response(payload: &[u8]) -> Result<Response, ProtoError> {
    let (mut d, tag) = header(payload)?;
    let resp = match tag {
        T_PREPARE_OK => {
            let stmt = codec(d.u32())?;
            let schema = codec(d.schema())?;
            Response::PrepareOk { stmt, schema }
        }
        T_RESULT_HEADER => Response::ResultHeader {
            schema: codec(d.schema())?,
        },
        T_ROW_BATCH => Response::RowBatch {
            rows: codec(d.rows())?,
        },
        T_RESULT_DONE => Response::ResultDone {
            rows: codec(d.u64())?,
        },
        T_METRICS_TEXT => Response::MetricsText {
            text: codec(d.str())?.to_string(),
        },
        T_CLOSE_ACK => Response::CloseAck,
        T_ERROR => {
            let code = codec(d.u8())?;
            let code = ErrorCode::from_u8(code)
                .ok_or_else(|| ProtoError::Codec(format!("unknown error code {code}")))?;
            let message = codec(d.str())?.to_string();
            Response::Error { code, message }
        }
        t => return Err(ProtoError::UnknownTag(t)),
    };
    codec(d.finish())?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferry_algebra::Ty;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Prepare {
                sql: "SELECT 1 AS x".into(),
            },
            Request::Execute {
                stmt: 7,
                params: vec![Value::Int(-3), Value::str("it's"), Value::Bool(true)],
            },
            Request::Query {
                sql: "SELECT 2 AS y".into(),
                params: vec![],
            },
            Request::Metrics,
            Request::Close,
        ]
    }

    fn all_responses() -> Vec<Response> {
        let schema = Schema::of(&[("n", Ty::Int), ("s", Ty::Str)]);
        vec![
            Response::PrepareOk {
                stmt: 1,
                schema: schema.clone(),
            },
            Response::ResultHeader { schema },
            Response::RowBatch {
                rows: vec![vec![Value::Int(1), Value::str("a")]],
            },
            Response::ResultDone { rows: 1 },
            Response::MetricsText {
                text: "# TYPE x counter\nx 1\n".into(),
            },
            Response::CloseAck,
            Response::Error {
                code: ErrorCode::Busy,
                message: "connection limit reached".into(),
            },
        ]
    }

    #[test]
    fn requests_roundtrip() {
        for req in all_requests() {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        for resp in all_responses() {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn version_and_tag_are_checked() {
        let mut bytes = encode_request(&Request::Metrics);
        bytes[0] = 9;
        assert_eq!(decode_request(&bytes), Err(ProtoError::Version(9)));
        let mut bytes = encode_request(&Request::Metrics);
        bytes[1] = 42;
        assert_eq!(decode_request(&bytes), Err(ProtoError::UnknownTag(42)));
        // a response tag sent to the request decoder is unknown, and
        // vice versa
        let bytes = encode_response(&Response::CloseAck);
        assert!(matches!(
            decode_request(&bytes),
            Err(ProtoError::UnknownTag(_))
        ));
        let bytes = encode_request(&Request::Close);
        assert!(matches!(
            decode_response(&bytes),
            Err(ProtoError::UnknownTag(_))
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        for req in all_requests() {
            let mut bytes = encode_request(&req);
            bytes.push(0xEE);
            assert!(
                matches!(decode_request(&bytes), Err(ProtoError::Codec(_))),
                "{req:?}"
            );
        }
    }

    #[test]
    fn truncations_never_panic() {
        for req in all_requests() {
            let bytes = encode_request(&req);
            for cut in 0..bytes.len() {
                assert!(decode_request(&bytes[..cut]).is_err(), "{req:?} at {cut}");
            }
        }
        for resp in all_responses() {
            let bytes = encode_response(&resp);
            for cut in 0..bytes.len() {
                assert!(decode_response(&bytes[..cut]).is_err(), "{resp:?} at {cut}");
            }
        }
    }
}

//! Wire framing: `ferry-storage`'s `[len: u32 LE][crc32: u32 LE]
//! [payload]` record format lifted from durable files onto a TCP
//! stream. The CRC covers the length prefix and the payload, so a bit
//! flip in either is detected as [`FrameError::Malformed`] — and since
//! a stream (unlike a file) cannot be re-scanned for the next valid
//! frame, any framing-level damage tears down the connection.

use ferry_storage::frame::{crc32, write_frame, FRAME_HEADER};
use std::io::{ErrorKind, Read, Write};

/// Ceiling on one wire frame's payload (16 MiB) — deliberately tighter
/// than the storage layer's 64 MiB: a network peer is less trusted than
/// our own WAL, and this bounds per-connection allocation on hostile
/// input.
pub const MAX_WIRE_LEN: u32 = 16 << 20;

/// How reading a frame can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// Framing-level damage: oversized length, CRC mismatch, or EOF in
    /// the middle of a frame. The stream cannot be resynchronised; the
    /// connection must close.
    Malformed(String),
    /// A transport error from the socket.
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Malformed(d) => write!(f, "malformed frame: {d}"),
            FrameError::Io(d) => write!(f, "io error: {d}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// What the read-side poll callback decides when the socket read times
/// out. The callback is invoked with `mid_frame = true` when part of a
/// frame has already been consumed (stopping there means the frame is
/// lost), `false` at a frame boundary (stopping there is clean).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Poll {
    Continue,
    Stop,
}

/// Write one frame wrapping `payload` and flush.
pub fn write_wire_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_WIRE_LEN as usize {
        return Err(FrameError::Malformed(format!(
            "payload of {} bytes exceeds the wire ceiling ({MAX_WIRE_LEN})",
            payload.len()
        )));
    }
    let mut buf = Vec::with_capacity(FRAME_HEADER + payload.len());
    write_frame(&mut buf, payload).map_err(|e| FrameError::Malformed(e.to_string()))?;
    w.write_all(&buf)
        .and_then(|()| w.flush())
        .map_err(|e| FrameError::Io(e.to_string()))
}

enum FillEnd {
    Full,
    Eof,
    Stopped,
}

/// Read exactly `buf.len()` bytes, consulting `poll` on every socket
/// timeout tick (sessions run with a short `read_timeout` so shutdown
/// can interrupt an idle read).
fn fill(
    r: &mut impl Read,
    buf: &mut [u8],
    got: &mut usize,
    mid_frame: bool,
    poll: &mut dyn FnMut(bool) -> Poll,
) -> Result<FillEnd, FrameError> {
    while *got < buf.len() {
        match r.read(&mut buf[*got..]) {
            Ok(0) => return Ok(FillEnd::Eof),
            Ok(n) => *got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                if poll(mid_frame || *got > 0) == Poll::Stop {
                    return Ok(FillEnd::Stopped);
                }
            }
            Err(e) => return Err(FrameError::Io(e.to_string())),
        }
    }
    Ok(FillEnd::Full)
}

/// Read one frame's payload. Returns `Ok(None)` when `poll` stopped the
/// read (graceful shutdown); [`FrameError::Closed`] on a clean peer
/// close at a frame boundary; [`FrameError::Malformed`] on any framing
/// damage, including an EOF mid-frame.
pub fn read_wire_frame(
    r: &mut impl Read,
    poll: &mut dyn FnMut(bool) -> Poll,
) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; FRAME_HEADER];
    let mut got = 0;
    match fill(r, &mut header, &mut got, false, poll)? {
        FillEnd::Full => {}
        FillEnd::Eof if got == 0 => return Err(FrameError::Closed),
        FillEnd::Eof => {
            return Err(FrameError::Malformed(format!(
                "connection closed {got} bytes into a frame header"
            )))
        }
        FillEnd::Stopped => return Ok(None),
    }
    let len = u32::from_le_bytes(header[..4].try_into().unwrap());
    let stored = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len > MAX_WIRE_LEN {
        return Err(FrameError::Malformed(format!(
            "frame length {len} exceeds the wire ceiling ({MAX_WIRE_LEN})"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    let mut got = 0;
    match fill(r, &mut payload, &mut got, true, poll)? {
        FillEnd::Full => {}
        FillEnd::Eof => {
            return Err(FrameError::Malformed(format!(
                "connection closed {got} bytes into a {len}-byte payload"
            )))
        }
        FillEnd::Stopped => return Ok(None),
    }
    if crc32(crc32(0, &len.to_le_bytes()), &payload) != stored {
        return Err(FrameError::Malformed("checksum mismatch".into()));
    }
    Ok(Some(payload))
}

/// Blocking read with no stop condition — the client side, where no
/// read timeout is set.
pub fn read_wire_frame_blocking(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    match read_wire_frame(r, &mut |_| Poll::Continue)? {
        Some(p) => Ok(p),
        None => Err(FrameError::Closed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn framed(payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_wire_frame(&mut buf, payload).unwrap();
        buf
    }

    #[test]
    fn roundtrip() {
        let buf = framed(b"hello");
        let got = read_wire_frame_blocking(&mut Cursor::new(buf)).unwrap();
        assert_eq!(got, b"hello");
    }

    #[test]
    fn clean_eof_is_closed() {
        let r = read_wire_frame_blocking(&mut Cursor::new(Vec::new()));
        assert_eq!(r, Err(FrameError::Closed));
    }

    #[test]
    fn every_truncation_is_malformed() {
        let buf = framed(b"payload-bytes");
        for cut in 1..buf.len() {
            let r = read_wire_frame_blocking(&mut Cursor::new(buf[..cut].to_vec()));
            assert!(
                matches!(r, Err(FrameError::Malformed(_))),
                "cut at {cut}: {r:?}"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let buf = framed(b"sensitive");
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            let r = read_wire_frame_blocking(&mut Cursor::new(bad));
            assert!(
                matches!(r, Err(FrameError::Malformed(_))),
                "flip at {i}: {r:?}"
            );
        }
    }

    #[test]
    fn oversized_length_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; 4]);
        let r = read_wire_frame_blocking(&mut Cursor::new(buf));
        assert!(matches!(r, Err(FrameError::Malformed(_))));
    }

    #[test]
    fn oversized_payload_refused_on_write() {
        let mut sink = Vec::new();
        let big = vec![0u8; MAX_WIRE_LEN as usize + 1];
        assert!(matches!(
            write_wire_frame(&mut sink, &big),
            Err(FrameError::Malformed(_))
        ));
        assert!(sink.is_empty());
    }
}

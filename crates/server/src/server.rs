//! The server: accept loop, session threads, admission control, and
//! drain-then-close shutdown.
//!
//! Threading model — one thread per live connection doing framing and
//! bookkeeping, a fixed [`Pool`] doing all statement work (parse, bind,
//! compile, execute). A session submits one job at a time and waits for
//! it, so responses stay ordered per connection while the pool bounds
//! total concurrent query work regardless of connection count.
//!
//! Admission control is two gates with typed refusals:
//!
//! 1. **connection limit** — accepts beyond `max_connections` get one
//!    `Busy` error frame and are closed;
//! 2. **work queue** — statement requests beyond `queue_depth` pending
//!    jobs get a `QueueFull` error frame (the connection survives).
//!
//! Shutdown drains: the stop flag refuses new accepts and new requests
//! (`ShuttingDown`), in-flight requests finish and their responses are
//! written, session threads are joined, then the pool drains its queue
//! and stops. Embedders handle SIGTERM by calling
//! [`ServerHandle::shutdown`] (no signal-handling crate in this
//! offline workspace); dropping the handle does the same.

use crate::frame::{self, FrameError, Poll};
use crate::pool::Pool;
use crate::proto::{self, ErrorCode, ProtoError, Request, Response};
use crate::session::{
    prepare_statement, run_statement, Reject, SessionInfo, SessionRegistry, Statements,
};
use ferry::Connection;
use ferry_algebra::{Row, Schema};
use ferry_telemetry::{names, Counter, Gauge, Histogram};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables. The defaults suit tests and small deployments; production
/// embedders size `workers` to cores and the queue to tolerable wait.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Live-connection ceiling; accepts beyond it are refused `Busy`.
    pub max_connections: usize,
    /// Worker threads executing statements.
    pub workers: usize,
    /// Pending-job ceiling; submissions beyond it are refused
    /// `QueueFull`.
    pub queue_depth: usize,
    /// Rows per `RowBatch` frame.
    pub chunk_rows: usize,
    /// Socket read poll interval — the latency with which idle
    /// sessions and the accept loop observe shutdown.
    pub poll_interval: Duration,
    /// How long a mid-frame read may keep draining after shutdown
    /// begins before the connection is cut.
    pub drain_grace: Duration,
    /// Per-write socket timeout, so a stalled client cannot wedge a
    /// session thread (and thereby shutdown) forever.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_connections: 64,
            workers: 4,
            queue_depth: 16,
            chunk_rows: 1024,
            poll_interval: Duration::from_millis(25),
            drain_grace: Duration::from_secs(2),
            write_timeout: Duration::from_secs(30),
        }
    }
}

struct Metrics {
    accepts: Arc<Counter>,
    rejects: Arc<Counter>,
    connections: Arc<Gauge>,
    requests: Arc<Counter>,
    latency: Arc<Histogram>,
}

struct Shared {
    conn: Connection,
    cfg: ServerConfig,
    stop: AtomicBool,
    registry: Arc<SessionRegistry>,
    sessions: Mutex<Vec<JoinHandle<()>>>,
    pool: Pool,
    m: Metrics,
}

/// Namespace for [`Server::bind`].
pub struct Server;

impl Server {
    /// Bind `addr`, register `ferry.connections` and the `server.*`
    /// metrics on the connection's database, and start accepting.
    pub fn bind(
        conn: Connection,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let conflict = |e: ferry_telemetry::MetricTypeConflict| io::Error::other(e.to_string());
        let telemetry = conn.telemetry();
        let reg = telemetry.registry();
        let m = Metrics {
            accepts: reg.counter(names::SERVER_ACCEPTS).map_err(conflict)?,
            rejects: reg.counter(names::SERVER_REJECTS).map_err(conflict)?,
            connections: reg.gauge(names::SERVER_CONNECTIONS).map_err(conflict)?,
            requests: reg.counter(names::SERVER_REQUESTS).map_err(conflict)?,
            latency: reg
                .histogram(names::SERVER_REQUEST_LATENCY_NS)
                .map_err(conflict)?,
        };
        let depth = reg.gauge(names::SERVER_QUEUE_DEPTH).map_err(conflict)?;
        let wait = reg
            .histogram(names::SERVER_QUEUE_WAIT_NS)
            .map_err(conflict)?;

        let registry = Arc::new(SessionRegistry::new());
        let provider = registry.clone();
        let (schema, keys) = SessionRegistry::table_schema();
        conn.database()
            .register_system_table(
                "ferry.connections",
                schema,
                keys,
                Arc::new(move || provider.rows()),
            )
            .map_err(|e| io::Error::other(e.to_string()))?;

        let pool = Pool::new(cfg.workers, cfg.queue_depth, depth, wait);
        let shared = Arc::new(Shared {
            conn,
            cfg,
            stop: AtomicBool::new(false),
            registry,
            sessions: Mutex::new(Vec::new()),
            pool,
            m,
        });
        let accept = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("ferry-accept".into())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
        })
    }
}

/// A running server. Dropping it performs a full graceful shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live sessions right now.
    pub fn live_sessions(&self) -> usize {
        self.shared.registry.len()
    }

    /// Session threads whose `JoinHandle`s are still tracked: live
    /// sessions plus any finished-but-not-yet-reaped. The accept loop
    /// reaps finished handles on every accept, so this stays bounded
    /// under connection churn instead of growing by one per connection
    /// ever served. Exposed for tests and diagnostics.
    pub fn session_backlog(&self) -> usize {
        self.shared.sessions.lock().unwrap().len()
    }

    /// Drain-then-close: refuse new accepts and new requests, let
    /// in-flight requests finish and flush, join every session thread,
    /// then drain and stop the worker pool.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.shared.stop.store(true, Ordering::SeqCst);
        let _ = accept.join(); // nonblocking loop: observes stop within poll_interval
        let sessions: Vec<_> = self.shared.sessions.lock().unwrap().drain(..).collect();
        for h in sessions {
            let _ = h.join();
        }
        self.shared.pool.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.do_shutdown();
    }
}

/// Join (and drop) session threads that have already exited. Called
/// from the accept loop so connection churn does not accumulate one
/// `JoinHandle` per connection ever accepted — the vector stays
/// bounded by the number of live sessions. Joining a finished thread
/// returns immediately.
fn reap_finished_sessions(sessions: &Mutex<Vec<JoinHandle<()>>>) {
    let mut guard = sessions.lock().unwrap();
    let mut i = 0;
    while i < guard.len() {
        if guard[i].is_finished() {
            let h = guard.swap_remove(i);
            let _ = h.join();
        } else {
            i += 1;
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let (stream, peer) = match listener.accept() {
            Ok(x) => x,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.cfg.poll_interval);
                continue;
            }
            Err(_) => {
                std::thread::sleep(shared.cfg.poll_interval);
                continue;
            }
        };
        // accepted sockets may inherit the listener's nonblocking mode;
        // sessions drive their own timeouts
        if stream.set_nonblocking(false).is_err() {
            continue;
        }
        // a response is several small frames (header, batches, done);
        // Nagle + delayed ACK would serialise them at ~40ms each
        let _ = stream.set_nodelay(true);
        if shared.stop.load(Ordering::SeqCst) {
            shared.m.rejects.inc();
            refuse_connection(&stream, ErrorCode::ShuttingDown, "server is draining");
            continue;
        }
        if shared.registry.len() >= shared.cfg.max_connections {
            shared.m.rejects.inc();
            refuse_connection(&stream, ErrorCode::Busy, "connection limit reached");
            continue;
        }
        reap_finished_sessions(&shared.sessions);
        shared.m.accepts.inc();
        shared.m.connections.add(1);
        let info = shared.registry.register(peer.to_string());
        let id = info.id;
        let session_shared = shared.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("ferry-session-{id}"))
            .spawn(move || run_session(&session_shared, &stream, &info));
        match spawned {
            Ok(h) => shared.sessions.lock().unwrap().push(h),
            Err(_) => {
                // undo the registration; the guard never ran
                shared.registry.remove(id);
                shared.m.connections.add(-1);
            }
        }
    }
}

/// One typed error frame on a connection we are not keeping, with a
/// short write timeout so a non-reading peer cannot stall the accept
/// loop.
fn refuse_connection(stream: &TcpStream, code: ErrorCode, message: &str) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut w = stream;
    let _ = write_response(
        &mut w,
        &Response::Error {
            code,
            message: message.to_string(),
        },
    );
}

fn write_response(w: &mut impl Write, resp: &Response) -> Result<(), FrameError> {
    frame::write_wire_frame(w, &proto::encode_response(resp))
}

/// Removes the session from the registry and the gauge when the thread
/// exits, however it exits.
struct SessionGuard<'a> {
    shared: &'a Shared,
    id: u64,
}

impl Drop for SessionGuard<'_> {
    fn drop(&mut self) {
        self.shared.registry.remove(self.id);
        self.shared.m.connections.add(-1);
    }
}

fn run_session(shared: &Shared, stream: &TcpStream, info: &Arc<SessionInfo>) {
    let _guard = SessionGuard {
        shared,
        id: info.id,
    };
    if stream
        .set_read_timeout(Some(shared.cfg.poll_interval))
        .is_err()
    {
        return;
    }
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let mut stmts = Statements::default();
    let mut stop_seen: Option<Instant> = None;
    let mut poll = |mid_frame: bool| {
        if !shared.stop.load(Ordering::SeqCst) {
            return Poll::Continue;
        }
        let seen = *stop_seen.get_or_insert_with(Instant::now);
        if mid_frame && seen.elapsed() <= shared.cfg.drain_grace {
            Poll::Continue
        } else {
            Poll::Stop
        }
    };
    let mut r = stream;
    loop {
        let payload = match frame::read_wire_frame(&mut r, &mut poll) {
            Ok(Some(p)) => p,
            // shutdown drain finished, or the peer said goodbye
            Ok(None) | Err(FrameError::Closed) => return,
            Err(FrameError::Malformed(detail)) => {
                // the stream cannot resync — one typed goodbye, then close
                let mut w = stream;
                let _ = write_response(
                    &mut w,
                    &Response::Error {
                        code: ErrorCode::Malformed,
                        message: detail,
                    },
                );
                return;
            }
            Err(FrameError::Io(_)) => return,
        };
        let started = Instant::now();
        let req = match proto::decode_request(&payload) {
            Ok(req) => req,
            Err(e) => {
                // the frame itself was intact, so the session survives a
                // bad message — answer typed and keep reading
                let code = match e {
                    ProtoError::Version(_) => ErrorCode::Unsupported,
                    ProtoError::UnknownTag(_) | ProtoError::Codec(_) => ErrorCode::Malformed,
                };
                let mut w = stream;
                let ok = write_response(
                    &mut w,
                    &Response::Error {
                        code,
                        message: e.to_string(),
                    },
                )
                .is_ok();
                finish_request(shared, info, started);
                if ok {
                    continue;
                }
                return;
            }
        };
        if !handle_request(shared, stream, info, &mut stmts, req, started) {
            return;
        }
    }
}

fn finish_request(shared: &Shared, info: &SessionInfo, started: Instant) {
    shared.m.requests.inc();
    shared.m.latency.record(started.elapsed().as_nanos() as u64);
    info.queries.fetch_add(1, Ordering::Relaxed);
}

/// Ship a job to the worker pool and wait for its result, turning a
/// full queue into the typed `QueueFull` refusal. Ordering: a session
/// has at most one job in flight, so responses arrive in request order.
fn offload<T: Send + 'static>(
    shared: &Shared,
    info: &SessionInfo,
    job: impl FnOnce() -> Result<T, Reject> + Send + 'static,
) -> Result<T, Reject> {
    let (tx, rx) = mpsc::channel();
    let boxed = Box::new(move |waited: Duration| {
        let _ = tx.send((waited, job()));
    });
    shared.pool.submit(boxed).map_err(|_| {
        shared.m.rejects.inc();
        Reject::new(ErrorCode::QueueFull, "work queue is full")
    })?;
    match rx.recv() {
        Ok((waited, result)) => {
            info.queue_wait_us
                .fetch_add(waited.as_micros() as i64, Ordering::Relaxed);
            result
        }
        // the sender dropped without answering: the job panicked
        // mid-statement (the worker survives; see pool.rs) or the pool
        // shut down underneath us
        Err(_) => Err(Reject::new(
            ErrorCode::Internal,
            "statement execution aborted (worker panic or pool shutdown)",
        )),
    }
}

/// Stream a result as `ResultHeader`, bounded `RowBatch` chunks, and
/// `ResultDone`.
fn stream_result(
    stream: &TcpStream,
    schema: Schema,
    rows: Vec<Row>,
    chunk_rows: usize,
) -> Result<(), FrameError> {
    let mut w = stream;
    write_response(&mut w, &Response::ResultHeader { schema })?;
    let total = rows.len() as u64;
    for chunk in rows.chunks(chunk_rows.max(1)) {
        write_response(
            &mut w,
            &Response::RowBatch {
                rows: chunk.to_vec(),
            },
        )?;
    }
    write_response(&mut w, &Response::ResultDone { rows: total })
}

/// Handle one decoded request; returns whether the session survives.
fn handle_request(
    shared: &Shared,
    stream: &TcpStream,
    info: &Arc<SessionInfo>,
    stmts: &mut Statements,
    req: Request,
    started: Instant,
) -> bool {
    let mut w = stream;
    match req {
        Request::Close => {
            let _ = write_response(&mut w, &Response::CloseAck);
            finish_request(shared, info, started);
            false
        }
        Request::Metrics => {
            let text = shared.conn.telemetry().registry().render_prometheus();
            let ok = write_response(&mut w, &Response::MetricsText { text }).is_ok();
            finish_request(shared, info, started);
            ok
        }
        Request::Prepare { sql } => {
            let result = statement_gate(shared).and_then(|()| {
                let conn = shared.conn.clone();
                let text = sql.clone();
                offload(shared, info, move || prepare_statement(&conn, &text))
            });
            let resp = match result {
                Ok((nparams, schema)) => {
                    let stmt = stmts.insert(Arc::from(sql.as_str()), nparams);
                    info.statements.store(stmts.len() as i64, Ordering::Relaxed);
                    Response::PrepareOk { stmt, schema }
                }
                Err(rej) => rej.response(),
            };
            let ok = write_response(&mut w, &resp).is_ok();
            finish_request(shared, info, started);
            ok
        }
        Request::Execute { stmt, params } => {
            let result = statement_gate(shared)
                .and_then(|()| stmts.get(stmt))
                .and_then(|prepared| {
                    let conn = shared.conn.clone();
                    offload(shared, info, move || {
                        run_statement(&conn, &prepared.sql, prepared.params, &params)
                    })
                });
            let ok = respond_result(stream, shared, result);
            finish_request(shared, info, started);
            ok
        }
        Request::Query { sql, params } => {
            let result = statement_gate(shared).and_then(|()| {
                let conn = shared.conn.clone();
                offload(shared, info, move || {
                    let nparams = crate::session::placeholder_count(&sql)?;
                    run_statement(&conn, &sql, nparams, &params)
                })
            });
            let ok = respond_result(stream, shared, result);
            finish_request(shared, info, started);
            ok
        }
    }
}

/// New statement work is refused once shutdown has begun; requests
/// already offloaded before the flag flipped drain normally.
fn statement_gate(shared: &Shared) -> Result<(), Reject> {
    if shared.stop.load(Ordering::SeqCst) {
        shared.m.rejects.inc();
        Err(Reject::new(
            ErrorCode::ShuttingDown,
            "server is draining; no new statements",
        ))
    } else {
        Ok(())
    }
}

fn respond_result(
    stream: &TcpStream,
    shared: &Shared,
    result: Result<(Schema, Vec<Row>), Reject>,
) -> bool {
    match result {
        Ok((schema, rows)) => stream_result(stream, schema, rows, shared.cfg.chunk_rows).is_ok(),
        Err(rej) => {
            let mut w = stream;
            write_response(&mut w, &rej.response()).is_ok()
        }
    }
}

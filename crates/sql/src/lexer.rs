//! A hand-written SQL lexer for the supported dialect.

use crate::SqlError;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Keywords and identifiers are both `Ident`; the parser matches
    /// keywords case-insensitively.
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// `||`.
    Concat,
}

/// Tokenise the input. `--` line comments are skipped.
pub fn lex(input: &str) -> Result<Vec<Tok>, SqlError> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '.' => {
                out.push(Tok::Dot);
                i += 1;
            }
            ';' => {
                out.push(Tok::Semicolon);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            '/' => {
                out.push(Tok::Slash);
                i += 1;
            }
            '%' => {
                out.push(Tok::Percent);
                i += 1;
            }
            '=' => {
                out.push(Tok::Eq);
                i += 1;
            }
            '|' if bytes.get(i + 1) == Some(&b'|') => {
                out.push(Tok::Concat);
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Le);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Tok::Ne);
                    i += 2;
                } else {
                    out.push(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Ge);
                    i += 2;
                } else {
                    out.push(Tok::Gt);
                    i += 1;
                }
            }
            '\'' => {
                // string literal; '' escapes a quote
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(SqlError::Lex("unterminated string".into())),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Tok::Str(s));
            }
            '"' => {
                // quoted identifier
                let mut s = String::new();
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    s.push(bytes[i] as char);
                    i += 1;
                }
                if i == bytes.len() {
                    return Err(SqlError::Lex("unterminated quoted identifier".into()));
                }
                i += 1;
                out.push(Tok::Ident(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    is_float = true;
                    i += 1;
                    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                        i += 1;
                    }
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                if is_float {
                    out.push(Tok::Float(
                        text.parse()
                            .map_err(|e| SqlError::Lex(format!("bad float {text}: {e}")))?,
                    ));
                } else {
                    out.push(Tok::Int(text.parse().map_err(|e| {
                        SqlError::Lex(format!("bad integer {text}: {e}"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Tok::Ident(input[start..i].to_string()));
            }
            c => return Err(SqlError::Lex(format!("unexpected character {c:?}"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_select() {
        let toks = lex("SELECT a.x AS y FROM t AS a WHERE a.x <= 3;").unwrap();
        assert_eq!(toks[0], Tok::Ident("SELECT".into()));
        assert!(toks.contains(&Tok::Le));
        assert!(toks.contains(&Tok::Int(3)));
        assert_eq!(*toks.last().unwrap(), Tok::Semicolon);
    }

    #[test]
    fn lexes_strings_and_escapes() {
        let toks = lex("'it''s'").unwrap();
        assert_eq!(toks, vec![Tok::Str("it's".into())]);
    }

    #[test]
    fn skips_comments() {
        let toks = lex("-- binding due to rank operator\nSELECT 1").unwrap();
        assert_eq!(toks[0], Tok::Ident("SELECT".into()));
        assert_eq!(toks[1], Tok::Int(1));
    }

    #[test]
    fn lexes_floats_and_operators() {
        let toks = lex("1.5 <> 2e3 || x").unwrap();
        assert_eq!(toks[0], Tok::Float(1.5));
        assert_eq!(toks[1], Tok::Ne);
        assert_eq!(toks[2], Tok::Float(2000.0));
        assert_eq!(toks[3], Tok::Concat);
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("SELECT #").is_err());
        assert!(lex("'unterminated").is_err());
    }
}

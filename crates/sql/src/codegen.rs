//! SQL:1999 code generation from table-algebra plans.
//!
//! The output follows the paper's appendix dialect: every operator that
//! needs materialisation becomes a `WITH` binding annotated with a comment
//! ("binding due to rank operator", …), column names carry their type as a
//! suffix (`item1_str`, `iter3_nat`, `pos29_nat`), window functions are
//! spelled `DENSE_RANK () OVER (ORDER BY …)`, and the statement ends with
//! the observable `ORDER BY`.
//!
//! Semi/anti joins have no direct SQL:1999 spelling in this dialect; they
//! are lowered to joins against `SELECT DISTINCT` key sets (semi) and
//! `EXCEPT` key differences (anti) — both expressible in, and parseable
//! from, the emitted subset.

use crate::SqlError;
use ferry_algebra::{
    infer_schema, AggFun, BinOp, ColName, Dir, Expr, Node, NodeId, Plan, Schema, Ty, UnOp, Value,
};
use ferry_engine::Snapshot;
use std::collections::HashMap;
use std::fmt::Write;

/// One generated SQL query.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlQuery {
    pub sql: String,
}

/// Generate the SQL statement for the query rooted at `root`. The pinned
/// snapshot provides the catalog column names of referenced base tables.
pub fn generate_sql(db: &Snapshot<'_>, plan: &Plan, root: NodeId) -> Result<SqlQuery, SqlError> {
    let mut span = ferry_telemetry::span("codegen", "sql");
    let schemas = infer_schema(plan).map_err(|e| SqlError::Codegen(e.to_string()))?;
    let mut g = Gen {
        db,
        plan,
        schemas: &schemas,
        ctes: Vec::new(),
        bound: HashMap::new(),
        next_alias: 0,
    };
    let final_select = g.final_query(root)?;
    let mut sql = String::new();
    if !g.ctes.is_empty() {
        sql.push_str("WITH\n");
        let n = g.ctes.len();
        for (i, cte) in g.ctes.iter().enumerate() {
            sql.push_str(cte);
            if i + 1 < n {
                sql.push_str(",\n");
            } else {
                sql.push('\n');
            }
        }
    }
    sql.push_str(&final_select);
    sql.push(';');
    span.attr("root", root.0)
        .attr("ctes", g.ctes.len())
        .attr("chars", sql.len());
    Ok(SqlQuery { sql })
}

/// Generate the full bundle (one statement per root) — the artefact of the
/// paper's appendix.
pub fn generate_bundle(
    db: &Snapshot<'_>,
    plan: &Plan,
    roots: &[NodeId],
) -> Result<Vec<SqlQuery>, SqlError> {
    roots.iter().map(|&r| generate_sql(db, plan, r)).collect()
}

/// SQL-facing name of a plan column: the type suffix makes column domains
/// recoverable from names alone, as in the appendix (`item4_nat`).
fn sql_col(name: &ColName, ty: Ty) -> String {
    let sfx = match ty {
        Ty::Nat => "nat",
        Ty::Int => "int",
        Ty::Dbl => "dbl",
        Ty::Str => "str",
        Ty::Bool => "bool",
        Ty::Unit => "unit",
    };
    format!("{name}_{sfx}")
}

struct Gen<'a> {
    db: &'a Snapshot<'a>,
    plan: &'a Plan,
    schemas: &'a [Schema],
    ctes: Vec<String>,
    /// node → CTE name (every non-root node is materialised once).
    bound: HashMap<NodeId, String>,
    next_alias: u32,
}

impl<'a> Gen<'a> {
    fn alias(&mut self) -> String {
        let a = format!("a{:04}", self.next_alias);
        self.next_alias += 1;
        a
    }

    fn schema(&self, id: NodeId) -> &Schema {
        &self.schemas[id.index()]
    }

    /// Output column list of a node, SQL-named.
    fn out_cols(&self, id: NodeId) -> Vec<String> {
        self.schema(id)
            .cols()
            .iter()
            .map(|(n, t)| sql_col(n, *t))
            .collect()
    }

    /// Ensure `id` is bound as a CTE; returns its name.
    fn bind(&mut self, id: NodeId) -> Result<String, SqlError> {
        if let Some(name) = self.bound.get(&id) {
            return Ok(name.clone());
        }
        let body = self.render_node(id)?;
        let name = format!("t{:04}", self.bound.len());
        let cols = self.out_cols(id).join(", ");
        let comment = binding_comment(self.plan.node(id));
        let mut cte = String::new();
        if !comment.is_empty() {
            let _ = writeln!(cte, "-- binding due to {comment}");
        }
        let _ = write!(cte, "{name} ({cols}) AS\n  ({body})");
        self.ctes.push(cte);
        self.bound.insert(id, name.clone());
        Ok(name)
    }

    /// The final (root) query: rendered inline, with its ORDER BY.
    fn final_query(&mut self, root: NodeId) -> Result<String, SqlError> {
        match self.plan.node(root) {
            Node::Serialize { input, order, cols } => {
                let input = *input;
                let order = order.clone();
                let cols = cols.clone();
                let src = self.bind(input)?;
                let a = self.alias();
                let in_schema = self.schema(input).clone();
                let items: Vec<String> = cols
                    .iter()
                    .map(|c| {
                        let t = in_schema.ty_of(c).expect("validated");
                        format!("{a}.{} AS {}", sql_col(c, t), sql_col(c, t))
                    })
                    .collect();
                let mut sql = format!("SELECT {}\nFROM {src} AS {a}", items.join(", "));
                if !order.is_empty() {
                    let os: Vec<String> = order
                        .iter()
                        .map(|(c, d)| {
                            let t = in_schema.ty_of(c).expect("validated");
                            format!(
                                "{a}.{} {}",
                                sql_col(c, t),
                                if *d == Dir::Asc { "ASC" } else { "DESC" }
                            )
                        })
                        .collect();
                    let _ = write!(sql, "\nORDER BY {}", os.join(", "));
                }
                Ok(sql)
            }
            _ => {
                // roots are normally Serialize; accept any node by
                // materialising it and selecting everything
                let src = self.bind(root)?;
                let a = self.alias();
                let items: Vec<String> = self
                    .out_cols(root)
                    .iter()
                    .map(|c| format!("{a}.{c} AS {c}"))
                    .collect();
                Ok(format!("SELECT {}\nFROM {src} AS {a}", items.join(", ")))
            }
        }
    }

    /// Render one node as a standalone SELECT (the body of its CTE).
    fn render_node(&mut self, id: NodeId) -> Result<String, SqlError> {
        let node = self.plan.node(id).clone();
        match node {
            Node::TableRef { name, cols, .. } => {
                let table = self
                    .db
                    .table(&name)
                    .ok_or_else(|| SqlError::Codegen(format!("unknown table {name}")))?;
                let a = self.alias();
                let items: Vec<String> = cols
                    .iter()
                    .zip(table.schema.cols())
                    .map(|((plan_col, t), (cat_col, _))| {
                        format!("{a}.{cat_col} AS {}", sql_col(plan_col, *t))
                    })
                    .collect();
                Ok(format!("SELECT {} FROM {name} AS {a}", items.join(", ")))
            }
            Node::Lit { schema, rows } => {
                if rows.is_empty() {
                    let items: Vec<String> = schema
                        .cols()
                        .iter()
                        .map(|(n, t)| Ok(format!("{} AS {}", dummy_value(*t)?, sql_col(n, *t))))
                        .collect::<Result<_, SqlError>>()?;
                    return Ok(format!("SELECT {} WHERE FALSE", items.join(", ")));
                }
                let selects: Vec<String> = rows
                    .iter()
                    .map(|row| {
                        let items: Vec<String> = row
                            .iter()
                            .zip(schema.cols())
                            .map(|(v, (n, t))| {
                                Ok(format!("{} AS {}", render_value(v)?, sql_col(n, *t)))
                            })
                            .collect::<Result<_, SqlError>>()?;
                        Ok(format!("SELECT {}", items.join(", ")))
                    })
                    .collect::<Result<_, SqlError>>()?;
                Ok(selects.join(" UNION ALL "))
            }
            Node::Attach { input, col, value } => {
                let (src, a, mut items) = self.carry_all(input)?;
                items.push(format!(
                    "{} AS {}",
                    render_value(&value)?,
                    sql_col(&col, value.ty())
                ));
                Ok(format!("SELECT {} FROM {src} AS {a}", items.join(", ")))
            }
            Node::Project { input, cols } => {
                let src = self.bind(input)?;
                let a = self.alias();
                let s = self.schema(input).clone();
                let items: Vec<String> = cols
                    .iter()
                    .map(|(new, old)| {
                        let t = s.ty_of(old).expect("validated");
                        format!("{a}.{} AS {}", sql_col(old, t), sql_col(new, t))
                    })
                    .collect();
                Ok(format!("SELECT {} FROM {src} AS {a}", items.join(", ")))
            }
            Node::Compute { input, col, expr } => {
                let (src, a, mut items) = self.carry_all(input)?;
                let s = self.schema(input).clone();
                let t = expr.infer_ty(&s).expect("validated");
                items.push(format!(
                    "{} AS {}",
                    self.render_expr(&expr, &[(&a, &s)])?,
                    sql_col(&col, t)
                ));
                Ok(format!("SELECT {} FROM {src} AS {a}", items.join(", ")))
            }
            Node::Select { input, pred } => {
                let (src, a, items) = self.carry_all(input)?;
                let s = self.schema(input).clone();
                let w = self.render_expr(&pred, &[(&a, &s)])?;
                Ok(format!(
                    "SELECT {} FROM {src} AS {a} WHERE {w}",
                    items.join(", ")
                ))
            }
            Node::Distinct { input } => {
                let (src, a, items) = self.carry_all(input)?;
                Ok(format!(
                    "SELECT DISTINCT {} FROM {src} AS {a}",
                    items.join(", ")
                ))
            }
            Node::UnionAll { left, right } => {
                let (ls, la, litems) = self.carry_all(left)?;
                let l = format!("SELECT {} FROM {ls} AS {la}", litems.join(", "));
                // align the right side to the left's output names
                let rs = self.bind(right)?;
                let ra = self.alias();
                let lsch = self.schema(left).clone();
                let rsch = self.schema(right).clone();
                let ritems: Vec<String> = rsch
                    .cols()
                    .iter()
                    .zip(lsch.cols())
                    .map(|((rn, rt), (ln, lt))| {
                        format!("{ra}.{} AS {}", sql_col(rn, *rt), sql_col(ln, *lt))
                    })
                    .collect();
                let r = format!("SELECT {} FROM {rs} AS {ra}", ritems.join(", "));
                Ok(format!("{l} UNION ALL {r}"))
            }
            Node::Difference { left, right } => {
                let (ls, la, litems) = self.carry_all(left)?;
                let l = format!("SELECT {} FROM {ls} AS {la}", litems.join(", "));
                let rs = self.bind(right)?;
                let ra = self.alias();
                let lsch = self.schema(left).clone();
                let rsch = self.schema(right).clone();
                let ritems: Vec<String> = rsch
                    .cols()
                    .iter()
                    .zip(lsch.cols())
                    .map(|((rn, rt), (ln, lt))| {
                        format!("{ra}.{} AS {}", sql_col(rn, *rt), sql_col(ln, *lt))
                    })
                    .collect();
                let r = format!("SELECT {} FROM {rs} AS {ra}", ritems.join(", "));
                Ok(format!("{l} EXCEPT {r}"))
            }
            Node::CrossJoin { left, right } => {
                let (ls, la) = (self.bind(left)?, self.alias());
                let (rs, ra) = (self.bind(right)?, self.alias());
                let mut items = self.qualified_items(left, &la);
                items.extend(self.qualified_items(right, &ra));
                Ok(format!(
                    "SELECT {} FROM {ls} AS {la}, {rs} AS {ra}",
                    items.join(", ")
                ))
            }
            Node::EquiJoin { left, right, on } => {
                let (ls, la) = (self.bind(left)?, self.alias());
                let (rs, ra) = (self.bind(right)?, self.alias());
                let mut items = self.qualified_items(left, &la);
                items.extend(self.qualified_items(right, &ra));
                let lsch = self.schema(left).clone();
                let rsch = self.schema(right).clone();
                let conds: Vec<String> = on
                    .left
                    .iter()
                    .zip(on.right.iter())
                    .map(|(lc, rc)| {
                        format!(
                            "{la}.{} = {ra}.{}",
                            sql_col(lc, lsch.ty_of(lc).expect("validated")),
                            sql_col(rc, rsch.ty_of(rc).expect("validated"))
                        )
                    })
                    .collect();
                Ok(format!(
                    "SELECT {} FROM {ls} AS {la}, {rs} AS {ra} WHERE {}",
                    items.join(", "),
                    conds.join(" AND ")
                ))
            }
            Node::SemiJoin { left, right, on } | Node::AntiJoin { left, right, on } => {
                let anti = matches!(self.plan.node(id), Node::AntiJoin { .. });
                // key set: DISTINCT right keys (semi) / left keys EXCEPT
                // right keys (anti) — joined back to the left
                let (ls, la) = (self.bind(left)?, self.alias());
                let rs = self.bind(right)?;
                let ra = self.alias();
                let items = self.qualified_items(left, &la);
                let lsch = self.schema(left).clone();
                let rsch = self.schema(right).clone();
                let rkeys: Vec<String> = on
                    .right
                    .iter()
                    .enumerate()
                    .map(|(i, rc)| {
                        format!(
                            "{ra}.{} AS k{i}_{}",
                            sql_col(rc, rsch.ty_of(rc).expect("validated")),
                            suffix_of(rsch.ty_of(rc).expect("validated"))
                        )
                    })
                    .collect();
                let key_select = format!("SELECT DISTINCT {} FROM {rs} AS {ra}", rkeys.join(", "));
                let key_set = if anti {
                    let la2 = self.alias();
                    let lkeys: Vec<String> = on
                        .left
                        .iter()
                        .enumerate()
                        .map(|(i, lc)| {
                            format!(
                                "{la2}.{} AS k{i}_{}",
                                sql_col(lc, lsch.ty_of(lc).expect("validated")),
                                suffix_of(lsch.ty_of(lc).expect("validated"))
                            )
                        })
                        .collect();
                    format!(
                        "SELECT DISTINCT {} FROM {ls} AS {la2} EXCEPT {key_select}",
                        lkeys.join(", ")
                    )
                } else {
                    key_select
                };
                let d = self.alias();
                let conds: Vec<String> = on
                    .left
                    .iter()
                    .enumerate()
                    .map(|(i, lc)| {
                        let t = lsch.ty_of(lc).expect("validated");
                        format!("{la}.{} = {d}.k{i}_{}", sql_col(lc, t), suffix_of(t))
                    })
                    .collect();
                Ok(format!(
                    "SELECT {} FROM {ls} AS {la}, ({key_set}) AS {d} WHERE {}",
                    items.join(", "),
                    conds.join(" AND ")
                ))
            }
            Node::ThetaJoin { left, right, pred } => {
                let (ls, la) = (self.bind(left)?, self.alias());
                let (rs, ra) = (self.bind(right)?, self.alias());
                let mut items = self.qualified_items(left, &la);
                items.extend(self.qualified_items(right, &ra));
                let lsch = self.schema(left).clone();
                let rsch = self.schema(right).clone();
                let w = self.render_expr(&pred, &[(&la, &lsch), (&ra, &rsch)])?;
                Ok(format!(
                    "SELECT {} FROM {ls} AS {la}, {rs} AS {ra} WHERE {w}",
                    items.join(", ")
                ))
            }
            Node::RowNum {
                input,
                col,
                part,
                order,
            } => self.render_window(input, &col, "ROW_NUMBER", &part, &order),
            Node::RowRank { input, col, order } => {
                self.render_window(input, &col, "RANK", &[], &order)
            }
            Node::DenseRank {
                input,
                col,
                part,
                order,
            } => self.render_window(input, &col, "DENSE_RANK", &part, &order),
            Node::GroupBy { input, keys, aggs } => {
                let src = self.bind(input)?;
                let a = self.alias();
                let s = self.schema(input).clone();
                let out = self.schema(id).clone();
                let mut items: Vec<String> = keys
                    .iter()
                    .map(|k| {
                        let t = s.ty_of(k).expect("validated");
                        format!("{a}.{} AS {}", sql_col(k, t), sql_col(k, t))
                    })
                    .collect();
                for agg in &aggs {
                    let out_ty = out.ty_of(&agg.output).expect("validated");
                    let rendered = match (&agg.fun, &agg.input) {
                        (AggFun::CountAll, _) => "COUNT (*)".to_string(),
                        (f, Some(c)) => {
                            let t = s.ty_of(c).expect("validated");
                            format!("{} ({a}.{})", f.sql(), sql_col(c, t))
                        }
                        (f, None) => return Err(SqlError::Codegen(format!("{f:?} without input"))),
                    };
                    items.push(format!("{rendered} AS {}", sql_col(&agg.output, out_ty)));
                }
                let mut sql = format!("SELECT {} FROM {src} AS {a}", items.join(", "));
                if !keys.is_empty() {
                    let ks: Vec<String> = keys
                        .iter()
                        .map(|k| format!("{a}.{}", sql_col(k, s.ty_of(k).expect("validated"))))
                        .collect();
                    let _ = write!(sql, " GROUP BY {}", ks.join(", "));
                }
                Ok(sql)
            }
            Node::Serialize { input, order, cols } => {
                // an interior Serialize (unusual): render without ORDER BY —
                // only the statement-level Serialize orders observably
                let src = self.bind(input)?;
                let a = self.alias();
                let s = self.schema(input).clone();
                let items: Vec<String> = cols
                    .iter()
                    .map(|c| {
                        let t = s.ty_of(c).expect("validated");
                        format!("{a}.{} AS {}", sql_col(c, t), sql_col(c, t))
                    })
                    .collect();
                let _ = order;
                Ok(format!("SELECT {} FROM {src} AS {a}", items.join(", ")))
            }
        }
    }

    /// Bind the input and produce `(cte, alias, SELECT items carrying every
    /// input column through unchanged)`.
    fn carry_all(&mut self, input: NodeId) -> Result<(String, String, Vec<String>), SqlError> {
        let src = self.bind(input)?;
        let a = self.alias();
        let items = self
            .out_cols(input)
            .iter()
            .map(|c| format!("{a}.{c} AS {c}"))
            .collect();
        Ok((src, a, items))
    }

    /// Qualified pass-through items for one join side.
    fn qualified_items(&self, side: NodeId, alias: &str) -> Vec<String> {
        self.out_cols(side)
            .iter()
            .map(|c| format!("{alias}.{c} AS {c}"))
            .collect()
    }

    fn render_window(
        &mut self,
        input: NodeId,
        col: &ColName,
        fun: &str,
        part: &[ColName],
        order: &[(ColName, Dir)],
    ) -> Result<String, SqlError> {
        let (src, a, mut items) = self.carry_all(input)?;
        let s = self.schema(input).clone();
        let mut over = String::new();
        if !part.is_empty() {
            let ps: Vec<String> = part
                .iter()
                .map(|p| format!("{a}.{}", sql_col(p, s.ty_of(p).expect("validated"))))
                .collect();
            let _ = write!(over, "PARTITION BY {}", ps.join(", "));
        }
        if !order.is_empty() {
            if !over.is_empty() {
                over.push(' ');
            }
            let os: Vec<String> = order
                .iter()
                .map(|(c, d)| {
                    format!(
                        "{a}.{} {}",
                        sql_col(c, s.ty_of(c).expect("validated")),
                        if *d == Dir::Asc { "ASC" } else { "DESC" }
                    )
                })
                .collect();
            let _ = write!(over, "ORDER BY {}", os.join(", "));
        }
        items.push(format!(
            "{fun} () OVER ({over}) AS {}",
            sql_col(col, Ty::Nat)
        ));
        Ok(format!("SELECT {} FROM {src} AS {a}", items.join(", ")))
    }

    /// Render a scalar expression; column references are resolved against
    /// the given `(alias, schema)` scopes.
    fn render_expr(&self, e: &Expr, scopes: &[(&str, &Schema)]) -> Result<String, SqlError> {
        Ok(match e {
            Expr::Col(c) => {
                let (a, s) = scopes
                    .iter()
                    .find(|(_, s)| s.contains(c))
                    .ok_or_else(|| SqlError::Codegen(format!("unresolved column {c}")))?;
                format!("{a}.{}", sql_col(c, s.ty_of(c).expect("resolved")))
            }
            Expr::Const(v) => render_value(v)?,
            Expr::Bin(op, l, r) => {
                let ls = self.render_expr(l, scopes)?;
                let rs = self.render_expr(r, scopes)?;
                format!("({ls} {} {rs})", bin_sql(*op))
            }
            Expr::Un(UnOp::Not, x) => format!("(NOT {})", self.render_expr(x, scopes)?),
            Expr::Un(UnOp::Neg, x) => format!("(- {})", self.render_expr(x, scopes)?),
            Expr::Case(c, t, f) => format!(
                "CASE WHEN {} THEN {} ELSE {} END",
                self.render_expr(c, scopes)?,
                self.render_expr(t, scopes)?,
                self.render_expr(f, scopes)?
            ),
            Expr::Cast(ty, x) => format!(
                "CAST({} AS {})",
                self.render_expr(x, scopes)?,
                sql_type(*ty)?
            ),
        })
    }
}

fn binding_comment(node: &Node) -> &'static str {
    match node {
        Node::RowNum { .. } | Node::RowRank { .. } | Node::DenseRank { .. } => "rank operator",
        Node::Distinct { .. } => "duplicate elimination",
        Node::GroupBy { .. } => "aggregate",
        Node::UnionAll { .. } | Node::Difference { .. } => "set operation",
        _ => "",
    }
}

fn bin_sql(op: BinOp) -> &'static str {
    op.sql()
}

fn suffix_of(t: Ty) -> &'static str {
    match t {
        Ty::Nat => "nat",
        Ty::Int => "int",
        Ty::Dbl => "dbl",
        Ty::Str => "str",
        Ty::Bool => "bool",
        Ty::Unit => "unit",
    }
}

fn sql_type(t: Ty) -> Result<&'static str, SqlError> {
    Ok(match t {
        Ty::Int => "BIGINT",
        Ty::Dbl => "DOUBLE PRECISION",
        Ty::Nat => "NUMERIC(18,0)",
        Ty::Str => "VARCHAR",
        Ty::Bool => "BOOLEAN",
        Ty::Unit => return Err(SqlError::Codegen("unit type in SQL".into())),
    })
}

fn render_value(v: &Value) -> Result<String, SqlError> {
    Ok(match v {
        Value::Int(i) => {
            if *i < 0 {
                format!("({i})")
            } else {
                i.to_string()
            }
        }
        Value::Nat(n) => n.to_string(),
        Value::Dbl(d) => {
            let s = format!("{d:?}");
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        Value::Unit => return Err(SqlError::Codegen("unit value in SQL".into())),
    })
}

fn dummy_value(t: Ty) -> Result<String, SqlError> {
    Ok(match t {
        Ty::Int | Ty::Nat => "0".to_string(),
        Ty::Dbl => "0.0".to_string(),
        Ty::Str => "''".to_string(),
        Ty::Bool => "FALSE".to_string(),
        Ty::Unit => return Err(SqlError::Codegen("unit type in SQL".into())),
    })
}

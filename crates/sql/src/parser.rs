//! Recursive-descent parser for the supported SQL dialect.

use crate::ast::*;
use crate::lexer::{lex, Tok};
use crate::SqlError;

/// Parse one statement (a query, optionally with CTEs and a final ORDER BY).
pub fn parse(input: &str) -> Result<Statement, SqlError> {
    let toks = lex(input)?;
    let mut p = Parser { toks, pos: 0 };
    let stmt = p.statement()?;
    p.eat_semicolons();
    if p.pos != p.toks.len() {
        return Err(SqlError::Parse(format!(
            "trailing input at token {:?}",
            p.toks[p.pos]
        )));
    }
    Ok(stmt)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok, SqlError> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| SqlError::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, t: &Tok) -> Result<(), SqlError> {
        let got = self.next()?;
        if got == *t {
            Ok(())
        } else {
            Err(SqlError::Parse(format!("expected {t:?}, got {got:?}")))
        }
    }

    /// Case-insensitive keyword check; consumes on match.
    fn keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.keyword(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected keyword {kw}, got {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            t => Err(SqlError::Parse(format!("expected identifier, got {t:?}"))),
        }
    }

    fn eat_semicolons(&mut self) {
        while matches!(self.peek(), Some(Tok::Semicolon)) {
            self.pos += 1;
        }
    }

    // ---------------------------------------------------------- statement

    fn statement(&mut self) -> Result<Statement, SqlError> {
        let mut ctes = Vec::new();
        if self.keyword("WITH") {
            loop {
                ctes.push(self.cte()?);
                if !matches!(self.peek(), Some(Tok::Comma)) {
                    break;
                }
                self.pos += 1;
            }
        }
        let body = self.set_expr()?;
        let mut order_by = Vec::new();
        if self.keyword("ORDER") {
            self.expect_keyword("BY")?;
            order_by = self.order_items()?;
        }
        Ok(Statement {
            ctes,
            body,
            order_by,
        })
    }

    fn cte(&mut self) -> Result<Cte, SqlError> {
        let name = self.ident()?;
        let mut columns = Vec::new();
        if matches!(self.peek(), Some(Tok::LParen)) {
            // lookahead: a column list, not `AS (`
            self.pos += 1;
            loop {
                columns.push(self.ident()?);
                match self.next()? {
                    Tok::Comma => continue,
                    Tok::RParen => break,
                    t => return Err(SqlError::Parse(format!("in CTE columns: {t:?}"))),
                }
            }
        }
        self.expect_keyword("AS")?;
        self.expect(&Tok::LParen)?;
        let body = self.set_expr()?;
        self.expect(&Tok::RParen)?;
        Ok(Cte {
            name,
            columns,
            body,
        })
    }

    fn set_expr(&mut self) -> Result<SetExpr, SqlError> {
        let mut left = self.set_primary()?;
        loop {
            if self.peek_keyword("UNION") {
                self.pos += 1;
                self.expect_keyword("ALL")?;
                let right = self.set_primary()?;
                left = SetExpr::UnionAll(Box::new(left), Box::new(right));
            } else if self.peek_keyword("EXCEPT") {
                self.pos += 1;
                let right = self.set_primary()?;
                left = SetExpr::Except(Box::new(left), Box::new(right));
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn set_primary(&mut self) -> Result<SetExpr, SqlError> {
        if matches!(self.peek(), Some(Tok::LParen)) {
            self.pos += 1;
            let e = self.set_expr()?;
            self.expect(&Tok::RParen)?;
            return Ok(e);
        }
        Ok(SetExpr::Select(Box::new(self.select()?)))
    }

    fn select(&mut self) -> Result<Select, SqlError> {
        self.expect_keyword("SELECT")?;
        let distinct = self.keyword("DISTINCT");
        let mut items = Vec::new();
        loop {
            let expr = self.expr()?;
            let alias = if self.keyword("AS") {
                Some(self.ident()?)
            } else {
                None
            };
            items.push(SelectItem { expr, alias });
            if matches!(self.peek(), Some(Tok::Comma)) {
                self.pos += 1;
            } else {
                break;
            }
        }
        let mut from = Vec::new();
        if self.keyword("FROM") {
            loop {
                from.push(self.from_item()?);
                if matches!(self.peek(), Some(Tok::Comma)) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        let where_ = if self.keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.expr()?);
                if matches!(self.peek(), Some(Tok::Comma)) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        Ok(Select {
            distinct,
            items,
            from,
            where_,
            group_by,
        })
    }

    // parser-state method, not a conversion constructor
    #[allow(clippy::wrong_self_convention)]
    fn from_item(&mut self) -> Result<FromItem, SqlError> {
        if matches!(self.peek(), Some(Tok::LParen)) {
            self.pos += 1;
            let body = self.set_expr()?;
            self.expect(&Tok::RParen)?;
            self.keyword("AS");
            let alias = self.ident()?;
            return Ok(FromItem::Derived {
                body: Box::new(body),
                alias,
            });
        }
        let mut name = self.ident()?;
        // dotted table names (`ferry.connections`): the dot is part of
        // the catalog name, not a scope qualifier
        while matches!(self.peek(), Some(Tok::Dot)) {
            self.pos += 1;
            name = format!("{name}.{}", self.ident()?);
        }
        // `AS alias`, a bare implicit alias, or none at all
        let has_implicit_alias = matches!(self.peek(), Some(Tok::Ident(s))
            if !is_clause_keyword(s));
        let alias = if self.keyword("AS") || has_implicit_alias {
            self.ident()?
        } else {
            name.clone()
        };
        Ok(FromItem::Named { name, alias })
    }

    fn order_items(&mut self) -> Result<Vec<OrderItem>, SqlError> {
        let mut out = Vec::new();
        loop {
            let expr = self.expr()?;
            let desc = if self.keyword("DESC") {
                true
            } else {
                self.keyword("ASC");
                false
            };
            out.push(OrderItem { expr, desc });
            if matches!(self.peek(), Some(Tok::Comma)) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(out)
    }

    // -------------------------------------------------------- expressions

    fn expr(&mut self) -> Result<SqlExpr, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SqlExpr, SqlError> {
        let mut e = self.and_expr()?;
        while self.keyword("OR") {
            let r = self.and_expr()?;
            e = SqlExpr::Bin(SqlBinOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<SqlExpr, SqlError> {
        let mut e = self.not_expr()?;
        while self.keyword("AND") {
            let r = self.not_expr()?;
            e = SqlExpr::Bin(SqlBinOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<SqlExpr, SqlError> {
        if self.keyword("NOT") {
            let e = self.not_expr()?;
            return Ok(SqlExpr::Not(Box::new(e)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<SqlExpr, SqlError> {
        let l = self.add_expr()?;
        let op = match self.peek() {
            Some(Tok::Eq) => Some(SqlBinOp::Eq),
            Some(Tok::Ne) => Some(SqlBinOp::Ne),
            Some(Tok::Lt) => Some(SqlBinOp::Lt),
            Some(Tok::Le) => Some(SqlBinOp::Le),
            Some(Tok::Gt) => Some(SqlBinOp::Gt),
            Some(Tok::Ge) => Some(SqlBinOp::Ge),
            _ => None,
        };
        match op {
            Some(op) => {
                self.pos += 1;
                let r = self.add_expr()?;
                Ok(SqlExpr::Bin(op, Box::new(l), Box::new(r)))
            }
            None => Ok(l),
        }
    }

    fn add_expr(&mut self) -> Result<SqlExpr, SqlError> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => SqlBinOp::Add,
                Some(Tok::Minus) => SqlBinOp::Sub,
                Some(Tok::Concat) => SqlBinOp::Concat,
                _ => break,
            };
            self.pos += 1;
            let r = self.mul_expr()?;
            e = SqlExpr::Bin(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<SqlExpr, SqlError> {
        let mut e = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => SqlBinOp::Mul,
                Some(Tok::Slash) => SqlBinOp::Div,
                Some(Tok::Percent) => SqlBinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let r = self.unary()?;
            e = SqlExpr::Bin(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<SqlExpr, SqlError> {
        if matches!(self.peek(), Some(Tok::Minus)) {
            self.pos += 1;
            let e = self.unary()?;
            return Ok(SqlExpr::Neg(Box::new(e)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<SqlExpr, SqlError> {
        match self.next()? {
            Tok::Int(i) => Ok(SqlExpr::Int(i)),
            Tok::Float(f) => Ok(SqlExpr::Float(f)),
            Tok::Str(s) => Ok(SqlExpr::Str(s)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(id) => self.ident_led(id),
            t => Err(SqlError::Parse(format!("unexpected token {t:?}"))),
        }
    }

    /// Expressions starting with an identifier: literals, CASE, CAST,
    /// window functions, aggregates, column references.
    fn ident_led(&mut self, id: String) -> Result<SqlExpr, SqlError> {
        let upper = id.to_ascii_uppercase();
        match upper.as_str() {
            "TRUE" => return Ok(SqlExpr::Bool(true)),
            "FALSE" => return Ok(SqlExpr::Bool(false)),
            "CASE" => {
                self.expect_keyword("WHEN")?;
                let when = self.expr()?;
                self.expect_keyword("THEN")?;
                let then = self.expr()?;
                self.expect_keyword("ELSE")?;
                let els = self.expr()?;
                self.expect_keyword("END")?;
                return Ok(SqlExpr::Case {
                    when: Box::new(when),
                    then: Box::new(then),
                    els: Box::new(els),
                });
            }
            "CAST" => {
                self.expect(&Tok::LParen)?;
                let e = self.expr()?;
                self.expect_keyword("AS")?;
                let ty = self.type_name()?;
                self.expect(&Tok::RParen)?;
                return Ok(SqlExpr::Cast {
                    expr: Box::new(e),
                    ty,
                });
            }
            "ROW_NUMBER" | "RANK" | "DENSE_RANK" => {
                let fun = match upper.as_str() {
                    "ROW_NUMBER" => WindowFun::RowNumber,
                    "RANK" => WindowFun::Rank,
                    _ => WindowFun::DenseRank,
                };
                self.expect(&Tok::LParen)?;
                self.expect(&Tok::RParen)?;
                self.expect_keyword("OVER")?;
                self.expect(&Tok::LParen)?;
                let mut partition_by = Vec::new();
                if self.keyword("PARTITION") {
                    self.expect_keyword("BY")?;
                    loop {
                        partition_by.push(self.expr()?);
                        if matches!(self.peek(), Some(Tok::Comma)) {
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                }
                let mut order_by = Vec::new();
                if self.keyword("ORDER") {
                    self.expect_keyword("BY")?;
                    order_by = self.order_items()?;
                }
                self.expect(&Tok::RParen)?;
                return Ok(SqlExpr::Window {
                    fun,
                    partition_by,
                    order_by,
                });
            }
            "COUNT" | "SUM" | "MIN" | "MAX" | "AVG" | "BOOL_AND" | "BOOL_OR" => {
                self.expect(&Tok::LParen)?;
                if upper == "COUNT" && matches!(self.peek(), Some(Tok::Star)) {
                    self.pos += 1;
                    self.expect(&Tok::RParen)?;
                    return Ok(SqlExpr::Agg {
                        fun: AggName::CountStar,
                        arg: None,
                    });
                }
                let fun = match upper.as_str() {
                    "SUM" => AggName::Sum,
                    "MIN" => AggName::Min,
                    "MAX" => AggName::Max,
                    "AVG" => AggName::Avg,
                    "BOOL_AND" => AggName::BoolAnd,
                    "BOOL_OR" => AggName::BoolOr,
                    "COUNT" => return Err(SqlError::Parse("only COUNT (*) is supported".into())),
                    _ => unreachable!(),
                };
                let arg = self.expr()?;
                self.expect(&Tok::RParen)?;
                return Ok(SqlExpr::Agg {
                    fun,
                    arg: Some(Box::new(arg)),
                });
            }
            _ => {}
        }
        // column reference: `id` or `id.col`
        if matches!(self.peek(), Some(Tok::Dot)) {
            self.pos += 1;
            let col = self.ident()?;
            Ok(SqlExpr::Column {
                qualifier: Some(id),
                name: col,
            })
        } else {
            Ok(SqlExpr::Column {
                qualifier: None,
                name: id,
            })
        }
    }

    fn type_name(&mut self) -> Result<SqlTy, SqlError> {
        let id = self.ident()?.to_ascii_uppercase();
        let ty = match id.as_str() {
            "BIGINT" | "INTEGER" | "INT" => SqlTy::Bigint,
            "DOUBLE" => {
                self.keyword("PRECISION");
                SqlTy::Double
            }
            "FLOAT" | "REAL" => SqlTy::Double,
            "NUMERIC" | "DECIMAL" => {
                // optional (p, s) — NUMERIC(18,0) is our Nat rendering
                if matches!(self.peek(), Some(Tok::LParen)) {
                    self.pos += 1;
                    let _ = self.next()?;
                    if matches!(self.peek(), Some(Tok::Comma)) {
                        self.pos += 1;
                        let _ = self.next()?;
                    }
                    self.expect(&Tok::RParen)?;
                }
                SqlTy::Nat
            }
            "VARCHAR" | "TEXT" | "CHAR" => {
                if matches!(self.peek(), Some(Tok::LParen)) {
                    self.pos += 1;
                    let _ = self.next()?;
                    self.expect(&Tok::RParen)?;
                }
                SqlTy::Varchar
            }
            "BOOLEAN" | "BOOL" => SqlTy::Boolean,
            t => return Err(SqlError::Parse(format!("unknown type {t}"))),
        };
        Ok(ty)
    }
}

fn is_clause_keyword(s: &str) -> bool {
    [
        "WHERE", "GROUP", "ORDER", "UNION", "EXCEPT", "ON", "AS", "FROM", "SELECT",
    ]
    .iter()
    .any(|k| s.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let s =
            parse("SELECT a.x AS y, 1 AS one FROM t AS a WHERE a.x < 3 ORDER BY y ASC;").unwrap();
        assert!(s.ctes.is_empty());
        let SetExpr::Select(sel) = &s.body else {
            panic!()
        };
        assert_eq!(sel.items.len(), 2);
        assert_eq!(sel.from.len(), 1);
        assert!(sel.where_.is_some());
        assert_eq!(s.order_by.len(), 1);
    }

    #[test]
    fn parses_ctes_and_windows() {
        let sql = r#"
            WITH t0 (a, b) AS (SELECT x AS a, DENSE_RANK () OVER (ORDER BY x ASC) AS b FROM t)
            SELECT t0.a AS a FROM t0 AS t0
        "#;
        let s = parse(sql).unwrap();
        assert_eq!(s.ctes.len(), 1);
        assert_eq!(s.ctes[0].columns, vec!["a", "b"]);
    }

    #[test]
    fn parses_group_by_aggregates() {
        let s = parse("SELECT k AS k, COUNT (*) AS n, SUM (v) AS s FROM t GROUP BY k").unwrap();
        let SetExpr::Select(sel) = &s.body else {
            panic!()
        };
        assert_eq!(sel.group_by.len(), 1);
        assert!(matches!(
            sel.items[1].expr,
            SqlExpr::Agg {
                fun: AggName::CountStar,
                ..
            }
        ));
    }

    #[test]
    fn parses_union_except() {
        let s = parse("SELECT 1 AS x UNION ALL SELECT 2 AS x EXCEPT SELECT 3 AS x").unwrap();
        assert!(matches!(s.body, SetExpr::Except(..)));
    }

    #[test]
    fn parses_case_cast_derived() {
        let sql = "SELECT CASE WHEN a = 1 THEN 'y' ELSE 'n' END AS c, \
                   CAST(a AS DOUBLE PRECISION) AS d \
                   FROM (SELECT 1 AS a) AS q";
        let s = parse(sql).unwrap();
        let SetExpr::Select(sel) = &s.body else {
            panic!()
        };
        assert!(matches!(sel.from[0], FromItem::Derived { .. }));
        assert!(matches!(sel.items[0].expr, SqlExpr::Case { .. }));
    }

    #[test]
    fn parses_window_with_partition() {
        let sql = "SELECT ROW_NUMBER () OVER (PARTITION BY a.k ORDER BY a.p DESC) AS rn \
                   FROM t AS a";
        let s = parse(sql).unwrap();
        let SetExpr::Select(sel) = &s.body else {
            panic!()
        };
        match &sel.items[0].expr {
            SqlExpr::Window {
                fun,
                partition_by,
                order_by,
            } => {
                assert_eq!(*fun, WindowFun::RowNumber);
                assert_eq!(partition_by.len(), 1);
                assert!(order_by[0].desc);
            }
            e => panic!("{e:?}"),
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("SELECT 1 AS x blah blah").is_err());
        assert!(parse("SELECT").is_err());
    }

    #[test]
    fn implicit_alias_from_item() {
        let s = parse("SELECT t.x AS x FROM facilities t WHERE t.x = 1").unwrap();
        let SetExpr::Select(sel) = &s.body else {
            panic!()
        };
        match &sel.from[0] {
            FromItem::Named { name, alias } => {
                assert_eq!(name, "facilities");
                assert_eq!(alias, "t");
            }
            f => panic!("{f:?}"),
        }
    }
}

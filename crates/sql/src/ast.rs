//! Abstract syntax of the supported SQL:1999 subset — exactly the dialect
//! the code generator emits (plus harmless generalisations).

/// A full statement: optional CTE bindings, then a set expression, then an
/// optional final ordering.
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    pub ctes: Vec<Cte>,
    pub body: SetExpr,
    pub order_by: Vec<OrderItem>,
}

/// One `WITH name (cols…) AS (…)` binding.
#[derive(Debug, Clone, PartialEq)]
pub struct Cte {
    pub name: String,
    /// Optional explicit column list renaming the select's outputs.
    pub columns: Vec<String>,
    pub body: SetExpr,
}

/// Set-level expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    Select(Box<Select>),
    /// `UNION ALL`.
    UnionAll(Box<SetExpr>, Box<SetExpr>),
    /// `EXCEPT` (set semantics).
    Except(Box<SetExpr>, Box<SetExpr>),
}

/// A `SELECT` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Vec<FromItem>,
    pub where_: Option<SqlExpr>,
    pub group_by: Vec<SqlExpr>,
}

/// One select-list item; `alias` is mandatory in generated SQL but the
/// parser also accepts bare column references.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub expr: SqlExpr,
    pub alias: Option<String>,
}

/// A `FROM` item.
#[derive(Debug, Clone, PartialEq)]
pub enum FromItem {
    /// `name AS alias` — a base table or a CTE.
    Named { name: String, alias: String },
    /// `(select…) AS alias` — a derived table.
    Derived { body: Box<SetExpr>, alias: String },
}

/// `expr ASC|DESC` in `ORDER BY` / `OVER (ORDER BY …)`.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: SqlExpr,
    pub desc: bool,
}

/// Window functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowFun {
    RowNumber,
    Rank,
    DenseRank,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggName {
    CountStar,
    Sum,
    Min,
    Max,
    Avg,
    BoolAnd,
    BoolOr,
}

/// Scalar / window / aggregate expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// `alias.column` or bare `column`.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    /// Integer literal (typing resolved at bind time via column-name
    /// suffixes).
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Bin(SqlBinOp, Box<SqlExpr>, Box<SqlExpr>),
    Not(Box<SqlExpr>),
    Neg(Box<SqlExpr>),
    Case {
        when: Box<SqlExpr>,
        then: Box<SqlExpr>,
        els: Box<SqlExpr>,
    },
    Cast {
        expr: Box<SqlExpr>,
        ty: SqlTy,
    },
    Window {
        fun: WindowFun,
        partition_by: Vec<SqlExpr>,
        order_by: Vec<OrderItem>,
    },
    Agg {
        fun: AggName,
        /// `None` only for `COUNT (*)`.
        arg: Option<Box<SqlExpr>>,
    },
}

/// SQL type names accepted by `CAST`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlTy {
    Bigint,
    Double,
    /// The surrogate/order domain (rendered `NUMERIC(18,0)`; recovered via
    /// `_nat` name suffixes as well).
    Nat,
    Varchar,
    Boolean,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Concat,
}

// --------------------------------------------------------------- printing

use std::fmt;

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.ctes.is_empty() {
            write!(f, "WITH ")?;
            for (i, c) in self.ctes.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
            }
            write!(f, " ")?;
        }
        write!(f, "{}", self.body)?;
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{o}")?;
            }
        }
        write!(f, ";")
    }
}

impl fmt::Display for Cte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.columns.is_empty() {
            write!(f, " ({})", self.columns.join(", "))?;
        }
        write!(f, " AS ({})", self.body)
    }
}

impl fmt::Display for SetExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetExpr::Select(s) => write!(f, "{s}"),
            SetExpr::UnionAll(l, r) => write!(f, "{l} UNION ALL {r}"),
            SetExpr::Except(l, r) => write!(f, "{l} EXCEPT {r}"),
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, it) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", it.expr)?;
            if let Some(a) = &it.alias {
                write!(f, " AS {a}")?;
            }
        }
        if !self.from.is_empty() {
            write!(f, " FROM ")?;
            for (i, fr) in self.from.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{fr}")?;
            }
        }
        if let Some(w) = &self.where_ {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for FromItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FromItem::Named { name, alias } => write!(f, "{name} AS {alias}"),
            FromItem::Derived { body, alias } => write!(f, "({body}) AS {alias}"),
        }
    }
}

impl fmt::Display for OrderItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}",
            self.expr,
            if self.desc { "DESC" } else { "ASC" }
        )
    }
}

impl fmt::Display for SqlExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlExpr::Column { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => write!(f, "{name}"),
            },
            SqlExpr::Int(i) => {
                if *i < 0 {
                    write!(f, "({i})")
                } else {
                    write!(f, "{i}")
                }
            }
            SqlExpr::Float(x) => {
                let s = format!("{x:?}");
                if s.contains('.') || s.contains('e') {
                    write!(f, "{s}")
                } else {
                    write!(f, "{s}.0")
                }
            }
            SqlExpr::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            SqlExpr::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            SqlExpr::Bin(op, l, r) => {
                let sym = match op {
                    SqlBinOp::Add => "+",
                    SqlBinOp::Sub => "-",
                    SqlBinOp::Mul => "*",
                    SqlBinOp::Div => "/",
                    SqlBinOp::Mod => "%",
                    SqlBinOp::Eq => "=",
                    SqlBinOp::Ne => "<>",
                    SqlBinOp::Lt => "<",
                    SqlBinOp::Le => "<=",
                    SqlBinOp::Gt => ">",
                    SqlBinOp::Ge => ">=",
                    SqlBinOp::And => "AND",
                    SqlBinOp::Or => "OR",
                    SqlBinOp::Concat => "||",
                };
                write!(f, "({l} {sym} {r})")
            }
            SqlExpr::Not(x) => write!(f, "(NOT {x})"),
            SqlExpr::Neg(x) => write!(f, "(- {x})"),
            SqlExpr::Case { when, then, els } => {
                write!(f, "CASE WHEN {when} THEN {then} ELSE {els} END")
            }
            SqlExpr::Cast { expr, ty } => {
                let t = match ty {
                    SqlTy::Bigint => "BIGINT",
                    SqlTy::Double => "DOUBLE PRECISION",
                    SqlTy::Nat => "NUMERIC(18,0)",
                    SqlTy::Varchar => "VARCHAR",
                    SqlTy::Boolean => "BOOLEAN",
                };
                write!(f, "CAST({expr} AS {t})")
            }
            SqlExpr::Window {
                fun,
                partition_by,
                order_by,
            } => {
                let name = match fun {
                    WindowFun::RowNumber => "ROW_NUMBER",
                    WindowFun::Rank => "RANK",
                    WindowFun::DenseRank => "DENSE_RANK",
                };
                write!(f, "{name} () OVER (")?;
                if !partition_by.is_empty() {
                    write!(f, "PARTITION BY ")?;
                    for (i, p) in partition_by.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{p}")?;
                    }
                    if !order_by.is_empty() {
                        write!(f, " ")?;
                    }
                }
                if !order_by.is_empty() {
                    write!(f, "ORDER BY ")?;
                    for (i, o) in order_by.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{o}")?;
                    }
                }
                write!(f, ")")
            }
            SqlExpr::Agg { fun, arg } => {
                let name = match fun {
                    AggName::CountStar => return write!(f, "COUNT (*)"),
                    AggName::Sum => "SUM",
                    AggName::Min => "MIN",
                    AggName::Max => "MAX",
                    AggName::Avg => "AVG",
                    AggName::BoolAnd => "BOOL_AND",
                    AggName::BoolOr => "BOOL_OR",
                };
                write!(f, "{name} ({})", arg.as_ref().expect("aggregate argument"))
            }
        }
    }
}

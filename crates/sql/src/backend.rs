//! [`SqlBackend`]: execute compiled bundles through the full SQL:1999
//! round trip.
//!
//! Where [`ferry::AlgebraBackend`] hands each bundle member's algebra
//! plan straight to the engine, this backend performs the trip a real
//! client/server deployment would: generate the SQL:1999 text
//! ([`crate::codegen`]), then parse, bind and execute it on the database
//! ([`crate::exec`]). Both backends consume identical
//! [`CompiledBundle`](ferry::shred::CompiledBundle)s and must return
//! identical relations — the shared end-to-end suite in
//! `tests/backends.rs` runs every query through both.

use crate::{execute_sql, generate_sql, SqlError};
use ferry::backend::Backend;
use ferry::FerryError;
use ferry_algebra::{NodeId, Plan, Rel};
use ferry_engine::Snapshot;

fn to_ferry(e: SqlError) -> FerryError {
    FerryError::Engine(format!("sql backend: {e}"))
}

/// The textual path: plan → SQL:1999 → parse → bind → execute.
#[derive(Debug, Default, Clone, Copy)]
pub struct SqlBackend;

impl Backend for SqlBackend {
    fn name(&self) -> &str {
        "sql"
    }

    fn execute_root(
        &self,
        db: &Snapshot<'_>,
        plan: &Plan,
        root: NodeId,
    ) -> Result<Rel, FerryError> {
        let sql = generate_sql(db, plan, root).map_err(to_ferry)?;
        execute_sql(db, &sql.sql).map_err(to_ferry)
    }

    fn render_root(
        &self,
        db: &Snapshot<'_>,
        plan: &Plan,
        root: NodeId,
    ) -> Result<String, FerryError> {
        Ok(generate_sql(db, plan, root).map_err(to_ferry)?.sql)
    }
}

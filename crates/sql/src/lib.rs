//! # `ferry-sql` — SQL:1999 in, SQL:1999 out
//!
//! Step 3 of the paper's pipeline (Fig. 2): "Through Pathfinder, a table
//! algebra optimiser and code generation facility, the intermediate
//! representation is … compiled into relational queries". This crate
//! provides:
//!
//! * [`codegen`] — a SQL:1999 generator for table-algebra plans in the
//!   exact dialect of the paper's appendix: `WITH` bindings ("binding due
//!   to rank operator / duplicate elimination / aggregate"),
//!   `DENSE_RANK () OVER (ORDER BY …)`, type-suffixed column names
//!   (`item4_nat`, `iter3_nat`), and a final `ORDER BY`;
//! * [`ast`], [`lexer`], [`parser`] — a hand-written front-end for that
//!   dialect (CTEs, derived tables, window functions, grouped aggregation,
//!   `UNION ALL` / `EXCEPT`, `CASE`, `CAST`, multi-way `FROM` with
//!   `WHERE` join predicates);
//! * [`binder`] — lowering parsed SQL back to `ferry-algebra` plans
//!   (including greedy extraction of equi-join conjuncts so the engine
//!   runs hash joins rather than filtered cross products);
//! * [`exec`] — `execute_sql`: parse → bind → run on a
//!   [`ferry_engine::Database`];
//! * [`backend`] — [`SqlBackend`], plugging the whole round trip into
//!   `ferry::Connection` as an execution [`Backend`](ferry::Backend).
//!
//! The round trip `plan → SQL → parse → bind → plan' → engine` is property
//! tested to agree with direct execution of `plan`, which is what makes
//! the generator trustworthy without a third-party RDBMS in the loop.

#![allow(clippy::type_complexity, clippy::items_after_test_module)]

pub mod ast;
pub mod backend;
pub mod binder;
pub mod codegen;
pub mod exec;
pub mod lexer;
pub mod parser;

pub use backend::SqlBackend;
pub use codegen::{generate_sql, SqlQuery};
pub use exec::execute_sql;

/// Errors of the SQL layer.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// The plan contains a construct the generator cannot express.
    Codegen(String),
    /// Lexical error.
    Lex(String),
    /// Syntax error.
    Parse(String),
    /// Name/type resolution error while lowering to algebra.
    Bind(String),
    /// Execution error from the engine.
    Exec(String),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Codegen(m) => write!(f, "codegen: {m}"),
            SqlError::Lex(m) => write!(f, "lex: {m}"),
            SqlError::Parse(m) => write!(f, "parse: {m}"),
            SqlError::Bind(m) => write!(f, "bind: {m}"),
            SqlError::Exec(m) => write!(f, "exec: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<ferry_engine::EngineError> for SqlError {
    fn from(e: ferry_engine::EngineError) -> Self {
        SqlError::Exec(e.to_string())
    }
}

//! Lowering parsed SQL to table-algebra plans.
//!
//! The binder resolves names against the database catalog and the CTE
//! environment, extracts equi-join conjuncts from `WHERE` clauses (so the
//! engine gets hash joins instead of filtered cross products), lowers
//! window functions and grouped aggregation to their algebra operators,
//! and repairs literal types against the `_nat`-suffix convention of the
//! generated dialect.

use crate::ast::*;
use crate::SqlError;
use ferry_algebra::{
    plan::Aggregate, AggFun, BinOp as ABinOp, ColName, Dir, Expr as AExpr, JoinCols, NodeId, Plan,
    Schema, Ty, UnOp, Value,
};
use ferry_engine::Snapshot;
use std::collections::HashMap;
use std::sync::Arc;

/// Bind a parsed statement against one pinned catalog version. Returns
/// the plan and its root.
pub fn bind(db: &Snapshot<'_>, stmt: &Statement) -> Result<(Plan, NodeId), SqlError> {
    let mut b = Binder {
        db,
        plan: Plan::new(),
        ctes: HashMap::new(),
        next: 0,
    };
    for cte in &stmt.ctes {
        let (node, schema) = b.bind_set(&cte.body)?;
        let (node, schema) = if cte.columns.is_empty() {
            (node, schema)
        } else {
            if cte.columns.len() != schema.len() {
                return Err(SqlError::Bind(format!(
                    "CTE {} declares {} columns, query produces {}",
                    cte.name,
                    cte.columns.len(),
                    schema.len()
                )));
            }
            let cols: Vec<(ColName, ColName)> = cte
                .columns
                .iter()
                .zip(schema.cols())
                .map(|(new, (old, _))| (Arc::from(new.as_str()), old.clone()))
                .collect();
            let renamed = b.plan.project(node, cols);
            let schema = Schema::new(
                cte.columns
                    .iter()
                    .zip(schema.cols())
                    .map(|(new, (_, t))| (Arc::from(new.as_str()), *t))
                    .collect(),
            );
            (renamed, schema)
        };
        b.ctes.insert(cte.name.clone(), (node, schema));
    }
    let (node, schema) = b.bind_set(&stmt.body)?;
    // final observable order
    let order: Vec<(ColName, Dir)> = stmt
        .order_by
        .iter()
        .map(|o| {
            let col = match &o.expr {
                SqlExpr::Column { name, .. } => name.clone(),
                e => return Err(SqlError::Bind(format!("ORDER BY expects a column: {e:?}"))),
            };
            let c: ColName = Arc::from(col.as_str());
            if !schema.contains(&c) {
                return Err(SqlError::Bind(format!("ORDER BY unknown column {c}")));
            }
            Ok((c, if o.desc { Dir::Desc } else { Dir::Asc }))
        })
        .collect::<Result<_, _>>()?;
    let cols: Vec<ColName> = schema.names().cloned().collect();
    let root = b.plan.serialize(node, order, cols);
    Ok((b.plan, root))
}

struct Binder<'a> {
    db: &'a Snapshot<'a>,
    plan: Plan,
    ctes: HashMap<String, (NodeId, Schema)>,
    next: u32,
}

/// One in-scope FROM item: alias plus its output schema (columns already
/// prefixed `alias.col` in the plan).
struct Scope {
    items: Vec<(String, Schema)>,
}

impl Scope {
    /// Resolve a possibly-qualified column to its plan-level name.
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<(ColName, Ty), SqlError> {
        let mut hits = Vec::new();
        for (alias, schema) in &self.items {
            if let Some(q) = qualifier {
                if q != alias {
                    continue;
                }
            }
            if let Some(t) = schema.ty_of(&format!("{alias}.{name}")) {
                hits.push((Arc::from(format!("{alias}.{name}").as_str()), t));
            }
        }
        match hits.len() {
            1 => Ok(hits.pop().unwrap()),
            0 => Err(SqlError::Bind(format!(
                "unknown column {}{name}",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default()
            ))),
            _ => Err(SqlError::Bind(format!("ambiguous column {name}"))),
        }
    }
}

impl<'a> Binder<'a> {
    fn fresh(&mut self, base: &str) -> ColName {
        let n = self.next;
        self.next += 1;
        Arc::from(format!("__{base}{n}"))
    }

    fn bind_set(&mut self, e: &SetExpr) -> Result<(NodeId, Schema), SqlError> {
        match e {
            SetExpr::Select(s) => self.bind_select(s),
            SetExpr::UnionAll(l, r) | SetExpr::Except(l, r) => {
                let (ln, ls) = self.bind_set(l)?;
                let (rn, rs) = self.bind_set(r)?;
                if !ls.union_compatible(&rs) {
                    return Err(SqlError::Bind(format!(
                        "set operands are not union compatible: {ls} vs {rs}"
                    )));
                }
                let node = match e {
                    SetExpr::UnionAll(..) => self.plan.union_all(ln, rn),
                    _ => self.plan.difference(ln, rn),
                };
                Ok((node, ls))
            }
        }
    }

    /// Materialise one FROM item, projecting its columns to `alias.col`.
    fn bind_from_item(&mut self, item: &FromItem) -> Result<(String, NodeId, Schema), SqlError> {
        let (alias, node, schema) = match item {
            FromItem::Named { name, alias } => {
                if let Some((node, schema)) = self.ctes.get(name).cloned() {
                    (alias.clone(), node, schema)
                } else if let Some(t) = self.db.table(name) {
                    let cols: Vec<(ColName, Ty)> = t.schema.cols().to_vec();
                    let keys: Vec<ColName> = t.keys.iter().map(|k| Arc::from(k.as_str())).collect();
                    let node = self.plan.table(name.clone(), cols.clone(), keys);
                    (alias.clone(), node, Schema::new(cols))
                } else if let Some((schema, keys)) = self.db.database().system_table_info(name) {
                    // system tables (`ferry.*`) bind like base tables; the
                    // executor resolves them with the same catalog-first
                    // shadowing this arm order encodes
                    let cols: Vec<(ColName, Ty)> = schema.cols().to_vec();
                    let keys: Vec<ColName> = keys.iter().map(|k| Arc::from(k.as_str())).collect();
                    let node = self.plan.table(name.clone(), cols.clone(), keys);
                    (alias.clone(), node, Schema::new(cols))
                } else {
                    return Err(SqlError::Bind(format!("unknown table {name}")));
                }
            }
            FromItem::Derived { body, alias } => {
                let (node, schema) = self.bind_set(body)?;
                (alias.clone(), node, schema)
            }
        };
        // prefix every column with the alias
        let cols: Vec<(ColName, ColName)> = schema
            .cols()
            .iter()
            .map(|(n, _)| (Arc::from(format!("{alias}.{n}").as_str()), n.clone()))
            .collect();
        let node = self.plan.project(node, cols.clone());
        let schema = Schema::new(
            cols.iter()
                .zip(schema.cols())
                .map(|((new, _), (_, t))| (new.clone(), *t))
                .collect(),
        );
        Ok((alias, node, schema))
    }

    fn bind_select(&mut self, s: &Select) -> Result<(NodeId, Schema), SqlError> {
        // FROM: bind the items
        let mut items: Vec<(String, NodeId, Schema)> = Vec::new();
        if s.from.is_empty() {
            // FROM-less SELECT: one dummy row
            let dummy = self.fresh("one");
            let node = self.plan.lit(
                Schema::new(vec![(dummy.clone(), Ty::Nat)]),
                vec![vec![Value::Nat(1)]],
            );
            items.push(("".to_string(), node, Schema::new(vec![(dummy, Ty::Nat)])));
        } else {
            let mut seen = std::collections::HashSet::new();
            for item in &s.from {
                let bound = self.bind_from_item(item)?;
                if !seen.insert(bound.0.clone()) {
                    return Err(SqlError::Bind(format!("duplicate alias {}", bound.0)));
                }
                items.push(bound);
            }
        }
        let scope = Scope {
            items: items
                .iter()
                .map(|(a, _, s)| (a.clone(), s.clone()))
                .collect(),
        };

        // split WHERE into equi-join conjuncts and residual predicates
        let mut conjuncts = Vec::new();
        if let Some(w) = &s.where_ {
            split_conjuncts(w, &mut conjuncts);
        }
        let mut join_edges: Vec<(ColName, Ty, ColName)> = Vec::new();
        let mut residual: Vec<&SqlExpr> = Vec::new();
        for c in &conjuncts {
            match as_join_edge(c, &scope) {
                Some(edge) => join_edges.push(edge),
                None => residual.push(c),
            }
        }

        // greedy join tree: start with the first item, repeatedly join in
        // an item connected by at least one edge, falling back to a cross
        // join when nothing connects
        let mut joined_aliases: Vec<String> = vec![items[0].0.clone()];
        let mut node = items[0].1;
        let mut schema = items[0].2.clone();
        let mut remaining: Vec<(String, NodeId, Schema)> = items.into_iter().skip(1).collect();
        let mut edges = join_edges;
        while !remaining.is_empty() {
            // find an item with an edge to the joined set
            let pick = remaining.iter().position(|(_, _, s)| {
                edges.iter().any(|(l, _, r)| {
                    (schema.contains(l) && s.contains(r)) || (schema.contains(r) && s.contains(l))
                })
            });
            match pick {
                Some(i) => {
                    let (alias, rnode, rschema) = remaining.remove(i);
                    let mut lcols = Vec::new();
                    let mut rcols = Vec::new();
                    edges.retain(|(l, _, r)| {
                        if schema.contains(l) && rschema.contains(r) {
                            lcols.push(l.clone());
                            rcols.push(r.clone());
                            false
                        } else if schema.contains(r) && rschema.contains(l) {
                            lcols.push(r.clone());
                            rcols.push(l.clone());
                            false
                        } else {
                            true
                        }
                    });
                    node = self
                        .plan
                        .equi_join(node, rnode, JoinCols::new(lcols, rcols));
                    schema = schema.concat(&rschema);
                    joined_aliases.push(alias);
                }
                None => {
                    let (alias, rnode, rschema) = remaining.remove(0);
                    node = self.plan.cross(node, rnode);
                    schema = schema.concat(&rschema);
                    joined_aliases.push(alias);
                }
            }
        }
        // edges that never connected (same-item equalities) become filters
        for (l, _, r) in edges {
            node = self
                .plan
                .select(node, AExpr::eq(AExpr::Col(l), AExpr::Col(r)));
        }
        for pred in residual {
            let e = self.bind_expr(pred, &scope, &schema)?;
            let e = coerce_to(e, Ty::Bool, &schema)
                .ok_or_else(|| SqlError::Bind("WHERE predicate is not boolean".into()))?;
            node = self.plan.select(node, e);
        }

        // GROUP BY / aggregate path
        if !s.group_by.is_empty() || contains_agg_items(&s.items) {
            return self.bind_grouped(s, &scope, node, schema);
        }

        // window functions: materialise each distinct window expression
        let mut windows: HashMap<String, ColName> = HashMap::new();
        for item in &s.items {
            self.materialise_windows(&item.expr, &scope, &mut node, &mut schema, &mut windows)?;
        }

        // output items
        self.project_items(&s.items, &scope, node, schema, &windows, s.distinct)
    }

    /// Bind a SELECT with aggregates / GROUP BY.
    fn bind_grouped(
        &mut self,
        s: &Select,
        scope: &Scope,
        mut node: NodeId,
        mut schema: Schema,
    ) -> Result<(NodeId, Schema), SqlError> {
        // group keys must be column references
        let mut keys: Vec<ColName> = Vec::new();
        for k in &s.group_by {
            match k {
                SqlExpr::Column { qualifier, name } => {
                    let (c, _) = scope.resolve(qualifier.as_deref(), name)?;
                    keys.push(c);
                }
                e => return Err(SqlError::Bind(format!("GROUP BY expects columns: {e:?}"))),
            }
        }
        // collect aggregates from the select items; compute their argument
        // columns on the input
        let mut aggs: Vec<Aggregate> = Vec::new();
        let mut agg_cols: HashMap<String, (ColName, Ty)> = HashMap::new();
        for item in &s.items {
            collect_aggs(&item.expr, &mut |agg: &SqlExpr| -> Result<(), SqlError> {
                let key = format!("{agg:?}");
                if agg_cols.contains_key(&key) {
                    return Ok(());
                }
                let SqlExpr::Agg { fun, arg } = agg else {
                    unreachable!()
                };
                let (input, in_ty) = match arg {
                    None => (None, None),
                    Some(a) => {
                        let bound = self.bind_expr(a, scope, &schema)?;
                        let ty = bound.infer_ty(&schema).ok_or_else(|| {
                            SqlError::Bind(format!("ill-typed aggregate argument {a:?}"))
                        })?;
                        match bound {
                            AExpr::Col(c) => (Some(c), Some(ty)),
                            e => {
                                let c = self.fresh("aggarg");
                                node = self.plan.compute(node, c.clone(), e);
                                schema.push(c.clone(), ty);
                                (Some(c), Some(ty))
                            }
                        }
                    }
                };
                let fun = match fun {
                    AggName::CountStar => AggFun::CountAll,
                    AggName::Sum => AggFun::Sum,
                    AggName::Min => AggFun::Min,
                    AggName::Max => AggFun::Max,
                    AggName::Avg => AggFun::Avg,
                    AggName::BoolAnd => AggFun::All,
                    AggName::BoolOr => AggFun::Any,
                };
                let out = self.fresh("agg");
                let out_ty = fun
                    .result_ty(in_ty)
                    .ok_or_else(|| SqlError::Bind(format!("{fun:?} on {in_ty:?}")))?;
                aggs.push(Aggregate {
                    fun,
                    input,
                    output: out.clone(),
                });
                agg_cols.insert(key, (out, out_ty));
                Ok(())
            })?;
        }
        let gnode = self.plan.group_by(node, keys.clone(), aggs);
        let mut gschema = Schema::new(
            keys.iter()
                .map(|k| (k.clone(), schema.ty_of(k).expect("key resolved")))
                .collect::<Vec<_>>(),
        );
        for (out, ty) in agg_cols.values() {
            gschema.push(out.clone(), *ty);
        }
        // evaluate the select items over the grouped schema, aggregates
        // replaced by their output columns
        let windows = HashMap::new();
        let items: Vec<SelectItem> = s
            .items
            .iter()
            .map(|it| SelectItem {
                expr: replace_aggs(&it.expr, &agg_cols),
                alias: it.alias.clone(),
            })
            .collect();
        self.project_items_grouped(&items, scope, gnode, gschema, &windows, s.distinct)
    }

    /// Replace window expressions in `e` by computed columns, extending the
    /// plan as needed.
    fn materialise_windows(
        &mut self,
        e: &SqlExpr,
        scope: &Scope,
        node: &mut NodeId,
        schema: &mut Schema,
        windows: &mut HashMap<String, ColName>,
    ) -> Result<(), SqlError> {
        match e {
            SqlExpr::Window {
                fun,
                partition_by,
                order_by,
            } => {
                let key = format!("{e:?}");
                if windows.contains_key(&key) {
                    return Ok(());
                }
                let part: Vec<ColName> = partition_by
                    .iter()
                    .map(|p| match p {
                        SqlExpr::Column { qualifier, name } => {
                            scope.resolve(qualifier.as_deref(), name).map(|(c, _)| c)
                        }
                        e => Err(SqlError::Bind(format!(
                            "PARTITION BY expects columns: {e:?}"
                        ))),
                    })
                    .collect::<Result<_, _>>()?;
                let order: Vec<(ColName, Dir)> = order_by
                    .iter()
                    .map(|o| match &o.expr {
                        SqlExpr::Column { qualifier, name } => scope
                            .resolve(qualifier.as_deref(), name)
                            .map(|(c, _)| (c, if o.desc { Dir::Desc } else { Dir::Asc })),
                        e => Err(SqlError::Bind(format!(
                            "OVER ORDER BY expects columns: {e:?}"
                        ))),
                    })
                    .collect::<Result<_, _>>()?;
                let col = self.fresh("win");
                *node = match fun {
                    WindowFun::RowNumber => self.plan.rownum(*node, col.clone(), part, order),
                    WindowFun::DenseRank => self.plan.dense_rank(*node, col.clone(), part, order),
                    WindowFun::Rank => self.plan.add(ferry_algebra::Node::RowRank {
                        input: *node,
                        col: col.clone(),
                        order,
                    }),
                };
                schema.push(col.clone(), Ty::Nat);
                windows.insert(key, col);
                Ok(())
            }
            SqlExpr::Bin(_, l, r) => {
                self.materialise_windows(l, scope, node, schema, windows)?;
                self.materialise_windows(r, scope, node, schema, windows)
            }
            SqlExpr::Not(x) | SqlExpr::Neg(x) | SqlExpr::Cast { expr: x, .. } => {
                self.materialise_windows(x, scope, node, schema, windows)
            }
            SqlExpr::Case { when, then, els } => {
                self.materialise_windows(when, scope, node, schema, windows)?;
                self.materialise_windows(then, scope, node, schema, windows)?;
                self.materialise_windows(els, scope, node, schema, windows)
            }
            _ => Ok(()),
        }
    }

    /// Compute and project the final output columns of a SELECT.
    fn project_items(
        &mut self,
        items: &[SelectItem],
        scope: &Scope,
        node: NodeId,
        schema: Schema,
        windows: &HashMap<String, ColName>,
        distinct: bool,
    ) -> Result<(NodeId, Schema), SqlError> {
        self.project_items_inner(items, Some(scope), node, schema, windows, distinct)
    }

    /// Like [`Binder::project_items`], but resolving bare columns against
    /// the grouped schema rather than the FROM scope.
    fn project_items_grouped(
        &mut self,
        items: &[SelectItem],
        _scope: &Scope,
        node: NodeId,
        schema: Schema,
        windows: &HashMap<String, ColName>,
        distinct: bool,
    ) -> Result<(NodeId, Schema), SqlError> {
        self.project_items_inner(items, None, node, schema, windows, distinct)
    }

    fn project_items_inner(
        &mut self,
        items: &[SelectItem],
        scope: Option<&Scope>,
        mut node: NodeId,
        mut schema: Schema,
        windows: &HashMap<String, ColName>,
        distinct: bool,
    ) -> Result<(NodeId, Schema), SqlError> {
        let mut out_cols: Vec<(ColName, ColName)> = Vec::new();
        let mut out_schema: Vec<(ColName, Ty)> = Vec::new();
        for (i, item) in items.iter().enumerate() {
            let out_name: ColName = match &item.alias {
                Some(a) => Arc::from(a.as_str()),
                None => match &item.expr {
                    SqlExpr::Column { name, .. } => Arc::from(name.as_str()),
                    _ => Arc::from(format!("col{i}").as_str()),
                },
            };
            let bound = match windows.get(&format!("{:?}", item.expr)) {
                Some(c) => AExpr::Col(c.clone()),
                None => self.bind_expr_general(&item.expr, scope, &schema, windows)?,
            };
            // `_nat`-suffix repair: integer expressions feeding a *_nat
            // output become surrogates
            let want_nat = out_name.ends_with("_nat");
            let bound = if want_nat {
                coerce_to(bound, Ty::Nat, &schema)
                    .ok_or_else(|| SqlError::Bind(format!("cannot make {out_name} a surrogate")))?
            } else {
                bound
            };
            let ty = bound
                .infer_ty(&schema)
                .ok_or_else(|| SqlError::Bind(format!("ill-typed item {:?}", item.expr)))?;
            let src = match bound {
                AExpr::Col(c) => c,
                e => {
                    let c = self.fresh("item");
                    node = self.plan.compute(node, c.clone(), e);
                    schema.push(c.clone(), ty);
                    c
                }
            };
            out_cols.push((out_name.clone(), src));
            out_schema.push((out_name, ty));
        }
        let mut node = self.plan.project(node, out_cols);
        if distinct {
            node = self.plan.distinct(node);
        }
        Ok((node, Schema::new(out_schema)))
    }

    fn bind_expr_general(
        &mut self,
        e: &SqlExpr,
        scope: Option<&Scope>,
        schema: &Schema,
        windows: &HashMap<String, ColName>,
    ) -> Result<AExpr, SqlError> {
        if let Some(c) = windows.get(&format!("{e:?}")) {
            return Ok(AExpr::Col(c.clone()));
        }
        match scope {
            Some(s) => self.bind_expr(e, s, schema),
            None => bind_expr_schema(e, schema),
        }
    }

    /// Bind a scalar expression against a FROM scope.
    fn bind_expr(&self, e: &SqlExpr, scope: &Scope, schema: &Schema) -> Result<AExpr, SqlError> {
        match e {
            SqlExpr::Column { qualifier, name } => {
                let (c, _) = scope.resolve(qualifier.as_deref(), name)?;
                Ok(AExpr::Col(c))
            }
            _ => bind_expr_with(e, &|q, n| scope.resolve(q, n), schema),
        }
    }
}

/// Bind a scalar expression resolving bare columns directly in a schema
/// (the grouped path).
fn bind_expr_schema(e: &SqlExpr, schema: &Schema) -> Result<AExpr, SqlError> {
    bind_expr_with(
        e,
        &|q, n| {
            // grouped keys keep their scoped `alias.col` names, so try the
            // qualified spelling first, then the bare one
            let qualified = q.map(|q| format!("{q}.{n}"));
            for candidate in qualified.iter().map(String::as_str).chain([n]) {
                let c: ColName = Arc::from(candidate);
                if let Some(t) = schema.ty_of(&c) {
                    return Ok((c, t));
                }
            }
            Err(SqlError::Bind(format!("unknown column {n}")))
        },
        schema,
    )
}

/// Shared recursive expression binding; `resolve` maps column syntax to
/// plan columns.
fn bind_expr_with(
    e: &SqlExpr,
    resolve: &dyn Fn(Option<&str>, &str) -> Result<(ColName, Ty), SqlError>,
    schema: &Schema,
) -> Result<AExpr, SqlError> {
    Ok(match e {
        SqlExpr::Column { qualifier, name } => {
            let (c, _) = resolve(qualifier.as_deref(), name)?;
            AExpr::Col(c)
        }
        SqlExpr::Int(i) => AExpr::lit(*i),
        SqlExpr::Float(f) => AExpr::lit(*f),
        SqlExpr::Str(s) => AExpr::lit(s.as_str()),
        SqlExpr::Bool(b) => AExpr::lit(*b),
        SqlExpr::Neg(x) => AExpr::Un(UnOp::Neg, Arc::new(bind_expr_with(x, resolve, schema)?)),
        SqlExpr::Not(x) => AExpr::not(bind_expr_with(x, resolve, schema)?),
        SqlExpr::Case { when, then, els } => AExpr::case(
            bind_expr_with(when, resolve, schema)?,
            bind_expr_with(then, resolve, schema)?,
            bind_expr_with(els, resolve, schema)?,
        ),
        SqlExpr::Cast { expr, ty } => {
            let inner = bind_expr_with(expr, resolve, schema)?;
            let t = match ty {
                SqlTy::Bigint => Ty::Int,
                SqlTy::Double => Ty::Dbl,
                SqlTy::Nat => Ty::Nat,
                SqlTy::Varchar => Ty::Str,
                SqlTy::Boolean => Ty::Bool,
            };
            if matches!(t, Ty::Str | Ty::Bool) {
                // only numeric casts occur in the dialect; a cast to the
                // expression's own type is the identity
                if inner.infer_ty(schema) == Some(t) {
                    inner
                } else {
                    return Err(SqlError::Bind(format!("unsupported cast to {t}")));
                }
            } else {
                AExpr::cast(t, inner)
            }
        }
        SqlExpr::Bin(op, l, r) => {
            let mut lb = bind_expr_with(l, resolve, schema)?;
            let mut rb = bind_expr_with(r, resolve, schema)?;
            // literal ↔ surrogate repair: `pos = 1` compares Nat with an
            // integer literal
            let lt = lb.infer_ty(schema);
            let rt = rb.infer_ty(schema);
            if lt == Some(Ty::Nat) && rt == Some(Ty::Int) {
                if let AExpr::Const(Value::Int(i)) = &rb {
                    if *i >= 0 {
                        rb = AExpr::Const(Value::Nat(*i as u64));
                    }
                }
            }
            if rt == Some(Ty::Nat) && lt == Some(Ty::Int) {
                if let AExpr::Const(Value::Int(i)) = &lb {
                    if *i >= 0 {
                        lb = AExpr::Const(Value::Nat(*i as u64));
                    }
                }
            }
            let op = match op {
                SqlBinOp::Add => ABinOp::Add,
                SqlBinOp::Sub => ABinOp::Sub,
                SqlBinOp::Mul => ABinOp::Mul,
                SqlBinOp::Div => ABinOp::Div,
                SqlBinOp::Mod => ABinOp::Mod,
                SqlBinOp::Eq => ABinOp::Eq,
                SqlBinOp::Ne => ABinOp::Ne,
                SqlBinOp::Lt => ABinOp::Lt,
                SqlBinOp::Le => ABinOp::Le,
                SqlBinOp::Gt => ABinOp::Gt,
                SqlBinOp::Ge => ABinOp::Ge,
                SqlBinOp::And => ABinOp::And,
                SqlBinOp::Or => ABinOp::Or,
                SqlBinOp::Concat => ABinOp::Concat,
            };
            AExpr::bin(op, lb, rb)
        }
        SqlExpr::Window { .. } => {
            return Err(SqlError::Bind(
                "window function in an unsupported position".into(),
            ))
        }
        SqlExpr::Agg { .. } => {
            return Err(SqlError::Bind("aggregate outside GROUP BY binding".into()))
        }
    })
}

/// Coerce an expression to the wanted type when a safe coercion exists.
fn coerce_to(e: AExpr, want: Ty, schema: &Schema) -> Option<AExpr> {
    let t = e.infer_ty(schema)?;
    if t == want {
        return Some(e);
    }
    match (t, want) {
        (Ty::Int, Ty::Nat) => match &e {
            AExpr::Const(Value::Int(i)) if *i >= 0 => Some(AExpr::Const(Value::Nat(*i as u64))),
            _ => Some(AExpr::cast(Ty::Nat, e)),
        },
        (Ty::Nat, Ty::Int) => Some(AExpr::cast(Ty::Int, e)),
        _ => None,
    }
}

fn split_conjuncts(e: &SqlExpr, out: &mut Vec<SqlExpr>) {
    match e {
        SqlExpr::Bin(SqlBinOp::And, l, r) => {
            split_conjuncts(l, out);
            split_conjuncts(r, out);
        }
        e => out.push(e.clone()),
    }
}

/// `alias1.col = alias2.col` between *different* items becomes a join edge.
fn as_join_edge(e: &SqlExpr, scope: &Scope) -> Option<(ColName, Ty, ColName)> {
    let SqlExpr::Bin(SqlBinOp::Eq, l, r) = e else {
        return None;
    };
    let (
        SqlExpr::Column {
            qualifier: lq,
            name: ln,
        },
        SqlExpr::Column {
            qualifier: rq,
            name: rn,
        },
    ) = (l.as_ref(), r.as_ref())
    else {
        return None;
    };
    let (lc, lt) = scope.resolve(lq.as_deref(), ln).ok()?;
    let (rc, rt) = scope.resolve(rq.as_deref(), rn).ok()?;
    if lt != rt {
        return None;
    }
    // same item? leave it as a filter
    let item_of = |c: &ColName| c.split('.').next().map(String::from);
    if item_of(&lc) == item_of(&rc) {
        return None;
    }
    Some((lc, lt, rc))
}

fn contains_agg_items(items: &[SelectItem]) -> bool {
    fn has_agg(e: &SqlExpr) -> bool {
        match e {
            SqlExpr::Agg { .. } => true,
            SqlExpr::Bin(_, l, r) => has_agg(l) || has_agg(r),
            SqlExpr::Not(x) | SqlExpr::Neg(x) | SqlExpr::Cast { expr: x, .. } => has_agg(x),
            SqlExpr::Case { when, then, els } => has_agg(when) || has_agg(then) || has_agg(els),
            _ => false,
        }
    }
    items.iter().any(|i| has_agg(&i.expr))
}

fn collect_aggs(
    e: &SqlExpr,
    f: &mut dyn FnMut(&SqlExpr) -> Result<(), SqlError>,
) -> Result<(), SqlError> {
    match e {
        SqlExpr::Agg { .. } => f(e),
        SqlExpr::Bin(_, l, r) => {
            collect_aggs(l, f)?;
            collect_aggs(r, f)
        }
        SqlExpr::Not(x) | SqlExpr::Neg(x) | SqlExpr::Cast { expr: x, .. } => collect_aggs(x, f),
        SqlExpr::Case { when, then, els } => {
            collect_aggs(when, f)?;
            collect_aggs(then, f)?;
            collect_aggs(els, f)
        }
        _ => Ok(()),
    }
}

/// Replace aggregate subexpressions by their grouped output columns.
fn replace_aggs(e: &SqlExpr, agg_cols: &HashMap<String, (ColName, Ty)>) -> SqlExpr {
    match e {
        SqlExpr::Agg { .. } => {
            let (c, _) = &agg_cols[&format!("{e:?}")];
            SqlExpr::Column {
                qualifier: None,
                name: c.to_string(),
            }
        }
        SqlExpr::Bin(op, l, r) => SqlExpr::Bin(
            *op,
            Box::new(replace_aggs(l, agg_cols)),
            Box::new(replace_aggs(r, agg_cols)),
        ),
        SqlExpr::Not(x) => SqlExpr::Not(Box::new(replace_aggs(x, agg_cols))),
        SqlExpr::Neg(x) => SqlExpr::Neg(Box::new(replace_aggs(x, agg_cols))),
        SqlExpr::Cast { expr, ty } => SqlExpr::Cast {
            expr: Box::new(replace_aggs(expr, agg_cols)),
            ty: *ty,
        },
        SqlExpr::Case { when, then, els } => SqlExpr::Case {
            when: Box::new(replace_aggs(when, agg_cols)),
            then: Box::new(replace_aggs(then, agg_cols)),
            els: Box::new(replace_aggs(els, agg_cols)),
        },
        e => e.clone(),
    }
}

//! Executing SQL text on the engine: parse → bind → run.

use crate::{binder, parser, SqlError};
use ferry_algebra::Rel;
use ferry_engine::Snapshot;

/// Execute one SQL statement against one pinned catalog version. Each
/// call dispatches exactly one engine query — the unit Table 1 counts.
pub fn execute_sql(db: &Snapshot<'_>, sql: &str) -> Result<Rel, SqlError> {
    let (plan, root) = {
        let _s = ferry_telemetry::span("parse_bind", "sql");
        let stmt = parser::parse(sql)?;
        binder::bind(db, &stmt)?
    };
    Ok(db.execute(&plan, root)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferry_algebra::{Schema, Ty, Value};
    use ferry_engine::Database;

    fn db() -> Database {
        let db = Database::new();
        db.create_table(
            "emp",
            Schema::of(&[("dept", Ty::Str), ("name", Ty::Str), ("sal", Ty::Int)]),
            vec!["name"],
        )
        .unwrap();
        db.insert(
            "emp",
            vec![
                vec![Value::str("eng"), Value::str("ada"), Value::Int(90)],
                vec![Value::str("eng"), Value::str("bob"), Value::Int(70)],
                vec![Value::str("ops"), Value::str("cy"), Value::Int(50)],
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn select_where_order() {
        let r = execute_sql(
            &db().snapshot(),
            "SELECT e.name AS who, e.sal AS sal FROM emp AS e \
             WHERE e.sal >= 70 ORDER BY sal DESC;",
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows()[0][0], Value::str("ada"));
        assert_eq!(r.rows()[1][0], Value::str("bob"));
    }

    #[test]
    fn group_by_aggregate() {
        let r = execute_sql(
            &db().snapshot(),
            "SELECT e.dept AS d, COUNT (*) AS n, SUM (e.sal) AS total \
             FROM emp AS e GROUP BY e.dept ORDER BY d ASC;",
        )
        .unwrap();
        assert_eq!(
            r.rows()[0],
            vec![Value::str("eng"), Value::Int(2), Value::Int(160)]
        );
        assert_eq!(
            r.rows()[1],
            vec![Value::str("ops"), Value::Int(1), Value::Int(50)]
        );
    }

    #[test]
    fn self_join_via_where() {
        let r = execute_sql(
            &db().snapshot(),
            "SELECT a.name AS x, b.name AS y FROM emp AS a, emp AS b \
             WHERE a.dept = b.dept AND a.name < b.name ORDER BY x ASC, y ASC;",
        )
        .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows()[0], vec![Value::str("ada"), Value::str("bob")]);
    }

    #[test]
    fn window_function() {
        let r = execute_sql(
            &db().snapshot(),
            "SELECT e.name AS who, \
             ROW_NUMBER () OVER (PARTITION BY e.dept ORDER BY e.sal DESC) AS rn_nat \
             FROM emp AS e ORDER BY who ASC;",
        )
        .unwrap();
        let rns: Vec<u64> = r
            .rows()
            .iter()
            .map(|row| row[1].as_nat().unwrap())
            .collect();
        assert_eq!(rns, vec![1, 2, 1]); // ada, bob (eng), cy (ops)
    }

    #[test]
    fn ctes_union_except() {
        let sql = "WITH hi (who) AS (SELECT e.name AS who FROM emp AS e WHERE e.sal > 60), \
                   lo (who) AS (SELECT e.name AS who FROM emp AS e WHERE e.sal < 80) \
                   SELECT h.who AS who FROM hi AS h \
                   EXCEPT SELECT l.who AS who FROM lo AS l \
                   ORDER BY who ASC;";
        let r = execute_sql(&db().snapshot(), sql).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows()[0][0], Value::str("ada"));
    }

    #[test]
    fn from_less_literals_and_union_all() {
        let r = execute_sql(
            &db().snapshot(),
            "SELECT 1 AS x UNION ALL SELECT 2 AS x ORDER BY x DESC;",
        )
        .unwrap();
        assert_eq!(r.rows()[0][0], Value::Int(2));
        assert_eq!(r.rows()[1][0], Value::Int(1));
    }

    #[test]
    fn case_cast_arithmetic() {
        let r = execute_sql(
            &db().snapshot(),
            "SELECT e.name AS who, \
             CASE WHEN e.sal >= 70 THEN 'high' ELSE 'low' END AS band, \
             CAST(e.sal AS DOUBLE PRECISION) / 2.0 AS half \
             FROM emp AS e ORDER BY who ASC;",
        )
        .unwrap();
        assert_eq!(r.rows()[0][1], Value::str("high"));
        assert_eq!(r.rows()[2][1], Value::str("low"));
        assert_eq!(r.rows()[0][2], Value::Dbl(45.0));
    }

    #[test]
    fn distinct_and_derived_tables() {
        let r = execute_sql(
            &db().snapshot(),
            "SELECT DISTINCT d.dept AS dept \
             FROM (SELECT e.dept AS dept FROM emp AS e) AS d ORDER BY dept ASC;",
        )
        .unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn nat_suffix_repair() {
        // `1 AS iter_nat` must come out as a surrogate, comparable with
        // window outputs
        let r = execute_sql(
            &db().snapshot(),
            "SELECT 1 AS iter_nat, e.name AS who FROM emp AS e \
             WHERE ROW_NUMBER_FREE = ROW_NUMBER_FREE ORDER BY who ASC;",
        );
        // unknown column → clean bind error, not a panic
        assert!(matches!(r, Err(SqlError::Bind(_))));
        let r = execute_sql(&db().snapshot(), "SELECT 1 AS iter_nat FROM emp AS e;").unwrap();
        assert_eq!(r.rows()[0][0], Value::Nat(1));
    }

    #[test]
    fn system_tables_bind_by_dotted_name() {
        // `ferry.tables` resolves through the system-table catalog and
        // reads like any base table, base tables shadowing system ones
        let r = execute_sql(
            &db().snapshot(),
            "SELECT t.name AS name, t.rows AS n FROM ferry.tables AS t \
             WHERE t.name = 'emp';",
        )
        .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows()[0][0], Value::str("emp"));
        assert_eq!(r.rows()[0][1], Value::Int(3));
        // unknown dotted names still fail the bind, typed
        assert!(matches!(
            execute_sql(&db().snapshot(), "SELECT g.x AS x FROM ferry.ghost AS g"),
            Err(SqlError::Bind(_))
        ));
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(matches!(
            execute_sql(&db().snapshot(), "SELEC"),
            Err(SqlError::Parse(_))
        ));
        assert!(matches!(
            execute_sql(&db().snapshot(), "SELECT x.y AS z FROM ghost AS x"),
            Err(SqlError::Bind(_))
        ));
    }
}

//! Plan-level fuzzing of the SQL round trip: random table-algebra plans
//! are generated, rendered to SQL, parsed, re-bound, executed — and must
//! produce exactly the rows of direct plan execution. This covers operator
//! combinations the compiler happens not to emit today.

use ferry_algebra::{
    plan::{cn, Aggregate},
    AggFun, BinOp, ColName, Dir, Expr, JoinCols, NodeId, Plan, Schema, Ty, Value,
};
use ferry_engine::Database;
use ferry_sql::{execute_sql, generate_sql};
use proptest::prelude::*;

/// One step of plan construction over the running (node, schema) pair.
#[derive(Debug, Clone)]
enum Step {
    SelectGt(i64),
    AttachInt(i64),
    ComputePlus(i64),
    Distinct,
    Reverse,  // rownum desc + serialize later
    JoinBase, // equi join with a fresh scan of the base table
    SemiBase,
    AntiBase,
    UnionBase, // union with a projection of the base table
    GroupCount,
    RankByValue,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (-6i64..6).prop_map(Step::SelectGt),
        (-9i64..9).prop_map(Step::AttachInt),
        (-5i64..5).prop_map(Step::ComputePlus),
        Just(Step::Distinct),
        Just(Step::Reverse),
        Just(Step::JoinBase),
        Just(Step::SemiBase),
        Just(Step::AntiBase),
        Just(Step::UnionBase),
        Just(Step::GroupCount),
        Just(Step::RankByValue),
    ]
}

fn database(rows: &[(i64, i64)]) -> Database {
    let db = Database::new();
    db.create_table(
        "base",
        Schema::of(&[("k", Ty::Int), ("v", Ty::Int)]),
        vec![],
    )
    .unwrap();
    db.insert(
        "base",
        rows.iter()
            .map(|(k, v)| vec![Value::Int(*k), Value::Int(*v)])
            .collect(),
    )
    .unwrap();
    db
}

/// Build a plan; every intermediate schema is kept to two Int columns
/// (k, v-ish) so steps compose freely.
fn build(steps: &[Step]) -> (Plan, NodeId) {
    let mut p = Plan::new();
    let mut fresh = 0u32;
    let mut f = |base: &str| -> ColName {
        fresh += 1;
        cn(&format!("{base}{fresh}"))
    };
    let base_cols =
        |f: &mut dyn FnMut(&str) -> ColName| vec![(f("bk"), Ty::Int), (f("bv"), Ty::Int)];
    let mut ff = |base: &str| f(base);
    let cols = base_cols(&mut ff);
    let (k0, v0) = (cols[0].0.clone(), cols[1].0.clone());
    let mut node = p.table("base", cols, vec![]);
    // normalise column names to k, v
    node = p.project(node, vec![(cn("k"), k0), (cn("v"), v0)]);
    let mut schema_cols: (ColName, ColName) = (cn("k"), cn("v"));
    for step in steps {
        let (k, v) = schema_cols.clone();
        match step {
            Step::SelectGt(c) => {
                node = p.select(node, Expr::bin(BinOp::Gt, Expr::Col(k), Expr::lit(*c)));
            }
            Step::AttachInt(c) => {
                let a = ff("a");
                node = p.attach(node, a.clone(), Value::Int(*c));
                node = p.project(node, vec![(cn("k2"), schema_cols.0.clone()), (cn("v2"), a)]);
                node = p.project(node, vec![(cn("k"), cn("k2")), (cn("v"), cn("v2"))]);
            }
            Step::ComputePlus(c) => {
                let a = ff("c");
                node = p.compute(
                    node,
                    a.clone(),
                    Expr::bin(BinOp::Add, Expr::Col(v), Expr::lit(*c)),
                );
                node = p.project(node, vec![(cn("k2"), schema_cols.0.clone()), (cn("v2"), a)]);
                node = p.project(node, vec![(cn("k"), cn("k2")), (cn("v"), cn("v2"))]);
            }
            Step::Distinct => {
                node = p.distinct(node);
            }
            Step::Reverse => {
                let r = ff("r");
                // order by all columns: ROW_NUMBER ties then fall only on
                // fully identical rows, keeping both execution paths
                // multiset-equal
                node = p.rownum(
                    node,
                    r.clone(),
                    vec![],
                    vec![(v.clone(), Dir::Desc), (k.clone(), Dir::Desc)],
                );
                let c = ff("ci");
                node = p.compute(node, c.clone(), Expr::cast(Ty::Int, Expr::Col(r)));
                node = p.project(node, vec![(cn("k2"), k), (cn("v2"), c)]);
                node = p.project(node, vec![(cn("k"), cn("k2")), (cn("v"), cn("v2"))]);
            }
            Step::JoinBase | Step::SemiBase | Step::AntiBase => {
                let bcols = vec![(ff("jk"), Ty::Int), (ff("jv"), Ty::Int)];
                let (jk, jv) = (bcols[0].0.clone(), bcols[1].0.clone());
                let b = p.table("base", bcols, vec![]);
                match step {
                    Step::JoinBase => {
                        node = p.equi_join(node, b, JoinCols::new(vec![k], vec![jk]));
                        node = p.project(node, vec![(cn("k2"), cn("k")), (cn("v2"), jv)]);
                        node = p.project(node, vec![(cn("k"), cn("k2")), (cn("v"), cn("v2"))]);
                    }
                    Step::SemiBase => {
                        node = p.semi_join(node, b, JoinCols::new(vec![k], vec![jk]));
                    }
                    _ => {
                        node = p.anti_join(node, b, JoinCols::new(vec![v], vec![jv]));
                    }
                }
            }
            Step::UnionBase => {
                let bcols = vec![(ff("uk"), Ty::Int), (ff("uv"), Ty::Int)];
                let (uk, uv) = (bcols[0].0.clone(), bcols[1].0.clone());
                let b = p.table("base", bcols, vec![]);
                let bp = p.project(b, vec![(cn("k3"), uk), (cn("v3"), uv)]);
                node = p.union_all(node, bp);
            }
            Step::GroupCount => {
                let n = ff("n");
                node = p.group_by(
                    node,
                    vec![k],
                    vec![Aggregate {
                        fun: AggFun::CountAll,
                        input: None,
                        output: n.clone(),
                    }],
                );
                node = p.project(node, vec![(cn("k2"), cn("k")), (cn("v2"), n)]);
                node = p.project(node, vec![(cn("k"), cn("k2")), (cn("v"), cn("v2"))]);
            }
            Step::RankByValue => {
                let r = ff("rk");
                node = p.dense_rank(node, r.clone(), vec![], vec![(v, Dir::Asc)]);
                let c = ff("ci");
                node = p.compute(node, c.clone(), Expr::cast(Ty::Int, Expr::Col(r)));
                node = p.project(node, vec![(cn("k2"), k), (cn("v2"), c)]);
                node = p.project(node, vec![(cn("k"), cn("k2")), (cn("v"), cn("v2"))]);
            }
        }
        schema_cols = (cn("k"), cn("v"));
    }
    let root = p.serialize(
        node,
        vec![(cn("k"), Dir::Asc), (cn("v"), Dir::Asc)],
        vec![cn("k"), cn("v")],
    );
    (p, root)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn sql_round_trip_equals_direct_execution(
        rows in proptest::collection::vec((-5i64..5, -5i64..5), 0..10),
        steps in proptest::collection::vec(step_strategy(), 0..5),
    ) {
        let db = database(&rows);
        let (plan, root) = build(&steps);
        ferry_algebra::validate(&plan, root).expect("generated plan validates");
        let direct = db.execute(&plan, root).expect("direct execution");
        let sql = generate_sql(&db.snapshot(), &plan, root).expect("codegen");
        let via_sql = execute_sql(&db.snapshot(), &sql.sql)
            .unwrap_or_else(|e| panic!("round trip failed: {e}\n{}", sql.sql));
        prop_assert_eq!(&direct.rows(), &via_sql.rows(), "\nSQL:\n{}", sql.sql);
    }
}

//! The generator's trust anchor: for a battery of Ferry programs, the
//! bundle executed *via SQL text* (generate → parse → bind → engine) must
//! produce exactly the relations of direct algebra execution — and the
//! stitched nested values must match the reference interpreter.

use ferry::prelude::*;
use ferry::stitch::stitch;
use ferry_algebra::{Schema, Ty, Value};
use ferry_engine::Database;
use ferry_sql::{execute_sql, generate_sql};

fn database() -> Database {
    let db = Database::new();
    db.create_table("nums", Schema::of(&[("n", Ty::Int)]), vec!["n"])
        .unwrap();
    db.insert(
        "nums",
        vec![
            vec![Value::Int(3)],
            vec![Value::Int(1)],
            vec![Value::Int(4)],
            vec![Value::Int(1)],
            vec![Value::Int(5)],
        ],
    )
    .unwrap();
    db.create_table(
        "emp",
        Schema::of(&[("dept", Ty::Str), ("name", Ty::Str), ("sal", Ty::Int)]),
        vec!["name"],
    )
    .unwrap();
    db.insert(
        "emp",
        vec![
            vec![Value::str("eng"), Value::str("ada"), Value::Int(90)],
            vec![Value::str("eng"), Value::str("bob"), Value::Int(70)],
            vec![Value::str("ops"), Value::str("cy"), Value::Int(50)],
            vec![Value::str("hr"), Value::str("eve"), Value::Int(60)],
        ],
    )
    .unwrap();
    db
}

/// Run `q` three ways — direct algebra, SQL round trip, interpreter — and
/// demand exact agreement. Exercised with and without the optimizer.
fn check<T: QA + PartialEq + std::fmt::Debug>(q: &Q<T>) -> T {
    let mut out = None;
    for optimize in [false, true] {
        let conn = if optimize {
            Connection::new(database()).with_optimizer(ferry_optimizer::rewriter())
        } else {
            Connection::new(database())
        };
        let bundle = conn.compile(q).expect("compile");
        // path 1: direct algebra
        let direct = conn.execute_bundle(&bundle).expect("direct execution");
        // path 2: SQL text round trip, against one pinned snapshot
        let db = conn.snapshot();
        let mut via_sql = Vec::new();
        for qd in &bundle.queries {
            let sql = generate_sql(&db, &bundle.plan, qd.root)
                .unwrap_or_else(|e| panic!("codegen failed: {e}"));
            let rel = execute_sql(&db, &sql.sql)
                .unwrap_or_else(|e| panic!("SQL round trip failed: {e}\n{}", sql.sql));
            via_sql.push(rel);
        }
        for (i, (a, b)) in direct.iter().zip(via_sql.iter()).enumerate() {
            assert_eq!(
                a.rows(),
                b.rows(),
                "query {i} differs between algebra and SQL (optimize={optimize})"
            );
        }
        let stitched = stitch(&via_sql, &bundle.queries).expect("stitch");
        let decoded = T::from_val(&stitched).expect("decode");
        let oracle = conn.interpret(q).expect("interpreter");
        assert_eq!(
            decoded, oracle,
            "SQL path vs interpreter (optimize={optimize})"
        );
        out = Some(decoded);
    }
    out.unwrap()
}

fn nums() -> Q<Vec<i64>> {
    table::<i64>("nums")
}

fn emp() -> Q<Vec<(String, String, i64)>> {
    table::<(String, String, i64)>("emp")
}

#[test]
fn flat_queries() {
    assert_eq!(check(&nums()), vec![1, 1, 3, 4, 5]);
    assert_eq!(
        check(&map(|x: Q<i64>| x.clone() * x, nums())),
        vec![1, 1, 9, 16, 25]
    );
    assert_eq!(
        check(&filter(|x: Q<i64>| x.gt(&toq(&2i64)), nums())),
        vec![3, 4, 5]
    );
    assert_eq!(check(&sum(nums())), 14);
}

#[test]
fn ordering_operators() {
    assert_eq!(check(&reverse(nums())), vec![5, 4, 3, 1, 1]);
    assert_eq!(check(&take(toq(&3i64), nums())), vec![1, 1, 3]);
    assert_eq!(check(&drop(toq(&3i64), nums())), vec![4, 5]);
    assert_eq!(
        check(&sort_with(|x: Q<i64>| -x, nums())),
        vec![5, 4, 3, 1, 1]
    );
    assert_eq!(check(&nub(nums())), vec![1, 3, 4, 5]);
}

#[test]
fn nested_queries() {
    assert_eq!(
        check(&group_with(|x: Q<i64>| x % toq(&2i64), nums())),
        vec![vec![4], vec![1, 1, 3, 5]]
    );
    assert_eq!(
        check(&map(
            |x: Q<i64>| list([x.clone(), x + toq(&1i64)]),
            take(toq(&2i64), nums())
        )),
        vec![vec![1, 2], vec![1, 2]]
    );
}

#[test]
fn the_running_example_shape() {
    // per-department salary report, nested result: [(dept, [salaries])]
    let q = map(
        |g: Q<Vec<(String, String, i64)>>| {
            pair(
                the(map(|e: Q<(String, String, i64)>| e.proj3_0(), g.clone())),
                map(|e: Q<(String, String, i64)>| e.proj3_2(), g),
            )
        },
        group_with(|e: Q<(String, String, i64)>| e.proj3_0(), emp()),
    );
    let r = check(&q);
    assert_eq!(
        r,
        vec![
            ("eng".to_string(), vec![90, 70]),
            ("hr".to_string(), vec![60]),
            ("ops".to_string(), vec![50]),
        ]
    );
}

#[test]
fn literals_and_conditionals() {
    assert_eq!(
        check(&toq(&vec![vec![1i64], vec![], vec![2, 3]])),
        vec![vec![1], vec![], vec![2, 3]]
    );
    assert_eq!(
        check(&cond(
            length(nums()).gt(&toq(&3i64)),
            toq(&"big".to_string()),
            toq(&"small".to_string())
        )),
        "big"
    );
    assert_eq!(
        check(&append(toq(&vec![9i64]), take(toq(&2i64), nums()))),
        vec![9, 1, 1]
    );
}

#[test]
fn aggregates_and_empty_lists() {
    assert_eq!(check(&length(empty::<i64>())), 0);
    assert_eq!(check(&sum(empty::<i64>())), 0);
    assert!(check(&null(empty::<i64>())));
    assert_eq!(check(&maximum(nums())), 5);
    let q = map(
        |n: Q<i64>| length(filter(move |m: Q<i64>| m.gt(&n), nums())),
        nums(),
    );
    assert_eq!(check(&q), vec![3, 3, 2, 1, 0]);
}

#[test]
fn generated_sql_looks_like_the_appendix() {
    let conn = Connection::new(database());
    let q = group_with(|x: Q<i64>| x % toq(&2i64), nums());
    let bundle = conn.compile(&q).unwrap();
    let sql = generate_sql(&conn.snapshot(), &bundle.plan, bundle.queries[0].root).unwrap();
    // the structural signatures of the appendix dialect
    assert!(sql.sql.contains("WITH"), "{}", sql.sql);
    assert!(sql.sql.contains("DENSE_RANK () OVER"), "{}", sql.sql);
    assert!(sql.sql.contains("-- binding due to"), "{}", sql.sql);
    assert!(sql.sql.contains("ORDER BY"), "{}", sql.sql);
    assert!(sql.sql.contains("_nat"), "{}", sql.sql);
    assert!(sql.sql.trim_end().ends_with(';'), "{}", sql.sql);
}

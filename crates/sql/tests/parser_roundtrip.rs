//! Parser totality on the dialect: for randomised SQL ASTs,
//! `parse(print(ast)) == ast`. This pins the parser and printer to the
//! same grammar and guards against precedence/keyword regressions.

use ferry_sql::ast::*;
use ferry_sql::parser::parse;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    proptest::sample::select(vec!["alpha", "beta", "gamma", "delta", "v_1", "pos_nat"])
        .prop_map(String::from)
}

fn leaf_expr() -> impl Strategy<Value = SqlExpr> {
    prop_oneof![
        (ident(), proptest::option::of(ident()))
            .prop_map(|(name, qualifier)| { SqlExpr::Column { qualifier, name } }),
        (0i64..1000).prop_map(SqlExpr::Int),
        // floats chosen to print/parse exactly
        (0i64..100).prop_map(|i| SqlExpr::Float(i as f64 + 0.5)),
        "[a-z ]{0,6}".prop_map(SqlExpr::Str),
        any::<bool>().prop_map(SqlExpr::Bool),
    ]
}

fn bin_op() -> impl Strategy<Value = SqlBinOp> {
    prop_oneof![
        Just(SqlBinOp::Add),
        Just(SqlBinOp::Sub),
        Just(SqlBinOp::Mul),
        Just(SqlBinOp::Div),
        Just(SqlBinOp::Mod),
        Just(SqlBinOp::Eq),
        Just(SqlBinOp::Ne),
        Just(SqlBinOp::Lt),
        Just(SqlBinOp::Le),
        Just(SqlBinOp::Gt),
        Just(SqlBinOp::Ge),
        Just(SqlBinOp::And),
        Just(SqlBinOp::Or),
        Just(SqlBinOp::Concat),
    ]
}

fn expr(depth: u32) -> impl Strategy<Value = SqlExpr> {
    leaf_expr().prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            (bin_op(), inner.clone(), inner.clone())
                .prop_map(|(op, l, r)| { SqlExpr::Bin(op, Box::new(l), Box::new(r)) }),
            inner.clone().prop_map(|x| SqlExpr::Not(Box::new(x))),
            inner.clone().prop_map(|x| SqlExpr::Neg(Box::new(x))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| {
                SqlExpr::Case {
                    when: Box::new(c),
                    then: Box::new(t),
                    els: Box::new(e),
                }
            }),
            (
                inner.clone(),
                prop_oneof![
                    Just(SqlTy::Bigint),
                    Just(SqlTy::Double),
                    Just(SqlTy::Nat),
                    Just(SqlTy::Varchar),
                    Just(SqlTy::Boolean)
                ]
            )
                .prop_map(|(e, ty)| SqlExpr::Cast {
                    expr: Box::new(e),
                    ty
                }),
        ]
    })
}

fn window() -> impl Strategy<Value = SqlExpr> {
    (
        prop_oneof![
            Just(WindowFun::RowNumber),
            Just(WindowFun::Rank),
            Just(WindowFun::DenseRank)
        ],
        proptest::collection::vec(
            ident().prop_map(|n| SqlExpr::Column {
                qualifier: None,
                name: n,
            }),
            0..3,
        ),
        proptest::collection::vec(
            (ident(), any::<bool>()).prop_map(|(n, desc)| OrderItem {
                expr: SqlExpr::Column {
                    qualifier: None,
                    name: n,
                },
                desc,
            }),
            0..3,
        ),
    )
        .prop_map(|(fun, partition_by, order_by)| SqlExpr::Window {
            fun,
            partition_by,
            order_by,
        })
}

fn select() -> impl Strategy<Value = Select> {
    (
        any::<bool>(),
        proptest::collection::vec(
            prop_oneof![expr(2), window()].prop_flat_map(|e| {
                ident().prop_map(move |a| SelectItem {
                    expr: e.clone(),
                    alias: Some(a),
                })
            }),
            1..4,
        ),
        proptest::collection::vec(
            (ident(), ident()).prop_map(|(name, alias)| FromItem::Named { name, alias }),
            0..3,
        ),
        proptest::option::of(expr(2)),
    )
        .prop_map(|(distinct, items, from, where_)| Select {
            distinct,
            items,
            from,
            where_,
            group_by: vec![],
        })
}

fn statement() -> impl Strategy<Value = Statement> {
    (
        proptest::collection::vec(
            (ident(), select()).prop_map(|(name, s)| Cte {
                name,
                columns: vec![],
                body: SetExpr::Select(Box::new(s)),
            }),
            0..2,
        ),
        select(),
        proptest::collection::vec(
            (ident(), any::<bool>()).prop_map(|(n, desc)| OrderItem {
                expr: SqlExpr::Column {
                    qualifier: None,
                    name: n,
                },
                desc,
            }),
            0..2,
        ),
    )
        .prop_map(|(ctes, body, order_by)| Statement {
            ctes,
            body: SetExpr::Select(Box::new(body)),
            order_by,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn print_parse_round_trip(stmt in statement()) {
        let printed = stmt.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("printed SQL failed to parse: {e}\n{printed}"));
        prop_assert_eq!(reparsed, stmt, "\nprinted: {}", printed);
    }

    #[test]
    fn exprs_round_trip(e in expr(4)) {
        // wrap in a minimal SELECT so the statement is well-formed
        let stmt = Statement {
            ctes: vec![],
            body: SetExpr::Select(Box::new(Select {
                distinct: false,
                items: vec![SelectItem { expr: e, alias: Some("x".into()) }],
                from: vec![],
                where_: None,
                group_by: vec![],
            })),
            order_by: vec![],
        };
        let printed = stmt.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|err| panic!("{err}\n{printed}"));
        prop_assert_eq!(reparsed, stmt, "\nprinted: {}", printed);
    }
}

//! Materialised relations: the tabular values flowing between operators.
//!
//! A [`Rel`] is a *view* over a shared, immutable row buffer. Operators
//! that only drop rows (`Select`, `Distinct`, semi/anti joins) or rename
//! columns (`Project`, `Serialize`) describe their output as a selection
//! vector and/or a column remap over the input's buffer instead of copying
//! rows; the buffer itself is behind an [`Arc`], so table scans, literal
//! re-executions and cache hits all share storage. Only operators that
//! create genuinely new cells (joins, `Compute`, `Attach`, aggregation,
//! window functions) force materialisation.

use crate::chunk::ColVec;
use crate::schema::Schema;
use crate::value::Value;
use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, Mutex};

/// One table row. Cells are positionally aligned with the owning relation's
/// [`Schema`] (for dense relations) or with the backing buffer (views remap
/// through their selection vector / column map).
pub type Row = Vec<Value>;

/// A by-name column lookup ([`Rel::col_index`] / [`Rel::column`]) that
/// failed: the relation's schema has no column of the requested name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoSuchColumn {
    pub col: String,
    /// Rendered schema of the relation, for the error message.
    pub schema: String,
}

impl fmt::Display for NoSuchColumn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no such column {} in schema {}", self.col, self.schema)
    }
}

impl std::error::Error for NoSuchColumn {}

/// A shared, append-only row buffer plus its lazily-built columnar cache.
///
/// This is the unit of storage sharing: scans, views, cache hits and plan
/// literals all hold the same `Arc<RowBuf>`. The buffer also owns the
/// **chunk cache** backing the engine's vectorized path — [`ColVec`]
/// transpositions keyed per column, built on first use — so every view
/// over one buffer pays the row→column transposition at most once,
/// regardless of how many relations, queries or threads scan it.
#[derive(Debug, Default)]
pub struct RowBuf {
    rows: Vec<Row>,
    /// Typed column chunks, keyed by **buffer** column index.
    chunks: Mutex<HashMap<u32, Arc<ColVec>>>,
}

impl RowBuf {
    pub fn new(rows: Vec<Row>) -> RowBuf {
        RowBuf {
            rows,
            chunks: Mutex::new(HashMap::new()),
        }
    }

    /// The rows themselves.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Unwrap into the raw rows (drops the columnar cache).
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Append rows. Mutation invalidates the columnar cache — callers go
    /// through `Arc::make_mut`, so a shared buffer is cloned first and
    /// other holders keep their (still valid) cache.
    pub fn extend_rows(&mut self, rows: impl IntoIterator<Item = Row>) {
        self.rows.extend(rows);
        self.chunks.lock().unwrap().clear();
    }

    /// The typed chunk for buffer column `col`, transposing and caching it
    /// on first use. Concurrent callers block on the build rather than
    /// duplicating it.
    pub fn typed_col(&self, col: usize) -> Arc<ColVec> {
        let mut cache = self.chunks.lock().unwrap();
        cache
            .entry(col as u32)
            .or_insert_with(|| Arc::new(ColVec::build(&self.rows, col)))
            .clone()
    }

    /// The cached chunk for buffer column `col`, if one has already been
    /// built or seeded — never triggers a transposition. Lets producers
    /// decide cheaply whether a column is worth carrying forward.
    pub fn cached_col(&self, col: usize) -> Option<Arc<ColVec>> {
        self.chunks.lock().unwrap().get(&(col as u32)).cloned()
    }

    /// Seed the chunk cache for buffer column `col` with a chunk the
    /// producer already holds in columnar form (fused pipelines carry
    /// computed columns as typed registers; gathering a parent buffer's
    /// cached chunk through a selection yields the child's). Ignored if a
    /// chunk is already cached or the length does not match the buffer —
    /// seeding is an optimization, never a source of truth.
    pub fn seed_chunk(&self, col: usize, chunk: Arc<ColVec>) {
        if chunk.len() != self.rows.len() {
            return;
        }
        self.chunks
            .lock()
            .unwrap()
            .entry(col as u32)
            .or_insert(chunk);
    }
}

impl Clone for RowBuf {
    /// Clones the rows only; the clone starts with a cold chunk cache
    /// (clones exist to be mutated, which would invalidate it anyway).
    fn clone(&self) -> RowBuf {
        RowBuf::new(self.rows.clone())
    }
}

impl PartialEq for RowBuf {
    fn eq(&self, other: &RowBuf) -> bool {
        self.rows == other.rows
    }
}

impl From<Vec<Row>> for RowBuf {
    fn from(rows: Vec<Row>) -> RowBuf {
        RowBuf::new(rows)
    }
}

impl Deref for RowBuf {
    type Target = [Row];

    fn deref(&self) -> &[Row] {
        &self.rows
    }
}

/// A materialised relation: a schema plus a bag of rows, represented as a
/// view over a shared row buffer.
///
/// The engine is a bulk-at-a-time executor, so operators consume and
/// produce whole `Rel`s. Row order *is* observable — the Ferry encoding of
/// list order relies on `pos` columns, and the final `Serialize` operator
/// sorts — but no operator other than `Serialize` promises a particular
/// physical order.
///
/// Equality ([`PartialEq`]) compares the *visible* contents (schema plus
/// the rows the view exposes), never the representation: a dense relation
/// and a view are equal iff they expose the same rows.
#[derive(Debug, Clone)]
pub struct Rel {
    pub schema: Schema,
    /// The shared backing buffer. Rows in the buffer are full-width with
    /// respect to whatever relation originally materialised them.
    buf: Arc<RowBuf>,
    /// Selection vector: visible row `i` is buffer row `sel[i]`. `None`
    /// means all buffer rows are visible in buffer order.
    sel: Option<Arc<Vec<u32>>>,
    /// Column remap: visible column `c` is buffer column `cols[c]`. `None`
    /// means buffer rows are exactly `schema`-wide, in schema order.
    cols: Option<Arc<Vec<u32>>>,
}

impl Rel {
    /// A dense relation owning freshly materialised rows.
    pub fn new(schema: Schema, rows: Vec<Row>) -> Rel {
        debug_assert!(
            rows.iter().all(|r| r.len() == schema.len()),
            "row width does not match schema {schema}"
        );
        Rel {
            schema,
            buf: Arc::new(RowBuf::new(rows)),
            sel: None,
            cols: None,
        }
    }

    /// A dense relation sharing an existing buffer (zero-copy: table scans
    /// and literal nodes hand out the catalog's own `Arc`).
    pub fn from_shared(schema: Schema, rows: Arc<RowBuf>) -> Rel {
        debug_assert!(
            rows.iter().all(|r| r.len() == schema.len()),
            "row width does not match schema {schema}"
        );
        Rel {
            schema,
            buf: rows,
            sel: None,
            cols: None,
        }
    }

    pub fn empty(schema: Schema) -> Rel {
        Rel::new(schema, Vec::new())
    }

    /// Number of visible rows.
    pub fn len(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.buf.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of visible columns.
    pub fn width(&self) -> usize {
        self.schema.len()
    }

    /// True when the view is the identity over its buffer: no selection
    /// vector, no column remap. Dense relations hand out their buffer
    /// as-is via [`Rel::shared_rows`] without copying.
    pub fn is_dense(&self) -> bool {
        self.sel.is_none() && self.cols.is_none()
    }

    /// The shared backing buffer. Rows in it are *buffer-shaped*, not
    /// necessarily `schema`-shaped — use [`Rel::raw_col`] to translate
    /// column positions. Exposed so storage sharing is observable
    /// (`Arc::ptr_eq`) and so the engine can evaluate remapped expressions
    /// against buffer rows directly.
    pub fn buffer(&self) -> &Arc<RowBuf> {
        &self.buf
    }

    /// The typed chunk for **buffer** column `raw` (see [`Rel::raw_col`]),
    /// built lazily and cached on the shared buffer. The chunk covers the
    /// whole buffer — gather through [`Rel::raw_row`] to read this view's
    /// cells.
    pub fn typed_col(&self, raw: usize) -> Arc<ColVec> {
        self.buf.typed_col(raw)
    }

    /// The already-cached chunk for **buffer** column `raw`, if any — see
    /// [`RowBuf::cached_col`].
    pub fn cached_col(&self, raw: usize) -> Option<Arc<ColVec>> {
        self.buf.cached_col(raw)
    }

    /// Seed the buffer's chunk cache for **buffer** column `raw` — see
    /// [`RowBuf::seed_chunk`].
    pub fn seed_chunk(&self, raw: usize, chunk: Arc<ColVec>) {
        self.buf.seed_chunk(raw, chunk);
    }

    /// The selection vector, if any (visible row → buffer row).
    pub fn sel_map(&self) -> Option<&[u32]> {
        self.sel.as_deref().map(|v| v.as_slice())
    }

    /// The column remap, if any (visible column → buffer column).
    pub fn col_map(&self) -> Option<&[u32]> {
        self.cols.as_deref().map(|v| v.as_slice())
    }

    /// Buffer index of visible row `i`.
    #[inline]
    pub fn raw_row(&self, i: usize) -> usize {
        match &self.sel {
            Some(s) => s[i] as usize,
            None => i,
        }
    }

    /// Buffer column of visible column `c`.
    #[inline]
    pub fn raw_col(&self, c: usize) -> usize {
        match &self.cols {
            Some(m) => m[c] as usize,
            None => c,
        }
    }

    /// The cell at visible row `i`, visible column `c`.
    #[inline]
    pub fn cell(&self, i: usize, c: usize) -> &Value {
        &self.buf[self.raw_row(i)][self.raw_col(c)]
    }

    /// Borrow visible row `i` as a contiguous `Row`, when the view has no
    /// column remap (buffer rows are then schema-shaped).
    #[inline]
    pub fn row_ref(&self, i: usize) -> Option<&Row> {
        match &self.cols {
            Some(_) => None,
            None => Some(&self.buf[self.raw_row(i)]),
        }
    }

    /// Materialise visible row `i` as an owned `Row`.
    pub fn owned_row(&self, i: usize) -> Row {
        self.owned_row_with(i, 0)
    }

    /// Materialise visible row `i`, reserving `extra` additional capacity
    /// (for operators that append columns to it).
    pub fn owned_row_with(&self, i: usize, extra: usize) -> Row {
        let raw = &self.buf[self.raw_row(i)];
        match &self.cols {
            None => {
                let mut r = Vec::with_capacity(raw.len() + extra);
                r.extend_from_slice(raw);
                r
            }
            Some(map) => {
                let mut r = Vec::with_capacity(map.len() + extra);
                r.extend(map.iter().map(|&c| raw[c as usize].clone()));
                r
            }
        }
    }

    /// Append the visible cells of row `i` onto `out` (join builders).
    pub fn extend_row(&self, i: usize, out: &mut Row) {
        let raw = &self.buf[self.raw_row(i)];
        match &self.cols {
            None => out.extend_from_slice(raw),
            Some(map) => out.extend(map.iter().map(|&c| raw[c as usize].clone())),
        }
    }

    /// The visible rows. Borrowed (zero-copy) for dense relations,
    /// materialised on the fly for views. For one-shot consumption of a
    /// possibly-view relation prefer per-row accessors; for repeated
    /// access, bind the result to a local first.
    pub fn rows(&self) -> Cow<'_, [Row]> {
        if self.is_dense() {
            Cow::Borrowed(self.buf.rows())
        } else {
            Cow::Owned((0..self.len()).map(|i| self.owned_row(i)).collect())
        }
    }

    /// The visible rows as a shareable buffer: the backing `Arc` itself
    /// for dense relations (no copy), a fresh buffer for views.
    pub fn shared_rows(&self) -> Arc<RowBuf> {
        if self.is_dense() {
            self.buf.clone()
        } else {
            Arc::new(RowBuf::new(
                (0..self.len()).map(|i| self.owned_row(i)).collect(),
            ))
        }
    }

    /// A dense equivalent of this relation (identity view over a buffer
    /// holding exactly the visible rows). Cheap for already-dense inputs.
    pub fn to_dense(&self) -> Rel {
        Rel {
            schema: self.schema.clone(),
            buf: self.shared_rows(),
            sel: None,
            cols: None,
        }
    }

    /// Same rows, different column names (arity and order preserved) —
    /// lets `UnionAll` pass an empty side through without copying.
    pub fn with_schema(&self, schema: Schema) -> Rel {
        debug_assert_eq!(schema.len(), self.schema.len());
        Rel {
            schema,
            buf: self.buf.clone(),
            sel: self.sel.clone(),
            cols: self.cols.clone(),
        }
    }

    /// A row-subset view: `raw` holds **buffer** row indices (obtain them
    /// via [`Rel::raw_row`]), visible in the given order. Keeps this
    /// view's column remap, shares the buffer.
    pub fn with_sel(&self, raw: Vec<u32>) -> Rel {
        debug_assert!(raw.iter().all(|&r| (r as usize) < self.buf.len()));
        Rel {
            schema: self.schema.clone(),
            buf: self.buf.clone(),
            sel: Some(Arc::new(raw)),
            cols: self.cols.clone(),
        }
    }

    /// A column-remap view: `raw` holds **buffer** column indices (obtain
    /// them via [`Rel::raw_col`]), one per column of `schema`. Keeps this
    /// view's selection vector, shares the buffer.
    pub fn with_cols(&self, schema: Schema, raw: Vec<u32>) -> Rel {
        debug_assert_eq!(schema.len(), raw.len());
        Rel {
            schema,
            buf: self.buf.clone(),
            sel: self.sel.clone(),
            cols: Some(Arc::new(raw)),
        }
    }

    /// Column index by name. Plans are schema-validated before execution,
    /// so engine-internal callers expect `Ok` — but ad-hoc callers (tests,
    /// result consumers) get a typed error instead of a panic.
    pub fn col_index(&self, name: &str) -> Result<usize, NoSuchColumn> {
        self.schema.index_of(name).ok_or_else(|| NoSuchColumn {
            col: name.to_string(),
            schema: self.schema.to_string(),
        })
    }

    /// Iterate over the values of one column.
    pub fn column<'a>(
        &'a self,
        name: &str,
    ) -> Result<impl Iterator<Item = &'a Value> + 'a, NoSuchColumn> {
        let idx = self.col_index(name)?;
        Ok((0..self.len()).map(move |i| self.cell(i, idx)))
    }

    /// Sort rows by the given column indices ascending (stable). Used by
    /// tests and by `Serialize`. Materialises views.
    pub fn sort_by_cols(&mut self, idxs: &[usize]) {
        let mut rows = match Arc::try_unwrap(self.shared_rows()) {
            Ok(buf) => buf.into_rows(),
            Err(shared) => shared.rows().to_vec(),
        };
        rows.sort_by(|a, b| {
            for &i in idxs {
                match a[i].cmp(&b[i]) {
                    std::cmp::Ordering::Equal => continue,
                    o => return o,
                }
            }
            std::cmp::Ordering::Equal
        });
        *self = Rel::new(self.schema.clone(), rows);
    }

    /// Multiset equality: equal schema and equal rows up to order. Handy in
    /// tests for operators that do not promise physical order.
    pub fn same_bag(&self, other: &Rel) -> bool {
        if self.schema != other.schema || self.len() != other.len() {
            return false;
        }
        let mut a = self.rows().into_owned();
        let mut b = other.rows().into_owned();
        a.sort();
        b.sort();
        a == b
    }
}

impl PartialEq for Rel {
    fn eq(&self, other: &Rel) -> bool {
        if self.schema != other.schema || self.len() != other.len() {
            return false;
        }
        if self.is_dense() && other.is_dense() && Arc::ptr_eq(&self.buf, &other.buf) {
            return true;
        }
        let w = self.width();
        (0..self.len()).all(|i| (0..w).all(|c| self.cell(i, c) == other.cell(i, c)))
    }
}

impl fmt::Display for Rel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for i in 0..self.len() {
            let cells: Vec<String> = (0..self.width())
                .map(|c| self.cell(i, c).to_string())
                .collect();
            writeln!(f, "  [{}]", cells.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Ty;

    fn sample() -> Rel {
        Rel::new(
            Schema::of(&[("pos", Ty::Nat), ("item", Ty::Int)]),
            vec![
                vec![Value::Nat(2), Value::Int(20)],
                vec![Value::Nat(1), Value::Int(10)],
            ],
        )
    }

    #[test]
    fn column_iteration() {
        let r = sample();
        let items: Vec<i64> = r
            .column("item")
            .unwrap()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(items, vec![20, 10]);
        let err = r.column("nope").err().unwrap();
        assert_eq!(err.col, "nope");
        assert!(err.to_string().contains("no such column nope"));
    }

    #[test]
    fn sort_by_cols_orders_rows() {
        let mut r = sample();
        r.sort_by_cols(&[0]);
        let pos: Vec<u64> = r
            .column("pos")
            .unwrap()
            .map(|v| v.as_nat().unwrap())
            .collect();
        assert_eq!(pos, vec![1, 2]);
    }

    #[test]
    fn same_bag_ignores_order() {
        let a = sample();
        let b = a.with_sel(vec![1, 0]); // reversed view of the same buffer
        assert!(a.same_bag(&b));
        assert_ne!(a, b);
        let c = a.with_sel(vec![1]);
        assert!(!a.same_bag(&c));
    }

    #[test]
    fn empty_rel() {
        let r = Rel::empty(Schema::of(&[("x", Ty::Int)]));
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn shared_buffer_is_not_copied() {
        let r = sample();
        let shared = Rel::from_shared(r.schema.clone(), r.buffer().clone());
        assert!(Arc::ptr_eq(r.buffer(), shared.buffer()));
        assert_eq!(r, shared);
        // views still share the buffer
        let v = shared.with_sel(vec![0]);
        assert!(Arc::ptr_eq(r.buffer(), v.buffer()));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn selection_vector_view() {
        let r = sample();
        let v = r.with_sel(vec![1]);
        assert_eq!(v.len(), 1);
        assert_eq!(v.cell(0, 1), &Value::Int(10));
        assert_eq!(v.rows().as_ref(), &[vec![Value::Nat(1), Value::Int(10)]]);
        assert!(!v.is_dense());
        assert_eq!(v.row_ref(0), Some(&vec![Value::Nat(1), Value::Int(10)]));
    }

    #[test]
    fn column_remap_view() {
        let r = sample();
        let v = r.with_cols(Schema::of(&[("item", Ty::Int)]), vec![1]);
        assert_eq!(v.width(), 1);
        assert_eq!(v.cell(0, 0), &Value::Int(20));
        assert_eq!(v.row_ref(0), None);
        assert_eq!(v.owned_row(0), vec![Value::Int(20)]);
        // composing a selection on top keeps the remap
        let vs = v.with_sel(vec![1]);
        assert_eq!(vs.rows().as_ref(), &[vec![Value::Int(10)]]);
        assert_eq!(vs.to_dense().rows().as_ref(), &[vec![Value::Int(10)]]);
    }

    #[test]
    fn equality_is_content_based() {
        let r = sample();
        let d = r.with_sel(vec![0, 1]).to_dense();
        assert!(!Arc::ptr_eq(r.buffer(), d.buffer()));
        assert_eq!(r, d);
        let reordered = r.with_sel(vec![1, 0]);
        assert_ne!(r, reordered);
    }

    #[test]
    fn typed_col_is_cached_and_shared_by_views() {
        let r = sample();
        let c1 = r.typed_col(1);
        assert_eq!(c1.as_int().unwrap(), &[20, 10]);
        // same Arc on repeated access, and through views over the buffer
        let v = r.with_sel(vec![1]);
        assert!(Arc::ptr_eq(&c1, &r.typed_col(1)));
        assert!(Arc::ptr_eq(&c1, &v.typed_col(1)));
        // a fresh buffer (to_dense copies) has its own cache
        let d = v.to_dense();
        assert_eq!(d.typed_col(1).as_int().unwrap(), &[10]);
    }

    #[test]
    fn seeded_chunks_are_served_from_the_cache() {
        let r = sample();
        // seeding before first use: typed_col returns the seeded Arc
        let seeded = Arc::new(ColVec::Int(vec![20, 10]));
        r.seed_chunk(1, seeded.clone());
        assert!(Arc::ptr_eq(&seeded, &r.typed_col(1)));
        assert!(Arc::ptr_eq(&seeded, &r.cached_col(1).unwrap()));
        // views over the same buffer see the seed too
        let v = r.with_sel(vec![0]);
        assert!(Arc::ptr_eq(&seeded, &v.typed_col(1)));
        // a wrong-length seed is ignored, and an existing entry wins
        r.seed_chunk(0, Arc::new(ColVec::Int(vec![1])));
        assert!(r.cached_col(0).is_none());
        let built = r.typed_col(0);
        r.seed_chunk(0, Arc::new(ColVec::Nat(vec![9, 9])));
        assert!(Arc::ptr_eq(&built, &r.typed_col(0)));
    }

    #[test]
    fn gather_preserves_variant_and_values() {
        let buf = vec![
            vec![Value::str("b"), Value::Dbl(-0.0)],
            vec![Value::str("a"), Value::Dbl(2.5)],
            vec![Value::str("b"), Value::Dbl(0.0)],
        ];
        let s = ColVec::build(&buf, 0);
        let g = s.gather(&[2, 0]);
        assert!(matches!(g, ColVec::Str { .. }));
        assert_eq!(g.value(0), Value::str("b"));
        assert_eq!(g.value(1), Value::str("b"));
        let d = ColVec::build(&buf, 1).gather(&[0, 2]);
        // -0.0 and 0.0 stay distinct through a gather
        assert_ne!(d.eq_code(0, false), d.eq_code(1, false));
    }

    #[test]
    fn extend_rows_invalidates_chunk_cache() {
        let mut buf = RowBuf::new(vec![vec![Value::Int(1)]]);
        assert_eq!(buf.typed_col(0).as_int().unwrap(), &[1]);
        buf.extend_rows(vec![vec![Value::Int(2)]]);
        assert_eq!(buf.typed_col(0).as_int().unwrap(), &[1, 2]);
    }

    #[test]
    fn with_schema_renames_without_copy() {
        let r = sample();
        let renamed = r.with_schema(Schema::of(&[("p", Ty::Nat), ("i", Ty::Int)]));
        assert!(Arc::ptr_eq(r.buffer(), renamed.buffer()));
        assert_eq!(renamed.col_index("i"), Ok(1));
        assert!(renamed.col_index("item").is_err()); // the old name is gone
        assert_eq!(renamed.cell(1, 1), &Value::Int(10));
        assert!(renamed.is_dense());
    }
}

//! Materialised relations: the tabular values flowing between operators.

use crate::schema::Schema;
use crate::value::Value;
use std::fmt;

/// One table row. Cells are positionally aligned with the owning relation's
/// [`Schema`].
pub type Row = Vec<Value>;

/// A materialised relation: a schema plus a bag of rows.
///
/// The engine is a bulk-at-a-time executor, so operators consume and
/// produce whole `Rel`s. Row order *is* observable — the Ferry encoding of
/// list order relies on `pos` columns, and the final `Serialize` operator
/// sorts — but no operator other than `Serialize` promises a particular
/// physical order.
#[derive(Debug, Clone, PartialEq)]
pub struct Rel {
    pub schema: Schema,
    pub rows: Vec<Row>,
}

impl Rel {
    pub fn new(schema: Schema, rows: Vec<Row>) -> Rel {
        debug_assert!(
            rows.iter().all(|r| r.len() == schema.len()),
            "row width does not match schema {schema}"
        );
        Rel { schema, rows }
    }

    pub fn empty(schema: Schema) -> Rel {
        Rel {
            schema,
            rows: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column accessor by name; panics if the column does not exist (plans
    /// are schema-validated before execution).
    pub fn col_index(&self, name: &str) -> usize {
        self.schema
            .index_of(name)
            .unwrap_or_else(|| panic!("column {name} not in schema {}", self.schema))
    }

    /// Iterate over the values of one column.
    pub fn column<'a>(&'a self, name: &str) -> impl Iterator<Item = &'a Value> + 'a {
        let idx = self.col_index(name);
        self.rows.iter().map(move |r| &r[idx])
    }

    /// Sort rows by the given column indices ascending (stable). Used by
    /// tests and by `Serialize`.
    pub fn sort_by_cols(&mut self, idxs: &[usize]) {
        self.rows.sort_by(|a, b| {
            for &i in idxs {
                match a[i].cmp(&b[i]) {
                    std::cmp::Ordering::Equal => continue,
                    o => return o,
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    /// Multiset equality: equal schema and equal rows up to order. Handy in
    /// tests for operators that do not promise physical order.
    pub fn same_bag(&self, other: &Rel) -> bool {
        if self.schema != other.schema || self.rows.len() != other.rows.len() {
            return false;
        }
        let mut a = self.rows.clone();
        let mut b = other.rows.clone();
        a.sort();
        b.sort();
        a == b
    }
}

impl fmt::Display for Rel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "  [{}]", cells.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Ty;

    fn sample() -> Rel {
        Rel::new(
            Schema::of(&[("pos", Ty::Nat), ("item", Ty::Int)]),
            vec![
                vec![Value::Nat(2), Value::Int(20)],
                vec![Value::Nat(1), Value::Int(10)],
            ],
        )
    }

    #[test]
    fn column_iteration() {
        let r = sample();
        let items: Vec<i64> = r.column("item").map(|v| v.as_int().unwrap()).collect();
        assert_eq!(items, vec![20, 10]);
    }

    #[test]
    fn sort_by_cols_orders_rows() {
        let mut r = sample();
        r.sort_by_cols(&[0]);
        let pos: Vec<u64> = r.column("pos").map(|v| v.as_nat().unwrap()).collect();
        assert_eq!(pos, vec![1, 2]);
    }

    #[test]
    fn same_bag_ignores_order() {
        let a = sample();
        let mut b = sample();
        b.rows.reverse();
        assert!(a.same_bag(&b));
        b.rows.pop();
        assert!(!a.same_bag(&b));
    }

    #[test]
    fn empty_rel() {
        let r = Rel::empty(Schema::of(&[("x", Ty::Int)]));
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }
}

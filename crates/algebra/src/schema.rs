//! Relation schemas: ordered lists of named, typed columns.

use crate::value::Ty;
use std::fmt;
use std::sync::Arc;

/// A column name. Cheap to clone; compiler-generated names are interned via
/// `Arc<str>` so schema plumbing does not allocate per operator.
pub type ColName = Arc<str>;

/// An ordered list of named, typed columns. Column names within one schema
/// are unique (enforced by [`Schema::new`] in debug builds and by plan
/// validation in all builds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    cols: Vec<(ColName, Ty)>,
}

impl Schema {
    pub fn new(cols: Vec<(ColName, Ty)>) -> Schema {
        debug_assert!(
            {
                let mut names: Vec<&str> = cols.iter().map(|(n, _)| n.as_ref()).collect();
                names.sort_unstable();
                names.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate column names in schema: {cols:?}"
        );
        Schema { cols }
    }

    pub fn empty() -> Schema {
        Schema { cols: Vec::new() }
    }

    /// Convenience constructor from `(&str, Ty)` pairs.
    pub fn of(cols: &[(&str, Ty)]) -> Schema {
        Schema::new(cols.iter().map(|(n, t)| (Arc::from(*n), *t)).collect())
    }

    pub fn len(&self) -> usize {
        self.cols.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    pub fn cols(&self) -> &[(ColName, Ty)] {
        &self.cols
    }

    pub fn names(&self) -> impl Iterator<Item = &ColName> {
        self.cols.iter().map(|(n, _)| n)
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.cols.iter().position(|(n, _)| n.as_ref() == name)
    }

    /// Type of the column with the given name.
    pub fn ty_of(&self, name: &str) -> Option<Ty> {
        self.cols
            .iter()
            .find(|(n, _)| n.as_ref() == name)
            .map(|(_, t)| *t)
    }

    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    /// Schemas are union-compatible when their column types match
    /// positionally (names may differ; the left operand's names win, as in
    /// SQL `UNION ALL`).
    pub fn union_compatible(&self, other: &Schema) -> bool {
        self.len() == other.len()
            && self
                .cols
                .iter()
                .zip(other.cols.iter())
                .all(|((_, a), (_, b))| a == b)
    }

    /// True when `other` shares no column name with `self` (join
    /// precondition).
    pub fn disjoint(&self, other: &Schema) -> bool {
        self.cols.iter().all(|(n, _)| !other.contains(n))
    }

    /// Concatenation of two schemas (cross/equi join output).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut cols = self.cols.clone();
        cols.extend(other.cols.iter().cloned());
        Schema::new(cols)
    }

    pub fn push(&mut self, name: ColName, ty: Ty) {
        debug_assert!(!self.contains(&name), "duplicate column {name}");
        self.cols.push((name, ty));
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, (n, t)) in self.cols.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}:{t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_type_lookup() {
        let s = Schema::of(&[("iter", Ty::Nat), ("pos", Ty::Nat), ("item1", Ty::Str)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("pos"), Some(1));
        assert_eq!(s.ty_of("item1"), Some(Ty::Str));
        assert_eq!(s.index_of("nope"), None);
        assert!(s.contains("iter"));
    }

    #[test]
    fn union_compatibility_is_positional_on_types() {
        let a = Schema::of(&[("x", Ty::Int), ("y", Ty::Str)]);
        let b = Schema::of(&[("p", Ty::Int), ("q", Ty::Str)]);
        let c = Schema::of(&[("p", Ty::Str), ("q", Ty::Int)]);
        assert!(a.union_compatible(&b));
        assert!(!a.union_compatible(&c));
        assert!(!a.union_compatible(&Schema::of(&[("x", Ty::Int)])));
    }

    #[test]
    fn disjoint_and_concat() {
        let a = Schema::of(&[("x", Ty::Int)]);
        let b = Schema::of(&[("y", Ty::Str)]);
        let c = Schema::of(&[("x", Ty::Str)]);
        assert!(a.disjoint(&b));
        assert!(!a.disjoint(&c));
        let ab = a.concat(&b);
        assert_eq!(ab.len(), 2);
        assert_eq!(ab.index_of("y"), Some(1));
    }

    #[test]
    fn display() {
        let s = Schema::of(&[("pos", Ty::Nat), ("item1", Ty::Int)]);
        assert_eq!(s.to_string(), "(pos:nat, item1:int)");
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn duplicate_names_rejected() {
        let _ = Schema::of(&[("x", Ty::Int), ("x", Ty::Str)]);
    }
}

//! Row-level scalar expressions and aggregation functions.
//!
//! Scalar expressions appear in `Compute` (derive a new column), `Select`
//! (filter predicate) and `ThetaJoin` nodes. They are deliberately small —
//! exactly the operations the Ferry front-end can produce — and are
//! evaluated per row by the engine (and translated 1:1 to SQL expressions
//! by the code generator).

use crate::schema::{ColName, Schema};
use crate::value::{Ty, Value};
use std::fmt;
use std::sync::Arc;

/// Binary scalar operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    /// String concatenation (SQL `||`).
    Concat,
}

impl BinOp {
    /// Is this a comparison (result type `Bool`, argument types equal)?
    pub fn is_cmp(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    pub fn is_arith(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
        )
    }

    pub fn is_logic(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// SQL spelling of the operator.
    pub fn sql(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Concat => "||",
        }
    }
}

/// Unary scalar operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Not,
    Neg,
}

/// A row-level scalar expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A column reference.
    Col(ColName),
    /// A constant.
    Const(Value),
    Bin(BinOp, Arc<Expr>, Arc<Expr>),
    Un(UnOp, Arc<Expr>),
    /// `CASE WHEN cond THEN then ELSE els END`.
    Case(Arc<Expr>, Arc<Expr>, Arc<Expr>),
    /// Type cast between numeric domains (`Int` ⇄ `Dbl` ⇄ `Nat`).
    Cast(Ty, Arc<Expr>),
}

impl Expr {
    pub fn col(name: impl Into<ColName>) -> Expr {
        Expr::Col(name.into())
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Const(v.into())
    }

    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Bin(op, Arc::new(l), Arc::new(r))
    }

    pub fn eq(l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::Eq, l, r)
    }

    pub fn and(l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::And, l, r)
    }

    // an associated constructor, not a `Not` impl on `Expr` values
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Expr) -> Expr {
        Expr::Un(UnOp::Not, Arc::new(e))
    }

    pub fn case(c: Expr, t: Expr, e: Expr) -> Expr {
        Expr::Case(Arc::new(c), Arc::new(t), Arc::new(e))
    }

    pub fn cast(ty: Ty, e: Expr) -> Expr {
        Expr::Cast(ty, Arc::new(e))
    }

    /// All column names referenced by this expression.
    pub fn columns(&self, out: &mut Vec<ColName>) {
        match self {
            Expr::Col(c) => {
                if !out.iter().any(|o| o == c) {
                    out.push(c.clone());
                }
            }
            Expr::Const(_) => {}
            Expr::Bin(_, l, r) => {
                l.columns(out);
                r.columns(out);
            }
            Expr::Un(_, e) => e.columns(out),
            Expr::Case(c, t, e) => {
                c.columns(out);
                t.columns(out);
                e.columns(out);
            }
            Expr::Cast(_, e) => e.columns(out),
        }
    }

    /// Infer the result type against a schema; `None` if ill-typed.
    pub fn infer_ty(&self, schema: &Schema) -> Option<Ty> {
        match self {
            Expr::Col(c) => schema.ty_of(c),
            Expr::Const(v) => Some(v.ty()),
            Expr::Bin(op, l, r) => {
                let lt = l.infer_ty(schema)?;
                let rt = r.infer_ty(schema)?;
                if op.is_cmp() {
                    (lt == rt).then_some(Ty::Bool)
                } else if op.is_logic() {
                    (lt == Ty::Bool && rt == Ty::Bool).then_some(Ty::Bool)
                } else if *op == BinOp::Concat {
                    (lt == Ty::Str && rt == Ty::Str).then_some(Ty::Str)
                } else {
                    // arithmetic: both numeric and equal
                    (lt == rt && matches!(lt, Ty::Int | Ty::Dbl | Ty::Nat)).then_some(lt)
                }
            }
            Expr::Un(UnOp::Not, e) => (e.infer_ty(schema)? == Ty::Bool).then_some(Ty::Bool),
            Expr::Un(UnOp::Neg, e) => {
                let t = e.infer_ty(schema)?;
                matches!(t, Ty::Int | Ty::Dbl).then_some(t)
            }
            Expr::Case(c, t, e) => {
                let ct = c.infer_ty(schema)?;
                let tt = t.infer_ty(schema)?;
                let et = e.infer_ty(schema)?;
                (ct == Ty::Bool && tt == et).then_some(tt)
            }
            Expr::Cast(ty, e) => {
                let et = e.infer_ty(schema)?;
                let ok = matches!(et, Ty::Int | Ty::Dbl | Ty::Nat | Ty::Bool)
                    && matches!(ty, Ty::Int | Ty::Dbl | Ty::Nat);
                ok.then_some(*ty)
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(c) => write!(f, "{c}"),
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Bin(op, l, r) => write!(f, "({l} {} {r})", op.sql()),
            Expr::Un(UnOp::Not, e) => write!(f, "NOT ({e})"),
            Expr::Un(UnOp::Neg, e) => write!(f, "-({e})"),
            Expr::Case(c, t, e) => write!(f, "CASE WHEN {c} THEN {t} ELSE {e} END"),
            Expr::Cast(ty, e) => write!(f, "CAST({e} AS {ty})"),
        }
    }
}

/// Aggregation functions used by `GroupBy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFun {
    /// `COUNT(*)` — argument ignored.
    CountAll,
    Sum,
    Min,
    Max,
    Avg,
    /// Boolean conjunction of a `Bool` column (SQL `BOOL_AND` / `MIN`).
    All,
    /// Boolean disjunction of a `Bool` column (SQL `BOOL_OR` / `MAX`).
    Any,
}

impl AggFun {
    /// Result type of the aggregate given the input column type.
    pub fn result_ty(self, input: Option<Ty>) -> Option<Ty> {
        match self {
            AggFun::CountAll => Some(Ty::Int),
            AggFun::Sum => input.filter(|t| matches!(t, Ty::Int | Ty::Dbl | Ty::Nat)),
            AggFun::Min | AggFun::Max => input,
            AggFun::Avg => input
                .filter(|t| matches!(t, Ty::Int | Ty::Dbl))
                .map(|_| Ty::Dbl),
            AggFun::All | AggFun::Any => input.filter(|t| *t == Ty::Bool),
        }
    }

    pub fn sql(self) -> &'static str {
        match self {
            AggFun::CountAll => "COUNT",
            AggFun::Sum => "SUM",
            AggFun::Min => "MIN",
            AggFun::Max => "MAX",
            AggFun::Avg => "AVG",
            AggFun::All => "BOOL_AND",
            AggFun::Any => "BOOL_OR",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::of(&[
            ("a", Ty::Int),
            ("b", Ty::Int),
            ("s", Ty::Str),
            ("p", Ty::Bool),
        ])
    }

    #[test]
    fn infer_arith_and_cmp() {
        let s = schema();
        let e = Expr::bin(BinOp::Add, Expr::col("a"), Expr::col("b"));
        assert_eq!(e.infer_ty(&s), Some(Ty::Int));
        let c = Expr::bin(BinOp::Lt, Expr::col("a"), Expr::col("b"));
        assert_eq!(c.infer_ty(&s), Some(Ty::Bool));
        let bad = Expr::bin(BinOp::Add, Expr::col("a"), Expr::col("s"));
        assert_eq!(bad.infer_ty(&s), None);
    }

    #[test]
    fn infer_logic_concat_case_cast() {
        let s = schema();
        let l = Expr::and(Expr::col("p"), Expr::lit(true));
        assert_eq!(l.infer_ty(&s), Some(Ty::Bool));
        let cc = Expr::bin(BinOp::Concat, Expr::col("s"), Expr::lit("x"));
        assert_eq!(cc.infer_ty(&s), Some(Ty::Str));
        let cs = Expr::case(Expr::col("p"), Expr::col("a"), Expr::col("b"));
        assert_eq!(cs.infer_ty(&s), Some(Ty::Int));
        let ct = Expr::cast(Ty::Dbl, Expr::col("a"));
        assert_eq!(ct.infer_ty(&s), Some(Ty::Dbl));
        let bad_case = Expr::case(Expr::col("a"), Expr::col("a"), Expr::col("b"));
        assert_eq!(bad_case.infer_ty(&s), None);
    }

    #[test]
    fn columns_are_deduplicated() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::col("a"),
            Expr::bin(BinOp::Mul, Expr::col("a"), Expr::col("b")),
        );
        let mut cols = Vec::new();
        e.columns(&mut cols);
        let names: Vec<&str> = cols.iter().map(|c| c.as_ref()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn agg_result_types() {
        assert_eq!(AggFun::CountAll.result_ty(None), Some(Ty::Int));
        assert_eq!(AggFun::Sum.result_ty(Some(Ty::Int)), Some(Ty::Int));
        assert_eq!(AggFun::Sum.result_ty(Some(Ty::Str)), None);
        assert_eq!(AggFun::Avg.result_ty(Some(Ty::Int)), Some(Ty::Dbl));
        assert_eq!(AggFun::Min.result_ty(Some(Ty::Str)), Some(Ty::Str));
        assert_eq!(AggFun::All.result_ty(Some(Ty::Bool)), Some(Ty::Bool));
        assert_eq!(AggFun::Any.result_ty(Some(Ty::Int)), None);
    }

    #[test]
    fn display_round_trips_structure() {
        let e = Expr::case(
            Expr::eq(Expr::col("a"), Expr::lit(1i64)),
            Expr::lit("yes"),
            Expr::lit("no"),
        );
        assert_eq!(e.to_string(), "CASE WHEN (a = 1) THEN 'yes' ELSE 'no' END");
    }
}

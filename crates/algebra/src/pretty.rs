//! Plan pretty-printing: an indented tree rendering (shared subtrees are
//! printed once and referenced by id) and Graphviz dot output.

use crate::plan::{Dir, Node, NodeId, Plan};
use std::collections::HashMap;
use std::fmt::Write;

fn dir(d: Dir) -> &'static str {
    match d {
        Dir::Asc => "asc",
        Dir::Desc => "desc",
    }
}

/// Operator details beyond the mnemonic label.
pub fn node_detail(node: &Node) -> String {
    match node {
        Node::TableRef { name, cols, keys } => {
            let cs: Vec<String> = cols.iter().map(|(n, t)| format!("{n}:{t}")).collect();
            let ks: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
            format!("{name} ({}) key [{}]", cs.join(", "), ks.join(", "))
        }
        Node::Lit { schema, rows } => format!("{schema} × {} rows", rows.len()),
        Node::Attach { col, value, .. } => format!("{col} := {value}"),
        Node::Project { cols, .. } => {
            let cs: Vec<String> = cols
                .iter()
                .map(|(new, old)| {
                    if new == old {
                        new.to_string()
                    } else {
                        format!("{new}:{old}")
                    }
                })
                .collect();
            cs.join(", ")
        }
        Node::Compute { col, expr, .. } => format!("{col} := {expr}"),
        Node::Select { pred, .. } => pred.to_string(),
        Node::Distinct { .. } => String::new(),
        Node::UnionAll { .. } | Node::Difference { .. } | Node::CrossJoin { .. } => String::new(),
        Node::EquiJoin { on, .. } | Node::SemiJoin { on, .. } | Node::AntiJoin { on, .. } => {
            let eqs: Vec<String> = on
                .left
                .iter()
                .zip(on.right.iter())
                .map(|(l, r)| format!("{l}={r}"))
                .collect();
            eqs.join(" and ")
        }
        Node::ThetaJoin { pred, .. } => pred.to_string(),
        Node::RowNum {
            col, part, order, ..
        }
        | Node::DenseRank {
            col, part, order, ..
        } => {
            let ps: Vec<String> = part.iter().map(|p| p.to_string()).collect();
            let os: Vec<String> = order
                .iter()
                .map(|(c, d)| format!("{c} {}", dir(*d)))
                .collect();
            format!("{col} part [{}] order [{}]", ps.join(", "), os.join(", "))
        }
        Node::RowRank { col, order, .. } => {
            let os: Vec<String> = order
                .iter()
                .map(|(c, d)| format!("{c} {}", dir(*d)))
                .collect();
            format!("{col} order [{}]", os.join(", "))
        }
        Node::GroupBy { keys, aggs, .. } => {
            let ks: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
            let as_: Vec<String> = aggs
                .iter()
                .map(|a| {
                    format!(
                        "{}:{}({})",
                        a.output,
                        a.fun.sql(),
                        a.input.as_deref().unwrap_or("*")
                    )
                })
                .collect();
            format!("keys [{}] aggs [{}]", ks.join(", "), as_.join(", "))
        }
        Node::Serialize { order, cols, .. } => {
            let os: Vec<String> = order
                .iter()
                .map(|(c, d)| format!("{c} {}", dir(*d)))
                .collect();
            let cs: Vec<String> = cols.iter().map(|c| c.to_string()).collect();
            format!("order [{}] cols [{}]", os.join(", "), cs.join(", "))
        }
    }
}

/// Render the plan rooted at `root` as an indented tree. Shared nodes are
/// expanded the first time they are met and referenced as `^id` afterwards.
pub fn render(plan: &Plan, root: NodeId) -> String {
    // count references to detect sharing
    let mut refs: HashMap<NodeId, usize> = HashMap::new();
    for id in plan.reachable(root) {
        for c in plan.node(id).children() {
            *refs.entry(c).or_insert(0) += 1;
        }
    }
    let mut out = String::new();
    let mut printed: HashMap<NodeId, ()> = HashMap::new();
    fn go(
        plan: &Plan,
        id: NodeId,
        depth: usize,
        refs: &HashMap<NodeId, usize>,
        printed: &mut HashMap<NodeId, ()>,
        out: &mut String,
    ) {
        let pad = "  ".repeat(depth);
        let node = plan.node(id);
        let shared = refs.get(&id).copied().unwrap_or(0) > 1;
        if shared && printed.contains_key(&id) {
            let _ = writeln!(out, "{pad}^{}", id.0);
            return;
        }
        let detail = node_detail(node);
        let tag = if shared {
            format!(" #{}", id.0)
        } else {
            String::new()
        };
        if detail.is_empty() {
            let _ = writeln!(out, "{pad}{}{tag}", node.label());
        } else {
            let _ = writeln!(out, "{pad}{} {detail}{tag}", node.label());
        }
        printed.insert(id, ());
        for c in node.children() {
            go(plan, c, depth + 1, refs, printed, out);
        }
    }
    go(plan, root, 0, &refs, &mut printed, &mut out);
    out
}

/// Graphviz dot rendering of the DAG reachable from `root`.
pub fn dot(plan: &Plan, root: NodeId) -> String {
    let mut out = String::from("digraph plan {\n  node [shape=box, fontname=monospace];\n");
    for id in plan.reachable(root) {
        let node = plan.node(id);
        let detail = node_detail(node).replace('"', "'");
        let _ = writeln!(
            out,
            "  n{} [label=\"{} {}\\n{}\"];",
            id.0,
            id.0,
            node.label(),
            detail
        );
        for c in node.children() {
            let _ = writeln!(out, "  n{} -> n{};", id.0, c.0);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::{Ty, Value};

    #[test]
    fn render_marks_shared_nodes() {
        let mut p = Plan::new();
        let a = p.lit(Schema::of(&[("x", Ty::Int)]), vec![]);
        let b = p.attach(a, "y", Value::Int(1));
        let c = p.lit(Schema::of(&[("z", Ty::Int)]), vec![]);
        let d = p.cross(b, c);
        let e = p.union_all(d, d);
        let txt = render(&p, e);
        assert!(txt.contains("union_all"));
        assert!(txt.contains(&format!("#{}", d.0)), "{txt}");
        assert!(txt.contains(&format!("^{}", d.0)), "{txt}");
    }

    #[test]
    fn dot_contains_all_edges() {
        let mut p = Plan::new();
        let a = p.lit(Schema::of(&[("x", Ty::Int)]), vec![]);
        let b = p.distinct(a);
        let g = dot(&p, b);
        assert!(g.contains(&format!("n{} -> n{};", b.0, a.0)));
        assert!(g.starts_with("digraph"));
    }
}

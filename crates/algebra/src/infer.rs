//! Schema inference and plan validation.
//!
//! Every plan is validated before execution or code generation: the schema
//! of each node is inferred bottom-up, and operator preconditions (column
//! existence, join-name disjointness, union compatibility, expression
//! well-typedness) are checked. A plan that passes [`validate`] cannot fail
//! schema-wise inside the engine.

use crate::expr::AggFun;
use crate::plan::{Node, NodeId, Plan};
use crate::schema::Schema;
use crate::value::Ty;
use std::fmt;

/// A schema-level plan error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferError {
    pub node: NodeId,
    pub message: String,
}

impl fmt::Display for InferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node {}: {}", self.node.0, self.message)
    }
}

impl std::error::Error for InferError {}

fn err<T>(node: NodeId, message: impl Into<String>) -> Result<T, InferError> {
    Err(InferError {
        node,
        message: message.into(),
    })
}

/// Infer the output schemas of all nodes of `plan` (indexable by
/// `NodeId::index`). Fails with the first precondition violation.
pub fn infer_schema(plan: &Plan) -> Result<Vec<Schema>, InferError> {
    let mut out: Vec<Schema> = Vec::with_capacity(plan.len());
    for (i, node) in plan.nodes().iter().enumerate() {
        let id = NodeId(i as u32);
        let schema = infer_node(plan, id, node, &out)?;
        out.push(schema);
    }
    Ok(out)
}

/// Validate a plan rooted at `root`; returns the root schema.
pub fn validate(plan: &Plan, root: NodeId) -> Result<Schema, InferError> {
    let schemas = infer_schema(plan)?;
    Ok(schemas[root.index()].clone())
}

fn infer_node(
    _plan: &Plan,
    id: NodeId,
    node: &Node,
    done: &[Schema],
) -> Result<Schema, InferError> {
    let input = |n: NodeId| -> &Schema { &done[n.index()] };
    match node {
        Node::TableRef { cols, keys, name } => {
            let schema = Schema::new(cols.clone());
            for k in keys {
                if !schema.contains(k) {
                    return err(id, format!("key column {k} not in table {name}"));
                }
            }
            if cols.is_empty() {
                return err(id, format!("table {name} has no columns"));
            }
            Ok(schema)
        }
        Node::Lit { schema, rows } => {
            for row in rows.iter() {
                if row.len() != schema.len() {
                    return err(id, "literal row width mismatch");
                }
                for (v, (n, t)) in row.iter().zip(schema.cols()) {
                    if v.ty() != *t {
                        return err(id, format!("literal column {n}: {} is not {t}", v.ty()));
                    }
                }
            }
            Ok(schema.clone())
        }
        Node::Attach {
            input: i,
            col,
            value,
        } => {
            let s = input(*i);
            if s.contains(col) {
                return err(id, format!("attach: column {col} already present"));
            }
            let mut s = s.clone();
            s.push(col.clone(), value.ty());
            Ok(s)
        }
        Node::Project { input: i, cols } => {
            let s = input(*i);
            let mut out = Vec::with_capacity(cols.len());
            for (new, old) in cols {
                match s.ty_of(old) {
                    Some(t) => out.push((new.clone(), t)),
                    None => return err(id, format!("project: no column {old} in {s}")),
                }
            }
            let mut names: Vec<&str> = out.iter().map(|(n, _)| n.as_ref()).collect();
            names.sort_unstable();
            if names.windows(2).any(|w| w[0] == w[1]) {
                return err(id, "project: duplicate output column names");
            }
            Ok(Schema::new(out))
        }
        Node::Compute {
            input: i,
            col,
            expr,
        } => {
            let s = input(*i);
            if s.contains(col) {
                return err(id, format!("compute: column {col} already present"));
            }
            match expr.infer_ty(s) {
                Some(t) => {
                    let mut s = s.clone();
                    s.push(col.clone(), t);
                    Ok(s)
                }
                None => err(id, format!("compute: ill-typed expression {expr} over {s}")),
            }
        }
        Node::Select { input: i, pred } => {
            let s = input(*i);
            match pred.infer_ty(s) {
                Some(Ty::Bool) => Ok(s.clone()),
                Some(t) => err(id, format!("select: predicate has type {t}, not bool")),
                None => err(id, format!("select: ill-typed predicate {pred} over {s}")),
            }
        }
        Node::Distinct { input: i } => Ok(input(*i).clone()),
        Node::UnionAll { left, right } => {
            let (l, r) = (input(*left), input(*right));
            if !l.union_compatible(r) {
                return err(id, format!("union: incompatible schemas {l} vs {r}"));
            }
            Ok(l.clone())
        }
        Node::Difference { left, right } => {
            let (l, r) = (input(*left), input(*right));
            if !l.union_compatible(r) {
                return err(id, format!("difference: incompatible schemas {l} vs {r}"));
            }
            Ok(l.clone())
        }
        Node::CrossJoin { left, right } => {
            let (l, r) = (input(*left), input(*right));
            if !l.disjoint(r) {
                return err(id, format!("cross: overlapping columns {l} vs {r}"));
            }
            Ok(l.concat(r))
        }
        Node::EquiJoin { left, right, on }
        | Node::SemiJoin { left, right, on }
        | Node::AntiJoin { left, right, on } => {
            let (l, r) = (input(*left), input(*right));
            let semi = !matches!(node, Node::EquiJoin { .. });
            if !semi && !l.disjoint(r) {
                return err(id, format!("join: overlapping columns {l} vs {r}"));
            }
            if on.left.is_empty() {
                return err(id, "join: empty column list");
            }
            for (lc, rc) in on.left.iter().zip(on.right.iter()) {
                match (l.ty_of(lc), r.ty_of(rc)) {
                    (Some(a), Some(b)) if a == b => {}
                    (Some(a), Some(b)) => {
                        return err(
                            id,
                            format!("join: column types differ {lc}:{a} vs {rc}:{b}"),
                        )
                    }
                    (None, _) => return err(id, format!("join: no column {lc} on the left")),
                    (_, None) => return err(id, format!("join: no column {rc} on the right")),
                }
            }
            if semi {
                Ok(l.clone())
            } else {
                Ok(l.concat(r))
            }
        }
        Node::ThetaJoin { left, right, pred } => {
            let (l, r) = (input(*left), input(*right));
            if !l.disjoint(r) {
                return err(id, format!("thetajoin: overlapping columns {l} vs {r}"));
            }
            let joint = l.concat(r);
            match pred.infer_ty(&joint) {
                Some(Ty::Bool) => Ok(joint),
                _ => err(id, format!("thetajoin: ill-typed predicate {pred}")),
            }
        }
        Node::RowNum {
            input: i,
            col,
            part,
            order,
        }
        | Node::DenseRank {
            input: i,
            col,
            part,
            order,
        } => {
            let s = input(*i);
            if s.contains(col) {
                return err(id, format!("rownum/rank: column {col} already present"));
            }
            for p in part {
                if !s.contains(p) {
                    return err(id, format!("rownum/rank: no partition column {p}"));
                }
            }
            for (o, _) in order {
                if !s.contains(o) {
                    return err(id, format!("rownum/rank: no order column {o}"));
                }
            }
            let mut s = s.clone();
            s.push(col.clone(), Ty::Nat);
            Ok(s)
        }
        Node::RowRank {
            input: i,
            col,
            order,
        } => {
            let s = input(*i);
            if s.contains(col) {
                return err(id, format!("rank: column {col} already present"));
            }
            for (o, _) in order {
                if !s.contains(o) {
                    return err(id, format!("rank: no order column {o}"));
                }
            }
            let mut s = s.clone();
            s.push(col.clone(), Ty::Nat);
            Ok(s)
        }
        Node::GroupBy {
            input: i,
            keys,
            aggs,
        } => {
            let s = input(*i);
            let mut out = Vec::new();
            for k in keys {
                match s.ty_of(k) {
                    Some(t) => out.push((k.clone(), t)),
                    None => return err(id, format!("group: no key column {k}")),
                }
            }
            for a in aggs {
                let in_ty = match (&a.input, a.fun) {
                    (None, AggFun::CountAll) => None,
                    (None, f) => return err(id, format!("group: {f:?} needs an input column")),
                    (Some(c), _) => match s.ty_of(c) {
                        Some(t) => Some(t),
                        None => return err(id, format!("group: no input column {c}")),
                    },
                };
                match a.fun.result_ty(in_ty) {
                    Some(t) => out.push((a.output.clone(), t)),
                    None => {
                        return err(
                            id,
                            format!("group: {:?} not applicable to {:?}", a.fun, in_ty),
                        )
                    }
                }
            }
            let mut names: Vec<&str> = out.iter().map(|(n, _)| n.as_ref()).collect();
            names.sort_unstable();
            if names.windows(2).any(|w| w[0] == w[1]) {
                return err(id, "group: duplicate output column names");
            }
            Ok(Schema::new(out))
        }
        Node::Serialize {
            input: i,
            order,
            cols,
        } => {
            let s = input(*i);
            for (o, _) in order {
                if !s.contains(o) {
                    return err(id, format!("serialize: no order column {o}"));
                }
            }
            let mut out = Vec::with_capacity(cols.len());
            for c in cols {
                match s.ty_of(c) {
                    Some(t) => out.push((c.clone(), t)),
                    None => return err(id, format!("serialize: no column {c}")),
                }
            }
            Ok(Schema::new(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr};
    use crate::plan::{cn, Aggregate, JoinCols};
    use crate::value::Value;

    fn lit_xy(p: &mut Plan) -> NodeId {
        p.lit(
            Schema::of(&[("x", Ty::Int), ("y", Ty::Str)]),
            vec![vec![Value::Int(1), Value::str("a")]],
        )
    }

    #[test]
    fn attach_compute_select_schemas() {
        let mut p = Plan::new();
        let l = lit_xy(&mut p);
        let a = p.attach(l, "z", Value::Bool(true));
        let c = p.compute(
            a,
            "w",
            Expr::bin(BinOp::Add, Expr::col("x"), Expr::lit(1i64)),
        );
        let s = p.select(c, Expr::col("z"));
        let schema = validate(&p, s).unwrap();
        assert_eq!(
            schema,
            Schema::of(&[
                ("x", Ty::Int),
                ("y", Ty::Str),
                ("z", Ty::Bool),
                ("w", Ty::Int)
            ])
        );
    }

    #[test]
    fn select_requires_bool() {
        let mut p = Plan::new();
        let l = lit_xy(&mut p);
        let s = p.select(l, Expr::col("x"));
        assert!(validate(&p, s).is_err());
    }

    #[test]
    fn join_requires_disjoint_names() {
        let mut p = Plan::new();
        let a = lit_xy(&mut p);
        let b = lit_xy(&mut p);
        let j = p.equi_join(a, b, JoinCols::single("x", "x"));
        assert!(validate(&p, j).is_err());
    }

    #[test]
    fn join_schema_concatenates() {
        let mut p = Plan::new();
        let a = lit_xy(&mut p);
        let b = p.lit(Schema::of(&[("u", Ty::Int)]), vec![]);
        let j = p.equi_join(a, b, JoinCols::single("x", "u"));
        let s = validate(&p, j).unwrap();
        assert_eq!(
            s,
            Schema::of(&[("x", Ty::Int), ("y", Ty::Str), ("u", Ty::Int)])
        );
        let sj = p.semi_join(a, b, JoinCols::single("x", "u"));
        assert_eq!(
            validate(&p, sj).unwrap(),
            Schema::of(&[("x", Ty::Int), ("y", Ty::Str)])
        );
    }

    #[test]
    fn join_type_mismatch_rejected() {
        let mut p = Plan::new();
        let a = lit_xy(&mut p);
        let b = p.lit(Schema::of(&[("u", Ty::Str)]), vec![]);
        let j = p.equi_join(a, b, JoinCols::single("x", "u"));
        assert!(validate(&p, j).is_err());
    }

    #[test]
    fn union_compat_checked() {
        let mut p = Plan::new();
        let a = lit_xy(&mut p);
        let b = p.lit(Schema::of(&[("p", Ty::Int), ("q", Ty::Str)]), vec![]);
        let u = p.union_all(a, b);
        let s = validate(&p, u).unwrap();
        assert_eq!(s.index_of("x"), Some(0)); // left names win
        let c = p.lit(Schema::of(&[("p", Ty::Str)]), vec![]);
        let bad = p.union_all(a, c);
        assert!(validate(&p, bad).is_err());
    }

    #[test]
    fn rownum_adds_nat() {
        let mut p = Plan::new();
        let a = lit_xy(&mut p);
        let r = p.rownum(a, "pos", vec![], vec![(cn("x"), crate::plan::Dir::Asc)]);
        let s = validate(&p, r).unwrap();
        assert_eq!(s.ty_of("pos"), Some(Ty::Nat));
    }

    #[test]
    fn group_by_schema() {
        let mut p = Plan::new();
        let a = lit_xy(&mut p);
        let g = p.group_by(
            a,
            vec![cn("y")],
            vec![
                Aggregate {
                    fun: AggFun::CountAll,
                    input: None,
                    output: cn("n"),
                },
                Aggregate {
                    fun: AggFun::Sum,
                    input: Some(cn("x")),
                    output: cn("s"),
                },
            ],
        );
        let s = validate(&p, g).unwrap();
        assert_eq!(
            s,
            Schema::of(&[("y", Ty::Str), ("n", Ty::Int), ("s", Ty::Int)])
        );
    }

    #[test]
    fn group_by_bad_agg_rejected() {
        let mut p = Plan::new();
        let a = lit_xy(&mut p);
        let g = p.group_by(
            a,
            vec![],
            vec![Aggregate {
                fun: AggFun::Sum,
                input: Some(cn("y")),
                output: cn("s"),
            }],
        );
        assert!(validate(&p, g).is_err());
    }

    #[test]
    fn serialize_projects() {
        let mut p = Plan::new();
        let a = lit_xy(&mut p);
        let s = p.serialize(a, vec![(cn("x"), crate::plan::Dir::Asc)], vec![cn("y")]);
        assert_eq!(validate(&p, s).unwrap(), Schema::of(&[("y", Ty::Str)]));
    }

    #[test]
    fn literal_type_mismatch_rejected() {
        let mut p = Plan::new();
        let l = p.lit(Schema::of(&[("x", Ty::Int)]), vec![vec![Value::str("no")]]);
        assert!(validate(&p, l).is_err());
    }
}

//! The table-algebra plan: a DAG of relational operators.
//!
//! A [`Plan`] owns an arena of [`Node`]s; [`NodeId`]s are indices into the
//! arena. Children always have smaller ids than their parents, so a plain
//! forward scan of the arena is a topological order — both the engine and
//! the optimizer rely on this.

use crate::expr::{AggFun, Expr};
use crate::rel::{Row, RowBuf};
use crate::schema::{ColName, Schema};
use crate::value::Value;
use std::sync::Arc;

/// Index of a node within a [`Plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Sort direction for order specifications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    Asc,
    Desc,
}

/// One `(column, direction)` entry of an order specification.
pub type SortSpec = (ColName, Dir);

/// Join columns: positionally paired `(left, right)` column lists.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JoinCols {
    pub left: Vec<ColName>,
    pub right: Vec<ColName>,
}

impl JoinCols {
    pub fn new(left: Vec<ColName>, right: Vec<ColName>) -> JoinCols {
        assert_eq!(left.len(), right.len(), "join column lists must pair up");
        JoinCols { left, right }
    }

    pub fn single(l: impl Into<ColName>, r: impl Into<ColName>) -> JoinCols {
        JoinCols {
            left: vec![l.into()],
            right: vec![r.into()],
        }
    }
}

/// A table-algebra operator.
///
/// This is the operator set of the Ferry/Pathfinder table algebra (§3.2 of
/// the paper; \[13\]): the usual relational core, plus the row-numbering and
/// ranking operators that make the relational encoding of *list order* and
/// the generation of *surrogate keys* for nested lists possible, plus
/// `Serialize`, which fixes the observable row order of a query bundle
/// member.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Reference to a database-resident base table. `cols` renames the
    /// catalog columns into plan-local names (paired positionally with the
    /// catalog schema); `keys` lists plan-local columns that form a key and
    /// define the table's canonical (alphabetical/key) order.
    TableRef {
        name: String,
        cols: Vec<(ColName, crate::value::Ty)>,
        keys: Vec<ColName>,
    },
    /// A literal table. Rows sit behind an `Arc` so every execution of the
    /// plan shares one buffer — and one columnar chunk cache — with the
    /// plan itself (copy-free `Lit` scans).
    Lit { schema: Schema, rows: Arc<RowBuf> },
    /// Attach a constant column.
    Attach {
        input: NodeId,
        col: ColName,
        value: Value,
    },
    /// Projection with rename/duplication: output column `new` takes the
    /// value of input column `old`.
    Project {
        input: NodeId,
        cols: Vec<(ColName, ColName)>,
    },
    /// Extend the input with a computed column.
    Compute {
        input: NodeId,
        col: ColName,
        expr: Expr,
    },
    /// Keep rows satisfying a boolean predicate.
    Select { input: NodeId, pred: Expr },
    /// Duplicate elimination over all columns.
    Distinct { input: NodeId },
    /// Bag union (schemas must be union-compatible; left names win).
    UnionAll { left: NodeId, right: NodeId },
    /// Set difference (`EXCEPT`): distinct rows of `left` not in `right`.
    Difference { left: NodeId, right: NodeId },
    /// Cartesian product (schemas must be disjoint).
    CrossJoin { left: NodeId, right: NodeId },
    /// Equi-join on positionally paired columns (schemas disjoint).
    EquiJoin {
        left: NodeId,
        right: NodeId,
        on: JoinCols,
    },
    /// Rows of `left` with at least one equi-match in `right`.
    SemiJoin {
        left: NodeId,
        right: NodeId,
        on: JoinCols,
    },
    /// Rows of `left` with no equi-match in `right`.
    AntiJoin {
        left: NodeId,
        right: NodeId,
        on: JoinCols,
    },
    /// General theta join (schemas disjoint, arbitrary predicate).
    ThetaJoin {
        left: NodeId,
        right: NodeId,
        pred: Expr,
    },
    /// `ROW_NUMBER () OVER (PARTITION BY part ORDER BY order)` into a new
    /// `Nat` column (1-based). The workhorse of the order encoding.
    RowNum {
        input: NodeId,
        col: ColName,
        part: Vec<ColName>,
        order: Vec<SortSpec>,
    },
    /// `RANK () OVER (ORDER BY order)` into a new `Nat` column.
    RowRank {
        input: NodeId,
        col: ColName,
        order: Vec<SortSpec>,
    },
    /// `DENSE_RANK () OVER (PARTITION BY part ORDER BY order)` into a new
    /// `Nat` column. Generates surrogate keys for nested lists.
    DenseRank {
        input: NodeId,
        col: ColName,
        part: Vec<ColName>,
        order: Vec<SortSpec>,
    },
    /// Grouped aggregation. Output schema: `keys ++ aggregate outputs`.
    GroupBy {
        input: NodeId,
        keys: Vec<ColName>,
        aggs: Vec<Aggregate>,
    },
    /// Fix the observable result: project to `cols` and order rows by
    /// `order`. The root of every query in an emitted bundle.
    Serialize {
        input: NodeId,
        order: Vec<SortSpec>,
        cols: Vec<ColName>,
    },
}

/// One aggregate computation of a `GroupBy`.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    pub fun: AggFun,
    /// Input column; `None` only for `CountAll`.
    pub input: Option<ColName>,
    /// Name of the output column.
    pub output: ColName,
}

impl Node {
    /// Child node ids, in evaluation order.
    pub fn children(&self) -> Vec<NodeId> {
        match self {
            Node::TableRef { .. } | Node::Lit { .. } => vec![],
            Node::Attach { input, .. }
            | Node::Project { input, .. }
            | Node::Compute { input, .. }
            | Node::Select { input, .. }
            | Node::Distinct { input }
            | Node::RowNum { input, .. }
            | Node::RowRank { input, .. }
            | Node::DenseRank { input, .. }
            | Node::GroupBy { input, .. }
            | Node::Serialize { input, .. } => vec![*input],
            Node::UnionAll { left, right }
            | Node::Difference { left, right }
            | Node::CrossJoin { left, right }
            | Node::EquiJoin { left, right, .. }
            | Node::SemiJoin { left, right, .. }
            | Node::AntiJoin { left, right, .. }
            | Node::ThetaJoin { left, right, .. } => vec![*left, *right],
        }
    }

    /// Rewrite child ids through `f` (used by the optimizer when splicing).
    pub fn map_children(&mut self, mut f: impl FnMut(NodeId) -> NodeId) {
        match self {
            Node::TableRef { .. } | Node::Lit { .. } => {}
            Node::Attach { input, .. }
            | Node::Project { input, .. }
            | Node::Compute { input, .. }
            | Node::Select { input, .. }
            | Node::Distinct { input }
            | Node::RowNum { input, .. }
            | Node::RowRank { input, .. }
            | Node::DenseRank { input, .. }
            | Node::GroupBy { input, .. }
            | Node::Serialize { input, .. } => *input = f(*input),
            Node::UnionAll { left, right }
            | Node::Difference { left, right }
            | Node::CrossJoin { left, right }
            | Node::EquiJoin { left, right, .. }
            | Node::SemiJoin { left, right, .. }
            | Node::AntiJoin { left, right, .. }
            | Node::ThetaJoin { left, right, .. } => {
                *left = f(*left);
                *right = f(*right);
            }
        }
    }

    /// Short operator mnemonic for printing.
    pub fn label(&self) -> &'static str {
        match self {
            Node::TableRef { .. } => "table",
            Node::Lit { .. } => "lit",
            Node::Attach { .. } => "attach",
            Node::Project { .. } => "project",
            Node::Compute { .. } => "compute",
            Node::Select { .. } => "select",
            Node::Distinct { .. } => "distinct",
            Node::UnionAll { .. } => "union_all",
            Node::Difference { .. } => "difference",
            Node::CrossJoin { .. } => "cross",
            Node::EquiJoin { .. } => "join",
            Node::SemiJoin { .. } => "semijoin",
            Node::AntiJoin { .. } => "antijoin",
            Node::ThetaJoin { .. } => "thetajoin",
            Node::RowNum { .. } => "rownum",
            Node::RowRank { .. } => "rank",
            Node::DenseRank { .. } => "dense_rank",
            Node::GroupBy { .. } => "group_by",
            Node::Serialize { .. } => "serialize",
        }
    }
}

/// A DAG of table-algebra operators.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Plan {
    nodes: Vec<Node>,
}

impl Plan {
    pub fn new() -> Plan {
        Plan::default()
    }

    pub fn add(&mut self, node: Node) -> NodeId {
        debug_assert!(
            node.children().iter().all(|c| c.index() < self.nodes.len()),
            "child id out of range"
        );
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Ids of all nodes reachable from `root` (including `root`), ascending.
    pub fn reachable(&self, root: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id.index()], true) {
                continue;
            }
            stack.extend(self.node(id).children());
        }
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|id| seen[id.index()])
            .collect()
    }

    /// Number of nodes reachable from `root` — the "plan size" metric used
    /// by the optimizer ablation (experiment X1).
    pub fn size_from(&self, root: NodeId) -> usize {
        self.reachable(root).len()
    }

    // ----- builder conveniences (used by the compiler, the SQL binder and
    // ----- by tests; they keep call sites readable) -----

    pub fn lit(&mut self, schema: Schema, rows: Vec<Row>) -> NodeId {
        self.lit_shared(schema, Arc::new(RowBuf::new(rows)))
    }

    /// Literal node over an already-shared buffer (no copy).
    pub fn lit_shared(&mut self, schema: Schema, rows: Arc<RowBuf>) -> NodeId {
        self.add(Node::Lit { schema, rows })
    }

    pub fn table(
        &mut self,
        name: impl Into<String>,
        cols: Vec<(ColName, crate::value::Ty)>,
        keys: Vec<ColName>,
    ) -> NodeId {
        self.add(Node::TableRef {
            name: name.into(),
            cols,
            keys,
        })
    }

    pub fn attach(&mut self, input: NodeId, col: impl Into<ColName>, value: Value) -> NodeId {
        self.add(Node::Attach {
            input,
            col: col.into(),
            value,
        })
    }

    pub fn project(&mut self, input: NodeId, cols: Vec<(ColName, ColName)>) -> NodeId {
        self.add(Node::Project { input, cols })
    }

    /// Projection keeping columns under their own names.
    pub fn project_keep(&mut self, input: NodeId, cols: &[ColName]) -> NodeId {
        let cols = cols.iter().map(|c| (c.clone(), c.clone())).collect();
        self.add(Node::Project { input, cols })
    }

    pub fn compute(&mut self, input: NodeId, col: impl Into<ColName>, expr: Expr) -> NodeId {
        self.add(Node::Compute {
            input,
            col: col.into(),
            expr,
        })
    }

    pub fn select(&mut self, input: NodeId, pred: Expr) -> NodeId {
        self.add(Node::Select { input, pred })
    }

    pub fn distinct(&mut self, input: NodeId) -> NodeId {
        self.add(Node::Distinct { input })
    }

    pub fn union_all(&mut self, left: NodeId, right: NodeId) -> NodeId {
        self.add(Node::UnionAll { left, right })
    }

    pub fn difference(&mut self, left: NodeId, right: NodeId) -> NodeId {
        self.add(Node::Difference { left, right })
    }

    pub fn cross(&mut self, left: NodeId, right: NodeId) -> NodeId {
        self.add(Node::CrossJoin { left, right })
    }

    pub fn equi_join(&mut self, left: NodeId, right: NodeId, on: JoinCols) -> NodeId {
        self.add(Node::EquiJoin { left, right, on })
    }

    pub fn semi_join(&mut self, left: NodeId, right: NodeId, on: JoinCols) -> NodeId {
        self.add(Node::SemiJoin { left, right, on })
    }

    pub fn anti_join(&mut self, left: NodeId, right: NodeId, on: JoinCols) -> NodeId {
        self.add(Node::AntiJoin { left, right, on })
    }

    pub fn theta_join(&mut self, left: NodeId, right: NodeId, pred: Expr) -> NodeId {
        self.add(Node::ThetaJoin { left, right, pred })
    }

    pub fn rownum(
        &mut self,
        input: NodeId,
        col: impl Into<ColName>,
        part: Vec<ColName>,
        order: Vec<SortSpec>,
    ) -> NodeId {
        self.add(Node::RowNum {
            input,
            col: col.into(),
            part,
            order,
        })
    }

    pub fn dense_rank(
        &mut self,
        input: NodeId,
        col: impl Into<ColName>,
        part: Vec<ColName>,
        order: Vec<SortSpec>,
    ) -> NodeId {
        self.add(Node::DenseRank {
            input,
            col: col.into(),
            part,
            order,
        })
    }

    pub fn group_by(&mut self, input: NodeId, keys: Vec<ColName>, aggs: Vec<Aggregate>) -> NodeId {
        self.add(Node::GroupBy { input, keys, aggs })
    }

    pub fn serialize(&mut self, input: NodeId, order: Vec<SortSpec>, cols: Vec<ColName>) -> NodeId {
        self.add(Node::Serialize { input, order, cols })
    }
}

/// Helper to build `ColName`s in call sites that use `&str`.
pub fn cn(s: &str) -> ColName {
    Arc::from(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Ty;

    #[test]
    fn arena_is_topologically_ordered() {
        let mut p = Plan::new();
        let a = p.lit(Schema::of(&[("x", Ty::Int)]), vec![vec![Value::Int(1)]]);
        let b = p.attach(a, "y", Value::Int(2));
        let c = p.distinct(b);
        assert!(a < b && b < c);
        assert_eq!(p.node(c).children(), vec![b]);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn reachable_follows_dag_sharing() {
        let mut p = Plan::new();
        let a = p.lit(Schema::of(&[("x", Ty::Int)]), vec![]);
        let b = p.lit(Schema::of(&[("y", Ty::Int)]), vec![]);
        let j = p.cross(a, b);
        let j2 = p.cross(j, j); // shared child — illegal schema but fine structurally
        let r = p.reachable(j2);
        assert_eq!(r, vec![a, b, j, j2]);
        assert_eq!(p.size_from(j2), 4);
        assert_eq!(p.size_from(a), 1);
        // unreachable node
        let _orphan = p.lit(Schema::of(&[("z", Ty::Int)]), vec![]);
        assert_eq!(p.size_from(j2), 4);
    }

    #[test]
    fn map_children_rewrites() {
        let mut p = Plan::new();
        let a = p.lit(Schema::of(&[("x", Ty::Int)]), vec![]);
        let b = p.lit(Schema::of(&[("y", Ty::Int)]), vec![]);
        let c = p.cross(a, b);
        p.node_mut(c).map_children(|_| a);
        assert_eq!(p.node(c).children(), vec![a, a]);
    }

    #[test]
    #[should_panic]
    fn join_cols_must_pair() {
        let _ = JoinCols::new(vec![cn("a")], vec![]);
    }

    #[test]
    fn labels() {
        let mut p = Plan::new();
        let a = p.lit(Schema::empty(), vec![]);
        assert_eq!(p.node(a).label(), "lit");
        let d = p.distinct(a);
        assert_eq!(p.node(d).label(), "distinct");
    }
}

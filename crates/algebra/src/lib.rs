//! # `ferry-algebra` — the table algebra
//!
//! The intermediate representation of the Ferry compiler: a small variant of
//! relational algebra ("table algebra") that has "been designed to reflect
//! the query capabilities of modern off-the-shelf relational database
//! engines" (Haskell Boards the Ferry, §3.2). Loop-lifted Ferry programs
//! compile into DAG-shaped plans over this algebra; the plans are then
//! either executed directly by `ferry-engine` or turned into SQL:1999 by
//! `ferry-sql`.
//!
//! The crate also hosts the shared relational *data model* — [`Value`],
//! [`Ty`], [`Schema`], [`Row`], [`Rel`] — used by every other crate in the
//! workspace.
//!
//! ## Plan representation
//!
//! A [`Plan`] is an arena of [`Node`]s indexed by [`NodeId`]. Sharing is
//! real: a node referenced by two parents is a genuine DAG edge, and the
//! engine evaluates every node at most once. Loop-lifting produces heavily
//! shared plans (the `loop` relation of an iteration context is referenced
//! by every lifted subexpression), so this matters.
//!
//! ## Column discipline
//!
//! Columns are identified by name. Every operator that combines two inputs
//! (joins, unions, differences) requires the obvious name discipline —
//! disjoint names for joins, identical schemas for unions — which is
//! enforced by [`infer::infer_schema`]. The Ferry compiler only ever
//! generates fresh column names, so the discipline is free there; hand-built
//! plans are validated before execution.

pub mod chunk;
pub mod expr;
pub mod infer;
pub mod plan;
pub mod pretty;
pub mod rel;
pub mod schema;
pub mod value;

pub use chunk::ColVec;
pub use expr::{AggFun, BinOp, Expr, UnOp};
pub use infer::{infer_schema, validate, InferError};
pub use plan::{Dir, JoinCols, Node, NodeId, Plan, SortSpec};
pub use rel::{NoSuchColumn, Rel, Row, RowBuf};
pub use schema::{ColName, Schema};
pub use value::{Ty, Value};

//! Atomic values and their types.
//!
//! The paper (§3.2): "DSH values of atomic types are directly mapped into
//! values of a corresponding table column type." Our column types are the
//! basic Ferry types plus `Nat`, the unsigned integer domain used for the
//! compiler-generated `iter`, `pos` and surrogate columns of the relational
//! encoding (Fig. 3).

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Column (atomic) types of the table algebra.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// The unit type; encoded as a single distinguished value.
    Unit,
    Bool,
    /// 64-bit signed integers (the DSL's `Integer`).
    Int,
    /// 64-bit floats (the DSL's `Double`). Totally ordered (see [`Value`]).
    Dbl,
    /// Text.
    Str,
    /// Unsigned surrogate/order domain (`iter`, `pos`, `nest` columns).
    Nat,
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::Unit => "unit",
            Ty::Bool => "bool",
            Ty::Int => "int",
            Ty::Dbl => "dbl",
            Ty::Str => "str",
            Ty::Nat => "nat",
        };
        f.write_str(s)
    }
}

/// An atomic value held in a table cell.
///
/// `Value` is totally ordered so relations can always be sorted, ranked and
/// grouped: doubles compare via [`f64::total_cmp`] (the engine never
/// produces NaN, but the ordering must still be lawful for the sort/rank
/// operators), and values of distinct types order by type tag. Strings are
/// reference-counted (`Arc<str>`) because rows are copied freely between
/// operators.
#[derive(Debug, Clone)]
pub enum Value {
    Unit,
    Bool(bool),
    Int(i64),
    Dbl(f64),
    Str(Arc<str>),
    Nat(u64),
}

impl Value {
    pub fn str(s: impl Into<Arc<str>>) -> Value {
        Value::Str(s.into())
    }

    /// The column type of this value.
    pub fn ty(&self) -> Ty {
        match self {
            Value::Unit => Ty::Unit,
            Value::Bool(_) => Ty::Bool,
            Value::Int(_) => Ty::Int,
            Value::Dbl(_) => Ty::Dbl,
            Value::Str(_) => Ty::Str,
            Value::Nat(_) => Ty::Nat,
        }
    }

    /// Rank of the type tag, used to order values of distinct types.
    fn tag(&self) -> u8 {
        match self {
            Value::Unit => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Dbl(_) => 3,
            Value::Str(_) => 4,
            Value::Nat(_) => 5,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_dbl(&self) -> Option<f64> {
        match self {
            Value::Dbl(d) => Some(*d),
            _ => None,
        }
    }

    pub fn as_nat(&self) -> Option<u64> {
        match self {
            Value::Nat(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Unit, Unit) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Dbl(a), Dbl(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Nat(a), Nat(b)) => a.cmp(b),
            _ => self.tag().cmp(&other.tag()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.tag().hash(state);
        match self {
            Value::Unit => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Dbl(d) => d.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Nat(n) => n.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Dbl(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Nat(n) => write!(f, "@{n}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<f64> for Value {
    fn from(d: f64) -> Self {
        Value::Dbl(d)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Nat(n)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn value_types() {
        assert_eq!(Value::Int(3).ty(), Ty::Int);
        assert_eq!(Value::str("x").ty(), Ty::Str);
        assert_eq!(Value::Nat(0).ty(), Ty::Nat);
        assert_eq!(Value::Unit.ty(), Ty::Unit);
        assert_eq!(Value::Bool(true).ty(), Ty::Bool);
        assert_eq!(Value::Dbl(1.5).ty(), Ty::Dbl);
    }

    #[test]
    fn total_order_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::Dbl(-1.0) < Value::Dbl(0.0));
        assert!(Value::Bool(false) < Value::Bool(true));
        assert!(Value::Nat(7) < Value::Nat(8));
    }

    #[test]
    fn doubles_are_totally_ordered() {
        // total_cmp: -0.0 < +0.0, and NaN is ordered (not that we produce it).
        assert!(Value::Dbl(-0.0) < Value::Dbl(0.0));
        let nan = Value::Dbl(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
    }

    #[test]
    fn cross_type_order_is_by_tag() {
        assert!(Value::Unit < Value::Bool(false));
        assert!(Value::Bool(true) < Value::Int(i64::MIN));
        assert!(Value::Int(i64::MAX) < Value::Dbl(f64::NEG_INFINITY));
        assert!(Value::Str(Arc::from("zzz")) < Value::Nat(0));
    }

    #[test]
    fn eq_is_consistent_with_hash() {
        let a = Value::str("hello");
        let b = Value::str(String::from("hello"));
        assert_eq!(a, b);
        assert_eq!(h(&a), h(&b));
        assert_ne!(Value::Int(1), Value::Nat(1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Nat(3).to_string(), "@3");
        assert_eq!(Value::str("x").to_string(), "'x'");
        assert_eq!(Value::Unit.to_string(), "()");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(4).as_int(), Some(4));
        assert_eq!(Value::Int(4).as_bool(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Nat(9).as_nat(), Some(9));
        assert_eq!(Value::str("q").as_str(), Some("q"));
        assert_eq!(Value::Dbl(2.5).as_dbl(), Some(2.5));
    }
}

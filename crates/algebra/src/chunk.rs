//! Typed column chunks: the columnar view of a shared row buffer.
//!
//! The engine's vectorized execution path wants type-specialized,
//! contiguous column storage (`Vec<i64>`, `Vec<f64>`, …) instead of
//! per-cell `Value` matching. A [`ColVec`] is one full-buffer column in
//! that form, built by transposing the row buffer once and cached on the
//! buffer itself ([`crate::rel::RowBuf`]) — every view, repeated scan and
//! re-execution over the same buffer shares the transposition.
//!
//! Strings are dictionary-encoded: equal strings get equal `u32` codes
//! (first-occurrence numbering), so grouping and equality tests compare
//! codes, and only order comparisons touch the dictionary. Columns whose
//! cells are not uniformly one of the fast types (e.g. `unit` columns)
//! fall back to [`ColVec::Other`], a plain `Vec<Value>` that keeps the
//! vectorized machinery total.

use crate::value::Value;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

/// One buffer column, transposed into type-specialized storage.
#[derive(Debug, Clone, PartialEq)]
pub enum ColVec {
    Int(Vec<i64>),
    Nat(Vec<u64>),
    Dbl(Vec<f64>),
    Bool(Vec<bool>),
    /// Dictionary-encoded strings: cell `i` is `dict[codes[i]]`. Codes are
    /// assigned in first-occurrence order, so equal strings — and only
    /// equal strings — share a code.
    Str {
        codes: Vec<u32>,
        dict: Vec<Arc<str>>,
    },
    /// Fallback for columns outside the fast domains (`unit` cells, or a
    /// buffer whose column is not type-uniform).
    Other(Vec<Value>),
}

impl ColVec {
    /// Transpose column `col` of `rows` into typed storage. The variant is
    /// chosen from the first cell; a mid-column type change (impossible for
    /// schema-checked buffers, but the builder stays total) demotes the
    /// whole column to [`ColVec::Other`].
    pub fn build(rows: &[Vec<Value>], col: usize) -> ColVec {
        let Some(first) = rows.first() else {
            return ColVec::Other(Vec::new());
        };
        match &first[col] {
            Value::Int(_) => build_typed(rows, col, Value::as_int, ColVec::Int),
            Value::Nat(_) => build_typed(rows, col, Value::as_nat, ColVec::Nat),
            Value::Dbl(_) => build_typed(rows, col, Value::as_dbl, ColVec::Dbl),
            Value::Bool(_) => build_typed(rows, col, Value::as_bool, ColVec::Bool),
            Value::Str(_) => build_str(rows, col),
            Value::Unit => ColVec::Other(rows.iter().map(|r| r[col].clone()).collect()),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        match self {
            ColVec::Int(v) => v.len(),
            ColVec::Nat(v) => v.len(),
            ColVec::Dbl(v) => v.len(),
            ColVec::Bool(v) => v.len(),
            ColVec::Str { codes, .. } => codes.len(),
            ColVec::Other(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cell `i` as an owned [`Value`] (cheap: no heap allocation for the
    /// fast types, an `Arc` bump for strings).
    pub fn value(&self, i: usize) -> Value {
        match self {
            ColVec::Int(v) => Value::Int(v[i]),
            ColVec::Nat(v) => Value::Nat(v[i]),
            ColVec::Dbl(v) => Value::Dbl(v[i]),
            ColVec::Bool(v) => Value::Bool(v[i]),
            ColVec::Str { codes, dict } => Value::Str(dict[codes[i] as usize].clone()),
            ColVec::Other(v) => v[i].clone(),
        }
    }

    /// A canonical `u64` code for cell `i` such that two cells of this
    /// column (or of another column of the *same* variant and, for
    /// strings, the same buffer) are [`Value`]-equal iff their codes are
    /// equal. `None` for [`ColVec::Other`] and for strings when
    /// `cross_buffer` codes are requested (dictionaries are per-buffer).
    pub fn eq_code(&self, i: usize, cross_buffer: bool) -> Option<u64> {
        match self {
            ColVec::Int(v) => Some(v[i] as u64),
            ColVec::Nat(v) => Some(v[i]),
            // f64 total_cmp equality coincides with bit equality
            ColVec::Dbl(v) => Some(v[i].to_bits()),
            ColVec::Bool(v) => Some(v[i] as u64),
            ColVec::Str { codes, .. } if !cross_buffer => Some(codes[i] as u64),
            _ => None,
        }
    }

    /// Compare cells `a` and `b` with [`Value`] ordering semantics
    /// (`total_cmp` for doubles) without materialising values.
    pub fn cmp_cells(&self, a: usize, b: usize) -> Ordering {
        match self {
            ColVec::Int(v) => v[a].cmp(&v[b]),
            ColVec::Nat(v) => v[a].cmp(&v[b]),
            ColVec::Dbl(v) => v[a].total_cmp(&v[b]),
            ColVec::Bool(v) => v[a].cmp(&v[b]),
            ColVec::Str { codes, dict } => dict[codes[a] as usize].cmp(&dict[codes[b] as usize]),
            ColVec::Other(v) => v[a].cmp(&v[b]),
        }
    }

    pub fn as_int(&self) -> Option<&[i64]> {
        match self {
            ColVec::Int(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_nat(&self) -> Option<&[u64]> {
        match self {
            ColVec::Nat(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_dbl(&self) -> Option<&[f64]> {
        match self {
            ColVec::Dbl(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<&[bool]> {
        match self {
            ColVec::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// The string at cell `i`, if this is a string column.
    pub fn str_at(&self, i: usize) -> Option<&Arc<str>> {
        match self {
            ColVec::Str { codes, dict } => Some(&dict[codes[i] as usize]),
            _ => None,
        }
    }

    /// A new chunk holding cells `idx` (in order), preserving the storage
    /// variant. String columns keep the parent dictionary (codes stay
    /// valid equality keys; unused dictionary entries are harmless), so a
    /// gathered chunk can seed the cache of a buffer derived from this
    /// one without re-encoding.
    pub fn gather(&self, idx: &[u32]) -> ColVec {
        match self {
            ColVec::Int(v) => ColVec::Int(idx.iter().map(|&i| v[i as usize]).collect()),
            ColVec::Nat(v) => ColVec::Nat(idx.iter().map(|&i| v[i as usize]).collect()),
            ColVec::Dbl(v) => ColVec::Dbl(idx.iter().map(|&i| v[i as usize]).collect()),
            ColVec::Bool(v) => ColVec::Bool(idx.iter().map(|&i| v[i as usize]).collect()),
            ColVec::Str { codes, dict } => ColVec::Str {
                codes: idx.iter().map(|&i| codes[i as usize]).collect(),
                dict: dict.clone(),
            },
            ColVec::Other(v) => ColVec::Other(idx.iter().map(|&i| v[i as usize].clone()).collect()),
        }
    }
}

fn build_typed<T>(
    rows: &[Vec<Value>],
    col: usize,
    get: impl Fn(&Value) -> Option<T>,
    wrap: impl Fn(Vec<T>) -> ColVec,
) -> ColVec {
    let mut out = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        match get(&row[col]) {
            Some(v) => out.push(v),
            // type changed mid-column: demote everything to Other
            None => {
                let mut vals: Vec<Value> = rows[..i].iter().map(|r| r[col].clone()).collect();
                vals.extend(rows[i..].iter().map(|r| r[col].clone()));
                return ColVec::Other(vals);
            }
        }
    }
    wrap(out)
}

fn build_str(rows: &[Vec<Value>], col: usize) -> ColVec {
    let mut dict: Vec<Arc<str>> = Vec::new();
    let mut seen: HashMap<Arc<str>, u32> = HashMap::new();
    let mut codes = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let Value::Str(s) = &row[col] else {
            let mut vals: Vec<Value> = rows[..i].iter().map(|r| r[col].clone()).collect();
            vals.extend(rows[i..].iter().map(|r| r[col].clone()));
            return ColVec::Other(vals);
        };
        let code = *seen.entry(s.clone()).or_insert_with(|| {
            dict.push(s.clone());
            (dict.len() - 1) as u32
        });
        codes.push(code);
    }
    ColVec::Str { codes, dict }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<Value>> {
        vec![
            vec![Value::Int(3), Value::str("b"), Value::Dbl(1.5), Value::Unit],
            vec![
                Value::Int(-1),
                Value::str("a"),
                Value::Dbl(-0.0),
                Value::Unit,
            ],
            vec![Value::Int(3), Value::str("b"), Value::Dbl(0.0), Value::Unit],
        ]
    }

    #[test]
    fn transposes_typed_columns() {
        let r = rows();
        assert_eq!(ColVec::build(&r, 0).as_int().unwrap(), &[3, -1, 3]);
        let d = ColVec::build(&r, 2);
        assert_eq!(d.as_dbl().unwrap(), &[1.5, -0.0, 0.0]);
        assert!(matches!(ColVec::build(&r, 3), ColVec::Other(_)));
    }

    #[test]
    fn strings_are_dictionary_encoded() {
        let r = rows();
        let s = ColVec::build(&r, 1);
        match &s {
            ColVec::Str { codes, dict } => {
                assert_eq!(codes, &[0, 1, 0]);
                assert_eq!(dict.len(), 2);
            }
            other => panic!("expected dict-encoded strings, got {other:?}"),
        }
        assert_eq!(s.value(2), Value::str("b"));
        assert_eq!(s.str_at(1).unwrap().as_ref(), "a");
    }

    #[test]
    fn eq_codes_match_value_equality() {
        let r = rows();
        for col in 0..3 {
            let c = ColVec::build(&r, col);
            for a in 0..r.len() {
                for b in 0..r.len() {
                    let eq = c.value(a) == c.value(b);
                    assert_eq!(
                        c.eq_code(a, false) == c.eq_code(b, false),
                        eq,
                        "col {col} cells {a},{b}"
                    );
                    assert_eq!(c.cmp_cells(a, b) == Ordering::Equal, eq);
                }
            }
        }
        // -0.0 and 0.0 are distinct under total_cmp and under eq_code
        let d = ColVec::build(&rows(), 2);
        assert_ne!(d.eq_code(1, false), d.eq_code(2, false));
        // string codes are per-buffer: cross-buffer requests are refused
        let s = ColVec::build(&rows(), 1);
        assert_eq!(s.eq_code(0, true), None);
        assert!(s.eq_code(0, false).is_some());
    }

    #[test]
    fn mixed_column_demotes_to_other() {
        let r = vec![
            vec![Value::Int(1)],
            vec![Value::str("oops")],
            vec![Value::Int(2)],
        ];
        let c = ColVec::build(&r, 0);
        assert!(matches!(c, ColVec::Other(_)));
        assert_eq!(c.value(1), Value::str("oops"));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn empty_buffer() {
        let c = ColVec::build(&[], 0);
        assert!(c.is_empty());
    }
}

//! Querying Ferry about Ferry: the standard `Q<T>` DSL — filters,
//! group-bys, joins — running over the `ferry.*` system tables, plus the
//! slow-query report and the typed trace-status distinctions.

use ferry::prelude::*;
use ferry::TraceStatus;
use ferry_algebra::{Schema, Ty, Value};
use ferry_engine::Database;
use ferry_telemetry::Metric;
use std::time::Duration;

fn conn() -> Connection {
    let db = Database::new();
    db.create_table("nums", Schema::of(&[("n", Ty::Int)]), vec!["n"])
        .unwrap();
    db.insert(
        "nums",
        vec![
            vec![Value::Int(3)],
            vec![Value::Int(1)],
            vec![Value::Int(4)],
            vec![Value::Int(1)],
            vec![Value::Int(5)],
        ],
    )
    .unwrap();
    Connection::new(db)
}

// ferry.metrics columns alphabetically: (kind, name, value)
fn metrics() -> Q<Vec<(String, String, i64)>> {
    table::<(String, String, i64)>("ferry.metrics")
}

// ferry.queries columns alphabetically:
// (elapsed_us, nodes, plan_hash, query_id, roots, trace_id)
type QueryRow = (i64, i64, i64, i64, i64, i64);
fn queries() -> Q<Vec<QueryRow>> {
    table::<QueryRow>("ferry.queries")
}

// ferry.plan_cache columns alphabetically:
// (exp_hash, hits, operators, queries, schema_version)
type CacheRow = (i64, i64, i64, i64, i64);
fn plan_cache() -> Q<Vec<CacheRow>> {
    table::<CacheRow>("ferry.plan_cache")
}

#[test]
fn filter_over_ferry_metrics() {
    let c = conn();
    c.set_telemetry_config(TelemetryConfig::Counters);
    c.from_q(&table::<i64>("nums")).unwrap();

    // every counter name, through the DSL
    let q = ferry::comp!(
        (name)
        for (kind, name, value) in metrics(),
        if kind.eq(&toq(&"counter".to_string()))
    );
    let got: Vec<String> = c.from_q(&q).unwrap();
    let want: Vec<String> = c
        .telemetry()
        .registry()
        .metrics()
        .into_iter()
        .filter_map(|(n, m)| matches!(m, Metric::Counter(_)).then_some(n))
        .collect();
    assert_eq!(got, want, "counter names in registry (key) order");
    assert!(got
        .iter()
        .any(|n| n == ferry_telemetry::names::ENGINE_QUERIES));
}

#[test]
fn group_by_over_ferry_metrics() {
    let c = conn();
    c.set_telemetry_config(TelemetryConfig::Counters);
    c.from_q(&table::<i64>("nums")).unwrap();

    // how many metrics of each kind? group_with over the scan
    let q = map(
        |g: Q<Vec<(String, String, i64)>>| {
            pair(
                the(map(|m: Q<(String, String, i64)>| m.proj3_0(), g.clone())),
                length(g),
            )
        },
        group_with(|m: Q<(String, String, i64)>| m.proj3_0(), metrics()),
    );
    let got: Vec<(String, i64)> = c.from_q(&q).unwrap();
    let mut want: std::collections::BTreeMap<&str, i64> = Default::default();
    for (_, m) in c.telemetry().registry().metrics() {
        let kind = match m {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => continue,
        };
        *want.entry(kind).or_default() += 1;
    }
    let want: Vec<(String, i64)> = want.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
    assert_eq!(got, want);
}

#[test]
fn join_ferry_queries_against_ferry_plan_cache() {
    let c = conn();
    c.set_telemetry_config(TelemetryConfig::Counters);
    let hot = map(|x: Q<i64>| x + toq(&1i64), table::<i64>("nums"));
    for _ in 0..3 {
        c.from_q(&hot).unwrap(); // one miss, then two cache hits
    }

    // which recent dispatches came from a cached plan, and how hot is
    // that plan? — the equijoin the shared i64 hash encoding exists for
    let q = ferry::comp!(
        (pair(query_id, hits))
        for (elapsed_us, nodes, plan_hash, query_id, roots, trace_id) in queries(),
        for (exp_hash, hits, operators, queries, schema_version) in plan_cache(),
        if plan_hash.eq(&exp_hash)
    );
    let got: Vec<(i64, i64)> = c.from_q(&q).unwrap();
    // the three `hot` dispatches each match `hot`'s cache entry, which
    // had been hit twice by the time the introspection query ran
    let matched: Vec<&(i64, i64)> = got.iter().filter(|(_, h)| *h == 2).collect();
    assert_eq!(
        matched.len(),
        3,
        "three dispatches of the hot plan: {got:?}"
    );
    // dispatches of the introspection query itself joined its own entry
    // (hits 0) — plan_hash 0 rows (none here) would simply not match
    for (qid, _) in &got {
        assert!(*qid >= 1);
    }
}

#[test]
fn plan_cache_hits_are_counted_per_entry() {
    let c = conn();
    let q = table::<i64>("nums");
    c.prepare(&q).unwrap(); // miss
    c.prepare(&q).unwrap(); // hit
    c.prepare(&q).unwrap(); // hit
    let rows: Vec<(i64, i64, i64, i64, i64)> = c.from_q(&plan_cache()).unwrap();
    // two entries: `q` (2 hits) and the introspection scan (0 hits, it
    // was compiled to run this very query)
    assert_eq!(rows.len(), 2);
    let hits: Vec<i64> = rows.iter().map(|r| r.1).collect();
    assert!(hits.contains(&2) && hits.contains(&0), "hits {hits:?}");
    for (_, _, operators, queries, schema_version) in &rows {
        assert!(*operators >= 1);
        assert_eq!(*queries, 1);
        assert_eq!(*schema_version, c.snapshot().schema_version() as i64);
    }
}

#[test]
fn slow_query_report_renders_captured_dispatches() {
    let c = conn();
    c.set_slow_query_threshold(Some(Duration::from_nanos(1)));
    c.from_q(&table::<i64>("nums")).unwrap();
    c.set_slow_query_threshold(None);

    let slow = c.database().slow_queries();
    assert!(!slow.is_empty());
    let qid = slow[0].query_id;
    let report = c.slow_query_report(qid).expect("captured record");
    assert!(report.contains(&format!("slow query {qid}")));
    assert!(report.contains("-- plan --"));
    assert!(report.contains("-- profile --"));
    assert!(report.contains("nums"), "plan names the scanned table");
    // the dispatch went through prepare: its hash joins ferry.plan_cache
    assert!(report.contains("plan hash"));
    assert!(c.slow_query_report(qid + 1000).is_none());

    // the DSL view agrees: (elapsed_us, plan, plan_hash, query_id,
    // threshold_us, trace)
    let rows: Vec<(i64, String, i64, i64, i64, String)> = c
        .from_q(&table::<(i64, String, i64, i64, i64, String)>(
            "ferry.slow_queries",
        ))
        .unwrap();
    assert_eq!(rows.len(), slow.len());
    assert_eq!(rows[0].3, qid as i64);
    assert_eq!(rows[0].5, "off", "ran untraced below Full");
}

#[test]
fn trace_status_distinguishes_the_none_cases() {
    let c = conn();

    // unknown id: nothing ever dispatched under it
    assert_eq!(c.trace_status_for(999), TraceStatus::UnknownQuery);
    assert!(c.trace_json_for(999).is_none());

    // dispatch without tracing: profiled (Counters) but never traced
    c.set_telemetry_config(TelemetryConfig::Counters);
    c.from_q(&table::<i64>("nums")).unwrap();
    let untraced = c.last_query_id();
    assert_eq!(c.trace_status_for(untraced), TraceStatus::NotTraced);
    assert!(c.trace_json_for(untraced).is_none());

    // dispatch under Full: trace captured, JSON available. Also capture
    // it in the slow-query ring, whose longer retention is what keeps
    // the Evicted/Unknown distinction decidable after the flood below.
    c.set_telemetry_config(TelemetryConfig::Full);
    c.set_slow_query_threshold(Some(Duration::from_nanos(1)));
    c.from_q(&table::<i64>("nums")).unwrap();
    let traced = c.last_query_id();
    c.set_slow_query_threshold(None);
    match c.trace_status_for(traced) {
        TraceStatus::Captured(json) => {
            assert_eq!(Some(json), c.trace_json_for(traced));
        }
        s => panic!("expected Captured, got {s:?}"),
    }

    // flood the bounded trace + profile rings: the trace is evicted, but
    // the slow-query record still proves the dispatch ran traced
    for _ in 0..32 {
        c.from_q(&table::<i64>("nums")).unwrap();
    }
    assert!(c.trace_json_for(traced).is_none());
    assert_eq!(c.trace_status_for(traced), TraceStatus::Evicted);

    // an id past every retention window reads as unknown again — the
    // honest answer, and the reason the enum exists
    assert_eq!(c.trace_status_for(untraced), TraceStatus::UnknownQuery);
}

#[test]
fn explain_analyze_composes_with_system_tables() {
    let c = conn();
    let q = ferry::comp!(
        (name)
        for (kind, name, value) in metrics(),
        if value.ge(&toq(&0i64))
    );
    let out = c.explain_analyze(&q).unwrap();
    assert!(out.contains("ferry.metrics"));
    assert!(out.contains("-- execution profile"));
    assert!(out.contains("-- timeline"));
}

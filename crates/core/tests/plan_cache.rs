//! The prepared-plan cache: hits must be semantically invisible.
//!
//! Three-way oracle (property tested): for any query in the family below,
//! the value computed via a **cache hit** equals the value from a **fresh
//! compile-and-execute** on a new `Connection`, and both equal the
//! **reference interpreter**. Plus unit tests pinning the invalidation
//! policy: catalog schema changes invalidate, row inserts do not
//! (compiled bundles are data-independent), and alpha-equivalent query
//! constructions share one bundle.

use ferry::prelude::*;
use ferry_algebra::{Schema, Ty, Value};
use ferry_engine::Database;
use proptest::prelude::*;

fn database() -> Database {
    let db = Database::new();
    db.create_table("nums", Schema::of(&[("n", Ty::Int)]), vec!["n"])
        .unwrap();
    db.insert(
        "nums",
        vec![
            vec![Value::Int(3)],
            vec![Value::Int(1)],
            vec![Value::Int(4)],
            vec![Value::Int(1)],
            vec![Value::Int(5)],
        ],
    )
    .unwrap();
    db.create_table(
        "emp",
        Schema::of(&[("dept", Ty::Str), ("name", Ty::Str), ("sal", Ty::Int)]),
        vec!["name"],
    )
    .unwrap();
    db.insert(
        "emp",
        vec![
            vec![Value::str("eng"), Value::str("ada"), Value::Int(90)],
            vec![Value::str("eng"), Value::str("bob"), Value::Int(70)],
            vec![Value::str("ops"), Value::str("cy"), Value::Int(50)],
            vec![Value::str("eng"), Value::str("dan"), Value::Int(70)],
            vec![Value::str("hr"), Value::str("eve"), Value::Int(60)],
        ],
    )
    .unwrap();
    db
}

/// A small family of queries indexed by property-test parameters: filter
/// threshold, post-map offset, and which shape (flat map/filter over
/// `nums` vs a nested per-department listing over `emp`).
fn nums_query(thresh: i64, add: i64) -> Q<Vec<i64>> {
    map(
        move |x: Q<i64>| x + toq(&add),
        filter(move |x: Q<i64>| x.lt(&toq(&thresh)), table::<i64>("nums")),
    )
}

fn emp_query(cutoff: i64) -> Q<Vec<(String, Vec<String>)>> {
    let earners = ferry::comp!(
        (pair(dept, name))
        for (dept, name, sal) in table::<(String, String, i64)>("emp"),
        if sal.ge(&toq(&cutoff))
    );
    map(
        |g: Q<Vec<(String, String)>>| {
            pair(
                the(map(|p: Q<(String, String)>| p.fst(), g.clone())),
                map(|p: Q<(String, String)>| p.snd(), g),
            )
        },
        group_with(|p: Q<(String, String)>| p.fst(), earners),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn cache_hit_equals_fresh_compile_equals_interpreter(
        thresh in -1i64..9,
        add in -3i64..4,
    ) {
        let q = nums_query(thresh, add);
        let conn = Connection::new(database());

        let cold = conn.from_q(&q).unwrap();          // miss: full compile
        let warm = conn.from_q(&q).unwrap();          // hit: cached bundle
        let fresh = Connection::new(database()).from_q(&q).unwrap();
        let oracle = conn.interpret(&q).unwrap();

        let stats = conn.database().stats();
        prop_assert_eq!(stats.cache_misses, 1);
        prop_assert!(stats.cache_hits >= 1);
        prop_assert_eq!(&warm, &cold);
        prop_assert_eq!(&fresh, &cold);
        prop_assert_eq!(&oracle, &cold);
    }

    #[test]
    fn nested_query_cache_hit_oracle(cutoff in 40i64..100) {
        let q = emp_query(cutoff);
        let conn = Connection::new(database());
        let prepared = conn.prepare(&q).unwrap();

        let via_prepared = conn.execute(&prepared).unwrap();
        let via_from_q = conn.from_q(&q).unwrap();    // must hit the cache
        let fresh = Connection::new(database()).from_q(&q).unwrap();
        let oracle = conn.interpret(&q).unwrap();

        let stats = conn.database().stats();
        prop_assert_eq!(stats.cache_misses, 1);
        prop_assert_eq!(stats.cache_hits, 1);
        prop_assert_eq!(&via_from_q, &via_prepared);
        prop_assert_eq!(&fresh, &via_prepared);
        prop_assert_eq!(&oracle, &via_prepared);
    }
}

#[test]
fn schema_change_invalidates_the_cache() {
    let conn = Connection::new(database());
    let q = nums_query(10, 0);

    conn.prepare(&q).unwrap();
    conn.prepare(&q).unwrap();
    let stats = conn.database().stats();
    assert_eq!((stats.cache_misses, stats.cache_hits), (1, 1));
    assert_eq!(conn.plan_cache_len(), 1);

    // DDL bumps the schema version: the cached bundle may now be stale
    // (e.g. the new table shadows nothing here, but the runtime cannot
    // know that cheaply), so the next prepare must recompile.
    conn.database()
        .create_table("extra", Schema::of(&[("x", Ty::Int)]), vec!["x"])
        .unwrap();
    conn.prepare(&q).unwrap();
    let stats = conn.database().stats();
    assert_eq!((stats.cache_misses, stats.cache_hits), (2, 1));
    // entries under the old schema version are pruned, not leaked
    assert_eq!(conn.plan_cache_len(), 1);
}

#[test]
fn row_inserts_do_not_invalidate() {
    // compiled bundles are data-independent: only DDL, never DML, may
    // invalidate them (this is what makes prepare-once/execute-many safe)
    let conn = Connection::new(database());
    let q = nums_query(10, 0);
    let prepared = conn.prepare(&q).unwrap();
    assert_eq!(conn.execute(&prepared).unwrap(), vec![1, 1, 3, 4, 5]);

    conn.database()
        .insert("nums", vec![vec![Value::Int(2)]])
        .unwrap();
    conn.prepare(&q).unwrap(); // still a hit
    let stats = conn.database().stats();
    assert_eq!((stats.cache_misses, stats.cache_hits), (1, 1));
    // and the prepared handle sees the new row: plans are views, not
    // snapshots
    assert_eq!(conn.execute(&prepared).unwrap(), vec![1, 1, 2, 3, 4, 5]);
}

#[test]
fn alpha_equivalent_constructions_share_one_bundle() {
    // two builds of "the same" query draw different fresh variables; the
    // de Bruijn cache key must identify them anyway
    let conn = Connection::new(database());
    conn.prepare(&nums_query(4, 1)).unwrap();
    conn.prepare(&nums_query(4, 1)).unwrap(); // fresh AST, same key
    let stats = conn.database().stats();
    assert_eq!((stats.cache_misses, stats.cache_hits), (1, 1));
    assert_eq!(conn.plan_cache_len(), 1);

    // different constants are different queries
    conn.prepare(&nums_query(5, 1)).unwrap();
    assert_eq!(conn.database().stats().cache_misses, 2);
    assert_eq!(conn.plan_cache_len(), 2);
}

#[test]
fn the_cache_is_bounded_with_lru_eviction() {
    let conn = Connection::new(database());
    conn.set_plan_cache_capacity(4);
    // 16 distinct statements through a capacity-4 cache: memory must
    // not grow past the bound (each nums_query constant is its own key)
    for t in 0..16i64 {
        conn.prepare(&nums_query(t, 0)).unwrap();
    }
    assert!(
        conn.plan_cache_len() <= 4,
        "bounded cache grew to {}",
        conn.plan_cache_len()
    );
    assert_eq!(conn.database().stats().cache_misses, 16);

    // the most recent entry survived the churn…
    conn.prepare(&nums_query(15, 0)).unwrap();
    assert_eq!(conn.database().stats().cache_hits, 1);
    // …and an early, evicted one recompiles
    conn.prepare(&nums_query(0, 0)).unwrap();
    assert_eq!(conn.database().stats().cache_misses, 17);

    // shrinking the capacity evicts down to the new bound
    conn.set_plan_cache_capacity(1);
    assert_eq!(conn.plan_cache_len(), 1);
}

#[test]
fn lru_eviction_keeps_recently_used_entries() {
    let conn = Connection::new(database());
    conn.set_plan_cache_capacity(2);
    conn.prepare(&nums_query(1, 0)).unwrap(); // A
    conn.prepare(&nums_query(2, 0)).unwrap(); // B
    conn.prepare(&nums_query(1, 0)).unwrap(); // hit A: now newer than B
    conn.prepare(&nums_query(3, 0)).unwrap(); // C evicts B, not A
    let hits = conn.database().stats().cache_hits;
    conn.prepare(&nums_query(1, 0)).unwrap(); // A still resident
    assert_eq!(conn.database().stats().cache_hits, hits + 1);
    assert_eq!(conn.plan_cache_len(), 2);
}

#[test]
fn clones_share_the_cache() {
    let conn = Connection::new(database());
    let clone = conn.clone();
    conn.prepare(&nums_query(3, 0)).unwrap();
    clone.prepare(&nums_query(3, 0)).unwrap(); // hit via the clone
    let stats = clone.database().stats();
    assert_eq!((stats.cache_misses, stats.cache_hits), (1, 1));
    assert_eq!(clone.plan_cache_len(), 1);

    conn.clear_plan_cache();
    assert_eq!(clone.plan_cache_len(), 0);
}

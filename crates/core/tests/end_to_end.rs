//! End-to-end tests: every combinator compiled via loop-lifting, executed
//! on the engine, stitched, and compared against the reference interpreter
//! (order-sensitive — List Order Preservation, §4.1 of the paper).

use ferry::prelude::*;
use ferry_algebra::{Schema, Ty, Value};
use ferry_engine::Database;

fn conn() -> Connection {
    let db = Database::new();
    db.create_table("nums", Schema::of(&[("n", Ty::Int)]), vec!["n"])
        .unwrap();
    db.insert(
        "nums",
        vec![
            vec![Value::Int(3)],
            vec![Value::Int(1)],
            vec![Value::Int(4)],
            vec![Value::Int(1)],
            vec![Value::Int(5)],
        ],
    )
    .unwrap();
    db.create_table(
        "emp",
        Schema::of(&[("dept", Ty::Str), ("name", Ty::Str), ("sal", Ty::Int)]),
        vec!["name"],
    )
    .unwrap();
    db.insert(
        "emp",
        vec![
            vec![Value::str("eng"), Value::str("ada"), Value::Int(90)],
            vec![Value::str("eng"), Value::str("bob"), Value::Int(70)],
            vec![Value::str("ops"), Value::str("cy"), Value::Int(50)],
            vec![Value::str("eng"), Value::str("dan"), Value::Int(70)],
            vec![Value::str("hr"), Value::str("eve"), Value::Int(60)],
        ],
    )
    .unwrap();
    Connection::new(db)
}

/// Run on the database and on the interpreter; both must agree exactly.
fn check<T: QA + PartialEq + std::fmt::Debug>(conn: &Connection, q: &Q<T>) -> T {
    let db_result = conn.from_q(q).expect("database execution");
    let oracle = conn.interpret(q).expect("interpreter");
    assert_eq!(db_result, oracle, "database vs interpreter mismatch");
    db_result
}

// `nums` has a single column: rows are bare i64 in key (value) order.
fn nums() -> Q<Vec<i64>> {
    table::<i64>("nums")
}

// `emp` columns alphabetically: (dept, name, sal)
fn emp() -> Q<Vec<(String, String, i64)>> {
    table::<(String, String, i64)>("emp")
}

#[test]
fn table_in_key_order() {
    let c = conn();
    assert_eq!(check(&c, &nums()), vec![1, 1, 3, 4, 5]);
}

#[test]
fn map_over_table() {
    let c = conn();
    let q = map(|x: Q<i64>| x + toq(&100i64), nums());
    assert_eq!(check(&c, &q), vec![101, 101, 103, 104, 105]);
}

#[test]
fn filter_preserves_order() {
    let c = conn();
    let q = filter(|x: Q<i64>| x.gt(&toq(&1i64)), nums());
    assert_eq!(check(&c, &q), vec![3, 4, 5]);
}

#[test]
fn constants_round_trip() {
    let c = conn();
    assert_eq!(check(&c, &toq(&42i64)), 42);
    assert_eq!(check(&c, &toq(&"hi".to_string())), "hi");
    assert_eq!(check(&c, &toq(&vec![9i64, 8, 7])), vec![9, 8, 7]);
    assert_eq!(
        check(&c, &toq(&vec![vec![1i64], vec![], vec![2, 3]])),
        vec![vec![1], vec![], vec![2, 3]]
    );
    assert_eq!(
        check(&c, &toq(&(1i64, vec![true, false]))),
        (1, vec![true, false])
    );
}

#[test]
fn nested_result_from_map() {
    // map over a table producing a list per row: [[x, x+1] | x <- nums]
    let c = conn();
    let q = map(|x: Q<i64>| list([x.clone(), x + toq(&1i64)]), nums());
    assert_eq!(
        check(&c, &q),
        vec![vec![1, 2], vec![1, 2], vec![3, 4], vec![4, 5], vec![5, 6]]
    );
}

#[test]
fn concat_and_concat_map() {
    let c = conn();
    let q = concat(map(|x: Q<i64>| list([x.clone(), x]), nums()));
    assert_eq!(check(&c, &q), vec![1, 1, 1, 1, 3, 3, 4, 4, 5, 5]);
    let q2 = concat_map(
        |x: Q<i64>| filter(move |y: Q<i64>| y.le(&x), nums()),
        toq(&vec![1i64, 3]),
    );
    assert_eq!(check(&c, &q2), vec![1, 1, 1, 1, 3]);
}

#[test]
fn group_with_groups_sorted_by_key() {
    let c = conn();
    let q = group_with(|x: Q<i64>| x % toq(&2i64), nums());
    assert_eq!(check(&c, &q), vec![vec![4], vec![1, 1, 3, 5]]);
}

#[test]
fn group_with_on_table_rows() {
    // group employees by department: [[rows]] sorted by dept
    let c = conn();
    let q = group_with(|e: Q<(String, String, i64)>| e.proj3_0(), emp());
    let r = check(&c, &q);
    assert_eq!(r.len(), 3);
    assert_eq!(r[0].len(), 3); // eng
    assert_eq!(r[1][0].1, "eve"); // hr
    assert_eq!(r[2][0].1, "cy"); // ops
}

#[test]
fn sort_with_is_stable() {
    let c = conn();
    // sort employees by salary; ties keep name (key) order
    let q = map(
        |e: Q<(String, String, i64)>| e.proj3_1(),
        sort_with(|e: Q<(String, String, i64)>| e.proj3_2(), emp()),
    );
    assert_eq!(check(&c, &q), vec!["cy", "eve", "bob", "dan", "ada"]);
}

#[test]
fn aggregates_with_defaults_on_empty() {
    let c = conn();
    assert_eq!(check(&c, &sum(nums())), 14);
    assert_eq!(check(&c, &length(emp())), 5);
    assert_eq!(check(&c, &sum(empty::<i64>())), 0);
    assert_eq!(check(&c, &length(empty::<i64>())), 0);
    assert!(check(&c, &null(empty::<i64>())));
    assert!(!check(&c, &null(nums())));
    assert_eq!(check(&c, &maximum(nums())), 5);
    assert_eq!(check(&c, &minimum(nums())), 1);
    assert!(check(&c, &and(empty::<bool>())));
    assert!(!check(&c, &or(empty::<bool>())));
    assert_eq!(check(&c, &avg(nums())), 2.8);
}

#[test]
fn aggregates_lifted_inside_map() {
    // per-department salary sums — aggregates under a lifted lambda
    let c = conn();
    let q = map(
        |g: Q<Vec<(String, String, i64)>>| {
            pair(
                the(map(|e: Q<(String, String, i64)>| e.proj3_0(), g.clone())),
                sum(map(|e: Q<(String, String, i64)>| e.proj3_2(), g)),
            )
        },
        group_with(|e: Q<(String, String, i64)>| e.proj3_0(), emp()),
    );
    assert_eq!(
        check(&c, &q),
        vec![
            ("eng".to_string(), 230),
            ("hr".to_string(), 60),
            ("ops".to_string(), 50)
        ]
    );
}

#[test]
fn empty_groups_inside_map_get_defaults() {
    // for each n in nums: how many employees earn more than 10*n?
    let c = conn();
    let q = map(
        |n: Q<i64>| {
            length(filter(
                move |e: Q<(String, String, i64)>| e.proj3_2().gt(&(n.clone() * toq(&10i64))),
                emp(),
            ))
        },
        nums(),
    );
    assert_eq!(check(&c, &q), vec![5, 5, 5, 5, 4]);
    // ... and with a threshold that empties the filter entirely
    let q2 = map(
        |n: Q<i64>| {
            length(filter(
                move |e: Q<(String, String, i64)>| e.proj3_2().gt(&(n.clone() * toq(&100i64))),
                emp(),
            ))
        },
        nums(),
    );
    assert_eq!(check(&c, &q2), vec![0, 0, 0, 0, 0]);
}

#[test]
fn head_last_tail_init_reverse() {
    let c = conn();
    assert_eq!(check(&c, &head(nums())), 1);
    assert_eq!(check(&c, &last(nums())), 5);
    assert_eq!(check(&c, &tail(nums())), vec![1, 3, 4, 5]);
    assert_eq!(check(&c, &init(nums())), vec![1, 1, 3, 4]);
    assert_eq!(check(&c, &reverse(nums())), vec![5, 4, 3, 1, 1]);
}

#[test]
fn partial_head_on_empty_errors_both_sides() {
    let c = conn();
    let q = head(empty::<i64>());
    assert!(c.from_q(&q).is_err());
    assert!(c.interpret(&q).is_err());
}

#[test]
fn take_drop_index_zip() {
    let c = conn();
    assert_eq!(check(&c, &take(toq(&2i64), nums())), vec![1, 1]);
    assert_eq!(check(&c, &drop(toq(&2i64), nums())), vec![3, 4, 5]);
    assert_eq!(check(&c, &take(toq(&-1i64), nums())), Vec::<i64>::new());
    assert_eq!(check(&c, &drop(toq(&99i64), nums())), Vec::<i64>::new());
    assert_eq!(check(&c, &index(nums(), toq(&2i64))), 3);
    let q = zip(nums(), toq(&vec![10i64, 20]));
    assert_eq!(check(&c, &q), vec![(1, 10), (1, 20)]);
}

#[test]
fn append_cons_literals() {
    let c = conn();
    let q = append(toq(&vec![9i64]), nums());
    assert_eq!(check(&c, &q), vec![9, 1, 1, 3, 4, 5]);
    let q2 = cons(toq(&0i64), nums());
    assert_eq!(check(&c, &q2), vec![0, 1, 1, 3, 4, 5]);
    let q3 = list([sum(nums()), length(nums())]);
    assert_eq!(check(&c, &q3), vec![14, 5]);
}

#[test]
fn append_of_nested_lists_disambiguates_surrogates() {
    let c = conn();
    let a = toq(&vec![vec![1i64, 2]]);
    let b = toq(&vec![vec![3i64], vec![]]);
    let q = append(a, b);
    assert_eq!(check(&c, &q), vec![vec![1, 2], vec![3], vec![]]);
}

#[test]
fn nub_the_number() {
    let c = conn();
    assert_eq!(check(&c, &nub(nums())), vec![1, 3, 4, 5]);
    let q = the(map(|_x: Q<i64>| toq(&7i64), nums()));
    assert_eq!(check(&c, &q), 7);
    let q2 = number(toq(&vec!["a".to_string(), "b".to_string()]));
    assert_eq!(
        check(&c, &q2),
        vec![("a".to_string(), 1), ("b".to_string(), 2)]
    );
}

#[test]
fn unzip_round_trips() {
    let c = conn();
    let q = unzip(zip(nums(), reverse(nums())));
    assert_eq!(check(&c, &q), (vec![1, 1, 3, 4, 5], vec![5, 4, 3, 1, 1]));
}

#[test]
fn conditionals_scalar_and_list() {
    let c = conn();
    let q = cond(
        length(nums()).gt(&toq(&3i64)),
        toq(&"big".to_string()),
        toq(&"small".to_string()),
    );
    assert_eq!(check(&c, &q), "big");
    // per-iteration conditional inside map, with list branches
    let q2 = concat_map(
        |x: Q<i64>| {
            cond(
                (x.clone() % toq(&2i64)).eq(&toq(&1i64)),
                list([x.clone()]),
                empty::<i64>(),
            )
        },
        nums(),
    );
    // odd numbers only (via if, not filter)
    assert_eq!(check(&c, &q2), vec![1, 1, 3, 5]);
}

#[test]
fn any_all_elem() {
    let c = conn();
    assert!(check(&c, &any(|x: Q<i64>| x.gt(&toq(&4i64)), nums())));
    assert!(!check(&c, &all(|x: Q<i64>| x.gt(&toq(&4i64)), nums())));
    assert!(check(&c, &elem(toq(&4i64), nums())));
    assert!(!check(&c, &elem(toq(&9i64), nums())));
}

#[test]
fn tuple_comparisons_are_lexicographic() {
    let c = conn();
    let q = pair(toq(&(1i64, 5i64)), toq(&(2i64, 0i64)));
    let lt = q.fst().lt(&q.snd());
    assert!(check(&c, &lt));
    let p = pair(toq(&(2i64, 0i64)), toq(&(2i64, 0i64)));
    assert!(check(&c, &p.fst().le(&p.snd())));
    assert!(!check(&c, &p.fst().lt(&p.snd())));
}

#[test]
fn arithmetic_and_text() {
    let c = conn();
    assert_eq!(check(&c, &(toq(&7i64) % toq(&3i64))), 1);
    assert_eq!(check(&c, &(-toq(&5i64))), -5);
    assert_eq!(check(&c, &int_to_dbl(toq(&3i64))), 3.0);
    let t = toq(&"a".to_string()).concat(&toq(&"b".to_string()));
    assert_eq!(check(&c, &t), "ab");
}

#[test]
fn deeply_nested_three_levels() {
    let c = conn();
    // [[[x]] | x <- nums] : three list constructors => bundle of 3
    let q = map(|x: Q<i64>| list([list([x])]), nums());
    let bundle = c.compile(&q).unwrap();
    assert_eq!(bundle.queries.len(), 3);
    assert_eq!(
        check(&c, &q),
        vec![
            vec![vec![1]],
            vec![vec![1]],
            vec![vec![3]],
            vec![vec![4]],
            vec![vec![5]]
        ]
    );
}

#[test]
fn tuple_of_lists_result() {
    let c = conn();
    let q = pair(filter(|x: Q<i64>| x.lt(&toq(&3i64)), nums()), emp());
    let bundle = c.compile(&q).unwrap();
    assert_eq!(bundle.queries.len(), 3); // root + 2 lists
    let (small, all_emp) = check(&c, &q);
    assert_eq!(small, vec![1, 1]);
    assert_eq!(all_emp.len(), 5);
}

#[test]
fn comprehension_macro_end_to_end() {
    let c = conn();
    // a join via the comprehension notation
    let q: Q<Vec<(i64, String)>> = ferry::comp!(
        (pair(n.clone(), name))
        for n in nums(),
        for (dept, name, sal) in emp(),
        if sal.eq(&(n.clone() * toq(&10i64))),
        let _unused = dept
    );
    let r = check(&c, &q);
    assert_eq!(r, vec![(5, "cy".to_string())]);
}

#[test]
fn avalanche_safety_query_count_is_type_determined() {
    let c = conn();
    // same type, wildly different data sizes — always the same bundle size
    let q1 = group_with(|x: Q<i64>| x, nums());
    let b1 = c.compile(&q1).unwrap();
    assert_eq!(b1.queries.len(), 2);
    // run it: the engine must have been hit exactly twice
    c.database().reset_stats();
    let _ = c.from_q(&q1).unwrap();
    assert_eq!(c.database().stats().queries, 2);
}

#[test]
fn variables_shared_across_scopes() {
    let c = conn();
    // outer variable used inside a nested lambda (environment lifting)
    let q = concat_map(
        |x: Q<i64>| map(move |y: Q<i64>| y + x.clone(), nums()),
        toq(&vec![100i64, 200]),
    );
    assert_eq!(
        check(&c, &q),
        vec![101, 101, 103, 104, 105, 201, 201, 203, 204, 205]
    );
}

#[test]
fn x_used_twice_self_join() {
    let c = conn();
    let q = map(|x: Q<i64>| x.clone() * x, nums());
    assert_eq!(check(&c, &q), vec![1, 1, 9, 16, 25]);
}

#[test]
fn take_while_drop_while_span() {
    let c = conn();
    // nums in key order: [1, 1, 3, 4, 5]
    let tw = take_while(|x: Q<i64>| x.lt(&toq(&4i64)), nums());
    assert_eq!(check(&c, &tw), vec![1, 1, 3]);
    let dw = drop_while(|x: Q<i64>| x.lt(&toq(&4i64)), nums());
    assert_eq!(check(&c, &dw), vec![4, 5]);
    // predicate never fails → take_while keeps all, drop_while drops all
    let all = take_while(|x: Q<i64>| x.lt(&toq(&99i64)), nums());
    assert_eq!(check(&c, &all), vec![1, 1, 3, 4, 5]);
    let none = drop_while(|x: Q<i64>| x.lt(&toq(&99i64)), nums());
    assert_eq!(check(&c, &none), Vec::<i64>::new());
    // predicate fails immediately
    let zero = take_while(|x: Q<i64>| x.gt(&toq(&99i64)), nums());
    assert_eq!(check(&c, &zero), Vec::<i64>::new());
    // span/break/split_at round-trip the pieces
    let (a, b) = check(&c, &span(|x: Q<i64>| x.le(&toq(&1i64)), nums()));
    assert_eq!((a, b), (vec![1, 1], vec![3, 4, 5]));
    let (a, b) = check(&c, &break_(|x: Q<i64>| x.gt(&toq(&3i64)), nums()));
    assert_eq!((a, b), (vec![1, 1, 3], vec![4, 5]));
    let (a, b) = check(&c, &split_at(toq(&2i64), nums()));
    assert_eq!((a, b), (vec![1, 1], vec![3, 4, 5]));
}

#[test]
fn take_while_inside_map_respects_iterations() {
    let c = conn();
    // per n: the prefix of nums strictly below n
    let q = map(
        |n: Q<i64>| take_while(move |x: Q<i64>| x.lt(&n), nums()),
        toq(&vec![0i64, 2, 9]),
    );
    assert_eq!(check(&c, &q), vec![vec![], vec![1, 1], vec![1, 1, 3, 4, 5]]);
}

#[test]
fn table_errors_surface_at_runtime() {
    // "it is the user's responsibility to make sure that the referenced
    // table does exist … and that type a indeed matches the table's row
    // type — otherwise, an error is thrown at runtime" (§3.1)
    let c = conn();
    let missing = table::<i64>("ghost");
    assert!(matches!(
        c.from_q(&missing),
        Err(ferry::FerryError::Table(_))
    ));
    // wrong arity
    let wrong_arity = table::<(String, String)>("nums");
    assert!(matches!(
        c.from_q(&wrong_arity),
        Err(ferry::FerryError::Table(_))
    ));
    // wrong column type
    let wrong_ty = table::<String>("nums");
    assert!(matches!(
        c.from_q(&wrong_ty),
        Err(ferry::FerryError::Table(_))
    ));
}

#[test]
fn fifth_arity_tuples_work() {
    let c = conn();
    let q = toq(&vec![(1i64, 2i64, 3i64, 4i64, 5i64)]);
    assert_eq!(check(&c, &q), vec![(1, 2, 3, 4, 5)]);
    let p = map(|t: Q<(i64, i64, i64, i64, i64)>| t.proj5_4(), q);
    assert_eq!(check(&c, &p), vec![5]);
}

#[test]
fn unit_values_round_trip_on_the_engine_path() {
    let c = conn();
    let q = toq(&vec![(), ()]);
    assert_eq!(check(&c, &q), vec![(), ()]);
    assert_eq!(check(&c, &length(toq(&vec![(), (), ()]))), 3);
}

#[test]
fn doubles_round_trip() {
    let c = conn();
    let xs = vec![1.5f64, -0.25, 1e10];
    assert_eq!(check(&c, &toq(&xs)), xs);
    assert_eq!(check(&c, &sum(toq(&vec![0.5f64, 0.25]))), 0.75);
    assert_eq!(check(&c, &avg(toq(&vec![1.0f64, 2.0]))), 1.5);
    assert_eq!(
        check(&c, &map(|x: Q<i64>| int_to_dbl(x) / toq(&2.0f64), nums())),
        vec![0.5, 0.5, 1.5, 2.0, 2.5]
    );
}

#[test]
fn option_encoding_round_trips() {
    // sum types are future work in the paper (§5); Option<T> ships here
    // via the tag-plus-payload relational encoding
    let c = conn();
    let xs: Vec<Option<i64>> = vec![Some(3), None, Some(-1)];
    assert_eq!(check(&c, &toq(&xs)), xs);
    // cat_maybes / map_maybe
    assert_eq!(check(&c, &cat_maybes(toq(&xs))), vec![3, -1]);
    let q = map_maybe(
        |x: Q<i64>| {
            cond(
                (x.clone() % toq(&2i64)).eq(&toq(&0i64)),
                some(x.clone() * x),
                none(),
            )
        },
        nums(),
    );
    assert_eq!(check(&c, &q), vec![16]);
}

#[test]
fn option_accessors() {
    let c = conn();
    let s = some(toq(&7i64));
    let n = none::<i64>();
    assert!(check(&c, &s.is_some()));
    assert!(!check(&c, &n.is_some()));
    assert_eq!(check(&c, &s.unwrap_or(&toq(&0i64))), 7);
    assert_eq!(check(&c, &n.unwrap_or(&toq(&42i64))), 42);
    assert_eq!(check(&c, &s.map_or(toq(&0i64), |x| x + toq(&1i64))), 8);
}

#[test]
fn lookup_in_assoc_lists() {
    let c = conn();
    let assoc = toq(&vec![
        ("a".to_string(), 1i64),
        ("b".to_string(), 2),
        ("a".to_string(), 9),
    ]);
    assert_eq!(
        check(&c, &lookup(toq(&"a".to_string()), assoc.clone())),
        Some(1),
        "lookup returns the first match"
    );
    assert_eq!(check(&c, &lookup(toq(&"z".to_string()), assoc)), None);
    // lifted inside a map: per-department head salary lookup
    let q = map(
        |d: Q<String>| {
            lookup(
                d,
                map(
                    |e: Q<(String, String, i64)>| pair(e.proj3_0(), e.proj3_2()),
                    emp(),
                ),
            )
        },
        toq(&vec!["eng".to_string(), "xyz".to_string()]),
    );
    assert_eq!(check(&c, &q), vec![Some(90), None]);
}

ferry::record! {
    /// `emp` rows as a record (fields in alphabetical column order).
    pub struct EmpRow : EmpRowFields {
        pub dept: String,
        pub name: String,
        pub sal: i64,
    }
}

#[test]
fn records_query_tables_directly() {
    // the record derivation of §3.1: a user-defined product type as the
    // row type of `table`, with generated field accessors
    let c = conn();
    let q = map(
        |e: Q<EmpRow>| pair(e.name(), e.sal()),
        filter(
            |e: Q<EmpRow>| e.dept().eq(&toq(&"eng".to_string())),
            table::<EmpRow>("emp"),
        ),
    );
    assert_eq!(
        check(&c, &q),
        vec![
            ("ada".to_string(), 90),
            ("bob".to_string(), 70),
            ("dan".to_string(), 70)
        ]
    );
    // whole records decode too
    let rows: Vec<EmpRow> = c.from_q(&table::<EmpRow>("emp")).unwrap();
    assert_eq!(rows.len(), 5);
    assert_eq!(rows[0].name, "ada");
}

#[test]
fn explain_describes_the_bundle() {
    let c = conn();
    let text = c
        .explain(&group_with(|x: Q<i64>| x % toq(&2i64), nums()))
        .unwrap();
    assert!(text.contains("result type: [[Int]]"), "{text}");
    assert!(text.contains("bundle: 2 queries"), "{text}");
    assert!(text.contains("-- query 2 --"), "{text}");
    assert!(text.contains("serialize"), "{text}");
}

#[test]
fn explain_analyze_renders_the_node_profile() {
    let c = conn();
    let text = c
        .explain_analyze(&group_with(|x: Q<i64>| x % toq(&2i64), nums()))
        .unwrap();
    // everything explain prints, plus the engine's per-node profile
    assert!(text.contains("-- execution profile"), "{text}");
    assert!(text.contains("serialize"), "{text}");
    assert!(text.contains("rows"), "{text}");
    assert!(text.contains("morsels"), "{text}");
    assert!(text.contains("morsel tasks:"), "{text}");
    // every node names its execution path; a 5-row table under VecMode::
    // Auto stays scalar throughout
    assert!(text.contains("scalar"), "{text}");
    assert!(text.contains("vec nodes: 0"), "{text}");
}

#[test]
fn explain_analyze_names_the_vectorized_path() {
    use ferry_engine::{FuseMode, ParConfig, VecMode};
    let c = conn();
    c.set_par_config(ParConfig {
        threads: 1,
        vec: VecMode::Force,
        fuse: FuseMode::Off,
        ..ParConfig::default()
    });
    // `x % 2` forces a Compute node; under VecMode::Force it compiles to
    // a kernel and the profile must say so, batch count included
    let text = c
        .explain_analyze(&map(|x: Q<i64>| x % toq(&2i64), nums()))
        .unwrap();
    assert!(text.contains("vec(1)"), "{text}");
    assert!(text.contains("kernel batches:"), "{text}");
    let vec_line = text
        .lines()
        .find(|l| l.starts_with("parallel waves:"))
        .expect("counter line");
    assert!(!vec_line.contains("vec nodes: 0"), "{text}");
}

#[test]
fn explain_analyze_names_fused_pipelines() {
    use ferry_engine::{FuseMode, ParConfig, VecMode};
    let c = conn();
    c.set_par_config(ParConfig {
        threads: 1,
        vec: VecMode::Force,
        fuse: FuseMode::Force,
        ..ParConfig::default()
    });
    // filter → compute chains into the serialize sink; the profile must
    // name the fusion group and the fused execution path
    let text = c
        .explain_analyze(&map(
            |x: Q<i64>| x % toq(&2i64),
            filter(|x: Q<i64>| x.lt(&toq(&100i64)), nums()),
        ))
        .unwrap();
    assert!(text.contains("pipeline["), "{text}");
    assert!(text.contains("fused("), "{text}");
    let line = text
        .lines()
        .find(|l| l.starts_with("parallel waves:"))
        .expect("counter line");
    assert!(!line.contains("fused pipelines: 0"), "{text}");
}

//! Catalog defects must surface as `FerryError`s, not panics.
//!
//! `Database::install_table` skips `create_table`'s validation (the
//! restore-from-snapshot escape hatch), so the runtime can meet tables
//! whose invariants do not hold: key columns missing from the schema,
//! cells in the engine's surrogate domain that have no DSL value. The
//! interpreter export used to `expect()` its way through these; now it
//! reports them.

use ferry::prelude::*;
use ferry::Val;
use ferry_algebra::{RowBuf, Schema, Ty, Value};
use ferry_engine::{BaseTable, Database};

#[test]
fn missing_key_column_is_an_error_not_a_panic() {
    let db = Database::new();
    db.install_table(
        "broken",
        BaseTable {
            schema: Schema::of(&[("a", Ty::Int)]),
            keys: vec!["zzz".to_string()],
            rows: std::sync::Arc::new(RowBuf::new(vec![vec![Value::Int(1)]])),
            shard: None,
        },
    )
    .unwrap();
    let conn = Connection::new(db);

    let err = conn.interpreter_tables().unwrap_err();
    match &err {
        FerryError::Table(msg) => {
            assert!(msg.contains("key column zzz"), "got: {msg}");
            assert!(msg.contains("broken"), "names the table: {msg}");
        }
        other => panic!("expected FerryError::Table, got {other:?}"),
    }

    // the interpreter path propagates the same error
    let q = table::<i64>("broken");
    assert!(matches!(conn.interpret(&q), Err(FerryError::Table(_))));
}

#[test]
fn non_atomic_cell_is_an_error_not_a_panic() {
    // Nat is the engine's surrogate/order domain — representable in a
    // base table via install_table, but no DSL value corresponds to it
    let db = Database::new();
    db.install_table(
        "odd",
        BaseTable {
            schema: Schema::of(&[("a", Ty::Nat)]),
            keys: vec!["a".to_string()],
            rows: std::sync::Arc::new(RowBuf::new(vec![vec![Value::Nat(7)]])),
            shard: None,
        },
    )
    .unwrap();
    let conn = Connection::new(db);

    let err = conn.interpreter_tables().unwrap_err();
    match &err {
        FerryError::Table(msg) => {
            assert!(msg.contains("odd"), "names the table: {msg}");
            assert!(msg.contains("not an atomic value"), "got: {msg}");
        }
        other => panic!("expected FerryError::Table, got {other:?}"),
    }
}

#[test]
fn healthy_catalog_still_exports() {
    let db = Database::new();
    db.create_table("t", Schema::of(&[("a", Ty::Int)]), vec!["a"])
        .unwrap();
    db.insert("t", vec![vec![Value::Int(2)], vec![Value::Int(1)]])
        .unwrap();
    let conn = Connection::new(db);
    let tables = conn.interpreter_tables().unwrap();
    assert_eq!(
        tables["t"],
        Val::List(vec![Val::Int(1), Val::Int(2)]),
        "rows in key order"
    );
}

//! Loop-lifting: compiling the kernel AST into table algebra.
//!
//! "With a translation technique coined loop-lifting, these list-processing
//! combinators are compiled into an intermediate representation called
//! table algebra" (§3, Fig. 2, step 2). The scheme follows \[13\]:
//!
//! * Every subexpression is compiled relative to a [`rep::Loop`] relation
//!   holding one row per live iteration. A `map (λx → e) xs` does **not**
//!   iterate: it manufactures a *new* loop with one iteration per element
//!   of `xs` (a single `ROW_NUMBER`), lifts the environment into that loop,
//!   and compiles `e` *once* — the relational engine then evaluates all
//!   iterations in one data-parallel bulk operation ("loop-lifting thus
//!   fully realises the independence of the iterated evaluations").
//! * List order is encoded in dense 1-based `pos` columns; nesting is
//!   encoded by surrogate keys ([`rep::Layout::Nested`]).
//! * Aggregates over possibly-empty lists re-attach defaults for the
//!   iterations that vanished from the aggregate's input (`loop − iters`).
//!
//! The compiler only ever generates fresh column names, so the algebra's
//! join/union name disciplines hold by construction; every emitted plan is
//! nevertheless re-validated by `ferry_algebra::validate` before execution.

pub mod cases;
pub mod consts;
pub mod rep;
pub mod unions;

use crate::error::FerryError;
use crate::exp::Exp;
use crate::types::Ty;
use ferry_algebra::{ColName, Dir, Expr, JoinCols, NodeId, Plan, Schema, Value};
use rep::{FlatRep, Layout, ListRep, Loop, Rep};
use std::collections::HashMap;
use std::sync::Arc;

/// Catalog information the compiler needs about a base table.
#[derive(Debug, Clone)]
pub struct TableInfo {
    /// Columns in catalog order.
    pub cols: Vec<(String, ferry_algebra::Ty)>,
    /// Names of the key columns defining canonical row order.
    pub keys: Vec<String>,
}

/// Source of table schemas at compile time (implemented by
/// [`crate::runtime::Connection`]).
pub trait SchemaProvider {
    fn table_info(&self, name: &str) -> Option<TableInfo>;
}

/// Environment: variable → lifted representation.
pub type Env = Vec<(u32, Rep)>;

/// The loop-lifting compiler. One instance per compiled program; owns the
/// growing plan DAG and the fresh-name supply.
pub struct Compiler<'a> {
    pub plan: Plan,
    next_name: u32,
    pub(crate) provider: &'a dyn SchemaProvider,
}

/// Compile a closed kernel term, returning the live compiler (so shredding
/// can keep allocating fresh names), the result representation and the
/// (single-iteration) top-level loop.
pub(crate) fn compile_to_rep<'a>(
    exp: &Exp,
    provider: &'a dyn SchemaProvider,
) -> Result<(Compiler<'a>, Rep, Loop), FerryError> {
    if contains_fun(exp.ty()) {
        return Err(FerryError::Unsupported(format!(
            "result type {} contains a function type",
            exp.ty()
        )));
    }
    let mut c = Compiler {
        plan: Plan::new(),
        next_name: 0,
        provider,
    };
    let lp = c.top_loop();
    let rep = c.compile(exp, &Vec::new(), &lp)?;
    Ok((c, rep, lp))
}

/// Compile a closed kernel term. Returns the plan DAG, the representation
/// of the result, and the (single-iteration) top-level loop.
pub fn compile_rep(
    exp: &Exp,
    provider: &dyn SchemaProvider,
) -> Result<(Plan, Rep, Loop), FerryError> {
    let (c, rep, lp) = compile_to_rep(exp, provider)?;
    Ok((c.plan, rep, lp))
}

fn contains_fun(ty: &Ty) -> bool {
    match ty {
        Ty::Fun(..) => true,
        Ty::Tuple(ts) => ts.iter().any(contains_fun),
        Ty::List(e) => contains_fun(e),
        _ => false,
    }
}

impl<'a> Compiler<'a> {
    /// A fresh column name. Prefixes make plans readable in dumps; the
    /// counter guarantees global uniqueness within a compilation.
    pub fn fresh(&mut self, base: &str) -> ColName {
        let n = self.next_name;
        self.next_name += 1;
        Arc::from(format!("{base}{n}"))
    }

    /// The single-iteration top-level loop: `Lit [(iter = 1)]`.
    pub fn top_loop(&mut self) -> Loop {
        let iter = self.fresh("iter");
        let plan = self.plan.lit(
            Schema::new(vec![(iter.clone(), ferry_algebra::Ty::Nat)]),
            vec![vec![Value::Nat(1)]],
        );
        Loop {
            plan,
            iter: vec![iter],
        }
    }

    // ------------------------------------------------------- projections

    /// Project `plan` to the given columns under fresh names. Duplicates in
    /// `cols` are projected once; the rename map covers every input column.
    pub fn reproject(
        &mut self,
        plan: NodeId,
        cols: &[ColName],
    ) -> (NodeId, HashMap<ColName, ColName>) {
        let mut map: HashMap<ColName, ColName> = HashMap::new();
        let mut proj: Vec<(ColName, ColName)> = Vec::new();
        for c in cols {
            if !map.contains_key(c) {
                let fresh = self.fresh("c");
                map.insert(c.clone(), fresh.clone());
                proj.push((fresh, c.clone()));
            }
        }
        let node = self.plan.project(plan, proj);
        (node, map)
    }

    /// All host-table columns of a list representation.
    pub fn list_cols(lr: &ListRep) -> Vec<ColName> {
        let mut cols: Vec<ColName> = Vec::new();
        for c in &lr.iter {
            if !cols.contains(c) {
                cols.push(c.clone());
            }
        }
        if !cols.contains(&lr.pos) {
            cols.push(lr.pos.clone());
        }
        lr.layout.local_cols(&mut cols);
        cols
    }

    /// All host-table columns of a flat representation.
    pub fn flat_cols_of(fr: &FlatRep) -> Vec<ColName> {
        let mut cols: Vec<ColName> = Vec::new();
        for c in &fr.iter {
            if !cols.contains(c) {
                cols.push(c.clone());
            }
        }
        fr.layout.local_cols(&mut cols);
        cols
    }

    /// Copy a list representation behind a fresh projection (used before
    /// joins to guarantee column-name disjointness even under DAG sharing).
    pub fn reproject_list(&mut self, lr: &ListRep) -> ListRep {
        let cols = Self::list_cols(lr);
        let (node, map) = self.reproject(lr.plan, &cols);
        ListRep {
            plan: node,
            iter: lr.iter.iter().map(|c| map[c].clone()).collect(),
            pos: map[&lr.pos].clone(),
            layout: lr.layout.rename(&map),
        }
    }

    /// Equi-join `l` with a freshly renamed copy of `r` on their iteration
    /// keys. `r_keep` lists additional columns of `r` to carry. Returns the
    /// join node and the rename map for `r`'s columns.
    pub fn join_on_iter(
        &mut self,
        l_plan: NodeId,
        l_iter: &[ColName],
        r_plan: NodeId,
        r_iter: &[ColName],
        r_keep: &[ColName],
    ) -> (NodeId, HashMap<ColName, ColName>) {
        debug_assert_eq!(l_iter.len(), r_iter.len(), "iteration key widths differ");
        let mut keep: Vec<ColName> = r_iter.to_vec();
        for c in r_keep {
            if !keep.contains(c) {
                keep.push(c.clone());
            }
        }
        let (rp, map) = self.reproject(r_plan, &keep);
        let on = JoinCols::new(
            l_iter.to_vec(),
            r_iter.iter().map(|c| map[c].clone()).collect(),
        );
        let node = self.plan.equi_join(l_plan, rp, on);
        (node, map)
    }

    // ------------------------------------------------------ (un)boxing

    /// Unbox a nested component: join the inner element table back through
    /// its surrogate, re-keying it by `host_key` (the paper's *unboxing*
    /// analysis in action, §3.2).
    pub fn unbox(
        &mut self,
        host_plan: NodeId,
        host_key: &[ColName],
        surr: &[ColName],
        inner: &ListRep,
    ) -> ListRep {
        let inner2 = self.reproject_list(inner);
        debug_assert_eq!(surr.len(), inner2.iter.len(), "surrogate width mismatch");
        let on = JoinCols::new(surr.to_vec(), inner2.iter.clone());
        let plan = self.plan.equi_join(host_plan, inner2.plan, on);
        ListRep {
            plan,
            iter: host_key.to_vec(),
            pos: inner2.pos,
            layout: inner2.layout,
        }
    }

    /// Box a list value as a one-row-per-iteration flat value whose layout
    /// is a surrogate link (tuple components of list type, list literals of
    /// list element type).
    pub fn box_list(&mut self, lr: ListRep, lp: &Loop) -> FlatRep {
        let (plan, map) = self.reproject(lp.plan, &lp.iter);
        let iter: Vec<ColName> = lp.iter.iter().map(|c| map[c].clone()).collect();
        FlatRep {
            plan,
            iter: iter.clone(),
            layout: Layout::Nested {
                surr: iter,
                inner: Box::new(lr),
            },
        }
    }

    /// Coerce any representation into a flat one under `lp` (lists get
    /// boxed).
    pub fn as_flat(&mut self, rep: Rep, lp: &Loop) -> FlatRep {
        match rep {
            Rep::Flat(f) => f,
            Rep::List(l) => self.box_list(l, lp),
        }
    }

    /// Assemble a tuple value from component representations (all keyed by
    /// `lp`).
    pub fn tuple_of_reps(&mut self, reps: Vec<Rep>, lp: &Loop) -> FlatRep {
        let (mut plan, map) = self.reproject(lp.plan, &lp.iter);
        let iter: Vec<ColName> = lp.iter.iter().map(|c| map[c].clone()).collect();
        let mut layouts = Vec::with_capacity(reps.len());
        for rep in reps {
            match rep {
                Rep::Flat(f) => {
                    let keep = Self::flat_cols_of(&f);
                    let (jp, rmap) = self.join_on_iter(plan, &iter, f.plan, &f.iter, &keep);
                    plan = jp;
                    layouts.push(f.layout.rename(&rmap));
                }
                Rep::List(l) => {
                    layouts.push(Layout::Nested {
                        surr: iter.clone(),
                        inner: Box::new(l),
                    });
                }
            }
        }
        FlatRep {
            plan,
            iter,
            layout: Layout::Tuple(layouts),
        }
    }

    // ----------------------------------------------------- restriction

    /// Restrict a representation to the iterations of a sub-loop (the
    /// then/else environments of a conditional).
    pub fn restrict_rep(&mut self, rep: &Rep, sub: &Loop) -> Rep {
        let on = |iter: &[ColName]| JoinCols::new(iter.to_vec(), sub.iter.clone());
        match rep {
            Rep::Flat(f) => {
                let plan = self.plan.semi_join(f.plan, sub.plan, on(&f.iter));
                Rep::Flat(FlatRep {
                    plan,
                    iter: f.iter.clone(),
                    layout: f.layout.clone(),
                })
            }
            Rep::List(l) => {
                let plan = self.plan.semi_join(l.plan, sub.plan, on(&l.iter));
                Rep::List(ListRep {
                    plan,
                    iter: l.iter.clone(),
                    pos: l.pos.clone(),
                    layout: l.layout.clone(),
                })
            }
        }
    }

    // ------------------------------------------------------- aggregates

    /// Grouped aggregation over the elements of `xs`, one output row per
    /// iteration. When `default` is given, iterations whose list is empty
    /// (absent from `xs`) are re-attached with the default — the empty-list
    /// cases of `length`/`sum`/`and`/`or`. Without a default the operation
    /// is partial (absent iterations stay absent: `maximum`, `avg`).
    pub fn agg_with_default(
        &mut self,
        xs: &ListRep,
        lp: &Loop,
        fun: ferry_algebra::AggFun,
        input: Option<ColName>,
        default: Option<Value>,
    ) -> FlatRep {
        let out = self.fresh("agg");
        let g = self.plan.group_by(
            xs.plan,
            xs.iter.clone(),
            vec![ferry_algebra::plan::Aggregate {
                fun,
                input,
                output: out.clone(),
            }],
        );
        let Some(d) = default else {
            return FlatRep {
                plan: g,
                iter: xs.iter.clone(),
                layout: Layout::Atom(out),
            };
        };
        // iterations with no elements: loop − π_iter(g)
        let present = self.plan.project_keep(g, &xs.iter);
        let (loop_proj, lmap) = self.reproject(lp.plan, &lp.iter);
        let missing = self.plan.difference(loop_proj, present);
        let filled = self.plan.attach(missing, out.clone(), d);
        // align column names with g's output (iter cols ++ out)
        let mut align: Vec<(ColName, ColName)> = xs
            .iter
            .iter()
            .zip(lp.iter.iter())
            .map(|(g_iter, l_iter)| (g_iter.clone(), lmap[l_iter].clone()))
            .collect();
        align.push((out.clone(), out.clone()));
        let filled = self.plan.project(filled, align);
        let plan = self.plan.union_all(g, filled);
        FlatRep {
            plan,
            iter: xs.iter.clone(),
            layout: Layout::Atom(out),
        }
    }

    // ------------------------------------------------------------- misc

    /// Re-rank positions: a fresh dense 1-based `pos` per iteration,
    /// ordered by the given columns (ascending).
    pub fn rerank(&mut self, lr: ListRep, order: Vec<(ColName, Dir)>) -> ListRep {
        let pos2 = self.fresh("pos");
        let plan = self
            .plan
            .rownum(lr.plan, pos2.clone(), lr.iter.clone(), order);
        ListRep {
            plan,
            iter: lr.iter,
            pos: pos2,
            layout: lr.layout,
        }
    }

    /// `Select` on a list representation, preserving its shape (positions
    /// are *not* re-ranked — callers decide).
    pub fn select_list(&mut self, lr: ListRep, pred: Expr) -> ListRep {
        let plan = self.plan.select(lr.plan, pred);
        ListRep { plan, ..lr }
    }
}

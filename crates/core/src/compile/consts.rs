//! Compiling embedded constants (`toQ` values) to literal tables.
//!
//! An embedded nested value becomes a bundle of `Lit` tables mirroring the
//! relational encoding of Fig. 3: element tables with `pos` columns,
//! nested lists keyed by the (composite) ordinal path of their owner.
//! The literal tables are database-independent; they are replicated per
//! live iteration by a cross join with the `loop` relation.

use super::rep::{FlatRep, Layout, ListRep, Loop, Rep};
use super::Compiler;
use crate::error::FerryError;
use crate::types::{Ty, Val};
use ferry_algebra::{ColName, Schema, Value};

impl<'a> Compiler<'a> {
    /// Compile a constant of arbitrary type under `lp`.
    pub fn compile_const(&mut self, v: &Val, ty: &Ty, lp: &Loop) -> Result<Rep, FerryError> {
        match (v, ty) {
            (v, t) if t.is_atom() => {
                let cell = v.to_cell().ok_or_else(|| {
                    FerryError::IllTyped(format!("constant {v:?} is not of atomic type {t}"))
                })?;
                let col = self.fresh("k");
                let plan = self.plan.attach(lp.plan, col.clone(), cell);
                Ok(Rep::Flat(FlatRep {
                    plan,
                    iter: lp.iter.clone(),
                    layout: Layout::Atom(col),
                }))
            }
            (Val::Tuple(vs), Ty::Tuple(ts)) if vs.len() == ts.len() => {
                let mut reps = Vec::with_capacity(vs.len());
                for (v, t) in vs.iter().zip(ts) {
                    reps.push(self.compile_const(v, t, lp)?);
                }
                Ok(Rep::Flat(self.tuple_of_reps(reps, lp)))
            }
            (Val::List(vs), Ty::List(elem)) => {
                let standalone = self.const_lists(vec![(Vec::new(), vs.clone())], elem)?;
                Ok(Rep::List(self.cross_with_loop(standalone, lp)))
            }
            (v, t) => Err(FerryError::IllTyped(format!(
                "constant {v:?} does not match type {t}"
            ))),
        }
    }

    /// Build one literal element table holding several lists, each
    /// identified by a `Nat` key path. Nested lists recurse with the key
    /// path extended by the owning element's position. The returned
    /// representation is *standalone*: its iteration key is the key path
    /// (empty at the top).
    fn const_lists(
        &mut self,
        keyed: Vec<(Vec<u64>, Vec<Val>)>,
        elem_ty: &Ty,
    ) -> Result<ListRep, FerryError> {
        let key_width = keyed.first().map_or(0, |(k, _)| k.len());
        // schema: key columns, pos, atom columns (flat parts of the element)
        let mut schema: Vec<(ColName, ferry_algebra::Ty)> = Vec::new();
        let mut iter: Vec<ColName> = Vec::new();
        for _ in 0..key_width {
            let c = self.fresh("kk");
            schema.push((c.clone(), ferry_algebra::Ty::Nat));
            iter.push(c);
        }
        let pos = self.fresh("pos");
        schema.push((pos.clone(), ferry_algebra::Ty::Nat));

        // walk the element type, allocating atom columns and collecting
        // nested-list recursion points
        struct NestSpec {
            ty: Ty,
            lists: Vec<(Vec<u64>, Vec<Val>)>,
        }
        fn build_layout(
            c: &mut Compiler,
            ty: &Ty,
            schema: &mut Vec<(ColName, ferry_algebra::Ty)>,
            surr: &[ColName],
            nests: &mut Vec<NestSpec>,
        ) -> Result<Layout, FerryError> {
            match ty {
                t if t.is_atom() => {
                    let col = c.fresh("v");
                    schema.push((col.clone(), t.col_ty().expect("atom")));
                    Ok(Layout::Atom(col))
                }
                Ty::Tuple(ts) => {
                    let mut ls = Vec::with_capacity(ts.len());
                    for t in ts {
                        ls.push(build_layout(c, t, schema, surr, nests)?);
                    }
                    Ok(Layout::Tuple(ls))
                }
                Ty::List(e) => {
                    nests.push(NestSpec {
                        ty: (**e).clone(),
                        lists: Vec::new(),
                    });
                    Ok(Layout::Nested {
                        surr: surr.to_vec(),
                        // placeholder — patched after recursion below
                        inner: Box::new(ListRep {
                            plan: ferry_algebra::NodeId(0),
                            iter: Vec::new(),
                            pos: c.fresh("x"),
                            layout: Layout::Atom(c.fresh("x")),
                        }),
                    })
                }
                t => Err(FerryError::Unsupported(format!("constant of type {t}"))),
            }
        }

        let mut full_surr = iter.clone();
        full_surr.push(pos.clone());
        let mut nests: Vec<NestSpec> = Vec::new();
        let layout = build_layout(self, elem_ty, &mut schema, &full_surr, &mut nests)?;

        // rows: one per element of every keyed list; nested components are
        // collected for the recursive tables
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for (key, elems) in &keyed {
            for (i, elem) in elems.iter().enumerate() {
                let p = i as u64 + 1;
                let mut row: Vec<Value> = key.iter().map(|k| Value::Nat(*k)).collect();
                row.push(Value::Nat(p));
                let mut child_key = key.clone();
                child_key.push(p);
                let mut nest_idx = 0;
                collect_cells(
                    elem,
                    elem_ty,
                    &mut row,
                    &child_key,
                    &mut nests,
                    &mut nest_idx,
                )?;
                rows.push(row);
            }
        }

        fn collect_cells(
            v: &Val,
            ty: &Ty,
            row: &mut Vec<Value>,
            child_key: &[u64],
            nests: &mut [NestSpec],
            nest_idx: &mut usize,
        ) -> Result<(), FerryError> {
            match (v, ty) {
                (v, t) if t.is_atom() => {
                    row.push(
                        v.to_cell()
                            .ok_or_else(|| FerryError::IllTyped(format!("{v:?} is not atomic")))?,
                    );
                    Ok(())
                }
                (Val::Tuple(vs), Ty::Tuple(ts)) if vs.len() == ts.len() => {
                    for (v, t) in vs.iter().zip(ts) {
                        collect_cells(v, t, row, child_key, nests, nest_idx)?;
                    }
                    Ok(())
                }
                (Val::List(vs), Ty::List(_)) => {
                    nests[*nest_idx]
                        .lists
                        .push((child_key.to_vec(), vs.clone()));
                    *nest_idx += 1;
                    Ok(())
                }
                (v, t) => Err(FerryError::IllTyped(format!("{v:?} : {t}"))),
            }
        }

        let plan = self.plan.lit(Schema::new(schema), rows);

        // recurse into nested tables and patch the placeholder layouts;
        // a nested slot with no lists at all still gets an inner table of
        // the right key width (key path of this level plus one ordinal)
        let mut layout = layout;
        let mut nest_iter = nests.into_iter();
        let inner_width = key_width + 1;
        fn patch(
            c: &mut Compiler,
            l: &mut Layout,
            nests: &mut std::vec::IntoIter<NestSpec>,
            inner_width: usize,
        ) -> Result<(), FerryError> {
            match l {
                Layout::Atom(_) => Ok(()),
                Layout::Tuple(ls) => {
                    for l in ls {
                        patch(c, l, nests, inner_width)?;
                    }
                    Ok(())
                }
                Layout::Nested { inner, .. } => {
                    let spec = nests.next().expect("nest spec");
                    let mut lists = spec.lists;
                    if lists.is_empty() {
                        lists.push((vec![0; inner_width], Vec::new()));
                    }
                    let lr = c.const_lists(lists, &spec.ty)?;
                    **inner = lr;
                    Ok(())
                }
            }
        }
        patch(self, &mut layout, &mut nest_iter, inner_width)?;

        Ok(ListRep {
            plan,
            iter,
            pos,
            layout,
        })
    }

    /// Replicate a standalone literal list per live iteration: cross-join
    /// the element table (and, recursively, every inner table) with the
    /// loop relation, prefixing the loop's iteration key to every
    /// surrogate link.
    fn cross_with_loop(&mut self, lr: ListRep, lp: &Loop) -> ListRep {
        let (lpp, lmap) = self.reproject(lp.plan, &lp.iter);
        let lp_cols: Vec<ColName> = lp.iter.iter().map(|c| lmap[c].clone()).collect();
        let plan = self.plan.cross(lpp, lr.plan);
        let mut iter = lp_cols.clone();
        iter.extend(lr.iter.iter().cloned());
        let layout = self.cross_layout(lr.layout, &lp_cols, lp);
        ListRep {
            plan,
            iter,
            pos: lr.pos,
            layout,
        }
    }

    fn cross_layout(&mut self, l: Layout, outer_lp_cols: &[ColName], lp: &Loop) -> Layout {
        match l {
            Layout::Atom(c) => Layout::Atom(c),
            Layout::Tuple(ls) => Layout::Tuple(
                ls.into_iter()
                    .map(|l| self.cross_layout(l, outer_lp_cols, lp))
                    .collect(),
            ),
            Layout::Nested { surr, inner } => {
                let inner = self.cross_with_loop(*inner, lp);
                let mut s = outer_lp_cols.to_vec();
                s.extend(surr);
                Layout::Nested {
                    surr: s,
                    inner: Box::new(inner),
                }
            }
        }
    }

    /// The empty list of the given element type under `lp` — a `Lit` with
    /// zero rows (and empty inner tables for nested element types).
    pub fn empty_list(&mut self, elem_ty: &Ty, lp: &Loop) -> Result<ListRep, FerryError> {
        let standalone = self.const_lists(vec![(Vec::new(), Vec::new())], elem_ty)?;
        Ok(self.cross_with_loop(standalone, lp))
    }
}

//! The loop-lifting compilation rules, one per kernel construct.

use super::rep::{FlatRep, Layout, ListRep, Loop, Rep};
use super::unions::Tab;
use super::{Compiler, Env};
use crate::error::FerryError;
use crate::exp::{Exp, Fun1, Fun2, Prim1, Prim2};
use crate::types::Ty;
use ferry_algebra::{AggFun, BinOp, ColName, Dir, Expr, JoinCols, NodeId, UnOp, Value};
use std::rc::Rc;

/// The inner-loop context a lifted lambda body is compiled in.
struct MapCtx {
    /// The map relation: `xs`'s element table, whose rows are the inner
    /// iterations.
    m: NodeId,
    outer_iter: Vec<ColName>,
    outer_pos: ColName,
    /// The *composite* inner iteration key: `outer_iter ++ [pos]` already
    /// identifies every element uniquely, so no fresh `ROW_NUMBER` is
    /// needed — which both saves a global sort over the (potentially
    /// loop × table sized) element relation and, crucially, leaves no
    /// order-defining operator between later selections and the cross
    /// join they must be pushed into (join recovery, `ferry-optimizer`).
    inner_iter: Vec<ColName>,
    elem_layout: Layout,
    inner_loop: Loop,
}

impl<'a> Compiler<'a> {
    /// Compile `exp` in environment `env` relative to loop `lp`.
    pub fn compile(&mut self, exp: &Exp, env: &Env, lp: &Loop) -> Result<Rep, FerryError> {
        match exp {
            Exp::Const(v, t) => self.compile_const(v, t, lp),
            Exp::Var(x, _) => env
                .iter()
                .rev()
                .find(|(y, _)| y == x)
                .map(|(_, r)| r.clone())
                .ok_or_else(|| FerryError::IllTyped(format!("unbound variable x{x}"))),
            Exp::Tuple(es, _) => {
                let mut reps = Vec::with_capacity(es.len());
                for e in es {
                    reps.push(self.compile(e, env, lp)?);
                }
                Ok(Rep::Flat(self.tuple_of_reps(reps, lp)))
            }
            Exp::ListE(es, t) => self.compile_list_lit(es, t, env, lp),
            Exp::Table(name, t) => self.compile_table(name, t, lp),
            Exp::Lam(..) => Err(FerryError::Unsupported(
                "first-class functions (lambda outside a combinator argument)".into(),
            )),
            Exp::Prim2(op, a, b, t) => self.compile_prim2(*op, a, b, t, env, lp),
            Exp::Prim1(op, e, _) => self.compile_prim1(*op, e, env, lp),
            Exp::If(c, th, el, _) => self.compile_if(c, th, el, env, lp),
            Exp::Proj(i, e, _) => self.compile_proj(*i, e, env, lp),
            Exp::App1(f, e, t) => self.compile_app1(*f, e, t, env, lp),
            Exp::App2(f, a, b, t) => self.compile_app2(*f, a, b, t, env, lp),
        }
    }

    // ------------------------------------------------------------ tables

    fn compile_table(&mut self, name: &str, ty: &Ty, lp: &Loop) -> Result<Rep, FerryError> {
        let info = self
            .provider
            .table_info(name)
            .ok_or_else(|| FerryError::Table(format!("no such table: {name}")))?;
        // the DSL row tuple corresponds to the columns in alphabetical
        // order (§2: "ordered alphabetically by column name")
        let mut alpha: Vec<usize> = (0..info.cols.len()).collect();
        alpha.sort_by(|&i, &j| info.cols[i].0.cmp(&info.cols[j].0));
        let row_ty = ty
            .elem()
            .ok_or_else(|| FerryError::IllTyped(format!("table {name} at type {ty}")))?;
        let expected: Vec<Ty> = match row_ty {
            Ty::Tuple(ts) => ts.clone(),
            t => vec![t.clone()],
        };
        if expected.len() != info.cols.len() {
            return Err(FerryError::Table(format!(
                "table {name} has {} columns, row type {row_ty} expects {}",
                info.cols.len(),
                expected.len()
            )));
        }
        for (dsl_ty, &ci) in expected.iter().zip(&alpha) {
            let want = dsl_ty.col_ty().ok_or_else(|| {
                FerryError::Table(format!("table {name}: non-atomic row component {dsl_ty}"))
            })?;
            if want != info.cols[ci].1 {
                return Err(FerryError::Table(format!(
                    "table {name}: column {} is {}, row type expects {}",
                    info.cols[ci].0, info.cols[ci].1, want
                )));
            }
        }
        // plan-local fresh names, positionally matching the catalog order
        let plan_cols: Vec<(ColName, ferry_algebra::Ty)> = info
            .cols
            .iter()
            .map(|(_, t)| (self.fresh("t"), *t))
            .collect();
        let name_of = |ci: usize| plan_cols[ci].0.clone();
        let keys: Vec<ColName> = if info.keys.is_empty() {
            plan_cols.iter().map(|(c, _)| c.clone()).collect()
        } else {
            info.keys
                .iter()
                .map(|k| {
                    let ci = info.cols.iter().position(|(n, _)| n == k).expect("key col");
                    name_of(ci)
                })
                .collect()
        };
        let t_node = self.plan.table(name, plan_cols.clone(), keys.clone());
        // canonical row order: the key columns ascending (Fig. 3a's pos)
        let pos = self.fresh("pos");
        let order: Vec<(ColName, Dir)> = keys.iter().map(|k| (k.clone(), Dir::Asc)).collect();
        let numbered = self.plan.rownum(t_node, pos.clone(), vec![], order);
        // replicate for every live iteration
        let (lpp, lmap) = self.reproject(lp.plan, &lp.iter);
        let iter: Vec<ColName> = lp.iter.iter().map(|c| lmap[c].clone()).collect();
        let plan = self.plan.cross(lpp, numbered);
        let comps: Vec<Layout> = alpha.iter().map(|&ci| Layout::Atom(name_of(ci))).collect();
        let layout = if comps.len() == 1 {
            comps.into_iter().next().unwrap()
        } else {
            Layout::Tuple(comps)
        };
        Ok(Rep::List(ListRep {
            plan,
            iter,
            pos,
            layout,
        }))
    }

    // ----------------------------------------------------- list literals

    fn compile_list_lit(
        &mut self,
        es: &[Rc<Exp>],
        ty: &Ty,
        env: &Env,
        lp: &Loop,
    ) -> Result<Rep, FerryError> {
        let elem_ty = ty
            .elem()
            .ok_or_else(|| FerryError::IllTyped(format!("list literal at {ty}")))?;
        if es.is_empty() {
            return Ok(Rep::List(self.empty_list(elem_ty, lp)?));
        }
        // each element: a one-row-per-iteration table with its constant pos
        let mut acc: Option<Tab> = None;
        for (i, e) in es.iter().enumerate() {
            let rep = self.compile(e, env, lp)?;
            let flat = self.as_flat(rep, lp);
            let pos = self.fresh("pos");
            let plan = self
                .plan
                .attach(flat.plan, pos.clone(), Value::Nat(i as u64 + 1));
            let mut prefix = flat.iter.clone();
            prefix.push(pos);
            let tab = Tab {
                plan,
                prefix,
                layout: flat.layout,
            };
            acc = Some(match acc {
                None => tab,
                Some(prev) => self.union_tabs(prev, tab).0,
            });
        }
        Ok(Rep::List(acc.expect("non-empty").into_list()))
    }

    // ---------------------------------------------------------- scalars

    fn compile_prim2(
        &mut self,
        op: Prim2,
        a: &Exp,
        b: &Exp,
        ty: &Ty,
        env: &Env,
        lp: &Loop,
    ) -> Result<Rep, FerryError> {
        if !a.ty().is_flat() {
            return Err(FerryError::Unsupported(format!(
                "{op:?} on non-flat operands of type {} (deep comparison of nested \
                 lists is not database-executable)",
                a.ty()
            )));
        }
        let ra = self.compile(a, env, lp)?.expect_flat();
        let rb = self.compile(b, env, lp)?.expect_flat();
        // operands over the same relation need no join at all
        let (jp, lb) = if ra.plan == rb.plan && ra.iter == rb.iter {
            (ra.plan, rb.layout.clone())
        } else {
            let keep = Self::flat_cols_of(&rb);
            let (jp, rmap) = self.join_on_iter(ra.plan, &ra.iter, rb.plan, &rb.iter, &keep);
            (jp, rb.layout.rename(&rmap))
        };
        let expr = prim2_expr(op, &ra.layout, &lb)?;
        let col = self.fresh("o");
        let plan = self.plan.compute(jp, col.clone(), expr);
        debug_assert!(ty.is_atom());
        Ok(Rep::Flat(FlatRep {
            plan,
            iter: ra.iter,
            layout: Layout::Atom(col),
        }))
    }

    fn compile_prim1(
        &mut self,
        op: Prim1,
        e: &Exp,
        env: &Env,
        lp: &Loop,
    ) -> Result<Rep, FerryError> {
        let r = self.compile(e, env, lp)?.expect_flat();
        let src = r.layout.atom().clone();
        let expr = match op {
            Prim1::Not => Expr::not(Expr::Col(src)),
            Prim1::Neg => Expr::Un(UnOp::Neg, std::sync::Arc::new(Expr::Col(src))),
            Prim1::IntToDbl => Expr::cast(ferry_algebra::Ty::Dbl, Expr::Col(src)),
        };
        let col = self.fresh("o");
        let plan = self.plan.compute(r.plan, col.clone(), expr);
        Ok(Rep::Flat(FlatRep {
            plan,
            iter: r.iter,
            layout: Layout::Atom(col),
        }))
    }

    // ------------------------------------------------------ conditionals

    fn compile_if(
        &mut self,
        c: &Exp,
        th: &Exp,
        el: &Exp,
        env: &Env,
        lp: &Loop,
    ) -> Result<Rep, FerryError> {
        let rc = self.compile(c, env, lp)?.expect_flat();
        let ccol = rc.layout.atom().clone();
        // Guard fast path: `if p then e else []` (the desugaring of a
        // comprehension guard) needs no branch union at all — for a
        // list-typed result, an absent iteration already *is* the empty
        // list, so the kept branch restricted to the iterations where the
        // condition holds is the whole answer.
        let is_empty_lit = |e: &Exp| matches!(e, Exp::ListE(es, _) if es.is_empty());
        if matches!(th.ty(), Ty::List(_)) && (is_empty_lit(el) || is_empty_lit(th)) {
            let keep_then = is_empty_lit(el);
            let pred = if keep_then {
                Expr::Col(ccol.clone())
            } else {
                Expr::not(Expr::Col(ccol.clone()))
            };
            let sel = self.plan.select(rc.plan, pred);
            let (plan, map) = self.reproject(sel, &rc.iter);
            let sub = Loop {
                plan,
                iter: rc.iter.iter().map(|c| map[c].clone()).collect(),
            };
            let env2: Env = env
                .iter()
                .map(|(x, r)| (*x, self.restrict_rep(r, &sub)))
                .collect();
            let kept = if keep_then { th } else { el };
            return self.compile(kept, &env2, &sub);
        }
        // split the loop into the iterations where c holds / fails
        let sub = |want: bool, comp: &mut Compiler| -> Loop {
            let pred = if want {
                Expr::Col(ccol.clone())
            } else {
                Expr::not(Expr::Col(ccol.clone()))
            };
            let sel = comp.plan.select(rc.plan, pred);
            let (plan, map) = comp.reproject(sel, &rc.iter);
            Loop {
                plan,
                iter: rc.iter.iter().map(|c| map[c].clone()).collect(),
            }
        };
        let loop_t = sub(true, self);
        let loop_e = sub(false, self);
        let restrict = |comp: &mut Compiler, sub: &Loop, env: &Env| -> Env {
            env.iter()
                .map(|(x, r)| (*x, comp.restrict_rep(r, sub)))
                .collect()
        };
        let env_t = restrict(self, &loop_t, env);
        let env_e = restrict(self, &loop_e, env);
        let rt = self.compile(th, &env_t, &loop_t)?;
        let re = self.compile(el, &env_e, &loop_e)?;
        match (rt, re) {
            (Rep::Flat(ft), Rep::Flat(fe)) => {
                let (tab, _tag) = self.union_tabs(
                    Tab {
                        plan: ft.plan,
                        prefix: ft.iter,
                        layout: ft.layout,
                    },
                    Tab {
                        plan: fe.plan,
                        prefix: fe.iter,
                        layout: fe.layout,
                    },
                );
                Ok(Rep::Flat(FlatRep {
                    plan: tab.plan,
                    iter: tab.prefix,
                    layout: tab.layout,
                }))
            }
            (Rep::List(lt), Rep::List(le)) => {
                let (tab, _tag) = self.union_tabs(Tab::of_list(&lt), Tab::of_list(&le));
                Ok(Rep::List(tab.into_list()))
            }
            _ => Err(FerryError::IllTyped(
                "if branches of different kinds".into(),
            )),
        }
    }

    // ------------------------------------------------------- projections

    fn compile_proj(&mut self, i: usize, e: &Exp, env: &Env, lp: &Loop) -> Result<Rep, FerryError> {
        let r = self.compile(e, env, lp)?.expect_flat();
        let comp = r
            .layout
            .tuple()
            .get(i)
            .cloned()
            .ok_or_else(|| FerryError::IllTyped(format!("projection {i} out of bounds")))?;
        match comp {
            Layout::Nested { surr, inner } => {
                Ok(Rep::List(self.unbox(r.plan, &r.iter, &surr, &inner)))
            }
            layout => Ok(Rep::Flat(FlatRep {
                plan: r.plan,
                iter: r.iter,
                layout,
            })),
        }
    }

    // ------------------------------------------------------- map family

    /// Prepare the inner loop of a lifted lambda over the elements of `xs`:
    /// give every element a fresh iteration id in one `ROW_NUMBER`.
    fn map_begin(&mut self, xs: &ListRep) -> MapCtx {
        let mut inner_iter = xs.iter.clone();
        inner_iter.push(xs.pos.clone());
        let m = xs.plan;
        let loop_plan = self.plan.project_keep(m, &inner_iter);
        MapCtx {
            m,
            outer_iter: xs.iter.clone(),
            outer_pos: xs.pos.clone(),
            inner_iter: inner_iter.clone(),
            elem_layout: xs.layout.clone(),
            inner_loop: Loop {
                plan: loop_plan,
                iter: inner_iter,
            },
        }
    }

    /// The lambda argument's representation inside the inner loop.
    fn elem_rep(&mut self, ctx: &MapCtx, elem_ty: &Ty) -> Rep {
        match (&ctx.elem_layout, elem_ty) {
            (Layout::Nested { surr, inner }, Ty::List(_)) => {
                Rep::List(self.unbox(ctx.m, &ctx.inner_iter, surr, inner))
            }
            (layout, _) => Rep::Flat(FlatRep {
                plan: ctx.m,
                iter: ctx.inner_iter.clone(),
                layout: layout.clone(),
            }),
        }
    }

    /// Lift every environment entry into the inner loop: replicate each
    /// binding per element via a join through the map relation.
    fn lift_env(&mut self, env: &Env, ctx: &MapCtx) -> Env {
        env.iter()
            .map(|(x, rep)| {
                // join against the map relation itself (not a narrowed
                // projection): the lifted binding keeps the full element
                // row on its left spine, which lets `filter` select in
                // place and lets the optimizer's join recovery see through
                // to the generators
                let lifted = match rep {
                    Rep::Flat(f) => {
                        let keep = Self::flat_cols_of(f);
                        let (jp, rmap) =
                            self.join_on_iter(ctx.m, &ctx.outer_iter, f.plan, &f.iter, &keep);
                        Rep::Flat(FlatRep {
                            plan: jp,
                            iter: ctx.inner_iter.clone(),
                            layout: f.layout.rename(&rmap),
                        })
                    }
                    Rep::List(l) => {
                        let keep = Self::list_cols(l);
                        let (jp, rmap) =
                            self.join_on_iter(ctx.m, &ctx.outer_iter, l.plan, &l.iter, &keep);
                        Rep::List(ListRep {
                            plan: jp,
                            iter: ctx.inner_iter.clone(),
                            pos: rmap[&l.pos].clone(),
                            layout: l.layout.rename(&rmap),
                        })
                    }
                };
                (*x, lifted)
            })
            .collect()
    }

    /// Compile a lifted lambda body over the elements of `xs`; returns the
    /// map context and the body's representation (keyed by the inner
    /// iteration id).
    fn lift_lambda(
        &mut self,
        lam: &Exp,
        xs: &ListRep,
        env: &Env,
    ) -> Result<(MapCtx, Rep), FerryError> {
        let Exp::Lam(x, body, lam_ty) = lam else {
            return Err(FerryError::IllTyped(format!(
                "combinator expects a lambda, got {lam}"
            )));
        };
        let Ty::Fun(arg_ty, _) = lam_ty else {
            return Err(FerryError::IllTyped("lambda with non-function type".into()));
        };
        let ctx = self.map_begin(xs);
        let arg = self.elem_rep(&ctx, arg_ty);
        let mut env2 = self.lift_env(env, &ctx);
        env2.push((*x, arg));
        let inner_loop = ctx.inner_loop.clone();
        let rb = self.compile(body, &env2, &inner_loop)?;
        Ok((ctx, rb))
    }

    /// Join a flat body result back through the map relation, recovering
    /// the outer (iter, pos) of each element.
    fn map_join_back(&mut self, ctx: &MapCtx, body: FlatRep) -> ListRep {
        let keep = Self::flat_cols_of(&body);
        let (jp, rmap) = self.join_on_iter(ctx.m, &ctx.inner_iter, body.plan, &body.iter, &keep);
        ListRep {
            plan: jp,
            iter: ctx.outer_iter.clone(),
            pos: ctx.outer_pos.clone(),
            layout: body.layout.rename(&rmap),
        }
    }

    fn compile_map(&mut self, lam: &Exp, xs: ListRep, env: &Env) -> Result<ListRep, FerryError> {
        let (ctx, rb) = self.lift_lambda(lam, &xs, env)?;
        Ok(match rb {
            Rep::Flat(f) => self.map_join_back(&ctx, f),
            Rep::List(inner) => ListRep {
                // each element's value is itself a list: box it behind the
                // inner iteration key — no join needed (§3.2, surrogates)
                plan: ctx.m,
                iter: ctx.outer_iter.clone(),
                pos: ctx.outer_pos.clone(),
                layout: Layout::Nested {
                    surr: ctx.inner_iter.clone(),
                    inner: Box::new(inner),
                },
            },
        })
    }

    /// `concat`: splice inner lists in outer-pos-major order.
    fn compile_concat(&mut self, xss: ListRep) -> Result<ListRep, FerryError> {
        let Layout::Nested { surr, inner } = &xss.layout else {
            return Err(FerryError::IllTyped("concat on non-nested layout".into()));
        };
        let inner2 = self.reproject_list(inner);
        let on = JoinCols::new(surr.clone(), inner2.iter.clone());
        let plan = self.plan.equi_join(xss.plan, inner2.plan, on);
        let joined = ListRep {
            plan,
            iter: xss.iter.clone(),
            pos: inner2.pos.clone(),
            layout: inner2.layout,
        };
        Ok(self.rerank(
            joined,
            vec![(xss.pos.clone(), Dir::Asc), (inner2.pos, Dir::Asc)],
        ))
    }

    // --------------------------------------------------------- App1 / App2

    fn compile_app1(
        &mut self,
        f: Fun1,
        e: &Exp,
        _ty: &Ty,
        env: &Env,
        lp: &Loop,
    ) -> Result<Rep, FerryError> {
        use Fun1::*;
        let xs = self.compile(e, env, lp)?.expect_list();
        match f {
            Concat => Ok(Rep::List(self.compile_concat(xs)?)),
            Head | The => {
                let plan = self.plan.select(
                    xs.plan,
                    Expr::eq(Expr::Col(xs.pos.clone()), Expr::lit(Value::Nat(1))),
                );
                Ok(Rep::Flat(FlatRep {
                    plan,
                    iter: xs.iter,
                    layout: xs.layout,
                }))
            }
            Last => {
                let fr = self.at_extreme_pos(&xs, AggFun::Max)?;
                Ok(Rep::Flat(fr))
            }
            Tail => Ok(Rep::List(self.compile_tail(xs))),
            Init => {
                // keep pos < max(pos); density is preserved (1..n-1)
                let mx = self.fresh("mx");
                let g = self.plan.group_by(
                    xs.plan,
                    xs.iter.clone(),
                    vec![ferry_algebra::plan::Aggregate {
                        fun: AggFun::Max,
                        input: Some(xs.pos.clone()),
                        output: mx.clone(),
                    }],
                );
                let (jp, rmap) =
                    self.join_on_iter(xs.plan, &xs.iter, g, &xs.iter, std::slice::from_ref(&mx));
                let plan = self.plan.select(
                    jp,
                    Expr::bin(
                        BinOp::Lt,
                        Expr::Col(xs.pos.clone()),
                        Expr::Col(rmap[&mx].clone()),
                    ),
                );
                Ok(Rep::List(ListRep { plan, ..xs }))
            }
            Reverse => {
                let order = vec![(xs.pos.clone(), Dir::Desc)];
                Ok(Rep::List(self.rerank(xs, order)))
            }
            Length => Ok(Rep::Flat(self.agg_with_default(
                &xs,
                lp,
                AggFun::CountAll,
                None,
                Some(Value::Int(0)),
            ))),
            Null => {
                let len =
                    self.agg_with_default(&xs, lp, AggFun::CountAll, None, Some(Value::Int(0)));
                let col = self.fresh("o");
                let plan = self.plan.compute(
                    len.plan,
                    col.clone(),
                    Expr::eq(Expr::Col(len.layout.atom().clone()), Expr::lit(0i64)),
                );
                Ok(Rep::Flat(FlatRep {
                    plan,
                    iter: len.iter,
                    layout: Layout::Atom(col),
                }))
            }
            Sum => {
                let item = xs.layout.atom().clone();
                let zero = match e.ty().elem() {
                    Some(Ty::Dbl) => Value::Dbl(0.0),
                    _ => Value::Int(0),
                };
                Ok(Rep::Flat(self.agg_with_default(
                    &xs,
                    lp,
                    AggFun::Sum,
                    Some(item),
                    Some(zero),
                )))
            }
            Avg => {
                let item = xs.layout.atom().clone();
                Ok(Rep::Flat(self.agg_with_default(
                    &xs,
                    lp,
                    AggFun::Avg,
                    Some(item),
                    None,
                )))
            }
            Maximum => {
                let item = xs.layout.atom().clone();
                Ok(Rep::Flat(self.agg_with_default(
                    &xs,
                    lp,
                    AggFun::Max,
                    Some(item),
                    None,
                )))
            }
            Minimum => {
                let item = xs.layout.atom().clone();
                Ok(Rep::Flat(self.agg_with_default(
                    &xs,
                    lp,
                    AggFun::Min,
                    Some(item),
                    None,
                )))
            }
            And => {
                let item = xs.layout.atom().clone();
                Ok(Rep::Flat(self.agg_with_default(
                    &xs,
                    lp,
                    AggFun::All,
                    Some(item),
                    Some(Value::Bool(true)),
                )))
            }
            Or => {
                let item = xs.layout.atom().clone();
                Ok(Rep::Flat(self.agg_with_default(
                    &xs,
                    lp,
                    AggFun::Any,
                    Some(item),
                    Some(Value::Bool(false)),
                )))
            }
            Nub => {
                if !xs.layout.is_flat() {
                    return Err(FerryError::Unsupported(
                        "nub over non-flat element types".into(),
                    ));
                }
                let mut keys = xs.iter.clone();
                keys.extend(xs.layout.flat_cols());
                let p0 = self.fresh("p0");
                let g = self.plan.group_by(
                    xs.plan,
                    keys,
                    vec![ferry_algebra::plan::Aggregate {
                        fun: AggFun::Min,
                        input: Some(xs.pos.clone()),
                        output: p0.clone(),
                    }],
                );
                let lr = ListRep {
                    plan: g,
                    iter: xs.iter,
                    pos: p0.clone(),
                    layout: xs.layout,
                };
                let order = vec![(p0, Dir::Asc)];
                Ok(Rep::List(self.rerank(lr, order)))
            }
            Unzip => {
                let comps = xs.layout.tuple().to_vec();
                if comps.len() != 2 {
                    return Err(FerryError::IllTyped("unzip on non-pair".into()));
                }
                let (plan, map) = self.reproject(lp.plan, &lp.iter);
                let iter: Vec<ColName> = lp.iter.iter().map(|c| map[c].clone()).collect();
                let nested = |layout: Layout, xs: &ListRep, iter: &[ColName]| Layout::Nested {
                    surr: iter.to_vec(),
                    inner: Box::new(ListRep {
                        plan: xs.plan,
                        iter: xs.iter.clone(),
                        pos: xs.pos.clone(),
                        layout,
                    }),
                };
                let l0 = nested(comps[0].clone(), &xs, &iter);
                let l1 = nested(comps[1].clone(), &xs, &iter);
                Ok(Rep::Flat(FlatRep {
                    plan,
                    iter,
                    layout: Layout::Tuple(vec![l0, l1]),
                }))
            }
            Number => {
                let idx = self.fresh("ix");
                let plan = self.plan.compute(
                    xs.plan,
                    idx.clone(),
                    Expr::cast(ferry_algebra::Ty::Int, Expr::Col(xs.pos.clone())),
                );
                Ok(Rep::List(ListRep {
                    plan,
                    iter: xs.iter,
                    pos: xs.pos,
                    layout: Layout::Tuple(vec![xs.layout, Layout::Atom(idx)]),
                }))
            }
        }
    }

    /// The element at the extreme position (MIN/MAX of `pos`) of each list.
    fn at_extreme_pos(&mut self, xs: &ListRep, agg: AggFun) -> Result<FlatRep, FerryError> {
        let mx = self.fresh("mx");
        let g = self.plan.group_by(
            xs.plan,
            xs.iter.clone(),
            vec![ferry_algebra::plan::Aggregate {
                fun: agg,
                input: Some(xs.pos.clone()),
                output: mx.clone(),
            }],
        );
        let (jp, rmap) =
            self.join_on_iter(xs.plan, &xs.iter, g, &xs.iter, std::slice::from_ref(&mx));
        let plan = self.plan.select(
            jp,
            Expr::eq(Expr::Col(xs.pos.clone()), Expr::Col(rmap[&mx].clone())),
        );
        Ok(FlatRep {
            plan,
            iter: xs.iter.clone(),
            layout: xs.layout.clone(),
        })
    }

    fn compile_app2(
        &mut self,
        f: Fun2,
        a: &Rc<Exp>,
        b: &Rc<Exp>,
        _ty: &Ty,
        env: &Env,
        lp: &Loop,
    ) -> Result<Rep, FerryError> {
        use Fun2::*;
        match f {
            Map => {
                let xs = self.compile(b, env, lp)?.expect_list();
                Ok(Rep::List(self.compile_map(a, xs, env)?))
            }
            ConcatMap => {
                let xs = self.compile(b, env, lp)?.expect_list();
                let mapped = self.compile_map(a, xs, env)?;
                Ok(Rep::List(self.compile_concat(mapped)?))
            }
            Filter => {
                let xs = self.compile(b, env, lp)?.expect_list();
                let (ctx, rb) = self.lift_lambda(a, &xs, env)?;
                let pb = rb.expect_flat();
                // when the predicate's plan still carries the element row
                // (the common case with left-spine lifting), select in
                // place — no join back through the map relation
                let plan = if self.plan_has_cols(pb.plan, &ctx, &pb.iter) {
                    self.plan
                        .select(pb.plan, Expr::Col(pb.layout.atom().clone()))
                } else {
                    let keep = Self::flat_cols_of(&pb);
                    let (jp, rmap) =
                        self.join_on_iter(ctx.m, &ctx.inner_iter, pb.plan, &pb.iter, &keep);
                    self.plan
                        .select(jp, Expr::Col(rmap[pb.layout.atom()].clone()))
                };
                let lr = ListRep {
                    plan,
                    iter: ctx.outer_iter.clone(),
                    pos: ctx.outer_pos.clone(),
                    layout: ctx.elem_layout.clone(),
                };
                let order = vec![(ctx.outer_pos.clone(), Dir::Asc)];
                Ok(Rep::List(self.rerank(lr, order)))
            }
            GroupWith | SortWith => {
                let xs = self.compile(b, env, lp)?.expect_list();
                let (ctx, rb) = self.lift_lambda(a, &xs, env)?;
                let kb = rb.expect_flat();
                if !kb.layout.is_flat() {
                    return Err(FerryError::Unsupported(
                        "group/sort key must be a flat type".into(),
                    ));
                }
                let keep = Self::flat_cols_of(&kb);
                let (jp, rmap) =
                    self.join_on_iter(ctx.m, &ctx.inner_iter, kb.plan, &kb.iter, &keep);
                let kcols: Vec<ColName> = kb
                    .layout
                    .flat_cols()
                    .iter()
                    .map(|c| rmap[c].clone())
                    .collect();
                if f == SortWith {
                    let mut order: Vec<(ColName, Dir)> =
                        kcols.iter().map(|c| (c.clone(), Dir::Asc)).collect();
                    order.push((ctx.outer_pos.clone(), Dir::Asc));
                    let lr = ListRep {
                        plan: jp,
                        iter: ctx.outer_iter.clone(),
                        pos: ctx.outer_pos.clone(),
                        layout: ctx.elem_layout.clone(),
                    };
                    return Ok(Rep::List(self.rerank(lr, order)));
                }
                // group_with: surrogates per (iter, key) via DENSE_RANK
                let surr = self.fresh("grp");
                let mut order: Vec<(ColName, Dir)> = ctx
                    .outer_iter
                    .iter()
                    .map(|c| (c.clone(), Dir::Asc))
                    .collect();
                order.extend(kcols.iter().map(|c| (c.clone(), Dir::Asc)));
                let ranked = self.plan.dense_rank(jp, surr.clone(), vec![], order);
                // outer list: one row per group, ordered by key
                let mut outer_cols = ctx.outer_iter.clone();
                outer_cols.extend(kcols.iter().cloned());
                outer_cols.push(surr.clone());
                let outer_proj = self.plan.project_keep(ranked, &outer_cols);
                let outer_dist = self.plan.distinct(outer_proj);
                let opos = self.fresh("pos");
                let outer = self.plan.rownum(
                    outer_dist,
                    opos.clone(),
                    ctx.outer_iter.clone(),
                    kcols.iter().map(|c| (c.clone(), Dir::Asc)).collect(),
                );
                // inner lists: elements keyed by their group surrogate, in
                // original order
                let ipos = self.fresh("pos");
                let inner_plan = self.plan.rownum(
                    ranked,
                    ipos.clone(),
                    vec![surr.clone()],
                    vec![(ctx.outer_pos.clone(), Dir::Asc)],
                );
                let inner = ListRep {
                    plan: inner_plan,
                    iter: vec![surr.clone()],
                    pos: ipos,
                    layout: ctx.elem_layout.clone(),
                };
                Ok(Rep::List(ListRep {
                    plan: outer,
                    iter: ctx.outer_iter.clone(),
                    pos: opos,
                    layout: Layout::Nested {
                        surr: vec![surr],
                        inner: Box::new(inner),
                    },
                }))
            }
            Append => {
                let xs = self.compile(a, env, lp)?.expect_list();
                let ys = self.compile(b, env, lp)?.expect_list();
                let (tab, tag) = self.union_tabs(Tab::of_list(&xs), Tab::of_list(&ys));
                let lr = tab.into_list();
                let order = vec![(tag, Dir::Asc), (lr.pos.clone(), Dir::Asc)];
                Ok(Rep::List(self.rerank(lr, order)))
            }
            Cons => {
                let x = self.compile(a, env, lp)?;
                let xf = self.as_flat(x, lp);
                let pos = self.fresh("pos");
                let xplan = self.plan.attach(xf.plan, pos.clone(), Value::Nat(1));
                let mut prefix = xf.iter.clone();
                prefix.push(pos);
                let head_tab = Tab {
                    plan: xplan,
                    prefix,
                    layout: xf.layout,
                };
                let ys = self.compile(b, env, lp)?.expect_list();
                let (tab, tag) = self.union_tabs(head_tab, Tab::of_list(&ys));
                let lr = tab.into_list();
                let order = vec![(tag, Dir::Asc), (lr.pos.clone(), Dir::Asc)];
                Ok(Rep::List(self.rerank(lr, order)))
            }
            Index => {
                let xs = self.compile(a, env, lp)?.expect_list();
                let n = self.compile(b, env, lp)?.expect_flat();
                let (jp, rmap) =
                    self.join_on_iter(xs.plan, &xs.iter, n.plan, &n.iter, &Self::flat_cols_of(&n));
                let ncol = rmap[n.layout.atom()].clone();
                let plan = self.plan.select(
                    jp,
                    Expr::eq(
                        Expr::cast(ferry_algebra::Ty::Int, Expr::Col(xs.pos.clone())),
                        Expr::bin(BinOp::Add, Expr::Col(ncol), Expr::lit(1i64)),
                    ),
                );
                Ok(Rep::Flat(FlatRep {
                    plan,
                    iter: xs.iter,
                    layout: xs.layout,
                }))
            }
            Take | Drop => {
                let n = self.compile(a, env, lp)?.expect_flat();
                let xs = self.compile(b, env, lp)?.expect_list();
                let (jp, rmap) =
                    self.join_on_iter(xs.plan, &xs.iter, n.plan, &n.iter, &Self::flat_cols_of(&n));
                let ncol = Expr::Col(rmap[n.layout.atom()].clone());
                let posi = Expr::cast(ferry_algebra::Ty::Int, Expr::Col(xs.pos.clone()));
                if f == Take {
                    // pos <= n keeps density — no re-rank needed
                    let plan = self.plan.select(jp, Expr::bin(BinOp::Le, posi, ncol));
                    Ok(Rep::List(ListRep { plan, ..xs }))
                } else {
                    let plan = self.plan.select(jp, Expr::bin(BinOp::Gt, posi, ncol));
                    let lr = ListRep { plan, ..xs };
                    let order = vec![(lr.pos.clone(), Dir::Asc)];
                    Ok(Rep::List(self.rerank(lr, order)))
                }
            }
            TakeWhile | DropWhile => {
                let xs = self.compile(b, env, lp)?.expect_list();
                let (ctx, rb) = self.lift_lambda(a, &xs, env)?;
                let pb = rb.expect_flat();
                // a plan carrying both the element row and the predicate
                let (jp, pred_col) = if self.plan_has_cols(pb.plan, &ctx, &pb.iter) {
                    (pb.plan, pb.layout.atom().clone())
                } else {
                    let keep = Self::flat_cols_of(&pb);
                    let (jp, rmap) =
                        self.join_on_iter(ctx.m, &ctx.inner_iter, pb.plan, &pb.iter, &keep);
                    (jp, rmap[pb.layout.atom()].clone())
                };
                // the boundary: the first position where the predicate
                // fails, per outer iteration
                let failing = self.plan.select(jp, Expr::not(Expr::Col(pred_col.clone())));
                let bcol = self.fresh("b");
                let fb = self.plan.group_by(
                    failing,
                    ctx.outer_iter.clone(),
                    vec![ferry_algebra::plan::Aggregate {
                        fun: AggFun::Min,
                        input: Some(ctx.outer_pos.clone()),
                        output: bcol.clone(),
                    }],
                );
                // list columns of the result
                let mut cols: Vec<ColName> = ctx.outer_iter.clone();
                if !cols.contains(&ctx.outer_pos) {
                    cols.push(ctx.outer_pos.clone());
                }
                ctx.elem_layout.local_cols(&mut cols);
                let (withb, rmap) = self.join_on_iter(
                    jp,
                    &ctx.outer_iter,
                    fb,
                    &ctx.outer_iter,
                    std::slice::from_ref(&bcol),
                );
                let b_ref = Expr::Col(rmap[&bcol].clone());
                let pos_ref = Expr::Col(ctx.outer_pos.clone());
                if f == TakeWhile {
                    // prefix strictly before the boundary — plus, whole
                    // iterations that never fail
                    let sel = self
                        .plan
                        .select(withb, Expr::bin(BinOp::Lt, pos_ref, b_ref));
                    let part1 = self.plan.project_keep(sel, &cols);
                    let all_ok = self.plan.anti_join(
                        jp,
                        fb,
                        JoinCols::new(ctx.outer_iter.clone(), ctx.outer_iter.clone()),
                    );
                    let part2 = self.plan.project_keep(all_ok, &cols);
                    let plan = self.plan.union_all(part1, part2);
                    // positions are a prefix — still dense
                    Ok(Rep::List(ListRep {
                        plan,
                        iter: ctx.outer_iter.clone(),
                        pos: ctx.outer_pos.clone(),
                        layout: ctx.elem_layout.clone(),
                    }))
                } else {
                    // from the boundary onward; iterations that never fail
                    // drop everything
                    let sel = self
                        .plan
                        .select(withb, Expr::bin(BinOp::Ge, pos_ref, b_ref));
                    let plan = self.plan.project_keep(sel, &cols);
                    let lr = ListRep {
                        plan,
                        iter: ctx.outer_iter.clone(),
                        pos: ctx.outer_pos.clone(),
                        layout: ctx.elem_layout.clone(),
                    };
                    let order = vec![(ctx.outer_pos.clone(), Dir::Asc)];
                    Ok(Rep::List(self.rerank(lr, order)))
                }
            }
            Zip => {
                let xs = self.compile(a, env, lp)?.expect_list();
                let ys = self.compile(b, env, lp)?.expect_list();
                let ys2 = self.reproject_list(&ys);
                let mut lcols = xs.iter.clone();
                lcols.push(xs.pos.clone());
                let mut rcols = ys2.iter.clone();
                rcols.push(ys2.pos.clone());
                let plan = self
                    .plan
                    .equi_join(xs.plan, ys2.plan, JoinCols::new(lcols, rcols));
                Ok(Rep::List(ListRep {
                    plan,
                    iter: xs.iter,
                    pos: xs.pos,
                    layout: Layout::Tuple(vec![xs.layout, ys2.layout]),
                }))
            }
        }
    }

    /// Does the plan's schema still expose the map context's element row
    /// (iteration key, position, item columns) under its original names?
    /// Column names are globally unique per compilation, so presence by
    /// name implies provenance from the map relation.
    fn plan_has_cols(&self, plan: NodeId, ctx: &MapCtx, rep_iter: &[ColName]) -> bool {
        if rep_iter != ctx.inner_iter.as_slice() {
            return false;
        }
        let Ok(schemas) = ferry_algebra::infer_schema(&self.plan) else {
            return false;
        };
        let s = &schemas[plan.index()];
        let mut need: Vec<ColName> = ctx.inner_iter.clone();
        if !need.contains(&ctx.outer_pos) {
            need.push(ctx.outer_pos.clone());
        }
        ctx.elem_layout.local_cols(&mut need);
        need.iter().all(|c| s.contains(c))
    }

    /// `tail`: drop the first element and re-rank.
    pub fn compile_tail(&mut self, xs: ListRep) -> ListRep {
        let plan = self.plan.select(
            xs.plan,
            Expr::bin(
                BinOp::Gt,
                Expr::Col(xs.pos.clone()),
                Expr::lit(Value::Nat(1)),
            ),
        );
        let lr = ListRep { plan, ..xs };
        let order = vec![(lr.pos.clone(), Dir::Asc)];
        self.rerank(lr, order)
    }
}

/// Build the scalar expression for a primitive over two flat layouts
/// (columns of the same joined plan). Tuple comparison is lexicographic.
fn prim2_expr(op: Prim2, la: &Layout, lb: &Layout) -> Result<Expr, FerryError> {
    use Prim2::*;
    let bop = |o: BinOp| {
        Expr::bin(
            o,
            Expr::Col(la.atom().clone()),
            Expr::Col(lb.atom().clone()),
        )
    };
    match op {
        Add => Ok(bop(BinOp::Add)),
        Sub => Ok(bop(BinOp::Sub)),
        Mul => Ok(bop(BinOp::Mul)),
        Div => Ok(bop(BinOp::Div)),
        Mod => Ok(bop(BinOp::Mod)),
        And => Ok(bop(BinOp::And)),
        Or => Ok(bop(BinOp::Or)),
        Conc => Ok(bop(BinOp::Concat)),
        Eq => Ok(eq_expr(la, lb)),
        Ne => Ok(Expr::not(eq_expr(la, lb))),
        Lt => Ok(lex_lt(la, lb)),
        Gt => Ok(lex_lt(lb, la)),
        Le => Ok(Expr::not(lex_lt(lb, la))),
        Ge => Ok(Expr::not(lex_lt(la, lb))),
    }
}

/// Pairwise conjunction of component equalities.
fn eq_expr(la: &Layout, lb: &Layout) -> Expr {
    let (ca, cb) = (la.flat_cols(), lb.flat_cols());
    ca.iter()
        .zip(cb.iter())
        .map(|(a, b)| Expr::eq(Expr::Col(a.clone()), Expr::Col(b.clone())))
        .reduce(Expr::and)
        .unwrap_or(Expr::lit(true))
}

/// Lexicographic `<` over flattened components.
fn lex_lt(la: &Layout, lb: &Layout) -> Expr {
    let (ca, cb) = (la.flat_cols(), lb.flat_cols());
    // (a1<b1) ∨ (a1=b1 ∧ ((a2<b2) ∨ …))
    let mut expr: Option<Expr> = None;
    for (a, b) in ca.iter().zip(cb.iter()).rev() {
        let lt = Expr::bin(BinOp::Lt, Expr::Col(a.clone()), Expr::Col(b.clone()));
        let eq = Expr::eq(Expr::Col(a.clone()), Expr::Col(b.clone()));
        expr = Some(match expr {
            None => lt,
            Some(rest) => Expr::bin(BinOp::Or, lt, Expr::and(eq, rest)),
        });
    }
    expr.unwrap_or(Expr::lit(false))
}

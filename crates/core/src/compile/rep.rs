//! Lifted representations: how compiled values live in table form.
//!
//! Following §3.2 of the paper, a value computed in an iteration context is
//! represented by tables whose rows carry:
//! * `iter` column(s) — which iteration of the enclosing `loop` the row
//!   belongs to,
//! * a `pos` column for list-typed values — the relational encoding of
//!   list order (Fig. 3a),
//! * item columns — atoms in-line, nested lists *boxed* behind surrogate
//!   key columns that link to a separate inner table (Fig. 3b). This is
//!   the "non-parametric representation for list elements" the paper
//!   borrows from \[15\]/\[27\].
//!
//! Surrogates are *composite* (`Vec<ColName>`) during compilation: the
//! union-producing operators (`if`, `++`, list literals) disambiguate the
//! two sides with a tag column, widening the key. Shredding canonicalises
//! every surrogate back to a single dense `Nat` before results leave the
//! database, recovering the single-column `nest`/`@i` encoding of Fig. 3b.

use ferry_algebra::{ColName, NodeId};
use std::collections::HashMap;

/// The iteration context: a relation with one row per live iteration,
/// identified by the `iter` columns.
#[derive(Debug, Clone)]
pub struct Loop {
    pub plan: NodeId,
    pub iter: Vec<ColName>,
}

/// Shape of the item columns of a compiled value.
#[derive(Debug, Clone)]
pub enum Layout {
    /// A single atomic column.
    Atom(ColName),
    /// Components side by side — "the fields of a tuple live in adjacent
    /// columns of the same table".
    Tuple(Vec<Layout>),
    /// A boxed inner list: `surr` columns in *this* table link to the
    /// `iter` columns of the inner table.
    Nested {
        surr: Vec<ColName>,
        inner: Box<ListRep>,
    },
}

impl Layout {
    /// All columns of this layout that live in the host table (surrogate
    /// columns included, inner tables excluded), with duplicates removed
    /// (aliasing is legal: a surrogate may reuse an `iter` column).
    pub fn local_cols(&self, out: &mut Vec<ColName>) {
        match self {
            Layout::Atom(c) => push_unique(out, c),
            Layout::Tuple(ls) => ls.iter().for_each(|l| l.local_cols(out)),
            Layout::Nested { surr, .. } => surr.iter().for_each(|c| push_unique(out, c)),
        }
    }

    /// Rename local columns through `map` (inner tables untouched).
    pub fn rename(&self, map: &HashMap<ColName, ColName>) -> Layout {
        let r = |c: &ColName| map.get(c).cloned().unwrap_or_else(|| c.clone());
        match self {
            Layout::Atom(c) => Layout::Atom(r(c)),
            Layout::Tuple(ls) => Layout::Tuple(ls.iter().map(|l| l.rename(map)).collect()),
            Layout::Nested { surr, inner } => Layout::Nested {
                surr: surr.iter().map(r).collect(),
                inner: inner.clone(),
            },
        }
    }

    /// The single atom column (layouts of atomic type).
    pub fn atom(&self) -> &ColName {
        match self {
            Layout::Atom(c) => c,
            l => panic!("expected an atomic layout, got {l:?}"),
        }
    }

    /// The components of a tuple layout.
    pub fn tuple(&self) -> &[Layout] {
        match self {
            Layout::Tuple(ls) => ls,
            l => panic!("expected a tuple layout, got {l:?}"),
        }
    }

    /// Flat layouts (atoms / tuples of atoms) flattened to their columns,
    /// in canonical component order. Panics on `Nested`.
    pub fn flat_cols(&self) -> Vec<ColName> {
        let mut out = Vec::new();
        fn go(l: &Layout, out: &mut Vec<ColName>) {
            match l {
                Layout::Atom(c) => out.push(c.clone()),
                Layout::Tuple(ls) => ls.iter().for_each(|l| go(l, out)),
                Layout::Nested { .. } => panic!("flat_cols on a nested layout"),
            }
        }
        go(self, &mut out);
        out
    }

    pub fn is_flat(&self) -> bool {
        match self {
            Layout::Atom(_) => true,
            Layout::Tuple(ls) => ls.iter().all(Layout::is_flat),
            Layout::Nested { .. } => false,
        }
    }
}

fn push_unique(out: &mut Vec<ColName>, c: &ColName) {
    if !out.iter().any(|o| o == c) {
        out.push(c.clone());
    }
}

/// A compiled value of **list type**: the element table. One row per list
/// element of every live iteration.
#[derive(Debug, Clone)]
pub struct ListRep {
    pub plan: NodeId,
    /// Which iteration (or which surrogate, for inner tables) each element
    /// belongs to. Width always equals the width of the key it joins
    /// against (the loop's `iter` or the outer table's surrogate).
    pub iter: Vec<ColName>,
    /// Dense 1-based position within its list — the order encoding. Every
    /// combinator maintains density (re-ranking after selections), which
    /// is what makes `zip`/`take`/`(!!)` pure column arithmetic.
    pub pos: ColName,
    pub layout: Layout,
}

/// A compiled value of **non-list type** (atom or tuple): one row per live
/// iteration.
#[derive(Debug, Clone)]
pub struct FlatRep {
    pub plan: NodeId,
    pub iter: Vec<ColName>,
    pub layout: Layout,
}

/// A compiled value.
#[derive(Debug, Clone)]
pub enum Rep {
    Flat(FlatRep),
    List(ListRep),
}

impl Rep {
    pub fn iter_cols(&self) -> &[ColName] {
        match self {
            Rep::Flat(r) => &r.iter,
            Rep::List(r) => &r.iter,
        }
    }

    pub fn plan(&self) -> NodeId {
        match self {
            Rep::Flat(r) => r.plan,
            Rep::List(r) => r.plan,
        }
    }

    pub fn expect_flat(self) -> FlatRep {
        match self {
            Rep::Flat(r) => r,
            Rep::List(_) => panic!("expected a flat (non-list) representation"),
        }
    }

    pub fn expect_list(self) -> ListRep {
        match self {
            Rep::List(r) => r,
            Rep::Flat(_) => panic!("expected a list representation"),
        }
    }
}

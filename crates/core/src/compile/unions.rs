//! Unioning two compiled tables of equal type — the machinery behind
//! `if`/`++`/`:`/list literals.
//!
//! The subtlety is nesting: the two sides carry their own surrogate keys,
//! which may collide numerically. A constant *tag* column (1 = left,
//! 2 = right) is attached on both sides and becomes part of every
//! surrogate link and of the inner tables' iteration keys, so the merged
//! surrogate space stays injective. Shredding later collapses the widened
//! composite keys back to single dense surrogates.

use super::rep::{Layout, ListRep};
use super::Compiler;
use ferry_algebra::{ColName, NodeId, Value};

/// A table together with its prefix columns (iteration key, and position
/// for element tables) and its item layout.
pub struct Tab {
    pub plan: NodeId,
    pub prefix: Vec<ColName>,
    pub layout: Layout,
}

impl Tab {
    pub fn of_list(lr: &ListRep) -> Tab {
        let mut prefix = lr.iter.clone();
        prefix.push(lr.pos.clone());
        Tab {
            plan: lr.plan,
            prefix,
            layout: lr.layout.clone(),
        }
    }

    /// Rebuild a list representation from a unioned element table whose
    /// prefix is `iter ++ [pos]`.
    pub fn into_list(self) -> ListRep {
        let mut iter = self.prefix;
        let pos = iter.pop().expect("prefix contains pos");
        ListRep {
            plan: self.plan,
            iter,
            pos,
            layout: self.layout,
        }
    }
}

impl<'a> Compiler<'a> {
    /// Union two tables of identical type/layout shape. Returns the merged
    /// table (fresh prefix/item columns) and the name of the tag column
    /// (1 = rows from `a`, 2 = rows from `b`) for callers that need to
    /// order across the two sides (`++`).
    pub fn union_tabs(&mut self, a: Tab, b: Tab) -> (Tab, ColName) {
        assert_eq!(a.prefix.len(), b.prefix.len(), "prefix widths differ");

        // 1. attach the side tags
        let tag_a = self.fresh("tag");
        let pa = self.plan.attach(a.plan, tag_a.clone(), Value::Nat(1));
        let tag_b = self.fresh("tag");
        let pb = self.plan.attach(b.plan, tag_b.clone(), Value::Nat(2));

        // 2. walk both layouts in lockstep, assigning shared output names
        //    and unioning inner tables recursively
        let out_tag = self.fresh("tag");
        let mut cols_a: Vec<(ColName, ColName)> = Vec::new(); // (out, src in a)
        let mut cols_b: Vec<(ColName, ColName)> = Vec::new();
        let out_prefix: Vec<ColName> = a
            .prefix
            .iter()
            .zip(b.prefix.iter())
            .map(|(ca, cb)| {
                let o = self.fresh("p");
                cols_a.push((o.clone(), ca.clone()));
                cols_b.push((o.clone(), cb.clone()));
                o
            })
            .collect();
        cols_a.push((out_tag.clone(), tag_a));
        cols_b.push((out_tag.clone(), tag_b));

        let (pa, pb, layout) = self.union_layouts(
            pa,
            pb,
            &a.layout,
            &b.layout,
            &out_tag,
            &mut cols_a,
            &mut cols_b,
        );

        // 3. project both sides to the common column set and union
        let la = self.plan.project(pa, cols_a);
        let lb = self.plan.project(pb, cols_b);
        let plan = self.plan.union_all(la, lb);
        (
            Tab {
                plan,
                prefix: out_prefix,
                layout,
            },
            out_tag,
        )
    }

    /// Recursive layout merge. Extends the projection lists, pads
    /// mismatched surrogate widths with zero columns, and unions the inner
    /// tables of `Nested` components (prepending the side tag to their
    /// iteration keys so they match the tagged outer surrogates).
    #[allow(clippy::too_many_arguments)]
    fn union_layouts(
        &mut self,
        mut pa: NodeId,
        mut pb: NodeId,
        la: &Layout,
        lb: &Layout,
        out_tag: &ColName,
        cols_a: &mut Vec<(ColName, ColName)>,
        cols_b: &mut Vec<(ColName, ColName)>,
    ) -> (NodeId, NodeId, Layout) {
        match (la, lb) {
            (Layout::Atom(ca), Layout::Atom(cb)) => {
                let o = self.fresh("i");
                cols_a.push((o.clone(), ca.clone()));
                cols_b.push((o.clone(), cb.clone()));
                (pa, pb, Layout::Atom(o))
            }
            (Layout::Tuple(xs), Layout::Tuple(ys)) => {
                let mut out = Vec::with_capacity(xs.len());
                for (x, y) in xs.iter().zip(ys.iter()) {
                    let (na, nb, l) = self.union_layouts(pa, pb, x, y, out_tag, cols_a, cols_b);
                    pa = na;
                    pb = nb;
                    out.push(l);
                }
                (pa, pb, Layout::Tuple(out))
            }
            (
                Layout::Nested {
                    surr: sa,
                    inner: ia,
                },
                Layout::Nested {
                    surr: sb,
                    inner: ib,
                },
            ) => {
                let w = sa.len().max(sb.len());
                // pad outer surrogates to common width
                let (sa, na) = self.pad_nat(pa, sa.clone(), w);
                pa = na;
                let (sb, nb) = self.pad_nat(pb, sb.clone(), w);
                pb = nb;
                // shared output names: tag ++ padded surrogate columns
                let mut out_surr = vec![out_tag.clone()];
                for (ca, cb) in sa.iter().zip(sb.iter()) {
                    let o = self.fresh("s");
                    cols_a.push((o.clone(), ca.clone()));
                    cols_b.push((o.clone(), cb.clone()));
                    out_surr.push(o);
                }
                // union the inner tables with padded iteration keys; the
                // recursive union attaches its own tag, matching the outer
                // side tags by construction (left side of both unions is
                // the `a` side).
                let (ia_iter, ia_plan) = {
                    let (it, p) = self.pad_nat(ia.plan, ia.iter.clone(), w);
                    (it, p)
                };
                let (ib_iter, ib_plan) = {
                    let (it, p) = self.pad_nat(ib.plan, ib.iter.clone(), w);
                    (it, p)
                };
                let mut pref_a = ia_iter;
                pref_a.push(ia.pos.clone());
                let mut pref_b = ib_iter;
                pref_b.push(ib.pos.clone());
                let (inner_tab, inner_tag) = self.union_tabs(
                    Tab {
                        plan: ia_plan,
                        prefix: pref_a,
                        layout: ia.layout.clone(),
                    },
                    Tab {
                        plan: ib_plan,
                        prefix: pref_b,
                        layout: ib.layout.clone(),
                    },
                );
                let mut inner = inner_tab.into_list();
                // the inner tag leads the iteration key, mirroring the
                // outer surrogate's leading tag
                let mut iter = vec![inner_tag];
                iter.extend(inner.iter);
                inner.iter = iter;
                (
                    pa,
                    pb,
                    Layout::Nested {
                        surr: out_surr,
                        inner: Box::new(inner),
                    },
                )
            }
            (a, b) => panic!("layout shapes differ in union: {a:?} vs {b:?}"),
        }
    }

    /// Append zero-valued `Nat` columns until `cols` has width `w`.
    fn pad_nat(
        &mut self,
        mut plan: NodeId,
        mut cols: Vec<ColName>,
        w: usize,
    ) -> (Vec<ColName>, NodeId) {
        while cols.len() < w {
            let z = self.fresh("z");
            plan = self.plan.attach(plan, z.clone(), Value::Nat(0));
            cols.push(z);
        }
        (cols, plan)
    }
}

//! Stitching: tabular query results back into nested values.
//!
//! The inverse of shredding (Fig. 2, steps 5 – 6 ): the bundle's
//! relations arrive sorted by `(nest, pos)`; inner queries are indexed by
//! their `nest` surrogates, then the levels are reassembled outside-in.
//! An inner surrogate with no matching rows denotes an empty inner list —
//! "if the i-th inner list is empty, its surrogate @i will not appear in
//! the nest column of this second table" (Fig. 3b).

use crate::error::FerryError;
use crate::shred::{QueryDesc, VLayout};
use crate::types::Val;
use ferry_algebra::{Rel, Row, Value};
use std::collections::HashMap;

/// Reassemble the bundle's relations into a single nested value.
///
/// `results[i]` must be the relation produced by `queries[i]`'s root.
pub fn stitch(results: &[Rel], queries: &[QueryDesc]) -> Result<Val, FerryError> {
    if results.len() != queries.len() {
        return Err(FerryError::Decode(format!(
            "bundle has {} queries but {} results",
            queries.len(),
            results.len()
        )));
    }
    // inner queries are built innermost-first (they only reference higher
    // indices, never lower ones)
    let mut maps: Vec<HashMap<u64, Vec<Val>>> = vec![HashMap::new(); queries.len()];
    for i in (1..queries.len()).rev() {
        let mut map: HashMap<u64, Vec<Val>> = HashMap::new();
        for row in results[i].rows().iter() {
            let nest = nest_of(row)?;
            let item = build_item(row, &queries[i].layout, &mut maps)?;
            map.entry(nest).or_default().push(item);
        }
        maps[i] = map;
    }
    let root = &queries[0];
    if root.is_list {
        let mut out = Vec::with_capacity(results[0].len());
        for row in results[0].rows().iter() {
            out.push(build_item(row, &root.layout, &mut maps)?);
        }
        Ok(Val::List(out))
    } else {
        match results[0].len() {
            1 => build_item(&results[0].rows()[0], &root.layout, &mut maps),
            0 => Err(FerryError::Partial(
                "no result row — a partial operation (head/the/maximum/!!) was \
                 applied to an empty list"
                    .into(),
            )),
            n => Err(FerryError::Decode(format!(
                "scalar result query returned {n} rows"
            ))),
        }
    }
}

fn nest_of(row: &Row) -> Result<u64, FerryError> {
    row.first()
        .and_then(Value::as_nat)
        .ok_or_else(|| FerryError::Decode("nest column is not a surrogate".into()))
}

fn build_item(
    row: &Row,
    layout: &VLayout,
    maps: &mut [HashMap<u64, Vec<Val>>],
) -> Result<Val, FerryError> {
    match layout {
        VLayout::Atom(i) => Val::from_cell(&row[*i]).ok_or_else(|| {
            FerryError::Decode(format!("column {i} holds a surrogate, expected data"))
        }),
        VLayout::Tuple(ls) => {
            let mut vs = Vec::with_capacity(ls.len());
            for l in ls {
                vs.push(build_item(row, l, maps)?);
            }
            Ok(Val::Tuple(vs))
        }
        VLayout::Nested { col, query } => {
            let surr = row[*col]
                .as_nat()
                .ok_or_else(|| FerryError::Decode("surrogate column is not Nat".into()))?;
            // each surrogate is referenced exactly once, so take ownership;
            // a missing entry is an empty inner list
            let items = maps[*query].remove(&surr).unwrap_or_default();
            Ok(Val::List(items))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferry_algebra::{Schema, Ty};

    fn nat(n: u64) -> Value {
        Value::Nat(n)
    }

    #[test]
    fn stitches_the_fig3_encoding() {
        // Q1: outer list [( @1 ), ( @2 )]; Q2: inner lists for @1 = [10],
        // @2 = [] (surrogate 2 absent from Q2)
        let q1 = Rel::new(
            Schema::of(&[("nest", Ty::Nat), ("pos", Ty::Nat), ("s", Ty::Nat)]),
            vec![vec![nat(1), nat(1), nat(1)], vec![nat(1), nat(2), nat(2)]],
        );
        let q2 = Rel::new(
            Schema::of(&[("nest", Ty::Nat), ("pos", Ty::Nat), ("item", Ty::Int)]),
            vec![vec![nat(1), nat(1), Value::Int(10)]],
        );
        let queries = vec![
            QueryDesc {
                root: ferry_algebra::NodeId(0),
                is_list: true,
                layout: VLayout::Nested { col: 2, query: 1 },
            },
            QueryDesc {
                root: ferry_algebra::NodeId(0),
                is_list: true,
                layout: VLayout::Atom(2),
            },
        ];
        let v = stitch(&[q1, q2], &queries).unwrap();
        assert_eq!(
            v,
            Val::List(vec![Val::List(vec![Val::Int(10)]), Val::List(vec![]),])
        );
    }

    #[test]
    fn scalar_roots() {
        let q = Rel::new(
            Schema::of(&[("nest", Ty::Nat), ("a", Ty::Int), ("b", Ty::Str)]),
            vec![vec![nat(1), Value::Int(7), Value::str("x")]],
        );
        let queries = vec![QueryDesc {
            root: ferry_algebra::NodeId(0),
            is_list: false,
            layout: VLayout::Tuple(vec![VLayout::Atom(1), VLayout::Atom(2)]),
        }];
        let v = stitch(&[q], &queries).unwrap();
        assert_eq!(v, Val::Tuple(vec![Val::Int(7), Val::Text("x".into())]));
    }

    #[test]
    fn empty_scalar_is_partial() {
        let q = Rel::new(Schema::of(&[("nest", Ty::Nat), ("a", Ty::Int)]), vec![]);
        let queries = vec![QueryDesc {
            root: ferry_algebra::NodeId(0),
            is_list: false,
            layout: VLayout::Atom(1),
        }];
        assert!(matches!(
            stitch(&[q], &queries),
            Err(FerryError::Partial(_))
        ));
    }

    #[test]
    fn result_count_mismatch_is_reported() {
        let queries = vec![QueryDesc {
            root: ferry_algebra::NodeId(0),
            is_list: true,
            layout: VLayout::Atom(2),
        }];
        assert!(matches!(stitch(&[], &queries), Err(FerryError::Decode(_))));
    }
}

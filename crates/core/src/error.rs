//! Error type for the Ferry front-end, compiler and runtime.

use std::fmt;

/// Anything that can go wrong between building a query and decoding its
/// result.
#[derive(Debug, Clone, PartialEq)]
pub enum FerryError {
    /// A combinator was applied outside its domain (e.g. `nub` over
    /// elements that are not flat, `table` with a non-flat row type).
    Unsupported(String),
    /// The kernel AST is ill-typed — an internal invariant violation, since
    /// the phantom-typed surface cannot build such terms.
    IllTyped(String),
    /// The referenced base table is missing or its row type does not match
    /// the catalog (the paper: "it is the user's responsibility … otherwise
    /// an error is thrown at runtime").
    Table(String),
    /// A partial operation was applied to an empty list (`head`, `the`,
    /// `maximum`, out-of-range index, …).
    Partial(String),
    /// Error reported by the database engine.
    Engine(String),
    /// Error reported by the durability layer (WAL append, snapshot,
    /// crash recovery) of a database opened with
    /// [`Connection::open_durable`](crate::runtime::Connection::open_durable).
    Storage(String),
    /// The tabular results could not be decoded into the result type.
    Decode(String),
}

impl fmt::Display for FerryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FerryError::Unsupported(m) => write!(f, "unsupported: {m}"),
            FerryError::IllTyped(m) => write!(f, "ill-typed kernel term: {m}"),
            FerryError::Table(m) => write!(f, "table error: {m}"),
            FerryError::Partial(m) => write!(f, "partial operation: {m}"),
            FerryError::Engine(m) => write!(f, "engine error: {m}"),
            FerryError::Storage(m) => write!(f, "storage error: {m}"),
            FerryError::Decode(m) => write!(f, "decode error: {m}"),
        }
    }
}

impl std::error::Error for FerryError {}

impl From<ferry_engine::EngineError> for FerryError {
    fn from(e: ferry_engine::EngineError) -> Self {
        match e {
            ferry_engine::EngineError::Storage(s) => FerryError::Storage(s.to_string()),
            other => FerryError::Engine(other.to_string()),
        }
    }
}

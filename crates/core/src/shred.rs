//! Shredding: emitting the query bundle.
//!
//! A compiled program of type `t` becomes a bundle of `t.bundle_size()`
//! queries — "it is exclusively the number of list constructors [·] in the
//! program's result type that determines the number of queries contained
//! in the emitted relational query bundle. We refer to this crucial
//! property as **avalanche safety**" (§3.2).
//!
//! The guarantee is *structural* here: [`compile_program`] walks the
//! result's layout, emitting exactly one `Serialize` root per nesting
//! level. Before a level is serialized, its (possibly composite, possibly
//! tagged) surrogate keys are canonicalised to single dense `Nat`
//! surrogates via `DENSE_RANK` over the distinct composite keys —
//! recovering the `@i` encoding of Fig. 3(b) on the wire.

use crate::compile::rep::{Layout, ListRep, Rep};
use crate::compile::{compile_to_rep, Compiler, SchemaProvider};
use crate::error::FerryError;
use crate::exp::Exp;
use crate::types::Ty;
use ferry_algebra::{ColName, Dir, NodeId, Plan};

/// Decoding shape of one serialized query's item columns. Column indices
/// refer to positions in the serialized schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VLayout {
    /// An atomic item column.
    Atom(usize),
    Tuple(Vec<VLayout>),
    /// A surrogate column linking to the rows of the inner query whose
    /// `nest` column carries matching values.
    Nested {
        col: usize,
        query: usize,
    },
}

/// One member of the emitted bundle.
#[derive(Debug, Clone)]
pub struct QueryDesc {
    /// The `Serialize` root of this query.
    pub root: NodeId,
    /// List queries have schema `[nest, pos, items…]`; the (single) scalar
    /// root query has schema `[nest, items…]`.
    pub is_list: bool,
    pub layout: VLayout,
}

/// A fully compiled program: one plan DAG, `ty.bundle_size()` serialized
/// roots, and the decoding descriptors.
#[derive(Debug, Clone)]
pub struct CompiledBundle {
    pub plan: Plan,
    /// `queries\[0\]` is the root query; inner lists follow in DFS order.
    pub queries: Vec<QueryDesc>,
    pub ty: Ty,
    /// What the plan rewriter did, when one ran (`explain` renders it).
    pub opt: Option<ferry_telemetry::OptReport>,
    /// Alpha-invariant [`Exp::stable_hash`] of the source kernel term —
    /// the same value the plan cache keys on. Threaded into the engine
    /// per dispatch so `ferry.queries`/`ferry.slow_queries` join against
    /// `ferry.plan_cache`.
    pub exp_hash: u64,
}

impl CompiledBundle {
    pub fn roots(&self) -> Vec<NodeId> {
        self.queries.iter().map(|q| q.root).collect()
    }

    /// Total number of distinct operators across all queries.
    pub fn plan_size(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for q in &self.queries {
            seen.extend(self.plan.reachable(q.root));
        }
        seen.len()
    }
}

/// Compile a closed kernel term all the way to a serialized query bundle.
pub fn compile_program(
    exp: &Exp,
    provider: &dyn SchemaProvider,
) -> Result<CompiledBundle, FerryError> {
    let mut compile_span = ferry_telemetry::span("compile", "compile");
    let (mut c, rep, _lp) = {
        let _s = ferry_telemetry::span("loop_lift", "compile");
        compile_to_rep(exp, provider)?
    };
    let shred_span = ferry_telemetry::span("shred", "compile");
    let mut queries = Vec::new();
    match rep {
        Rep::List(lr) => {
            shred_list(&mut c, lr, &mut queries);
        }
        Rep::Flat(fr) => {
            let my = reserve(&mut queries);
            let mut plan_node = fr.plan;
            let (cooked, item_cols) = cook_layout(&mut c, &mut plan_node, fr.layout, &mut queries);
            let mut cols: Vec<ColName> = fr.iter.clone();
            cols.extend(item_cols);
            let order: Vec<(ColName, Dir)> =
                fr.iter.iter().map(|c| (c.clone(), Dir::Asc)).collect();
            let root = c.plan.serialize(plan_node, order, cols.clone());
            queries[my] = QueryDesc {
                root,
                is_list: false,
                layout: index_layout(&cooked, &cols),
            };
        }
    }
    drop(shred_span);
    let ty = exp.ty().clone();
    assert_eq!(
        queries.len(),
        ty.bundle_size(),
        "avalanche-safety violation: bundle size diverged from the result type"
    );
    compile_span
        .attr("queries", queries.len())
        .attr("plan_nodes", c.plan.len());
    Ok(CompiledBundle {
        plan: c.plan,
        queries,
        ty,
        opt: None,
        exp_hash: exp.stable_hash(),
    })
}

fn reserve(queries: &mut Vec<QueryDesc>) -> usize {
    let i = queries.len();
    queries.push(QueryDesc {
        root: NodeId(0),
        is_list: false,
        layout: VLayout::Atom(0),
    });
    i
}

/// Layout after surrogate canonicalisation: `Nested` carries the canonical
/// surrogate column name plus the inner query's bundle index.
enum Cooked {
    Atom(ColName),
    Tuple(Vec<Cooked>),
    Nested { col: ColName, query: usize },
}

/// Serialize one list level; returns its query index within the bundle.
fn shred_list(c: &mut Compiler, lr: ListRep, queries: &mut Vec<QueryDesc>) -> usize {
    let my = reserve(queries);
    debug_assert_eq!(lr.iter.len(), 1, "serialized levels are single-keyed");
    let mut plan_node = lr.plan;
    let (cooked, item_cols) = cook_layout(c, &mut plan_node, lr.layout, queries);
    let mut cols: Vec<ColName> = lr.iter.clone();
    cols.push(lr.pos.clone());
    cols.extend(item_cols);
    let order = vec![(lr.iter[0].clone(), Dir::Asc), (lr.pos.clone(), Dir::Asc)];
    let root = c.plan.serialize(plan_node, order, cols.clone());
    queries[my] = QueryDesc {
        root,
        is_list: true,
        layout: index_layout(&cooked, &cols),
    };
    my
}

/// Canonicalise every nested component of `layout` (joining canonical
/// surrogates into `plan_node`) and serialize the inner levels. Returns
/// the cooked layout plus the item columns in traversal order.
fn cook_layout(
    c: &mut Compiler,
    plan_node: &mut NodeId,
    layout: Layout,
    queries: &mut Vec<QueryDesc>,
) -> (Cooked, Vec<ColName>) {
    fn go(
        c: &mut Compiler,
        plan_node: &mut NodeId,
        layout: Layout,
        queries: &mut Vec<QueryDesc>,
        item_cols: &mut Vec<ColName>,
    ) -> Cooked {
        match layout {
            Layout::Atom(col) => {
                item_cols.push(col.clone());
                Cooked::Atom(col)
            }
            Layout::Tuple(ls) => Cooked::Tuple(
                ls.into_iter()
                    .map(|l| go(c, plan_node, l, queries, item_cols))
                    .collect(),
            ),
            Layout::Nested { surr, inner } => {
                // canonical ids: DENSE_RANK over the distinct composite keys
                let key_map0 = c.plan.project_keep(*plan_node, &surr);
                let key_map1 = c.plan.distinct(key_map0);
                let cid = c.fresh("cid");
                let order: Vec<(ColName, Dir)> =
                    surr.iter().map(|s| (s.clone(), Dir::Asc)).collect();
                let key_map = c.plan.dense_rank(key_map1, cid.clone(), vec![], order);
                // outer side: attach the canonical id
                let (jp, rmap) = c.join_on_iter(
                    *plan_node,
                    &surr,
                    key_map,
                    &surr,
                    std::slice::from_ref(&cid),
                );
                *plan_node = jp;
                let out_col = rmap[&cid].clone();
                item_cols.push(out_col.clone());
                // inner side: re-key the element table by the canonical id
                let inner_lr = *inner;
                let (ij, imap) = c.join_on_iter(
                    inner_lr.plan,
                    &inner_lr.iter,
                    key_map,
                    &surr,
                    std::slice::from_ref(&cid),
                );
                let rekeyed = ListRep {
                    plan: ij,
                    iter: vec![imap[&cid].clone()],
                    pos: inner_lr.pos,
                    layout: inner_lr.layout,
                };
                let query = shred_list(c, rekeyed, queries);
                Cooked::Nested {
                    col: out_col,
                    query,
                }
            }
        }
    }
    let mut item_cols = Vec::new();
    let cooked = go(c, plan_node, layout, queries, &mut item_cols);
    (cooked, item_cols)
}

/// Resolve cooked column names to serialized column indices.
fn index_layout(cooked: &Cooked, cols: &[ColName]) -> VLayout {
    let idx = |name: &ColName| {
        cols.iter()
            .position(|c| c == name)
            .expect("serialized column present")
    };
    match cooked {
        Cooked::Atom(c) => VLayout::Atom(idx(c)),
        Cooked::Tuple(ls) => VLayout::Tuple(ls.iter().map(|l| index_layout(l, cols)).collect()),
        Cooked::Nested { col, query } => VLayout::Nested {
            col: idx(col),
            query: *query,
        },
    }
}

//! User-defined record types — the paper's Template Haskell derivations.
//!
//! §3.1: "by leveraging metaprogramming capabilities of Template Haskell,
//! we provide for automatic derivation of QA instances for any
//! user-defined product type (including Haskell records)". Rust's
//! declarative macros play that role here: [`record!`] defines a plain
//! struct, derives its [`QA`](crate::QA)/[`TA`](crate::TA) instances
//! (fields encode positionally, exactly like the corresponding tuple), and
//! generates typed field accessors on `Q<TheStruct>` — the record-flavoured
//! counterpart of view patterns.
//!
//! ```
//! use ferry::prelude::*;
//! use ferry::record;
//!
//! record! {
//!     /// One employee row (fields in alphabetical column order).
//!     pub struct Emp : EmpFields {
//!         pub dept: String,
//!         pub name: String,
//!         pub sal: i64,
//!     }
//! }
//!
//! // `EmpFields` is the generated accessor trait on Q<Emp>:
//! let highest = |es: Q<Vec<Emp>>| maximum(map(|e: Q<Emp>| e.sal(), es));
//! # let _ = highest;
//! ```

/// Define a record type with derived `QA`/`TA` instances and a generated
/// field-accessor trait (its name follows the `:` after the struct name)
/// implemented for `Q<TheStruct>`. See the module docs.
#[macro_export]
macro_rules! record {
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident : $fields:ident {
            $( $fvis:vis $field:ident : $fty:ty ),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, PartialEq)]
        $vis struct $name {
            $( $fvis $field : $fty ),+
        }

        impl $crate::QA for $name {
            fn ty() -> $crate::Ty {
                $crate::Ty::Tuple(vec![ $( <$fty as $crate::QA>::ty() ),+ ])
            }
            fn to_val(&self) -> $crate::Val {
                $crate::Val::Tuple(vec![ $( $crate::QA::to_val(&self.$field) ),+ ])
            }
            fn from_val(v: &$crate::Val) -> Result<Self, $crate::FerryError> {
                const WIDTH: usize = [$( stringify!($field) ),+].len();
                match v {
                    $crate::Val::Tuple(vs) if vs.len() == WIDTH => {
                        let mut __i = 0usize;
                        Ok($name {
                            $( $field : {
                                let __v = <$fty as $crate::QA>::from_val(&vs[__i])?;
                                __i += 1;
                                __v
                            } ),+
                        })
                    }
                    other => Err($crate::FerryError::Decode(format!(
                        "expected a {}-field record, got {other:?}",
                        WIDTH
                    ))),
                }
            }
        }

        // records over basic fields are legal table rows, like the tuples
        // they encode as
        impl $crate::TA for $name
        where
            $( $fty : $crate::qa::BasicQA ),+
        {
        }

        /// Field accessors for queries over this record.
        #[allow(dead_code)]
        $vis trait $fields {
            $( fn $field(&self) -> $crate::Q<$fty>; )+
        }

        impl $fields for $crate::Q<$name> {
            $crate::record!(@accessors 0usize; $( ($field : $fty) )+ );
        }
    };

    // generate one accessor per field, tracking the projection index
    (@accessors $idx:expr; ) => {};
    (@accessors $idx:expr; ($field:ident : $fty:ty) $( $rest:tt )*) => {
        fn $field(&self) -> $crate::Q<$fty> {
            self.proj_unchecked::<$fty>($idx)
        }
        $crate::record!(@accessors $idx + 1usize; $( $rest )*);
    };
}

use crate::exp::Exp;
use crate::qa::{Q, QA};

impl<T: QA> Q<T> {
    /// Tuple projection used by generated record accessors. The `record!`
    /// macro guarantees the index/type pairing; not part of the public
    /// surface otherwise.
    #[doc(hidden)]
    pub fn proj_unchecked<F: QA>(&self, idx: usize) -> Q<F> {
        Q::wrap(Exp::Proj(idx, self.exp.clone(), F::ty()))
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    crate::record! {
        /// A point with a label.
        pub struct Point : PointFields {
            pub label: String,
            pub x: i64,
            pub y: i64,
        }
    }

    #[test]
    fn record_round_trips_as_tuple() {
        let p = Point {
            label: "origin".into(),
            x: 0,
            y: 0,
        };
        let v = QA::to_val(&p);
        assert_eq!(
            v,
            crate::Val::Tuple(vec![
                crate::Val::Text("origin".into()),
                crate::Val::Int(0),
                crate::Val::Int(0)
            ])
        );
        assert_eq!(<Point as QA>::from_val(&v).unwrap(), p);
        assert_eq!(<Point as QA>::ty(), <(String, i64, i64) as QA>::ty());
    }

    #[test]
    fn accessors_project_fields() {
        let q = toq(&Point {
            label: "p".into(),
            x: 3,
            y: 4,
        });
        let tables = crate::interp::Tables::new();
        let run = |e: &Q<i64>| {
            i64::from_val(&crate::interp::interpret(e.exp(), &tables).unwrap()).unwrap()
        };
        assert_eq!(run(&q.x()), 3);
        assert_eq!(run(&(q.x() * q.x() + q.y() * q.y())), 25);
    }

    #[test]
    fn records_in_lists() {
        let ps = vec![
            Point {
                label: "a".into(),
                x: 1,
                y: 2,
            },
            Point {
                label: "b".into(),
                x: 3,
                y: 4,
            },
        ];
        let q = map(|p: Q<Point>| p.x() + p.y(), toq(&ps));
        let tables = crate::interp::Tables::new();
        let got: Vec<i64> =
            QA::from_val(&crate::interp::interpret(q.exp(), &tables).unwrap()).unwrap();
        assert_eq!(got, vec![3, 7]);
    }
}

//! DSL types and nested values.
//!
//! The Ferry data model: the basic types, plus arbitrarily nested tuples
//! and lists of them (§3.1). `Fun` exists only internally (combinator
//! arguments); it can never be the type of a query result.

use std::fmt;
use std::sync::Arc;

/// A Ferry (DSL-level) type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ty {
    Unit,
    Bool,
    Int,
    Dbl,
    Text,
    Tuple(Vec<Ty>),
    List(Arc<Ty>),
    /// Function types appear only as combinator arguments; programs whose
    /// *result* contains a function are rejected by construction ("support
    /// for functions as first-class citizens" is future work, §5).
    Fun(Arc<Ty>, Arc<Ty>),
}

impl Ty {
    pub fn list(elem: Ty) -> Ty {
        Ty::List(Arc::new(elem))
    }

    pub fn fun(arg: Ty, res: Ty) -> Ty {
        Ty::Fun(Arc::new(arg), Arc::new(res))
    }

    pub fn is_atom(&self) -> bool {
        matches!(self, Ty::Unit | Ty::Bool | Ty::Int | Ty::Dbl | Ty::Text)
    }

    /// A *flat* type: an atom or a tuple of flat non-list types — the types
    /// that fit a single table row (legal table row types, grouping keys,
    /// `nub`/`elem` element types).
    pub fn is_flat(&self) -> bool {
        match self {
            t if t.is_atom() => true,
            Ty::Tuple(ts) => ts.iter().all(Ty::is_flat),
            _ => false,
        }
    }

    /// Element type of a list type.
    pub fn elem(&self) -> Option<&Ty> {
        match self {
            Ty::List(e) => Some(e),
            _ => None,
        }
    }

    /// The number of list type constructors in this type. Avalanche safety
    /// (§3.2): "it is exclusively the number of list constructors [·] in
    /// the program's result type that determines the number of queries".
    pub fn list_ctors(&self) -> usize {
        match self {
            Ty::List(e) => 1 + e.list_ctors(),
            Ty::Tuple(ts) => ts.iter().map(Ty::list_ctors).sum(),
            Ty::Fun(a, r) => a.list_ctors() + r.list_ctors(),
            _ => 0,
        }
    }

    /// The size of the query bundle a result of this type compiles to:
    /// one query for the root value plus one per *non-root* list
    /// constructor. For a list-rooted type this equals `list_ctors`.
    pub fn bundle_size(&self) -> usize {
        match self {
            Ty::List(e) => 1 + e.list_ctors(),
            t => 1 + t.list_ctors(),
        }
    }

    /// Map an atomic DSL type to its table column type.
    pub fn col_ty(&self) -> Option<ferry_algebra::Ty> {
        match self {
            Ty::Unit => Some(ferry_algebra::Ty::Unit),
            Ty::Bool => Some(ferry_algebra::Ty::Bool),
            Ty::Int => Some(ferry_algebra::Ty::Int),
            Ty::Dbl => Some(ferry_algebra::Ty::Dbl),
            Ty::Text => Some(ferry_algebra::Ty::Str),
            _ => None,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Unit => write!(f, "()"),
            Ty::Bool => write!(f, "Bool"),
            Ty::Int => write!(f, "Int"),
            Ty::Dbl => write!(f, "Double"),
            Ty::Text => write!(f, "Text"),
            Ty::Tuple(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Ty::List(e) => write!(f, "[{e}]"),
            Ty::Fun(a, r) => write!(f, "({a} -> {r})"),
        }
    }
}

/// A nested Ferry value — what queries denote and what the interpreter and
/// the stitcher produce.
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    Unit,
    Bool(bool),
    Int(i64),
    Dbl(f64),
    Text(String),
    Tuple(Vec<Val>),
    List(Vec<Val>),
}

impl Val {
    /// Does this value inhabit the given type? (Empty lists inhabit every
    /// list type.)
    pub fn has_ty(&self, ty: &Ty) -> bool {
        match (self, ty) {
            (Val::Unit, Ty::Unit)
            | (Val::Bool(_), Ty::Bool)
            | (Val::Int(_), Ty::Int)
            | (Val::Dbl(_), Ty::Dbl)
            | (Val::Text(_), Ty::Text) => true,
            (Val::Tuple(vs), Ty::Tuple(ts)) => {
                vs.len() == ts.len() && vs.iter().zip(ts).all(|(v, t)| v.has_ty(t))
            }
            (Val::List(vs), Ty::List(e)) => vs.iter().all(|v| v.has_ty(e)),
            _ => false,
        }
    }

    /// Convert an *atomic* value to its table-cell representation.
    pub fn to_cell(&self) -> Option<ferry_algebra::Value> {
        match self {
            Val::Unit => Some(ferry_algebra::Value::Unit),
            Val::Bool(b) => Some(ferry_algebra::Value::Bool(*b)),
            Val::Int(i) => Some(ferry_algebra::Value::Int(*i)),
            Val::Dbl(d) => Some(ferry_algebra::Value::Dbl(*d)),
            Val::Text(s) => Some(ferry_algebra::Value::str(s.as_str())),
            _ => None,
        }
    }

    /// Convert a table cell back to an atomic value.
    pub fn from_cell(v: &ferry_algebra::Value) -> Option<Val> {
        match v {
            ferry_algebra::Value::Unit => Some(Val::Unit),
            ferry_algebra::Value::Bool(b) => Some(Val::Bool(*b)),
            ferry_algebra::Value::Int(i) => Some(Val::Int(*i)),
            ferry_algebra::Value::Dbl(d) => Some(Val::Dbl(*d)),
            ferry_algebra::Value::Str(s) => Some(Val::Text(s.to_string())),
            ferry_algebra::Value::Nat(_) => None,
        }
    }

    /// Total order on values of equal type (list order is lexicographic,
    /// as in Haskell's derived `Ord`). Used by the interpreter for
    /// `sort_with`/`group_with`/`maximum`.
    pub fn cmp_total(&self, other: &Val) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (Val::Unit, Val::Unit) => Ordering::Equal,
            (Val::Bool(a), Val::Bool(b)) => a.cmp(b),
            (Val::Int(a), Val::Int(b)) => a.cmp(b),
            (Val::Dbl(a), Val::Dbl(b)) => a.total_cmp(b),
            (Val::Text(a), Val::Text(b)) => a.cmp(b),
            (Val::Tuple(a), Val::Tuple(b)) | (Val::List(a), Val::List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.cmp_total(y) {
                        Ordering::Equal => continue,
                        o => return o,
                    }
                }
                a.len().cmp(&b.len())
            }
            _ => panic!("cmp_total on values of different types: {self:?} vs {other:?}"),
        }
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Unit => write!(f, "()"),
            Val::Bool(b) => write!(f, "{b}"),
            Val::Int(i) => write!(f, "{i}"),
            Val::Dbl(d) => write!(f, "{d}"),
            Val::Text(s) => write!(f, "{s}"),
            Val::Tuple(vs) => {
                write!(f, "(")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Val::List(vs) => {
                write!(f, "[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_ctor_counting() {
        // [(String, [String])] — the running example's type: 2 ctors
        let t = Ty::list(Ty::Tuple(vec![Ty::Text, Ty::list(Ty::Text)]));
        assert_eq!(t.list_ctors(), 2);
        assert_eq!(t.bundle_size(), 2);
        // Int: 0 ctors, but still one query
        assert_eq!(Ty::Int.list_ctors(), 0);
        assert_eq!(Ty::Int.bundle_size(), 1);
        // ([Int], [Int]): tuple root → 1 + 2
        let t2 = Ty::Tuple(vec![Ty::list(Ty::Int), Ty::list(Ty::Int)]);
        assert_eq!(t2.bundle_size(), 3);
        // [[[Int]]]: 3
        let t3 = Ty::list(Ty::list(Ty::list(Ty::Int)));
        assert_eq!(t3.bundle_size(), 3);
    }

    #[test]
    fn flatness() {
        assert!(Ty::Int.is_flat());
        assert!(Ty::Tuple(vec![Ty::Int, Ty::Text]).is_flat());
        assert!(!Ty::list(Ty::Int).is_flat());
        assert!(!Ty::Tuple(vec![Ty::Int, Ty::list(Ty::Int)]).is_flat());
    }

    #[test]
    fn val_typing() {
        let v = Val::List(vec![Val::Int(1), Val::Int(2)]);
        assert!(v.has_ty(&Ty::list(Ty::Int)));
        assert!(!v.has_ty(&Ty::list(Ty::Text)));
        assert!(Val::List(vec![]).has_ty(&Ty::list(Ty::Text)));
        let t = Val::Tuple(vec![Val::Int(1), Val::Text("x".into())]);
        assert!(t.has_ty(&Ty::Tuple(vec![Ty::Int, Ty::Text])));
    }

    #[test]
    fn cell_round_trip() {
        for v in [
            Val::Unit,
            Val::Bool(true),
            Val::Int(-3),
            Val::Dbl(1.5),
            Val::Text("hi".into()),
        ] {
            let cell = v.to_cell().unwrap();
            assert_eq!(Val::from_cell(&cell).unwrap(), v);
        }
        assert!(Val::List(vec![]).to_cell().is_none());
        assert!(Val::from_cell(&ferry_algebra::Value::Nat(1)).is_none());
    }

    #[test]
    fn total_order_is_lexicographic_on_lists() {
        let a = Val::List(vec![Val::Int(1), Val::Int(2)]);
        let b = Val::List(vec![Val::Int(1), Val::Int(3)]);
        let c = Val::List(vec![Val::Int(1)]);
        assert_eq!(a.cmp_total(&b), std::cmp::Ordering::Less);
        assert_eq!(c.cmp_total(&a), std::cmp::Ordering::Less);
        assert_eq!(a.cmp_total(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn display_types_and_values() {
        let t = Ty::list(Ty::Tuple(vec![Ty::Text, Ty::list(Ty::Text)]));
        assert_eq!(t.to_string(), "[(Text, [Text])]");
        let v = Val::Tuple(vec![Val::Int(1), Val::List(vec![Val::Bool(true)])]);
        assert_eq!(v.to_string(), "(1, [true])");
    }
}

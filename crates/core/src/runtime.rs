//! The runtime: `Connection`, `Prepared` query handles, and `from_q`.
//!
//! `from_q`, "when provided with a connection parameter, executes its query
//! argument on the database and returns the result as a regular Haskell
//! value" (§2) — here, a regular Rust value. The full pipeline of Fig. 2
//! runs inside: compile (loop-lifting) → optional plan optimisation →
//! dispatch the bundle through the configured [`Backend`] (one engine
//! round-trip per member) → stitch → decode.
//!
//! ## Prepared bundles and the plan cache
//!
//! A query's relational bundle is a *constant-size, data-independent
//! artefact* (avalanche safety, §3.2) — compiling it is pure overhead
//! once it exists. [`Connection::prepare`] therefore returns a
//! [`Prepared`] handle owning the optimized [`CompiledBundle`] plus its
//! stitching metadata; executing the handle skips compilation entirely.
//! Behind `prepare` sits a content-addressed plan cache keyed by the
//! [alpha-invariant hash](crate::exp::Exp::stable_hash) of the kernel
//! term and the catalog's schema version, so even plain `from_q` calls
//! amortise compilation across repeated queries. The cache is
//! capacity-bounded with least-recently-used eviction (default 1024
//! bundles, [`Connection::set_plan_cache_capacity`]) so workloads that
//! keep compiling distinct statements hold memory steady instead of
//! growing it without bound. Hit/miss counts are surfaced through
//! [`ferry_engine::QueryStats`].
//!
//! ## Concurrency
//!
//! The database is multi-versioned (see `ferry_engine::catalog`): a
//! `Connection` is cheaply cloneable, clones share the `Arc<Database>`,
//! the plan cache and the backend, and `from_q` / `execute` may run
//! concurrently from many threads. Every execution pins one catalog
//! [`Snapshot`](ferry_engine::Snapshot) — an immutable version all
//! members of the bundle see — and runs lock-free against it, so
//! readers never block writers and a commit landing mid-bundle can
//! never tear a result. Catalog mutations go through
//! [`Database::transact`] (or the `create_table` / `insert`
//! conveniences) on [`Connection::database`].

use crate::backend::{AlgebraBackend, Backend};
use crate::compile::{SchemaProvider, TableInfo};
use crate::error::FerryError;
use crate::qa::{Q, QA};
use crate::shred::{compile_program, CompiledBundle};
use crate::stitch::stitch;
use crate::types::Val;
use ferry_algebra::{NodeId, Plan, Rel};
use ferry_engine::Database;
use ferry_telemetry::{OptReport, QueryTrace, Telemetry, TelemetryConfig, TraceGuard};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::{Arc, Mutex};

/// A plan rewriter slot (wired to `ferry_optimizer::rewriter` by callers;
/// kept abstract here so the core crate does not depend on the optimizer).
/// Returns the rewritten plan, the relocated roots, and — when the
/// rewriter accounts for its work — an [`OptReport`] that rides along in
/// the compiled bundle and is rendered by `explain`. Shared by every
/// clone of a `Connection`, hence `Arc`.
pub type PlanRewriter =
    Arc<dyn Fn(&Plan, &[NodeId]) -> (Plan, Vec<NodeId>, Option<OptReport>) + Send + Sync>;

/// Cache key: (alpha-invariant kernel-term hash, catalog schema version).
type PlanKey = (u64, u64);

/// One cached bundle plus its hit count (`ferry.plan_cache` surfaces
/// both; a hot entry with many hits is compilation well amortised).
struct CacheEntry {
    bundle: Arc<CompiledBundle>,
    hits: u64,
    /// The source text the content hash was computed from, when the
    /// frontend has one (the SQL path does, the DSL path keys on the
    /// alpha-invariant `Exp` hash and passes `None`). Verified on every
    /// hit so a 64-bit hash collision — accidental or crafted by a
    /// hostile client — can never hand back the wrong plan.
    source: Option<Arc<str>>,
    /// LRU clock value of the last hit or insert.
    last_used: u64,
}

/// Default ceiling on cached bundles; see [`PlanCache::capacity`].
const PLAN_CACHE_DEFAULT_CAPACITY: usize = 1024;

/// The content-addressed store of optimized bundles.
struct PlanCache {
    entries: HashMap<PlanKey, CacheEntry>,
    /// Entry ceiling: inserting beyond it evicts the least recently
    /// used bundle, so hostile or merely varied workloads (one plan per
    /// parameter set) bound memory instead of growing it forever.
    capacity: usize,
    /// Monotonic LRU clock, bumped on every hit and insert.
    tick: u64,
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache {
            entries: HashMap::new(),
            capacity: PLAN_CACHE_DEFAULT_CAPACITY,
            tick: 0,
        }
    }
}

impl PlanCache {
    /// Evict least-recently-used entries until at most `target` remain.
    /// O(n) per eviction — fine at cache sizes where n is the capacity
    /// bound.
    fn evict_to(&mut self, target: usize) {
        while self.entries.len() > target {
            let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
            else {
                return;
            };
            self.entries.remove(&oldest);
        }
    }

    /// `ferry.plan_cache` rows: one per cached bundle, in key order
    /// (exp_hash, schema_version). u64 hashes are exposed as their i64
    /// bit patterns — the same cast `ferry.queries.plan_hash` uses, so
    /// the two join.
    fn rows(&self) -> Vec<ferry_algebra::Row> {
        use ferry_algebra::Value;
        let mut rows: Vec<ferry_algebra::Row> = self
            .entries
            .iter()
            .map(|(&(hash, ver), e)| {
                vec![
                    Value::Int(hash as i64),
                    Value::Int(e.hits as i64),
                    Value::Int(e.bundle.plan_size() as i64),
                    Value::Int(e.bundle.queries.len() as i64),
                    Value::Int(ver as i64),
                ]
            })
            .collect();
        rows.sort_by_key(|r| match (&r[0], &r[4]) {
            (Value::Int(h), Value::Int(v)) => (*h, *v),
            _ => unreachable!("plan-cache rows are all-Int"),
        });
        rows
    }
}

/// Where the trace of a given dispatch is — the typed answer to "why did
/// [`Connection::trace_json_for`] return `None`?", which conflates three
/// very different situations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceStatus {
    /// The dispatch ran traced and its trace is still in the telemetry
    /// ring: here is the Chrome trace-format JSON.
    Captured(String),
    /// The dispatch ran, but without tracing (telemetry level below
    /// `Full` and not `explain_analyze`) — there never was a trace.
    NotTraced,
    /// The dispatch ran traced, but its trace has aged out of the
    /// bounded trace ring.
    Evicted,
    /// No record of this query id anywhere — it never ran on this
    /// database, or is old enough to have left every retention window.
    UnknownQuery,
}

/// A compiled, optimized, executable-many-times query of result type `T`
/// — the prepared-statement analogue. The handle is `Send + Sync` and
/// independent of the `Connection` that produced it: share one across
/// threads via `Arc`, or hand clones of the (cheap) `Arc`'d bundle to a
/// pool of workers.
pub struct Prepared<T> {
    bundle: Arc<CompiledBundle>,
    _t: PhantomData<fn() -> T>,
}

// manual impl: cloning a prepared handle never requires `T: Clone`
impl<T> Clone for Prepared<T> {
    fn clone(&self) -> Prepared<T> {
        Prepared {
            bundle: self.bundle.clone(),
            _t: PhantomData,
        }
    }
}

impl<T> Prepared<T> {
    /// The compiled bundle: plan DAG, serialized roots, decode layouts.
    pub fn bundle(&self) -> &CompiledBundle {
        &self.bundle
    }
}

/// A connection to the database coprocessor.
pub struct Connection {
    db: Arc<Database>,
    rewriter: Option<PlanRewriter>,
    backend: Arc<dyn Backend>,
    cache: Arc<Mutex<PlanCache>>,
}

impl Clone for Connection {
    fn clone(&self) -> Connection {
        Connection {
            db: self.db.clone(),
            rewriter: self.rewriter.clone(),
            backend: self.backend.clone(),
            cache: self.cache.clone(),
        }
    }
}

impl Connection {
    pub fn new(db: Database) -> Connection {
        let cache = Arc::new(Mutex::new(PlanCache::default()));
        // The plan cache lives up here in the runtime, so `ferry.plan_cache`
        // is an *extrinsic* system table: we hand the engine a provider
        // that snapshots the cache at scan time. Columns alphabetical,
        // like every table the `table` combinator exposes.
        let for_scan = cache.clone();
        db.register_system_table(
            "ferry.plan_cache",
            ferry_algebra::Schema::of(&[
                ("exp_hash", ferry_algebra::Ty::Int),
                ("hits", ferry_algebra::Ty::Int),
                ("operators", ferry_algebra::Ty::Int),
                ("queries", ferry_algebra::Ty::Int),
                ("schema_version", ferry_algebra::Ty::Int),
            ]),
            vec!["exp_hash".into(), "schema_version".into()],
            Arc::new(move || for_scan.lock().unwrap().rows()),
        )
        .expect("ferry.plan_cache registration is well-formed");
        Connection {
            db: Arc::new(db),
            rewriter: None,
            backend: Arc::new(AlgebraBackend),
            cache,
        }
    }

    /// Open (or create) a **durable** database rooted at `path` and wrap
    /// it in a connection: the catalog is recovered from its snapshot +
    /// write-ahead log, and every subsequent mutation through this
    /// connection is logged there before being acknowledged.
    pub fn open_durable(
        path: impl AsRef<std::path::Path>,
        config: ferry_engine::DurabilityConfig,
    ) -> Result<Connection, FerryError> {
        Ok(Connection::new(Database::open(path, config)?))
    }

    /// [`open_durable`](Connection::open_durable) for a **hash-partitioned**
    /// database: base tables created with a shard key spread across
    /// `shards` shard-local WALs and snapshots, recovered in parallel.
    /// `shards` is fixed at directory creation; reopening must pass the
    /// same value.
    pub fn open_sharded(
        path: impl AsRef<std::path::Path>,
        shards: usize,
        config: ferry_engine::DurabilityConfig,
    ) -> Result<Connection, FerryError> {
        Ok(Connection::new(Database::open_sharded(
            path, shards, config,
        )?))
    }

    /// Snapshot the catalog and compact the write-ahead log. Returns the
    /// LSN the snapshot covers (0 for an in-memory database, where this
    /// is a no-op).
    pub fn checkpoint(&self) -> Result<u64, FerryError> {
        Ok(self.db.checkpoint()?)
    }

    /// Install a plan rewriter (e.g. `ferry_optimizer::rewriter()`)
    /// applied once, at prepare time, to every compiled bundle. Cached
    /// bundles are already rewritten — a cache hit skips the optimizer
    /// along with the compiler.
    pub fn with_optimizer(mut self, rewriter: PlanRewriter) -> Connection {
        self.rewriter = Some(rewriter);
        self
    }

    /// Select the execution backend (default: [`AlgebraBackend`]).
    pub fn with_backend(mut self, backend: Arc<dyn Backend>) -> Connection {
        self.backend = backend;
        self
    }

    /// The active backend.
    pub fn backend(&self) -> &Arc<dyn Backend> {
        &self.backend
    }

    /// The shared database. All of its methods take `&self`: reads pin
    /// an MVCC snapshot, mutations commit through
    /// [`Database::transact`] — there is no guard to hold and nothing
    /// for one caller to block on. (The former `database_mut` write
    /// guard is gone with the lock it guarded.)
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Pin the current catalog version: every read and execution through
    /// the returned snapshot sees exactly this epoch, immune to
    /// concurrent commits. Shorthand for `self.database().snapshot()`.
    pub fn snapshot(&self) -> ferry_engine::Snapshot<'_> {
        self.db.snapshot()
    }

    /// Compile a query to its relational bundle (no execution, no cache)
    /// — the artefact whose size the avalanche-safety guarantee speaks
    /// about.
    pub fn compile<T: QA>(&self, q: &Q<T>) -> Result<CompiledBundle, FerryError> {
        self.compile_exp(q.exp())
    }

    fn compile_exp(&self, exp: &crate::exp::Exp) -> Result<CompiledBundle, FerryError> {
        let mut bundle = compile_program(exp, self)?;
        if let Some(rw) = &self.rewriter {
            let _s = ferry_telemetry::span("optimize", "optimize");
            let roots = bundle.roots();
            let (plan, new_roots, report) = rw(&bundle.plan, &roots);
            bundle.plan = plan;
            for (q, r) in bundle.queries.iter_mut().zip(new_roots) {
                q.root = r;
            }
            bundle.opt = report;
        }
        Ok(bundle)
    }

    /// Compile-or-fetch: returns the prepared handle for `q`, consulting
    /// the plan cache first. Two alpha-equivalent queries prepared
    /// against the same catalog schema share one compiled bundle, however
    /// and whenever they were built.
    pub fn prepare<T: QA>(&self, q: &Q<T>) -> Result<Prepared<T>, FerryError> {
        let telemetry = self.telemetry();
        let _trace = telemetry.begin_query(0);
        let bundle = self.prepare_raw(q.exp().stable_hash(), None, |conn| {
            conn.compile_exp(q.exp())
        })?;
        Ok(Prepared {
            bundle,
            _t: PhantomData,
        })
    }

    /// Compile-or-fetch by **content hash**: the cache machinery behind
    /// [`Connection::prepare`], exposed for frontends that compile to a
    /// [`CompiledBundle`] from something other than a `Q<T>` term — the
    /// SQL layer and `ferry-server` key on a hash of the statement text
    /// and pass that text as `source`. The entry shares
    /// `ferry.plan_cache` rows and hit/miss accounting with DSL-prepared
    /// bundles; `build` runs only on a miss (outside the cache lock),
    /// and a catalog schema change invalidates as usual because the key
    /// is `(content_hash, schema_version)`.
    ///
    /// `source` is the collision guard: a hit is only served when the
    /// stored source matches the caller's, so two statements whose texts
    /// collide under the 64-bit content hash (crafting such pairs
    /// offline is feasible for non-cryptographic hashes) each compile
    /// and run their own plan — the second never sees the first's. The
    /// colliding latecomer executes correctly but uncached; it does not
    /// evict the resident entry.
    pub fn prepare_raw(
        &self,
        content_hash: u64,
        source: Option<&str>,
        build: impl FnOnce(&Connection) -> Result<CompiledBundle, FerryError>,
    ) -> Result<Arc<CompiledBundle>, FerryError> {
        let mut span = ferry_telemetry::span("prepare", "runtime");
        // one pinned snapshot supplies the cache key's schema version
        // AND the hit/miss accounting: a DDL commit between the two can
        // no longer record a hit against one version and key the entry
        // under another
        let snap = self.db.snapshot();
        let key: PlanKey = (content_hash, snap.schema_version());
        let mut collided = false;
        {
            let mut cache = self.cache.lock().unwrap();
            let tick = {
                cache.tick += 1;
                cache.tick
            };
            if let Some(e) = cache.entries.get_mut(&key) {
                if e.source.as_deref() == source {
                    e.hits += 1;
                    e.last_used = tick;
                    let bundle = e.bundle.clone();
                    drop(cache);
                    self.db.record_cache(true);
                    span.attr("cache", "hit");
                    return Ok(bundle);
                }
                collided = true;
            }
        }
        // compile outside the cache lock: compilation can be slow and
        // other threads may be serving hits meanwhile
        let bundle = Arc::new(build(self)?);
        let mut cache = self.cache.lock().unwrap();
        // hygiene: a schema change strands entries under old versions
        cache.entries.retain(|(_, v), _| *v == key.1);
        let bundle = if collided {
            // hash collision: serve the fresh bundle without touching
            // the resident entry
            bundle
        } else {
            let tick = {
                cache.tick += 1;
                cache.tick
            };
            if !cache.entries.contains_key(&key) {
                let room = cache.capacity.max(1) - 1;
                cache.evict_to(room);
            }
            cache
                .entries
                .entry(key)
                .or_insert(CacheEntry {
                    bundle,
                    hits: 0,
                    source: source.map(Arc::from),
                    last_used: tick,
                })
                .bundle
                .clone()
        };
        drop(cache);
        self.db.record_cache(false);
        span.attr("cache", "miss")
            .attr("queries", bundle.queries.len());
        Ok(bundle)
    }

    /// Cap the plan cache at `capacity` bundles (least-recently-used
    /// eviction; minimum 1). The default is 1024 — bounded so workloads
    /// that compile many distinct statements (e.g. wire statements whose
    /// parameters are substituted into the text) cannot grow server
    /// memory without limit.
    pub fn set_plan_cache_capacity(&self, capacity: usize) {
        let mut cache = self.cache.lock().unwrap();
        cache.capacity = capacity.max(1);
        let cap = cache.capacity;
        cache.evict_to(cap);
    }

    /// The installed plan rewriter, if any — external frontends (e.g. the
    /// server's SQL path) apply it to their own plans so every statement
    /// gets the same optimisation treatment as a DSL query.
    pub fn plan_rewriter(&self) -> Option<&PlanRewriter> {
        self.rewriter.as_ref()
    }

    /// Number of bundles currently cached.
    pub fn plan_cache_len(&self) -> usize {
        self.cache.lock().unwrap().entries.len()
    }

    /// Drop every cached bundle.
    pub fn clear_plan_cache(&self) {
        self.cache.lock().unwrap().entries.clear();
    }

    /// Execute a prepared query and decode the result — the hot path:
    /// no compilation, no optimisation, just dispatch + stitch + decode.
    pub fn execute<T: QA>(&self, prepared: &Prepared<T>) -> Result<T, FerryError> {
        T::from_val(&self.execute_val(prepared)?)
    }

    /// Like [`Connection::execute`] but stopping at the untyped nested
    /// value (useful for oracle comparisons).
    pub fn execute_val<T: QA>(&self, prepared: &Prepared<T>) -> Result<Val, FerryError> {
        let telemetry = self.telemetry();
        let mut trace = telemetry.begin_query(0);
        let rels = self.execute_bundle(prepared.bundle())?;
        self.stamp_query_id(&mut trace);
        let _s = ferry_telemetry::span("stitch", "runtime");
        stitch(&rels, &prepared.bundle().queries)
    }

    /// Execute a compiled bundle through the configured backend and
    /// return the raw relations (one per bundle member).
    pub fn execute_bundle(&self, bundle: &CompiledBundle) -> Result<Vec<Rel>, FerryError> {
        self.backend.execute_bundle(&self.db.snapshot(), bundle)
    }

    /// Execute the query on the database and decode the result — `fromQ`.
    /// Equivalent to `prepare` + `execute`; repeated calls with the same
    /// query hit the plan cache.
    pub fn from_q<T: QA>(&self, q: &Q<T>) -> Result<T, FerryError> {
        let val = self.from_q_val(q)?;
        T::from_val(&val)
    }

    /// Like [`Connection::from_q`] but stopping at the untyped nested
    /// value (useful for oracle comparisons).
    pub fn from_q_val<T: QA>(&self, q: &Q<T>) -> Result<Val, FerryError> {
        let telemetry = self.telemetry();
        // one trace covers prepare (compile + optimize) and execution —
        // the inner begin_query calls join this ambient trace
        let mut trace = telemetry.begin_query(0);
        let prepared = self.prepare(q)?;
        let val = self.execute_val(&prepared)?;
        self.stamp_query_id(&mut trace);
        Ok(val)
    }

    /// Back-fill the engine-assigned query id onto an active trace guard:
    /// the id is allocated inside the dispatch, after the trace began.
    fn stamp_query_id(&self, trace: &mut TraceGuard) {
        if !trace.is_active() {
            return;
        }
        if let Some(qid) = self.database().query_id_for_trace(trace.trace_id()) {
            trace.set_query_id(qid);
        }
    }

    /// This connection's telemetry hub (shared with the database and all
    /// connection clones): config, metrics registry, recent traces.
    pub fn telemetry(&self) -> Arc<Telemetry> {
        self.database().telemetry().clone()
    }

    /// Set the telemetry level for every subsequent operation on this
    /// connection's database ([`TelemetryConfig::Full`] records query
    /// traces; `Off` disables all accounting).
    pub fn set_telemetry_config(&self, config: TelemetryConfig) {
        self.database().set_telemetry_config(config);
    }

    /// The most recently completed query trace as Chrome trace-format
    /// JSON (load in `chrome://tracing` / Perfetto). `None` until a query
    /// has run under [`TelemetryConfig::Full`] or `explain_analyze`.
    pub fn trace_json(&self) -> Option<String> {
        self.telemetry()
            .latest_trace()
            .as_ref()
            .map(ferry_telemetry::chrome_trace_json)
    }

    /// Chrome trace-format JSON for the (retained) trace of the given
    /// engine-assigned query id — see `Database::last_query_id`.
    ///
    /// `None` is **ambiguous** here: it means "no trace", without saying
    /// whether the id is unknown, the dispatch ran untraced, or the
    /// trace was captured and later evicted from the bounded ring. Use
    /// [`Connection::trace_status_for`] when the distinction matters.
    pub fn trace_json_for(&self, query_id: u64) -> Option<String> {
        self.telemetry()
            .trace_for_query(query_id)
            .as_ref()
            .map(ferry_telemetry::chrome_trace_json)
    }

    /// The typed disposition of dispatch `query_id`'s trace — the
    /// disambiguated [`Connection::trace_json_for`]. The retained
    /// profile ring and slow-query log are consulted to tell "ran
    /// untraced" ([`TraceStatus::NotTraced`]) from "trace aged out"
    /// ([`TraceStatus::Evicted`]) from "never heard of it"
    /// ([`TraceStatus::UnknownQuery`]).
    pub fn trace_status_for(&self, query_id: u64) -> TraceStatus {
        if let Some(t) = self.telemetry().trace_for_query(query_id) {
            return TraceStatus::Captured(ferry_telemetry::chrome_trace_json(&t));
        }
        let trace_id = self
            .db
            .profiles()
            .iter()
            .rev()
            .find(|p| p.query_id == query_id)
            .map(|p| p.trace_id)
            .or_else(|| self.db.slow_query(query_id).map(|r| r.trace_id));
        match trace_id {
            Some(0) => TraceStatus::NotTraced,
            Some(_) => TraceStatus::Evicted,
            None => TraceStatus::UnknownQuery,
        }
    }

    /// Set (or with `None`, disable) the database's slow-query
    /// threshold: any dispatch at least this slow is captured — plan
    /// pretty-print, optimizer report, per-node profile — queryable as
    /// `ferry.slow_queries` and renderable via
    /// [`Connection::slow_query_report`]. Shorthand for
    /// `self.database().set_slow_query_threshold(t)`.
    pub fn set_slow_query_threshold(&self, t: Option<std::time::Duration>) {
        self.db.set_slow_query_threshold(t);
    }

    /// Human-readable post-mortem of a captured slow dispatch: timing
    /// against the threshold in force, the optimizer's report, every
    /// root's plan, the per-node profile, and the trace disposition.
    /// `None` when `query_id` is not (or no longer) in the slow-query
    /// ring.
    pub fn slow_query_report(&self, query_id: u64) -> Option<String> {
        use std::fmt::Write;
        let r = self.db.slow_query(query_id)?;
        let telemetry = self.telemetry();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "slow query {}: {:?} (threshold {:?}), {} root{}",
            r.query_id,
            r.elapsed,
            r.threshold,
            r.roots,
            if r.roots == 1 { "" } else { "s" }
        );
        if r.plan_hash != 0 {
            let _ = writeln!(out, "plan hash: {} (joins ferry.plan_cache)", r.plan_hash);
        }
        if let Some(rep) = &r.opt_report {
            let _ = write!(out, "{rep}");
        }
        let _ = writeln!(out, "-- plan --");
        let _ = writeln!(out, "{}", r.plan.trim_end());
        let _ = writeln!(out, "-- profile --");
        for p in &r.profile.nodes {
            let _ = writeln!(
                out,
                "node {:>3}  {:<12} {:>9} rows  {:>3} morsels  {:?}",
                p.node, p.label, p.rows, p.morsels, p.elapsed
            );
        }
        let _ = writeln!(out, "trace: {}", r.trace_status(&telemetry));
        Some(out)
    }

    /// The id of the most recent dispatch on this connection's database.
    pub fn last_query_id(&self) -> u64 {
        self.database().last_query_id()
    }

    /// Export the catalog as in-heap tables for the reference interpreter:
    /// rows in canonical key order, columns in alphabetical order —
    /// exactly the view `table "name"` denotes.
    pub fn interpreter_tables(&self) -> Result<crate::interp::Tables, FerryError> {
        // one snapshot: the exported tables are a consistent version
        let snap = self.db.snapshot();
        let mut out = HashMap::new();
        for name in snap.table_names() {
            let t = snap
                .table(name)
                .ok_or_else(|| FerryError::Table(format!("listed table {name} disappeared")))?;
            let cols = t.schema.cols();
            let mut alpha: Vec<usize> = (0..cols.len()).collect();
            alpha.sort_by(|&i, &j| cols[i].0.cmp(&cols[j].0));
            let key_idx: Vec<usize> = if t.keys.is_empty() {
                (0..cols.len()).collect()
            } else {
                t.keys
                    .iter()
                    .map(|k| {
                        t.schema.index_of(k).ok_or_else(|| {
                            FerryError::Table(format!(
                                "table {name}: key column {k} not in schema {}",
                                t.schema
                            ))
                        })
                    })
                    .collect::<Result<_, _>>()?
            };
            let mut rows = t.rows.rows().to_vec();
            rows.sort_by(|a, b| {
                key_idx
                    .iter()
                    .map(|&i| a[i].cmp(&b[i]))
                    .find(|o| !o.is_eq())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let vals: Vec<Val> = rows
                .iter()
                .map(|row| {
                    let cells: Vec<Val> = alpha
                        .iter()
                        .map(|&i| {
                            Val::from_cell(&row[i]).ok_or_else(|| {
                                FerryError::Table(format!(
                                    "table {name}: cell {} is not an atomic value",
                                    row[i]
                                ))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    Ok(if cells.len() == 1 {
                        cells.into_iter().next().unwrap()
                    } else {
                        Val::Tuple(cells)
                    })
                })
                .collect::<Result<_, FerryError>>()?;
            out.insert(name.to_string(), Val::List(vals));
        }
        Ok(out)
    }

    /// Run the query through the reference interpreter instead of the
    /// database (same table view) — the semantics `from_q` must reproduce.
    pub fn interpret<T: QA>(&self, q: &Q<T>) -> Result<T, FerryError> {
        let tables = self.interpreter_tables()?;
        let val = crate::interp::interpret(q.exp(), &tables)?;
        T::from_val(&val)
    }

    /// Human-readable account of what `from_q` would do: the kernel term,
    /// the bundle size, each member's (optimized) algebra plan, and —
    /// when the configured backend ships something other than the plan
    /// itself (e.g. `SqlBackend`) — the exact text it would send, e.g.
    /// the generated SQL:1999. No query is executed.
    pub fn explain<T: QA>(&self, q: &Q<T>) -> Result<String, FerryError> {
        use std::fmt::Write;
        let bundle = self.compile(q)?;
        let mut out = String::new();
        let _ = writeln!(out, "combinators: {}", q.exp());
        let _ = writeln!(out, "result type: {}", bundle.ty);
        let _ = writeln!(out, "backend: {}", self.backend.name());
        let _ = writeln!(
            out,
            "bundle: {} quer{} ({} operators)",
            bundle.queries.len(),
            if bundle.queries.len() == 1 {
                "y"
            } else {
                "ies"
            },
            bundle.plan_size()
        );
        if let Some(rep) = &bundle.opt {
            let _ = write!(out, "{}", rep.render());
        }
        let algebra = AlgebraBackend;
        let snap = self.db.snapshot();
        for (i, qd) in bundle.queries.iter().enumerate() {
            let _ = writeln!(out, "-- query {} --", i + 1);
            let _ = write!(
                out,
                "{}",
                algebra.render_root(&snap, &bundle.plan, qd.root)?
            );
            if self.backend.name() != algebra.name() {
                let _ = writeln!(out, "-- query {} ({}) --", i + 1, self.backend.name());
                let rendered = self.backend.render_root(&snap, &bundle.plan, qd.root)?;
                let _ = writeln!(out, "{}", rendered.trim_end());
            }
        }
        Ok(out)
    }

    /// [`explain`](Connection::explain) plus execution: run the bundle
    /// (under a forced telemetry trace, whatever the configured level)
    /// and render the engine's per-node profile — execution path (scalar
    /// vs vectorized, with kernel batch count), wall time, output rows
    /// and morsel count per operator — the aggregate parallelism
    /// counters, and the compile → optimize → execute span timeline. The
    /// profiling analogue of SQL's `EXPLAIN ANALYZE`.
    pub fn explain_analyze<T: QA>(&self, q: &Q<T>) -> Result<String, FerryError> {
        use std::fmt::Write;
        let mut out = self.explain(q)?;
        let telemetry = self.telemetry();
        let mut trace = telemetry.begin_query_forced(0);
        // compile inside the trace so the timeline shows the frontend
        // stages too; the plan cache is deliberately bypassed
        let bundle = self.compile(q)?;
        let results = self.backend.execute_bundle(&self.db.snapshot(), &bundle)?;
        let stats = self.db.stats();
        self.stamp_query_id(&mut trace);
        let trace_id = trace.trace_id();
        drop(trace); // finish the trace so the timeline below can render it
        let _ = writeln!(
            out,
            "-- execution profile ({} rows out) --",
            results.iter().map(Rel::len).sum::<usize>()
        );
        if let Some(profile) = stats.latest_profile() {
            for p in &profile.nodes {
                let path = match p.path {
                    ferry_engine::ExecPath::Scalar => "scalar".to_string(),
                    ferry_engine::ExecPath::Vectorized => format!("vec({})", p.batches),
                    ferry_engine::ExecPath::Fused => format!("fused({})", p.batches),
                };
                let label = if p.fused.is_empty() {
                    p.label.to_string()
                } else {
                    format!("pipeline[{}]", p.fused.join("\u{2192}"))
                };
                let shards = if p.shards_total > 0 {
                    format!("  shards: {}/{} scanned", p.shards_scanned, p.shards_total)
                } else {
                    String::new()
                };
                let _ = writeln!(
                    out,
                    "node {:>3}  {:<12} {:<10} {:>9} rows  {:>3} morsels  {:?}{}",
                    p.node, label, path, p.rows, p.morsels, p.elapsed, shards
                );
            }
        }
        let _ = writeln!(
            out,
            "parallel waves: {}  parallel nodes: {}  morsel tasks: {}  vec nodes: {}  kernel batches: {}  fused pipelines: {}  fused nodes: {}",
            stats.par_waves, stats.par_nodes, stats.morsel_tasks, stats.vec_nodes, stats.kernel_batches,
            stats.fused_pipelines, stats.fused_nodes
        );
        if stats.shard_rows + stats.shard_pruned > 0 {
            let _ = writeln!(
                out,
                "shard rows: {}  shard pruned: {}",
                stats.shard_rows, stats.shard_pruned
            );
        }
        let recorded = telemetry
            .traces()
            .into_iter()
            .rev()
            .find(|t| t.trace_id == trace_id);
        if let Some(t) = recorded {
            render_timeline(&mut out, &t);
        }
        Ok(out)
    }

    /// Configure the engine's morsel/wavefront parallelism for every
    /// subsequent execution on this connection's database (shared by all
    /// clones). `ParConfig::serial()` recovers the single-threaded
    /// engine.
    pub fn set_par_config(&self, cfg: ferry_engine::ParConfig) {
        self.db.set_par_config(cfg);
    }
}

/// Render a completed query trace as an indented span timeline:
/// offset-from-trace-start and duration per span, children nested under
/// their parents, attributes inline.
fn render_timeline(out: &mut String, trace: &QueryTrace) {
    use std::fmt::Write;
    let us = |ns: u64| ns as f64 / 1000.0;
    let _ = writeln!(
        out,
        "-- timeline (trace {}, query {}, {:.1}us) --",
        trace.trace_id,
        trace.query_id,
        us(trace.dur_ns)
    );
    let mut children: HashMap<u64, Vec<&ferry_telemetry::SpanRecord>> = HashMap::new();
    for s in &trace.spans {
        children.entry(s.parent).or_default().push(s);
    }
    // spans are sorted root-first then by start, so sibling order is
    // already chronological
    let mut stack: Vec<(&ferry_telemetry::SpanRecord, usize)> = children
        .get(&0)
        .map(|roots| roots.iter().rev().map(|s| (*s, 0)).collect())
        .unwrap_or_default();
    while let Some((s, depth)) = stack.pop() {
        let mut line = format!(
            "{:>9.1}us {:>9.1}us  {}{} [{}]",
            us(s.start_ns.saturating_sub(trace.start_ns)),
            us(s.dur_ns),
            "  ".repeat(depth),
            s.name,
            s.cat
        );
        for (k, v) in &s.attrs {
            let _ = write!(line, " {k}={v}");
        }
        let _ = writeln!(out, "{line}");
        if let Some(kids) = children.get(&s.id) {
            for kid in kids.iter().rev() {
                stack.push((kid, depth + 1));
            }
        }
    }
}

impl SchemaProvider for Connection {
    fn table_info(&self, name: &str) -> Option<TableInfo> {
        // base tables shadow system tables, mirroring execution-time
        // resolution (`Snapshot::system_table` is only consulted on a
        // catalog miss)
        if let Some(t) = self.db.table(name) {
            return Some(TableInfo {
                cols: t
                    .schema
                    .cols()
                    .iter()
                    .map(|(n, ty)| (n.to_string(), *ty))
                    .collect(),
                keys: t.keys.clone(),
            });
        }
        let (schema, keys) = self.db.system_table_info(name)?;
        Some(TableInfo {
            cols: schema
                .cols()
                .iter()
                .map(|(n, ty)| (n.to_string(), *ty))
                .collect(),
            keys,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `Connection` clones and `Prepared` handles cross thread
    /// boundaries; regressions here break the concurrent runtime.
    #[test]
    fn runtime_handles_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Connection>();
        assert_send_sync::<Prepared<Vec<(String, Vec<String>)>>>();
        assert_send_sync::<Arc<CompiledBundle>>();
    }
}

//! The runtime: `Connection` and `from_q`.
//!
//! `from_q`, "when provided with a connection parameter, executes its query
//! argument on the database and returns the result as a regular Haskell
//! value" (§2) — here, a regular Rust value. The full pipeline of Fig. 2
//! runs inside: compile (loop-lifting) → optional plan optimisation →
//! dispatch the bundle (one engine round-trip per member) → stitch → decode.

use crate::compile::{SchemaProvider, TableInfo};
use crate::error::FerryError;
use crate::qa::{Q, QA};
use crate::shred::{compile_program, CompiledBundle};
use crate::stitch::stitch;
use crate::types::Val;
use ferry_algebra::{NodeId, Plan, Rel};
use ferry_engine::Database;
use std::collections::HashMap;

/// A plan rewriter slot (wired to `ferry_optimizer::optimize` by callers;
/// kept abstract here so the core crate does not depend on the optimizer).
pub type PlanRewriter = Box<dyn Fn(&Plan, &[NodeId]) -> (Plan, Vec<NodeId>) + Send + Sync>;

/// A connection to the database coprocessor.
pub struct Connection {
    db: Database,
    rewriter: Option<PlanRewriter>,
}

impl Connection {
    pub fn new(db: Database) -> Connection {
        Connection { db, rewriter: None }
    }

    /// Install a plan rewriter (e.g. `ferry_optimizer::optimize`) applied
    /// to every compiled bundle before dispatch.
    pub fn with_optimizer(mut self, rewriter: PlanRewriter) -> Connection {
        self.rewriter = Some(rewriter);
        self
    }

    pub fn database(&self) -> &Database {
        &self.db
    }

    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Compile a query to its relational bundle (no execution) — the
    /// artefact whose size the avalanche-safety guarantee speaks about.
    pub fn compile<T: QA>(&self, q: &Q<T>) -> Result<CompiledBundle, FerryError> {
        let mut bundle = compile_program(q.exp(), self)?;
        if let Some(rw) = &self.rewriter {
            let roots = bundle.roots();
            let (plan, new_roots) = rw(&bundle.plan, &roots);
            bundle.plan = plan;
            for (q, r) in bundle.queries.iter_mut().zip(new_roots) {
                q.root = r;
            }
        }
        Ok(bundle)
    }

    /// Execute a compiled bundle and return the raw relations (one per
    /// bundle member).
    pub fn execute_bundle(&self, bundle: &CompiledBundle) -> Result<Vec<Rel>, FerryError> {
        Ok(self.db.execute_bundle(&bundle.plan, &bundle.roots())?)
    }

    /// Execute the query on the database and decode the result — `fromQ`.
    pub fn from_q<T: QA>(&self, q: &Q<T>) -> Result<T, FerryError> {
        let val = self.from_q_val(q)?;
        T::from_val(&val)
    }

    /// Like [`Connection::from_q`] but stopping at the untyped nested
    /// value (useful for oracle comparisons).
    pub fn from_q_val<T: QA>(&self, q: &Q<T>) -> Result<Val, FerryError> {
        let bundle = self.compile(q)?;
        let rels = self.execute_bundle(&bundle)?;
        stitch(&rels, &bundle.queries)
    }

    /// Export the catalog as in-heap tables for the reference interpreter:
    /// rows in canonical key order, columns in alphabetical order —
    /// exactly the view `table "name"` denotes.
    pub fn interpreter_tables(&self) -> crate::interp::Tables {
        let mut out = HashMap::new();
        for name in self.db.table_names() {
            let t = self.db.table(name).expect("listed table exists");
            let cols = t.schema.cols();
            let mut alpha: Vec<usize> = (0..cols.len()).collect();
            alpha.sort_by(|&i, &j| cols[i].0.cmp(&cols[j].0));
            let key_idx: Vec<usize> = if t.keys.is_empty() {
                (0..cols.len()).collect()
            } else {
                t.keys
                    .iter()
                    .map(|k| t.schema.index_of(k).expect("key column"))
                    .collect()
            };
            let mut rows = t.rows.clone();
            rows.sort_by(|a, b| {
                key_idx
                    .iter()
                    .map(|&i| a[i].cmp(&b[i]))
                    .find(|o| !o.is_eq())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let vals: Vec<Val> = rows
                .iter()
                .map(|row| {
                    let cells: Vec<Val> = alpha
                        .iter()
                        .map(|&i| Val::from_cell(&row[i]).expect("atomic cell"))
                        .collect();
                    if cells.len() == 1 {
                        cells.into_iter().next().unwrap()
                    } else {
                        Val::Tuple(cells)
                    }
                })
                .collect();
            out.insert(name.to_string(), Val::List(vals));
        }
        out
    }

    /// Run the query through the reference interpreter instead of the
    /// database (same table view) — the semantics `from_q` must reproduce.
    pub fn interpret<T: QA>(&self, q: &Q<T>) -> Result<T, FerryError> {
        let tables = self.interpreter_tables();
        let val = crate::interp::interpret(q.exp(), &tables)?;
        T::from_val(&val)
    }

    /// Human-readable account of what `from_q` would do: the kernel term,
    /// the bundle size, and each member's (optimized) plan rendering. No
    /// query is executed.
    pub fn explain<T: QA>(&self, q: &Q<T>) -> Result<String, FerryError> {
        use std::fmt::Write;
        let bundle = self.compile(q)?;
        let mut out = String::new();
        let _ = writeln!(out, "combinators: {}", q.exp());
        let _ = writeln!(out, "result type: {}", bundle.ty);
        let _ = writeln!(
            out,
            "bundle: {} quer{} ({} operators)",
            bundle.queries.len(),
            if bundle.queries.len() == 1 { "y" } else { "ies" },
            bundle.plan_size()
        );
        for (i, qd) in bundle.queries.iter().enumerate() {
            let _ = writeln!(out, "-- query {} --", i + 1);
            let _ = write!(
                out,
                "{}",
                ferry_algebra::pretty::render(&bundle.plan, qd.root)
            );
        }
        Ok(out)
    }
}

impl SchemaProvider for Connection {
    fn table_info(&self, name: &str) -> Option<TableInfo> {
        let t = self.db.table(name)?;
        Some(TableInfo {
            cols: t
                .schema
                .cols()
                .iter()
                .map(|(n, ty)| (n.to_string(), *ty))
                .collect(),
            keys: t.keys.clone(),
        })
    }
}

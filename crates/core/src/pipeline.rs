//! Stage-by-stage artefacts of the execution model (Fig. 2).
//!
//! The paper's pipeline: 1 comprehensions → combinators (compile time,
//! `comp!`), 2 combinators → table algebra (loop-lifting), 3 algebra →
//! SQL (`ferry-sql`, outside this crate), 4 execution, 5 tabular
//! results, 6 stitched values. [`trace`] materialises the artefacts this
//! crate owns so examples and tests can display the full journey.

use crate::error::FerryError;
use crate::qa::{Q, QA};
use crate::runtime::Connection;
use crate::shred::CompiledBundle;
use crate::types::Val;
use ferry_algebra::Rel;

/// Everything a query turns into on its way through the pipeline.
pub struct Trace {
    /// Stage 1: the combinator term (kernel AST rendering).
    pub combinators: String,
    /// Stage 2: the table-algebra bundle.
    pub bundle: CompiledBundle,
    /// Stage 2 (rendered): one plan rendering per bundle member.
    pub plans: Vec<String>,
    /// Stage 4/5: the tabular results, one per bundle member.
    pub tables: Vec<Rel>,
    /// Stage 6: the stitched nested value.
    pub value: Val,
}

/// Run a query while keeping every intermediate artefact.
pub fn trace<T: QA>(conn: &Connection, q: &Q<T>) -> Result<Trace, FerryError> {
    let combinators = q.exp().to_string();
    let bundle = conn.compile(q)?;
    let plans = bundle
        .queries
        .iter()
        .map(|qd| ferry_algebra::pretty::render(&bundle.plan, qd.root))
        .collect();
    let tables = conn.execute_bundle(&bundle)?;
    let value = crate::stitch::stitch(&tables, &bundle.queries)?;
    Ok(Trace {
        combinators,
        bundle,
        plans,
        tables,
        value,
    })
}

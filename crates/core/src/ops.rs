//! The list-prelude combinator surface.
//!
//! "Data-intensive and data-parallel computations are expressed using
//! familiar combinators from the standard list prelude" (§1). Each function
//! here is the `Q`-typed twin of its Haskell namesake, derived mechanically
//! the way the paper prescribes (§3.1): apply `Q` to every type except
//! function types, and bound every type variable by `QA`.
//!
//! Higher-order arguments are ordinary Rust closures (HOAS): `map(|x| …,
//! xs)` builds the kernel `Lam` by applying the closure to a fresh
//! variable. General folds (`foldr`/`foldl`) and user recursion are
//! intentionally absent — the very gap the paper documents (§3.1) — while
//! all *special folds* (`sum`, `length`, `and`, `maximum`, …) are present.

use crate::exp::{fresh_var, Exp, Fun1, Fun2, Prim1, Prim2};
use crate::qa::{BasicQA, Q, QA, TA};
use crate::types::Ty;
use std::rc::Rc;

/// Build a kernel lambda from a Rust closure (HOAS).
fn lam<A: QA, B: QA>(f: impl FnOnce(Q<A>) -> Q<B>) -> Rc<Exp> {
    let x = fresh_var();
    let body = f(Q::wrap(Exp::Var(x, A::ty())));
    Rc::new(Exp::Lam(x, body.exp, Ty::fun(A::ty(), B::ty())))
}

fn app1<T: QA>(f: Fun1, e: Rc<Exp>, ty: Ty) -> Q<T> {
    Q::wrap(Exp::App1(f, e, ty))
}

fn app2<T: QA>(f: Fun2, a: Rc<Exp>, b: Rc<Exp>, ty: Ty) -> Q<T> {
    Q::wrap(Exp::App2(f, a, b, ty))
}

// ---------------------------------------------------------------- tables

/// Reference a database-resident table by name: `table "facilities"`.
///
/// No I/O happens here. The row type `R` must match the table's columns
/// *in alphabetical column order* — "these columns are gathered in a flat
/// tuple whose components are ordered alphabetically by column name". A
/// mismatch surfaces as a runtime error from `from_q`, exactly as in the
/// paper.
pub fn table<R: TA>(name: &str) -> Q<Vec<R>> {
    Q::wrap(Exp::Table(name.to_string(), Ty::list(R::ty())))
}

// ------------------------------------------------------- core combinators

/// `map :: (Q a -> Q b) -> Q [a] -> Q [b]`
pub fn map<A: QA, B: QA>(f: impl FnOnce(Q<A>) -> Q<B>, xs: Q<Vec<A>>) -> Q<Vec<B>> {
    app2(Fun2::Map, lam(f), xs.exp, Ty::list(B::ty()))
}

/// `filter :: (Q a -> Q Bool) -> Q [a] -> Q [a]`
pub fn filter<A: QA>(f: impl FnOnce(Q<A>) -> Q<bool>, xs: Q<Vec<A>>) -> Q<Vec<A>> {
    app2(Fun2::Filter, lam(f), xs.exp, Ty::list(A::ty()))
}

/// `concat :: Q [[a]] -> Q [a]`
pub fn concat<A: QA>(xss: Q<Vec<Vec<A>>>) -> Q<Vec<A>> {
    app1(Fun1::Concat, xss.exp, Ty::list(A::ty()))
}

/// `concatMap :: (Q a -> Q [b]) -> Q [a] -> Q [b]`
pub fn concat_map<A: QA, B: QA>(f: impl FnOnce(Q<A>) -> Q<Vec<B>>, xs: Q<Vec<A>>) -> Q<Vec<B>> {
    app2(Fun2::ConcatMap, lam(f), xs.exp, Ty::list(B::ty()))
}

/// `groupWith :: Ord b => (Q a -> Q b) -> Q [a] -> Q [[a]]` — groups are
/// sorted by key; element order within each group is preserved.
pub fn group_with<A: QA, K: TA>(f: impl FnOnce(Q<A>) -> Q<K>, xs: Q<Vec<A>>) -> Q<Vec<Vec<A>>> {
    app2(Fun2::GroupWith, lam(f), xs.exp, Ty::list(Ty::list(A::ty())))
}

/// `sortWith :: Ord b => (Q a -> Q b) -> Q [a] -> Q [a]` — stable.
pub fn sort_with<A: QA, K: TA>(f: impl FnOnce(Q<A>) -> Q<K>, xs: Q<Vec<A>>) -> Q<Vec<A>> {
    app2(Fun2::SortWith, lam(f), xs.exp, Ty::list(A::ty()))
}

/// `the :: Eq a => Q [a] -> Q a` — the single (repeated) element of a
/// non-empty list; partial.
pub fn the<A: QA>(xs: Q<Vec<A>>) -> Q<A> {
    app1(Fun1::The, xs.exp, A::ty())
}

/// `nub :: Eq a => Q [a] -> Q [a]` — first occurrences survive. Restricted
/// to flat element types (deep `Eq` on nested lists is unsupported).
pub fn nub<A: TA>(xs: Q<Vec<A>>) -> Q<Vec<A>> {
    app1(Fun1::Nub, xs.exp, Ty::list(A::ty()))
}

// -------------------------------------------------------- list surgery

/// `head` (partial).
pub fn head<A: QA>(xs: Q<Vec<A>>) -> Q<A> {
    app1(Fun1::Head, xs.exp, A::ty())
}

/// `last` (partial).
pub fn last<A: QA>(xs: Q<Vec<A>>) -> Q<A> {
    app1(Fun1::Last, xs.exp, A::ty())
}

/// `tail` (partial).
pub fn tail<A: QA>(xs: Q<Vec<A>>) -> Q<Vec<A>> {
    app1(Fun1::Tail, xs.exp, Ty::list(A::ty()))
}

/// `init` (partial).
pub fn init<A: QA>(xs: Q<Vec<A>>) -> Q<Vec<A>> {
    app1(Fun1::Init, xs.exp, Ty::list(A::ty()))
}

/// `reverse`.
pub fn reverse<A: QA>(xs: Q<Vec<A>>) -> Q<Vec<A>> {
    app1(Fun1::Reverse, xs.exp, Ty::list(A::ty()))
}

/// `(++)`.
pub fn append<A: QA>(xs: Q<Vec<A>>, ys: Q<Vec<A>>) -> Q<Vec<A>> {
    app2(Fun2::Append, xs.exp, ys.exp, Ty::list(A::ty()))
}

/// `(:)`.
pub fn cons<A: QA>(x: Q<A>, xs: Q<Vec<A>>) -> Q<Vec<A>> {
    app2(Fun2::Cons, x.exp, xs.exp, Ty::list(A::ty()))
}

/// `(!!)` with a 0-based index (partial).
pub fn index<A: QA>(xs: Q<Vec<A>>, i: Q<i64>) -> Q<A> {
    app2(Fun2::Index, xs.exp, i.exp, A::ty())
}

/// `take`.
pub fn take<A: QA>(n: Q<i64>, xs: Q<Vec<A>>) -> Q<Vec<A>> {
    app2(Fun2::Take, n.exp, xs.exp, Ty::list(A::ty()))
}

/// `drop`.
pub fn drop<A: QA>(n: Q<i64>, xs: Q<Vec<A>>) -> Q<Vec<A>> {
    app2(Fun2::Drop, n.exp, xs.exp, Ty::list(A::ty()))
}

/// `takeWhile` — the longest prefix satisfying the predicate.
pub fn take_while<A: QA>(f: impl FnOnce(Q<A>) -> Q<bool>, xs: Q<Vec<A>>) -> Q<Vec<A>> {
    app2(Fun2::TakeWhile, lam(f), xs.exp, Ty::list(A::ty()))
}

/// `dropWhile` — everything after that prefix.
pub fn drop_while<A: QA>(f: impl FnOnce(Q<A>) -> Q<bool>, xs: Q<Vec<A>>) -> Q<Vec<A>> {
    app2(Fun2::DropWhile, lam(f), xs.exp, Ty::list(A::ty()))
}

/// `span p xs = (takeWhile p xs, dropWhile p xs)`.
pub fn span<A: QA>(f: impl Fn(Q<A>) -> Q<bool>, xs: Q<Vec<A>>) -> Q<(Vec<A>, Vec<A>)> {
    pair(take_while(&f, xs.clone()), drop_while(&f, xs))
}

/// `break p = span (not . p)`.
pub fn break_<A: QA>(f: impl Fn(Q<A>) -> Q<bool>, xs: Q<Vec<A>>) -> Q<(Vec<A>, Vec<A>)> {
    span(move |x| f(x).not(), xs)
}

/// `splitAt n xs = (take n xs, drop n xs)`.
pub fn split_at<A: QA>(n: Q<i64>, xs: Q<Vec<A>>) -> Q<(Vec<A>, Vec<A>)> {
    pair(take(n.clone(), xs.clone()), drop(n, xs))
}

/// `zip` — truncates to the shorter list.
pub fn zip<A: QA, B: QA>(xs: Q<Vec<A>>, ys: Q<Vec<B>>) -> Q<Vec<(A, B)>> {
    app2(
        Fun2::Zip,
        xs.exp,
        ys.exp,
        Ty::list(Ty::Tuple(vec![A::ty(), B::ty()])),
    )
}

/// `unzip`.
pub fn unzip<A: QA, B: QA>(xs: Q<Vec<(A, B)>>) -> Q<(Vec<A>, Vec<B>)> {
    app1(
        Fun1::Unzip,
        xs.exp,
        Ty::Tuple(vec![Ty::list(A::ty()), Ty::list(B::ty())]),
    )
}

/// `number` (DSH): pair each element with its 1-based position.
pub fn number<A: QA>(xs: Q<Vec<A>>) -> Q<Vec<(A, i64)>> {
    app1(
        Fun1::Number,
        xs.exp,
        Ty::list(Ty::Tuple(vec![A::ty(), Ty::Int])),
    )
}

// ------------------------------------------------------ special folds

/// `length`.
pub fn length<A: QA>(xs: Q<Vec<A>>) -> Q<i64> {
    app1(Fun1::Length, xs.exp, Ty::Int)
}

/// `null`.
pub fn null<A: QA>(xs: Q<Vec<A>>) -> Q<bool> {
    app1(Fun1::Null, xs.exp, Ty::Bool)
}

/// Numeric element types for `sum`/`avg`.
pub trait QNum: BasicQA {}
impl QNum for i64 {}
impl QNum for f64 {}

/// `sum` — 0 for the empty list.
pub fn sum<A: QNum>(xs: Q<Vec<A>>) -> Q<A> {
    app1(Fun1::Sum, xs.exp, A::ty())
}

/// Average (partial: empty input errors).
pub fn avg<A: QNum>(xs: Q<Vec<A>>) -> Q<f64> {
    app1(Fun1::Avg, xs.exp, Ty::Dbl)
}

/// `maximum` (partial).
pub fn maximum<A: BasicQA>(xs: Q<Vec<A>>) -> Q<A> {
    app1(Fun1::Maximum, xs.exp, A::ty())
}

/// `minimum` (partial).
pub fn minimum<A: BasicQA>(xs: Q<Vec<A>>) -> Q<A> {
    app1(Fun1::Minimum, xs.exp, A::ty())
}

/// `and` — `true` for the empty list.
pub fn and(xs: Q<Vec<bool>>) -> Q<bool> {
    app1(Fun1::And, xs.exp, Ty::Bool)
}

/// `or` — `false` for the empty list.
pub fn or(xs: Q<Vec<bool>>) -> Q<bool> {
    app1(Fun1::Or, xs.exp, Ty::Bool)
}

/// `any p = or . map p`.
pub fn any<A: QA>(p: impl FnOnce(Q<A>) -> Q<bool>, xs: Q<Vec<A>>) -> Q<bool> {
    or(map(p, xs))
}

/// `all p = and . map p`.
pub fn all<A: QA>(p: impl FnOnce(Q<A>) -> Q<bool>, xs: Q<Vec<A>>) -> Q<bool> {
    and(map(p, xs))
}

/// `elem` over flat element types.
pub fn elem<A: TA>(x: Q<A>, xs: Q<Vec<A>>) -> Q<bool> {
    any(move |y: Q<A>| y.eq(&x), xs)
}

// ----------------------------------------------------- scalars & control

/// `if c then t else e` at the query level.
pub fn cond<T: QA>(c: Q<bool>, t: Q<T>, e: Q<T>) -> Q<T> {
    Q::wrap(Exp::If(c.exp, t.exp, e.exp, T::ty()))
}

/// A list literal with computed elements: `list![a, b, c]` equivalent.
pub fn list<T: QA, const N: usize>(items: [Q<T>; N]) -> Q<Vec<T>> {
    Q::wrap(Exp::ListE(
        items.into_iter().map(|q| q.exp).collect(),
        Ty::list(T::ty()),
    ))
}

/// The empty list at type `T`.
pub fn empty<T: QA>() -> Q<Vec<T>> {
    Q::wrap(Exp::ListE(vec![], Ty::list(T::ty())))
}

/// Pair constructor.
pub fn pair<A: QA, B: QA>(a: Q<A>, b: Q<B>) -> Q<(A, B)> {
    Q::wrap(Exp::Tuple(vec![a.exp, b.exp], <(A, B)>::ty()))
}

/// Triple constructor.
pub fn tuple3<A: QA, B: QA, C: QA>(a: Q<A>, b: Q<B>, c: Q<C>) -> Q<(A, B, C)> {
    Q::wrap(Exp::Tuple(vec![a.exp, b.exp, c.exp], <(A, B, C)>::ty()))
}

/// 4-tuple constructor.
pub fn tuple4<A: QA, B: QA, C: QA, D: QA>(a: Q<A>, b: Q<B>, c: Q<C>, d: Q<D>) -> Q<(A, B, C, D)> {
    Q::wrap(Exp::Tuple(
        vec![a.exp, b.exp, c.exp, d.exp],
        <(A, B, C, D)>::ty(),
    ))
}

/// Convert an integer query to a double (`integerToDouble`).
pub fn int_to_dbl(x: Q<i64>) -> Q<f64> {
    Q::wrap(Exp::Prim1(Prim1::IntToDbl, x.exp, Ty::Dbl))
}

impl<T: QA> Q<T> {
    fn cmp2(&self, other: &Q<T>, op: Prim2) -> Q<bool> {
        Q::wrap(Exp::Prim2(
            op,
            self.exp.clone(),
            other.exp.clone(),
            Ty::Bool,
        ))
    }

    /// `==` at the query level. For nested types this is only supported by
    /// the interpreter; the compiler restricts deep equality to flat types.
    pub fn eq(&self, other: &Q<T>) -> Q<bool> {
        self.cmp2(other, Prim2::Eq)
    }

    /// `/=`.
    pub fn ne(&self, other: &Q<T>) -> Q<bool> {
        self.cmp2(other, Prim2::Ne)
    }

    /// `<`.
    pub fn lt(&self, other: &Q<T>) -> Q<bool> {
        self.cmp2(other, Prim2::Lt)
    }

    /// `<=`.
    pub fn le(&self, other: &Q<T>) -> Q<bool> {
        self.cmp2(other, Prim2::Le)
    }

    /// `>`.
    pub fn gt(&self, other: &Q<T>) -> Q<bool> {
        self.cmp2(other, Prim2::Gt)
    }

    /// `>=`.
    pub fn ge(&self, other: &Q<T>) -> Q<bool> {
        self.cmp2(other, Prim2::Ge)
    }
}

impl Q<bool> {
    /// Logical conjunction (short-circuiting).
    pub fn and(&self, other: &Q<bool>) -> Q<bool> {
        Q::wrap(Exp::Prim2(
            Prim2::And,
            self.exp.clone(),
            other.exp.clone(),
            Ty::Bool,
        ))
    }

    /// Logical disjunction (short-circuiting).
    pub fn or(&self, other: &Q<bool>) -> Q<bool> {
        Q::wrap(Exp::Prim2(
            Prim2::Or,
            self.exp.clone(),
            other.exp.clone(),
            Ty::Bool,
        ))
    }

    /// Logical negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(&self) -> Q<bool> {
        Q::wrap(Exp::Prim1(Prim1::Not, self.exp.clone(), Ty::Bool))
    }
}

impl Q<String> {
    /// Text concatenation.
    pub fn concat(&self, other: &Q<String>) -> Q<String> {
        Q::wrap(Exp::Prim2(
            Prim2::Conc,
            self.exp.clone(),
            other.exp.clone(),
            Ty::Text,
        ))
    }
}

macro_rules! impl_arith {
    ($t:ty) => {
        impl std::ops::Add for Q<$t> {
            type Output = Q<$t>;
            fn add(self, rhs: Q<$t>) -> Q<$t> {
                Q::wrap(Exp::Prim2(Prim2::Add, self.exp, rhs.exp, <$t as QA>::ty()))
            }
        }
        impl std::ops::Sub for Q<$t> {
            type Output = Q<$t>;
            fn sub(self, rhs: Q<$t>) -> Q<$t> {
                Q::wrap(Exp::Prim2(Prim2::Sub, self.exp, rhs.exp, <$t as QA>::ty()))
            }
        }
        impl std::ops::Mul for Q<$t> {
            type Output = Q<$t>;
            fn mul(self, rhs: Q<$t>) -> Q<$t> {
                Q::wrap(Exp::Prim2(Prim2::Mul, self.exp, rhs.exp, <$t as QA>::ty()))
            }
        }
        impl std::ops::Div for Q<$t> {
            type Output = Q<$t>;
            fn div(self, rhs: Q<$t>) -> Q<$t> {
                Q::wrap(Exp::Prim2(Prim2::Div, self.exp, rhs.exp, <$t as QA>::ty()))
            }
        }
        impl std::ops::Rem for Q<$t> {
            type Output = Q<$t>;
            fn rem(self, rhs: Q<$t>) -> Q<$t> {
                Q::wrap(Exp::Prim2(Prim2::Mod, self.exp, rhs.exp, <$t as QA>::ty()))
            }
        }
        impl std::ops::Neg for Q<$t> {
            type Output = Q<$t>;
            fn neg(self) -> Q<$t> {
                Q::wrap(Exp::Prim1(Prim1::Neg, self.exp, <$t as QA>::ty()))
            }
        }
    };
}
impl_arith!(i64);
impl_arith!(f64);

// ------------------------------------------------- tuple views (patterns)

macro_rules! impl_proj {
    ($( [$($name:ident),+] => [$($idx:tt : $m:ident),+] );+ $(;)?) => {
        $(
            impl<$($name: QA),+> Q<($($name,)+)> {
                $(
                    /// Tuple projection.
                    pub fn $m(&self) -> Q<$name> {
                        Q::wrap(Exp::Proj($idx, self.exp.clone(), $name::ty()))
                    }
                )+
                /// The `View` instance: open the tuple into component
                /// queries (the paper's view-pattern support, §3.1).
                pub fn view(&self) -> ($(Q<$name>,)+) {
                    ($(self.$m(),)+)
                }
            }
        )+
    };
}

impl_proj! {
    [A, B] => [0: fst, 1: snd];
    [A, B, C] => [0: proj3_0, 1: proj3_1, 2: proj3_2];
    [A, B, C, D] => [0: proj4_0, 1: proj4_1, 2: proj4_2, 3: proj4_3];
    [A, B, C, D, E] => [0: proj5_0, 1: proj5_1, 2: proj5_2, 3: proj5_3, 4: proj5_4];
    [A, B, C, D, E, F] =>
        [0: proj6_0, 1: proj6_1, 2: proj6_2, 3: proj6_3, 4: proj6_4, 5: proj6_5];
    [A, B, C, D, E, F, G] =>
        [0: proj7_0, 1: proj7_1, 2: proj7_2, 3: proj7_3, 4: proj7_4, 5: proj7_5, 6: proj7_6];
    [A, B, C, D, E, F, G, H] =>
        [0: proj8_0, 1: proj8_1, 2: proj8_2, 3: proj8_3, 4: proj8_4, 5: proj8_5, 6: proj8_6,
         7: proj8_7];
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::check;
    use crate::interp::{interpret, Tables};
    use crate::qa::toq;
    use crate::types::Val;

    fn run<T: QA>(q: &Q<T>) -> T {
        let v = interpret(q.exp(), &Tables::new()).unwrap();
        T::from_val(&v).unwrap()
    }

    fn well_typed<T: QA>(q: &Q<T>) {
        if let Err(e) = check(q.exp(), &mut vec![]) {
            panic!("surface built ill-typed kernel term: {e}");
        }
    }

    #[test]
    fn map_filter_pipeline() {
        let q = map(
            |x: Q<i64>| x.clone() * x,
            filter(|x: Q<i64>| x.gt(&toq(&1i64)), toq(&vec![1i64, 2, 3])),
        );
        well_typed(&q);
        assert_eq!(run(&q), vec![4, 9]);
    }

    #[test]
    fn comprehension_equivalent_nesting() {
        // [(x, y) | x <- [1,2], y <- [10,20]]
        let q = concat_map(
            |x: Q<i64>| map(move |y: Q<i64>| pair(x.clone(), y), toq(&vec![10i64, 20])),
            toq(&vec![1i64, 2]),
        );
        well_typed(&q);
        assert_eq!(run(&q), vec![(1, 10), (1, 20), (2, 10), (2, 20)]);
    }

    #[test]
    fn group_sort_the() {
        let q = map(
            |g: Q<Vec<i64>>| pair(the(map(|x: Q<i64>| x % toq(&2i64), g.clone())), g),
            group_with(|x: Q<i64>| x % toq(&2i64), toq(&vec![3i64, 1, 4, 1, 5])),
        );
        well_typed(&q);
        assert_eq!(run(&q), vec![(0, vec![4]), (1, vec![3, 1, 1, 5])]);
    }

    #[test]
    fn folds_and_predicates() {
        let xs = toq(&vec![1i64, 2, 3, 4]);
        assert_eq!(run(&sum(xs.clone())), 10);
        assert_eq!(run(&length(xs.clone())), 4);
        assert_eq!(run(&maximum(xs.clone())), 4);
        assert!(run(&any(|x: Q<i64>| x.gt(&toq(&3i64)), xs.clone())));
        assert!(!run(&all(|x: Q<i64>| x.gt(&toq(&3i64)), xs.clone())));
        assert!(run(&elem(toq(&3i64), xs.clone())));
        assert!(!run(&elem(toq(&9i64), xs)));
    }

    #[test]
    fn tuple_views() {
        let p = pair(toq(&1i64), toq(&"x".to_string()));
        well_typed(&p);
        let (a, b) = p.view();
        assert_eq!(run(&a), 1);
        assert_eq!(run(&b), "x");
        let t = tuple3(toq(&1i64), toq(&2i64), toq(&3i64));
        assert_eq!(run(&t.proj3_2()), 3);
    }

    #[test]
    fn cond_and_bool_algebra() {
        let c = toq(&true).and(&toq(&false)).not();
        let q = cond(c, toq(&1i64), toq(&2i64));
        well_typed(&q);
        assert_eq!(run(&q), 1);
    }

    #[test]
    fn list_literals_and_append() {
        let q = append(list([toq(&1i64), toq(&2i64)]), empty());
        well_typed(&q);
        assert_eq!(run(&q), vec![1, 2]);
        let c = cons(toq(&0i64), toq(&vec![1i64]));
        assert_eq!(run(&c), vec![0, 1]);
    }

    #[test]
    fn zip_unzip_number() {
        let q = zip(
            toq(&vec![1i64, 2]),
            toq(&vec!["a".to_string(), "b".to_string()]),
        );
        well_typed(&q);
        assert_eq!(run(&q), vec![(1, "a".to_string()), (2, "b".to_string())]);
        let u = unzip(toq(&vec![(1i64, 2i64), (3, 4)]));
        assert_eq!(run(&u), (vec![1, 3], vec![2, 4]));
        let n = number(toq(&vec!["x".to_string()]));
        assert_eq!(run(&n), vec![("x".to_string(), 1)]);
    }

    #[test]
    fn arithmetic_operators() {
        let q = (toq(&10i64) - toq(&4i64)) / toq(&2i64);
        well_typed(&q);
        assert_eq!(run(&q), 3);
        let d = toq(&1.5f64) * toq(&2.0f64);
        assert_eq!(run(&d), 3.0);
        let neg = -toq(&5i64);
        assert_eq!(run(&neg), -5);
        let m = toq(&7i64) % toq(&4i64);
        assert_eq!(run(&m), 3);
    }

    #[test]
    fn text_concat() {
        let q = toq(&"foo".to_string()).concat(&toq(&"bar".to_string()));
        assert_eq!(run(&q), "foobar");
    }

    #[test]
    fn everything_is_well_typed() {
        // a deliberately gnarly composite
        let q = map(
            |p: Q<(i64, Vec<i64>)>| {
                let (k, vs) = p.view();
                pair(k, sum(vs))
            },
            map(
                |g: Q<Vec<i64>>| pair(the(g.clone()), g),
                group_with(|x: Q<i64>| x, toq(&vec![2i64, 1, 2])),
            ),
        );
        well_typed(&q);
        assert_eq!(run(&q), vec![(1, 1), (2, 4)]);
    }

    #[test]
    fn interpreter_val_shapes() {
        let q = group_with(|x: Q<i64>| x, toq(&vec![2i64, 1]));
        let v = interpret(q.exp(), &Tables::new()).unwrap();
        assert_eq!(
            v,
            Val::List(vec![
                Val::List(vec![Val::Int(1)]),
                Val::List(vec![Val::Int(2)])
            ])
        );
    }
}

// -------------------------------------------------- Option<T> (extension)

use crate::qa::OptPayload;

/// `Just x` under the `(present, payload)` encoding.
pub fn some<T: OptPayload>(x: Q<T>) -> Q<Option<T>> {
    Q::wrap(Exp::Tuple(
        vec![toq_exp(true), x.exp],
        <Option<T> as QA>::ty(),
    ))
}

/// `Nothing` at payload type `T`.
pub fn none<T: OptPayload>() -> Q<Option<T>> {
    Q::wrap(Exp::Const(
        <Option<T> as QA>::to_val(&None),
        <Option<T> as QA>::ty(),
    ))
}

fn toq_exp(b: bool) -> Rc<Exp> {
    Rc::new(Exp::Const(crate::types::Val::Bool(b), Ty::Bool))
}

impl<T: OptPayload> Q<Option<T>> {
    /// `isJust`.
    pub fn is_some(&self) -> Q<bool> {
        Q::<(bool, T)>::wrap_same(self.exp.clone()).fst()
    }

    /// `fromMaybe d m`.
    pub fn unwrap_or(&self, d: &Q<T>) -> Q<T> {
        let p = Q::<(bool, T)>::wrap_same(self.exp.clone());
        cond(p.fst(), p.snd(), d.clone())
    }

    /// `maybe d f m`.
    pub fn map_or(&self, d: Q<T>, f: impl FnOnce(Q<T>) -> Q<T>) -> Q<T> {
        let p = Q::<(bool, T)>::wrap_same(self.exp.clone());
        cond(p.fst(), f(p.snd()), d)
    }
}

impl<T: QA> Q<T> {
    pub(crate) fn wrap_same(exp: Rc<Exp>) -> Q<T> {
        Q::wrap_rc(exp)
    }
}

/// `catMaybes` — the payloads of the present entries, in order.
pub fn cat_maybes<T: OptPayload>(xs: Q<Vec<Option<T>>>) -> Q<Vec<T>> {
    map(
        |m: Q<(bool, T)>| m.snd(),
        filter(|m: Q<(bool, T)>| m.fst(), retag(xs)),
    )
}

/// `mapMaybe f = catMaybes . map f`.
pub fn map_maybe<A: QA, T: OptPayload>(
    f: impl FnOnce(Q<A>) -> Q<Option<T>>,
    xs: Q<Vec<A>>,
) -> Q<Vec<T>> {
    cat_maybes(map(f, xs))
}

/// `lookup :: Eq k => k -> [(k, v)] -> Maybe v` over flat keys.
pub fn lookup<K: TA, V: OptPayload>(k: Q<K>, xs: Q<Vec<(K, V)>>) -> Q<Option<V>> {
    let hits = filter(move |p: Q<(K, V)>| p.fst().eq(&k), xs);
    cond(
        null(hits.clone()),
        none(),
        some(head(map(|p: Q<(K, V)>| p.snd(), hits))),
    )
}

/// The `(present, payload)` pair and `Option` share one relational
/// encoding; this recasts the phantom type between the two views.
fn retag<T: OptPayload>(xs: Q<Vec<Option<T>>>) -> Q<Vec<(bool, T)>> {
    Q::wrap_rc(xs.exp)
}

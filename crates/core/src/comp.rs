//! The `comp!` comprehension macro — Rust's stand-in for the `[qc| … |]`
//! quasiquoter.
//!
//! The paper's quasiquoter desugars list comprehensions into the
//! list-processing combinators "using the well-known desugaring approach
//! \[16\]". `comp!` performs the same desugaring at Rust macro-expansion
//! time:
//!
//! ```text
//! [ e | x <- xs, Q ]        ⇒  concat_map(|x| [ e | Q ], xs)
//! [ e | p, Q ]  (guard)     ⇒  if p then [ e | Q ] else []
//! [ e | let y = v, Q ]      ⇒  let y = v in [ e | Q ]
//! [ e | ]                   ⇒  [e]
//! ```
//!
//! plus the SQL-inspired `then group by` extension of \[16\] for pair
//! generators (`group by fst` / `group by snd`), which regroups the bound
//! variables as lists — exactly what the paper's running example uses.
//!
//! # Examples
//!
//! ```
//! use ferry::prelude::*;
//! use ferry::comp;
//!
//! // [ x * x | x <- xs, x > 1 ]
//! let q: Q<Vec<i64>> = comp!((x.clone() * x) for x in toq(&vec![1i64, 2, 3]),
//!                            if x.gt(&toq(&1i64)));
//! ```
//!
//! Variables bound by outer generators are moved into the inner closures;
//! since `Q` values are cheap reference-counted handles, clone them at use
//! sites (`x.clone() * x`) exactly as you would for any capturing closure
//! chain in Rust.

/// List-comprehension notation for Ferry queries. See the module docs.
#[macro_export]
macro_rules! comp {
    // terminal: no more qualifiers — singleton list
    (($e:expr)) => {
        $crate::ops::list([$e])
    };

    // pair generator with `group by` — the comprehensive-comprehensions
    // extension: rebinds both variables as lists over each group.
    (($e:expr) for ($a:ident, $b:ident) in $xs:expr, group by $proj:ident $(, $($rest:tt)+)?) => {
        $crate::ops::concat_map(
            move |__group| {
                let $a = $crate::ops::map(|__t| __t.fst(), ::std::clone::Clone::clone(&__group));
                let $b = $crate::ops::map(|__t| __t.snd(), __group);
                $crate::comp!(($e) $(for_or_rest $($rest)+)?)
            },
            $crate::ops::group_with(|__t| __t.$proj(), $xs),
        )
    };

    // generator, tuple-2 pattern
    (($e:expr) for ($a:ident, $b:ident) in $xs:expr $(, $($rest:tt)+)?) => {
        $crate::ops::concat_map(
            move |__t| {
                let ($a, $b) = __t.view();
                $crate::comp!(($e) $(for_or_rest $($rest)+)?)
            },
            $xs,
        )
    };

    // generator, tuple-3 pattern
    (($e:expr) for ($a:ident, $b:ident, $c:ident) in $xs:expr $(, $($rest:tt)+)?) => {
        $crate::ops::concat_map(
            move |__t| {
                let ($a, $b, $c) = __t.view();
                $crate::comp!(($e) $(for_or_rest $($rest)+)?)
            },
            $xs,
        )
    };

    // generator, tuple-4 pattern
    (($e:expr) for ($a:ident, $b:ident, $c:ident, $d:ident) in $xs:expr $(, $($rest:tt)+)?) => {
        $crate::ops::concat_map(
            move |__t| {
                let ($a, $b, $c, $d) = __t.view();
                $crate::comp!(($e) $(for_or_rest $($rest)+)?)
            },
            $xs,
        )
    };

    // generator, tuple-5 pattern
    (($e:expr) for ($a:ident, $b:ident, $c:ident, $d:ident, $f:ident) in $xs:expr $(, $($rest:tt)+)?) => {
        $crate::ops::concat_map(
            move |__t| {
                let ($a, $b, $c, $d, $f) = __t.view();
                $crate::comp!(($e) $(for_or_rest $($rest)+)?)
            },
            $xs,
        )
    };

    // generator, tuple-6 pattern (wide system/base tables)
    (($e:expr) for ($a:ident, $b:ident, $c:ident, $d:ident, $f:ident, $g:ident) in $xs:expr $(, $($rest:tt)+)?) => {
        $crate::ops::concat_map(
            move |__t| {
                let ($a, $b, $c, $d, $f, $g) = __t.view();
                $crate::comp!(($e) $(for_or_rest $($rest)+)?)
            },
            $xs,
        )
    };

    // generator, tuple-7 pattern
    (($e:expr) for ($a:ident, $b:ident, $c:ident, $d:ident, $f:ident, $g:ident, $h:ident) in $xs:expr $(, $($rest:tt)+)?) => {
        $crate::ops::concat_map(
            move |__t| {
                let ($a, $b, $c, $d, $f, $g, $h) = __t.view();
                $crate::comp!(($e) $(for_or_rest $($rest)+)?)
            },
            $xs,
        )
    };

    // generator, tuple-8 pattern
    (($e:expr) for ($a:ident, $b:ident, $c:ident, $d:ident, $f:ident, $g:ident, $h:ident, $i:ident) in $xs:expr $(, $($rest:tt)+)?) => {
        $crate::ops::concat_map(
            move |__t| {
                let ($a, $b, $c, $d, $f, $g, $h, $i) = __t.view();
                $crate::comp!(($e) $(for_or_rest $($rest)+)?)
            },
            $xs,
        )
    };

    // generator, simple variable
    (($e:expr) for $x:ident in $xs:expr $(, $($rest:tt)+)?) => {
        $crate::ops::concat_map(
            move |$x| $crate::comp!(($e) $(for_or_rest $($rest)+)?),
            $xs,
        )
    };

    // guard
    (($e:expr) if $p:expr $(, $($rest:tt)+)?) => {
        $crate::ops::cond(
            $p,
            $crate::comp!(($e) $(for_or_rest $($rest)+)?),
            $crate::ops::empty(),
        )
    };

    // local binding
    (($e:expr) let $x:ident = $v:expr $(, $($rest:tt)+)?) => {{
        let $x = $v;
        $crate::comp!(($e) $(for_or_rest $($rest)+)?)
    }};

    // ---- internal dispatch: re-enter with the right head keyword ----
    (($e:expr) for_or_rest for $($rest:tt)+) => {
        $crate::comp!(($e) for $($rest)+)
    };
    (($e:expr) for_or_rest if $($rest:tt)+) => {
        $crate::comp!(($e) if $($rest)+)
    };
    (($e:expr) for_or_rest let $($rest:tt)+) => {
        $crate::comp!(($e) let $($rest)+)
    };
    (($e:expr) for_or_rest group by $($rest:tt)+) => {
        compile_error!("`group by` must directly follow a pair generator")
    };
}

#[cfg(test)]
mod tests {
    use crate::interp::{interpret, Tables};
    use crate::ops::*;
    use crate::qa::{toq, Q, QA};

    fn run<T: QA>(q: &Q<T>) -> T {
        T::from_val(&interpret(q.exp(), &Tables::new()).unwrap()).unwrap()
    }

    #[test]
    fn plain_map() {
        let q: Q<Vec<i64>> = comp!((x.clone() * x) for x in toq(&vec![1i64, 2, 3]));
        assert_eq!(run(&q), vec![1, 4, 9]);
    }

    #[test]
    fn guard_filters() {
        let q: Q<Vec<i64>> =
            comp!((x.clone()) for x in toq(&vec![1i64, 2, 3, 4]), if x.gt(&toq(&2i64)));
        assert_eq!(run(&q), vec![3, 4]);
    }

    #[test]
    fn nested_generators_cross() {
        let q: Q<Vec<(i64, i64)>> = comp!(
            (pair(x.clone(), y))
            for x in toq(&vec![1i64, 2]),
            for y in toq(&vec![10i64, 20])
        );
        assert_eq!(run(&q), vec![(1, 10), (1, 20), (2, 10), (2, 20)]);
    }

    #[test]
    fn tuple_pattern_generator() {
        let q: Q<Vec<i64>> = comp!(
            (a + b)
            for (a, b) in toq(&vec![(1i64, 10i64), (2, 20)])
        );
        assert_eq!(run(&q), vec![11, 22]);
    }

    #[test]
    fn join_with_guard() {
        // [ (x, y) | x <- xs, y <- ys, x == y ]
        let q: Q<Vec<(i64, i64)>> = comp!(
            (pair(x.clone(), y.clone()))
            for x in toq(&vec![1i64, 2, 3]),
            for y in toq(&vec![2i64, 3, 4]),
            if x.eq(&y)
        );
        assert_eq!(run(&q), vec![(2, 2), (3, 3)]);
    }

    #[test]
    fn let_binding() {
        let q: Q<Vec<i64>> = comp!(
            (y.clone() + y)
            for x in toq(&vec![1i64, 2]),
            let y = x + toq(&10i64)
        );
        assert_eq!(run(&q), vec![22, 24]);
    }

    #[test]
    fn group_by_regroups_variables() {
        // the running example's shape: group facilities by category
        let rows: Vec<(String, String)> = vec![
            ("SQL".into(), "QLA".into()),
            ("LINQ".into(), "LIN".into()),
            ("Links".into(), "LIN".into()),
        ];
        let q: Q<Vec<(String, Vec<String>)>> = comp!(
            (pair(the(cat), fac))
            for (fac, cat) in toq(&rows),
            group by snd
        );
        assert_eq!(
            run(&q),
            vec![
                (
                    "LIN".to_string(),
                    vec!["LINQ".to_string(), "Links".to_string()]
                ),
                ("QLA".to_string(), vec!["SQL".to_string()]),
            ]
        );
    }

    #[test]
    fn quad_pattern() {
        let q: Q<Vec<i64>> = comp!(
            (a + b + c + d)
            for (a, b, c, d) in toq(&vec![(1i64, 2i64, 3i64, 4i64)])
        );
        assert_eq!(run(&q), vec![10]);
    }

    #[test]
    fn triple_pattern() {
        let q: Q<Vec<i64>> = comp!(
            (a + b + c)
            for (a, b, c) in toq(&vec![(1i64, 2i64, 3i64)])
        );
        assert_eq!(run(&q), vec![6]);
    }
}

//! The typed query surface: `Q<T>`, `QA`, `TA`.
//!
//! `Q<T>` is the paper's `data Q a = Q Exp` — a phantom-typed wrapper around
//! the kernel AST, "typed using a technique called phantom typing", so that
//! the host language's type checker (Rust's, here) guarantees that only
//! well-typed kernel terms can be constructed (§3.1).
//!
//! The [`QA`] trait is the paper's `class QA` — the types *representable*
//! as queries: the basic types, and arbitrarily nested tuples and lists of
//! them. [`toq`] is `toQ`; the inverse direction (`fromQ`) lives on
//! [`crate::Connection`] because it talks to the database.
//!
//! [`TA`] marks legal table-row types: the basic types and flat tuples of
//! them.

use crate::error::FerryError;
use crate::exp::Exp;
use crate::types::{Ty, Val};
use std::marker::PhantomData;
use std::rc::Rc;

/// A query that computes a value of type `T` on the database coprocessor.
#[derive(Debug)]
pub struct Q<T> {
    pub(crate) exp: Rc<Exp>,
    _t: PhantomData<fn() -> T>,
}

// manual impl: cloning a query handle never requires `T: Clone`
impl<T> Clone for Q<T> {
    fn clone(&self) -> Q<T> {
        Q {
            exp: self.exp.clone(),
            _t: PhantomData,
        }
    }
}

impl<T> Q<T> {
    pub(crate) fn wrap(exp: Exp) -> Q<T> {
        Q {
            exp: Rc::new(exp),
            _t: PhantomData,
        }
    }

    pub(crate) fn wrap_rc(exp: Rc<Exp>) -> Q<T> {
        Q {
            exp,
            _t: PhantomData,
        }
    }

    /// The underlying kernel term. Exposed read-only for inspection
    /// (pipeline tracing, tests); it cannot be used to build ill-typed `Q`s.
    pub fn exp(&self) -> &Exp {
        &self.exp
    }
}

/// Queryable types: representable relationally, movable in both directions
/// between the Rust heap and the database.
pub trait QA: Sized + 'static {
    /// The DSL type that represents `Self`.
    fn ty() -> Ty;
    /// Embed a heap value (`toQ` direction).
    fn to_val(&self) -> Val;
    /// Decode a stitched value (`fromQ` direction).
    fn from_val(v: &Val) -> Result<Self, FerryError>;
}

/// Legal table-row types (`class TA`): basic types and flat tuples of
/// basic types. The alphabetically ordered columns of the referenced table
/// map positionally onto the tuple components (§3.1).
pub trait TA: QA {}

/// Embed a Rust value into a query — the paper's `toQ`.
pub fn toq<T: QA>(v: &T) -> Q<T> {
    Q::wrap(Exp::Const(v.to_val(), T::ty()))
}

fn decode_err<T>(want: &str, v: &Val) -> Result<T, FerryError> {
    Err(FerryError::Decode(format!("expected {want}, got {v:?}")))
}

impl QA for () {
    fn ty() -> Ty {
        Ty::Unit
    }
    fn to_val(&self) -> Val {
        Val::Unit
    }
    fn from_val(v: &Val) -> Result<Self, FerryError> {
        match v {
            Val::Unit => Ok(()),
            v => decode_err("()", v),
        }
    }
}

impl QA for bool {
    fn ty() -> Ty {
        Ty::Bool
    }
    fn to_val(&self) -> Val {
        Val::Bool(*self)
    }
    fn from_val(v: &Val) -> Result<Self, FerryError> {
        match v {
            Val::Bool(b) => Ok(*b),
            v => decode_err("bool", v),
        }
    }
}

impl QA for i64 {
    fn ty() -> Ty {
        Ty::Int
    }
    fn to_val(&self) -> Val {
        Val::Int(*self)
    }
    fn from_val(v: &Val) -> Result<Self, FerryError> {
        match v {
            Val::Int(i) => Ok(*i),
            v => decode_err("i64", v),
        }
    }
}

impl QA for f64 {
    fn ty() -> Ty {
        Ty::Dbl
    }
    fn to_val(&self) -> Val {
        Val::Dbl(*self)
    }
    fn from_val(v: &Val) -> Result<Self, FerryError> {
        match v {
            Val::Dbl(d) => Ok(*d),
            v => decode_err("f64", v),
        }
    }
}

impl QA for String {
    fn ty() -> Ty {
        Ty::Text
    }
    fn to_val(&self) -> Val {
        Val::Text(self.clone())
    }
    fn from_val(v: &Val) -> Result<Self, FerryError> {
        match v {
            Val::Text(s) => Ok(s.clone()),
            v => decode_err("String", v),
        }
    }
}

impl<T: QA> QA for Vec<T> {
    fn ty() -> Ty {
        Ty::list(T::ty())
    }
    fn to_val(&self) -> Val {
        Val::List(self.iter().map(T::to_val).collect())
    }
    fn from_val(v: &Val) -> Result<Self, FerryError> {
        match v {
            Val::List(vs) => vs.iter().map(T::from_val).collect(),
            v => decode_err("Vec", v),
        }
    }
}

macro_rules! impl_qa_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: QA),+> QA for ($($name,)+) {
            fn ty() -> Ty {
                Ty::Tuple(vec![$($name::ty()),+])
            }
            fn to_val(&self) -> Val {
                Val::Tuple(vec![$(self.$idx.to_val()),+])
            }
            fn from_val(v: &Val) -> Result<Self, FerryError> {
                match v {
                    Val::Tuple(vs) if vs.len() == impl_qa_tuple!(@count $($name)+) => {
                        Ok(($($name::from_val(&vs[$idx])?,)+))
                    }
                    v => decode_err("tuple", v),
                }
            }
        }
    };
    (@count $($t:ident)+) => { [$(impl_qa_tuple!(@one $t)),+].len() };
    (@one $t:ident) => { () };
}

impl_qa_tuple!(A: 0, B: 1);
impl_qa_tuple!(A: 0, B: 1, C: 2);
impl_qa_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_qa_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_qa_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_qa_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_qa_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// Marker for atomic (basic) types.
pub trait BasicQA: QA {}
impl BasicQA for () {}
impl BasicQA for bool {}
impl BasicQA for i64 {}
impl BasicQA for f64 {}
impl BasicQA for String {}

impl<T: BasicQA> TA for T {}
macro_rules! impl_ta_tuple {
    ($($name:ident),+) => {
        impl<$($name: BasicQA),+> TA for ($($name,)+) {}
    };
}
impl_ta_tuple!(A, B);
impl_ta_tuple!(A, B, C);
impl_ta_tuple!(A, B, C, D);
impl_ta_tuple!(A, B, C, D, E);
impl_ta_tuple!(A, B, C, D, E, F);
impl_ta_tuple!(A, B, C, D, E, F, G);
impl_ta_tuple!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_reflection() {
        assert_eq!(
            <Vec<(String, Vec<String>)>>::ty().to_string(),
            "[(Text, [Text])]"
        );
        assert_eq!(
            <(i64, f64, bool)>::ty(),
            Ty::Tuple(vec![Ty::Int, Ty::Dbl, Ty::Bool])
        );
    }

    #[test]
    fn to_val_from_val_round_trips() {
        let v: Vec<(i64, Vec<String>)> = vec![(1, vec!["a".into(), "b".into()]), (2, vec![])];
        let val = v.to_val();
        assert_eq!(<Vec<(i64, Vec<String>)>>::from_val(&val).unwrap(), v);
    }

    #[test]
    fn decode_errors_are_reported() {
        assert!(matches!(
            i64::from_val(&Val::Bool(true)),
            Err(FerryError::Decode(_))
        ));
        assert!(matches!(
            <(i64, i64)>::from_val(&Val::Tuple(vec![Val::Int(1)])),
            Err(FerryError::Decode(_))
        ));
    }

    #[test]
    fn toq_builds_constants() {
        let q = toq(&vec![1i64, 2, 3]);
        match q.exp() {
            Exp::Const(Val::List(vs), t) => {
                assert_eq!(vs.len(), 3);
                assert_eq!(*t, Ty::list(Ty::Int));
            }
            e => panic!("unexpected {e:?}"),
        }
    }
}

// ------------------------------------------------------------- Option<T>
//
// §5 lists "support for sum types" as future work and notes that a
// relational representation had already been devised in work-to-be-
// published. We implement the special case every query API needs first:
// `Option<T>` over basic payloads, encoded as the flat pair
// `(present: Bool, payload: T)` with a dummy payload for `None` — the
// tag-plus-padded-payload scheme sum types compile to relationally.
// Because the encoding is an ordinary flat tuple, the whole compiler
// pipeline (loop-lifting, shredding, SQL) handles it with no changes;
// only `QA` and a handful of combinators (`ops::some`, `ops::none`,
// `ops::opt`, `ops::lookup`, …) know about the convention.

/// Basic types with a canonical dummy payload for the `None` encoding.
pub trait OptPayload: BasicQA {
    fn dummy() -> Self;
}

impl OptPayload for i64 {
    fn dummy() -> Self {
        0
    }
}
impl OptPayload for f64 {
    fn dummy() -> Self {
        0.0
    }
}
impl OptPayload for bool {
    fn dummy() -> Self {
        false
    }
}
impl OptPayload for String {
    fn dummy() -> Self {
        String::new()
    }
}
impl OptPayload for () {
    fn dummy() -> Self {}
}

impl<T: OptPayload> QA for Option<T> {
    fn ty() -> Ty {
        Ty::Tuple(vec![Ty::Bool, T::ty()])
    }
    fn to_val(&self) -> Val {
        match self {
            Some(v) => Val::Tuple(vec![Val::Bool(true), v.to_val()]),
            None => Val::Tuple(vec![Val::Bool(false), T::dummy().to_val()]),
        }
    }
    fn from_val(v: &Val) -> Result<Self, FerryError> {
        match v {
            Val::Tuple(vs) if vs.len() == 2 => match &vs[0] {
                Val::Bool(true) => Ok(Some(T::from_val(&vs[1])?)),
                Val::Bool(false) => Ok(None),
                v => decode_err("Option tag", v),
            },
            v => decode_err("Option", v),
        }
    }
}

// the encoding is flat, so optional payloads are legal table-row
// components and grouping keys
impl<T: OptPayload> TA for Option<T> {}

//! The kernel AST.
//!
//! This is the paper's internal `Exp` datatype (§3.1): a type-annotated,
//! untyped-at-the-Rust-level representation of embedded programs. It "is
//! not exposed to the user of the library and extra care has been taken to
//! make sure that the combinators map to a consistent underlying
//! representation" — in this implementation the phantom-typed [`crate::Q`]
//! surface plays the role of the Haskell type checker, and a defensive
//! [`check`] pass re-verifies annotations (used in debug assertions and
//! property tests).

use crate::types::{Ty, Val};
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU32, Ordering};

/// Fresh variable supply for HOAS lambda construction.
static NEXT_VAR: AtomicU32 = AtomicU32::new(0);

pub fn fresh_var() -> u32 {
    NEXT_VAR.fetch_add(1, Ordering::Relaxed)
}

/// Scalar primitives (binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prim2 {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    /// Text concatenation.
    Conc,
}

impl Prim2 {
    pub fn is_cmp(self) -> bool {
        matches!(
            self,
            Prim2::Eq | Prim2::Ne | Prim2::Lt | Prim2::Le | Prim2::Gt | Prim2::Ge
        )
    }

    pub fn is_arith(self) -> bool {
        matches!(
            self,
            Prim2::Add | Prim2::Sub | Prim2::Mul | Prim2::Div | Prim2::Mod
        )
    }
}

/// Scalar primitives (unary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prim1 {
    Not,
    Neg,
    /// `integerToDouble`.
    IntToDbl,
}

/// Unary list combinators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fun1 {
    Concat,
    Head,
    Last,
    Tail,
    Init,
    Reverse,
    Length,
    Null,
    Sum,
    Avg,
    Maximum,
    Minimum,
    And,
    Or,
    Nub,
    The,
    Unzip,
    /// `the`-like first projection over a non-empty group is spelled via
    /// `The`; `Number` pairs every element with its 1-based position
    /// (DSH's `number`), giving positional access for free.
    Number,
}

/// Binary list combinators. Higher-order arguments are `Exp::Lam` terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fun2 {
    Map,
    Filter,
    ConcatMap,
    GroupWith,
    SortWith,
    Append,
    Cons,
    Index,
    Zip,
    Take,
    Drop,
    TakeWhile,
    DropWhile,
}

/// The kernel term language. Every node carries its full DSL type.
#[derive(Debug, Clone)]
pub enum Exp {
    /// An embedded constant of arbitrary (non-function) type — `toQ`.
    Const(Val, Ty),
    Var(u32, Ty),
    Tuple(Vec<Rc<Exp>>, Ty),
    /// A list literal with computed elements.
    ListE(Vec<Rc<Exp>>, Ty),
    /// Reference to a database-resident table (`table "name"`); `Ty` is the
    /// list-of-row type. "Use of the table combinator does not result in
    /// I/O … it just references the database-resident table by its unique
    /// name."
    Table(String, Ty),
    Lam(u32, Rc<Exp>, Ty),
    Prim2(Prim2, Rc<Exp>, Rc<Exp>, Ty),
    Prim1(Prim1, Rc<Exp>, Ty),
    If(Rc<Exp>, Rc<Exp>, Rc<Exp>, Ty),
    /// Tuple projection (0-based).
    Proj(usize, Rc<Exp>, Ty),
    App1(Fun1, Rc<Exp>, Ty),
    App2(Fun2, Rc<Exp>, Rc<Exp>, Ty),
}

impl Exp {
    /// The annotated type of this term.
    pub fn ty(&self) -> &Ty {
        match self {
            Exp::Const(_, t)
            | Exp::Var(_, t)
            | Exp::Tuple(_, t)
            | Exp::ListE(_, t)
            | Exp::Table(_, t)
            | Exp::Lam(_, _, t)
            | Exp::Prim2(_, _, _, t)
            | Exp::Prim1(_, _, t)
            | Exp::If(_, _, _, t)
            | Exp::Proj(_, _, t)
            | Exp::App1(_, _, t)
            | Exp::App2(_, _, _, t) => t,
        }
    }

    /// Count of AST nodes (compile-time scaling experiment X2).
    pub fn size(&self) -> usize {
        1 + match self {
            Exp::Const(..) | Exp::Var(..) | Exp::Table(..) => 0,
            Exp::Tuple(es, _) | Exp::ListE(es, _) => es.iter().map(|e| e.size()).sum(),
            Exp::Lam(_, b, _) => b.size(),
            Exp::Prim1(_, e, _) | Exp::Proj(_, e, _) | Exp::App1(_, e, _) => e.size(),
            Exp::Prim2(_, a, b, _) | Exp::App2(_, a, b, _) => a.size() + b.size(),
            Exp::If(c, t, e, _) => c.size() + t.size() + e.size(),
        }
    }
}

impl Exp {
    /// A content hash that is **stable across constructions** of the same
    /// query: bound variables are canonicalised to de Bruijn indices, so
    /// two terms built at different times (with different `fresh_var`
    /// draws) hash identically iff they are alpha-equivalent. This is the
    /// key of the runtime's prepared-plan cache.
    pub fn stable_hash(&self) -> u64 {
        let mut h = Fnv(0xcbf2_9ce4_8422_2325);
        hash_exp(self, &mut Vec::new(), &mut h);
        h.0
    }
}

/// FNV-1a over explicit byte feeds — `DefaultHasher` would also work, but
/// an explicitly specified function keeps the cache key reproducible
/// across Rust versions (useful once bundles are persisted).
struct Fnv(u64);

impl Fnv {
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes(s.as_bytes());
    }
}

fn hash_ty(ty: &Ty, h: &mut Fnv) {
    match ty {
        Ty::Unit => h.byte(0),
        Ty::Bool => h.byte(1),
        Ty::Int => h.byte(2),
        Ty::Dbl => h.byte(3),
        Ty::Text => h.byte(4),
        Ty::Tuple(ts) => {
            h.byte(5);
            h.usize(ts.len());
            for t in ts {
                hash_ty(t, h);
            }
        }
        Ty::List(e) => {
            h.byte(6);
            hash_ty(e, h);
        }
        Ty::Fun(a, r) => {
            h.byte(7);
            hash_ty(a, h);
            hash_ty(r, h);
        }
    }
}

fn hash_val(v: &Val, h: &mut Fnv) {
    match v {
        Val::Unit => h.byte(0),
        Val::Bool(b) => {
            h.byte(1);
            h.byte(*b as u8);
        }
        Val::Int(i) => {
            h.byte(2);
            h.u64(*i as u64);
        }
        Val::Dbl(d) => {
            h.byte(3);
            h.u64(d.to_bits());
        }
        Val::Text(s) => {
            h.byte(4);
            h.str(s);
        }
        Val::Tuple(vs) => {
            h.byte(5);
            h.usize(vs.len());
            for v in vs {
                hash_val(v, h);
            }
        }
        Val::List(vs) => {
            h.byte(6);
            h.usize(vs.len());
            for v in vs {
                hash_val(v, h);
            }
        }
    }
}

/// `env` is the stack of binders in scope; a variable hashes as its
/// distance from the top (its de Bruijn index).
fn hash_exp(exp: &Exp, env: &mut Vec<u32>, h: &mut Fnv) {
    match exp {
        Exp::Const(v, t) => {
            h.byte(10);
            hash_val(v, h);
            hash_ty(t, h);
        }
        Exp::Var(x, t) => {
            h.byte(11);
            match env.iter().rev().position(|y| y == x) {
                Some(i) => h.usize(i),
                // free variables cannot be alpha-renamed: hash the raw id
                None => h.u64(0x8000_0000_0000_0000 | *x as u64),
            }
            hash_ty(t, h);
        }
        Exp::Tuple(es, t) => {
            h.byte(12);
            h.usize(es.len());
            for e in es {
                hash_exp(e, env, h);
            }
            hash_ty(t, h);
        }
        Exp::ListE(es, t) => {
            h.byte(13);
            h.usize(es.len());
            for e in es {
                hash_exp(e, env, h);
            }
            hash_ty(t, h);
        }
        Exp::Table(name, t) => {
            h.byte(14);
            h.str(name);
            hash_ty(t, h);
        }
        Exp::Lam(x, body, t) => {
            h.byte(15);
            env.push(*x);
            hash_exp(body, env, h);
            env.pop();
            hash_ty(t, h);
        }
        Exp::Prim2(op, a, b, t) => {
            h.byte(16);
            h.byte(*op as u8);
            hash_exp(a, env, h);
            hash_exp(b, env, h);
            hash_ty(t, h);
        }
        Exp::Prim1(op, e, t) => {
            h.byte(17);
            h.byte(*op as u8);
            hash_exp(e, env, h);
            hash_ty(t, h);
        }
        Exp::If(c, th, el, t) => {
            h.byte(18);
            hash_exp(c, env, h);
            hash_exp(th, env, h);
            hash_exp(el, env, h);
            hash_ty(t, h);
        }
        Exp::Proj(i, e, t) => {
            h.byte(19);
            h.usize(*i);
            hash_exp(e, env, h);
            hash_ty(t, h);
        }
        Exp::App1(f, e, t) => {
            h.byte(20);
            h.byte(*f as u8);
            hash_exp(e, env, h);
            hash_ty(t, h);
        }
        Exp::App2(f, a, b, t) => {
            h.byte(21);
            h.byte(*f as u8);
            hash_exp(a, env, h);
            hash_exp(b, env, h);
            hash_ty(t, h);
        }
    }
}

/// Expected argument/result typing of a `Fun1` application: given the
/// argument type, the result type — `None` when inapplicable.
pub fn fun1_result_ty(f: Fun1, arg: &Ty) -> Option<Ty> {
    use Fun1::*;
    let elem = arg.elem();
    match f {
        Concat => match elem {
            Some(Ty::List(inner)) => Some(Ty::List(inner.clone())),
            _ => None,
        },
        Head | Last | The => elem.cloned(),
        Tail | Init | Reverse => elem.map(|_| arg.clone()),
        Nub => elem.filter(|e| e.is_flat()).map(|_| arg.clone()),
        Length => elem.map(|_| Ty::Int),
        Null => elem.map(|_| Ty::Bool),
        Sum => match elem {
            Some(Ty::Int) => Some(Ty::Int),
            Some(Ty::Dbl) => Some(Ty::Dbl),
            _ => None,
        },
        Avg => match elem {
            Some(Ty::Int) | Some(Ty::Dbl) => Some(Ty::Dbl),
            _ => None,
        },
        Maximum | Minimum => elem.filter(|e| e.is_atom()).cloned(),
        And | Or => match elem {
            Some(Ty::Bool) => Some(Ty::Bool),
            _ => None,
        },
        Unzip => match elem {
            Some(Ty::Tuple(ts)) if ts.len() == 2 => Some(Ty::Tuple(vec![
                Ty::list(ts[0].clone()),
                Ty::list(ts[1].clone()),
            ])),
            _ => None,
        },
        Number => elem.map(|e| Ty::list(Ty::Tuple(vec![e.clone(), Ty::Int]))),
    }
}

/// Expected typing of a `Fun2` application.
pub fn fun2_result_ty(f: Fun2, a: &Ty, b: &Ty) -> Option<Ty> {
    use Fun2::*;
    match f {
        Map => match (a, b) {
            (Ty::Fun(arg, res), Ty::List(e)) if **arg == **e => Some(Ty::list((**res).clone())),
            _ => None,
        },
        ConcatMap => match (a, b) {
            (Ty::Fun(arg, res), Ty::List(e)) if **arg == **e => match &**res {
                Ty::List(_) => Some((**res).clone()),
                _ => None,
            },
            _ => None,
        },
        Filter | TakeWhile | DropWhile => match (a, b) {
            (Ty::Fun(arg, res), Ty::List(e)) if **arg == **e && **res == Ty::Bool => {
                Some(b.clone())
            }
            _ => None,
        },
        GroupWith => match (a, b) {
            (Ty::Fun(arg, res), Ty::List(e)) if **arg == **e && res.is_flat() => {
                Some(Ty::list(b.clone()))
            }
            _ => None,
        },
        SortWith => match (a, b) {
            (Ty::Fun(arg, res), Ty::List(e)) if **arg == **e && res.is_flat() => Some(b.clone()),
            _ => None,
        },
        Append => (a == b && matches!(a, Ty::List(_))).then(|| a.clone()),
        Cons => match b {
            Ty::List(e) if **e == *a => Some(b.clone()),
            _ => None,
        },
        Index => match (a, b) {
            (Ty::List(e), Ty::Int) => Some((**e).clone()),
            _ => None,
        },
        Zip => match (a, b) {
            (Ty::List(x), Ty::List(y)) => {
                Some(Ty::list(Ty::Tuple(vec![(**x).clone(), (**y).clone()])))
            }
            _ => None,
        },
        Take | Drop => match (a, b) {
            (Ty::Int, Ty::List(_)) => Some(b.clone()),
            _ => None,
        },
    }
}

/// Defensive type check of a kernel term (property tests / debug builds).
/// Returns the type or a description of the first inconsistency.
pub fn check(exp: &Exp, env: &mut Vec<(u32, Ty)>) -> Result<Ty, String> {
    let t = match exp {
        Exp::Const(v, t) => {
            if matches!(t, Ty::Fun(..)) || !v.has_ty(t) {
                return Err(format!("constant {v:?} is not of type {t}"));
            }
            t.clone()
        }
        Exp::Var(x, t) => match env.iter().rev().find(|(y, _)| y == x) {
            Some((_, bound)) if bound == t => t.clone(),
            Some((_, bound)) => return Err(format!("var {x}: {t} bound at {bound}")),
            None => return Err(format!("unbound var {x}")),
        },
        Exp::Tuple(es, t) => {
            let ts: Result<Vec<Ty>, String> = es.iter().map(|e| check(e, env)).collect();
            let actual = Ty::Tuple(ts?);
            if actual != *t {
                return Err(format!("tuple annotated {t}, actual {actual}"));
            }
            actual
        }
        Exp::ListE(es, t) => {
            let elem = t.elem().ok_or_else(|| format!("list annotated {t}"))?;
            for e in es {
                let et = check(e, env)?;
                if et != *elem {
                    return Err(format!("list element {et} in {t}"));
                }
            }
            t.clone()
        }
        Exp::Table(name, t) => match t.elem() {
            Some(row) if row.is_flat() => t.clone(),
            _ => return Err(format!("table {name} has non-flat row type {t}")),
        },
        Exp::Lam(x, body, t) => match t {
            Ty::Fun(arg, res) => {
                env.push((*x, (**arg).clone()));
                let bt = check(body, env)?;
                env.pop();
                if bt != **res {
                    return Err(format!("lambda body {bt}, annotated {res}"));
                }
                t.clone()
            }
            _ => return Err(format!("lambda annotated non-function {t}")),
        },
        Exp::Prim2(op, a, b, t) => {
            let at = check(a, env)?;
            let bt = check(b, env)?;
            let res =
                prim2_result_ty(*op, &at, &bt).ok_or_else(|| format!("{op:?} on {at} and {bt}"))?;
            if res != *t {
                return Err(format!("{op:?} annotated {t}, actual {res}"));
            }
            res
        }
        Exp::Prim1(op, e, t) => {
            let et = check(e, env)?;
            let res = match (op, &et) {
                (Prim1::Not, Ty::Bool) => Ty::Bool,
                (Prim1::Neg, Ty::Int) => Ty::Int,
                (Prim1::Neg, Ty::Dbl) => Ty::Dbl,
                (Prim1::IntToDbl, Ty::Int) => Ty::Dbl,
                _ => return Err(format!("{op:?} on {et}")),
            };
            if res != *t {
                return Err(format!("{op:?} annotated {t}, actual {res}"));
            }
            res
        }
        Exp::If(c, th, el, t) => {
            if check(c, env)? != Ty::Bool {
                return Err("if condition is not Bool".into());
            }
            let tt = check(th, env)?;
            let et = check(el, env)?;
            if tt != et || tt != *t {
                return Err(format!("if branches {tt} / {et}, annotated {t}"));
            }
            tt
        }
        Exp::Proj(i, e, t) => {
            let et = check(e, env)?;
            match et {
                Ty::Tuple(ts) if *i < ts.len() => {
                    if ts[*i] != *t {
                        return Err(format!("proj {i} annotated {t}, actual {}", ts[*i]));
                    }
                    ts[*i].clone()
                }
                _ => return Err(format!("proj {i} on {et}")),
            }
        }
        Exp::App1(f, e, t) => {
            let et = check(e, env)?;
            let res = fun1_result_ty(*f, &et).ok_or_else(|| format!("{f:?} on {et}"))?;
            if res != *t {
                return Err(format!("{f:?} annotated {t}, actual {res}"));
            }
            res
        }
        Exp::App2(f, a, b, t) => {
            let at = check(a, env)?;
            let bt = check(b, env)?;
            let res =
                fun2_result_ty(*f, &at, &bt).ok_or_else(|| format!("{f:?} on {at} and {bt}"))?;
            if res != *t {
                return Err(format!("{f:?} annotated {t}, actual {res}"));
            }
            res
        }
    };
    Ok(t)
}

/// Result type of a scalar binary primitive.
pub fn prim2_result_ty(op: Prim2, a: &Ty, b: &Ty) -> Option<Ty> {
    if op.is_cmp() {
        // Eq/Ord are available at any non-function type (Haskell's derived
        // instances); the compiler restricts comparison of nested data to
        // flat types, checked there.
        return (a == b && !matches!(a, Ty::Fun(..))).then_some(Ty::Bool);
    }
    match op {
        Prim2::And | Prim2::Or => (a == &Ty::Bool && b == &Ty::Bool).then_some(Ty::Bool),
        Prim2::Conc => (a == &Ty::Text && b == &Ty::Text).then_some(Ty::Text),
        _ => (a == b && matches!(a, Ty::Int | Ty::Dbl)).then(|| a.clone()),
    }
}

impl fmt::Display for Exp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exp::Const(v, _) => write!(f, "{v}"),
            Exp::Var(x, _) => write!(f, "x{x}"),
            Exp::Tuple(es, _) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Exp::ListE(es, _) => {
                write!(f, "[")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            Exp::Table(n, _) => write!(f, "table {n:?}"),
            Exp::Lam(x, b, _) => write!(f, "(\\x{x} -> {b})"),
            Exp::Prim2(op, a, b, _) => write!(f, "({a} {op:?} {b})"),
            Exp::Prim1(op, e, _) => write!(f, "({op:?} {e})"),
            Exp::If(c, t, e, _) => write!(f, "(if {c} then {t} else {e})"),
            Exp::Proj(i, e, _) => write!(f, "{e}.{i}"),
            Exp::App1(fun, e, _) => write!(f, "({fun:?} {e})"),
            Exp::App2(fun, a, b, _) => write!(f, "({fun:?} {a} {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(i: i64) -> Rc<Exp> {
        Rc::new(Exp::Const(Val::Int(i), Ty::Int))
    }

    #[test]
    fn fresh_vars_are_distinct() {
        assert_ne!(fresh_var(), fresh_var());
    }

    #[test]
    fn check_accepts_well_typed_terms() {
        let e = Exp::Prim2(Prim2::Add, int(1), int(2), Ty::Int);
        assert_eq!(check(&e, &mut vec![]).unwrap(), Ty::Int);
        let l = Exp::ListE(vec![int(1), int(2)], Ty::list(Ty::Int));
        assert_eq!(check(&l, &mut vec![]).unwrap(), Ty::list(Ty::Int));
    }

    #[test]
    fn check_rejects_ill_typed_terms() {
        let bad = Exp::Prim2(
            Prim2::Add,
            int(1),
            Rc::new(Exp::Const(Val::Bool(true), Ty::Bool)),
            Ty::Int,
        );
        assert!(check(&bad, &mut vec![]).is_err());
        let bad_anno = Exp::Prim2(Prim2::Add, int(1), int(2), Ty::Bool);
        assert!(check(&bad_anno, &mut vec![]).is_err());
        let unbound = Exp::Var(999_999, Ty::Int);
        assert!(check(&unbound, &mut vec![]).is_err());
    }

    #[test]
    fn check_scopes_lambdas() {
        let x = fresh_var();
        let lam = Exp::Lam(x, Rc::new(Exp::Var(x, Ty::Int)), Ty::fun(Ty::Int, Ty::Int));
        assert!(check(&lam, &mut vec![]).is_ok());
        let map = Exp::App2(
            Fun2::Map,
            Rc::new(lam),
            Rc::new(Exp::ListE(vec![int(1)], Ty::list(Ty::Int))),
            Ty::list(Ty::Int),
        );
        assert_eq!(check(&map, &mut vec![]).unwrap(), Ty::list(Ty::Int));
    }

    #[test]
    fn fun_typing_tables() {
        let li = Ty::list(Ty::Int);
        assert_eq!(fun1_result_ty(Fun1::Length, &li), Some(Ty::Int));
        assert_eq!(fun1_result_ty(Fun1::Sum, &li), Some(Ty::Int));
        assert_eq!(fun1_result_ty(Fun1::Sum, &Ty::list(Ty::Text)), None);
        assert_eq!(
            fun1_result_ty(Fun1::Concat, &Ty::list(li.clone())),
            Some(li.clone())
        );
        assert_eq!(fun1_result_ty(Fun1::Concat, &li), None);
        assert_eq!(
            fun2_result_ty(Fun2::Zip, &li, &Ty::list(Ty::Text)),
            Some(Ty::list(Ty::Tuple(vec![Ty::Int, Ty::Text])))
        );
        assert_eq!(fun2_result_ty(Fun2::Take, &Ty::Int, &li), Some(li.clone()));
        assert_eq!(fun2_result_ty(Fun2::Take, &Ty::Text, &li), None);
        // nub over nested lists is out of domain
        assert_eq!(fun1_result_ty(Fun1::Nub, &Ty::list(li.clone())), None);
    }

    #[test]
    fn exp_size_counts_nodes() {
        let e = Exp::Prim2(Prim2::Add, int(1), int(2), Ty::Int);
        assert_eq!(e.size(), 3);
    }

    #[test]
    fn stable_hash_is_alpha_invariant() {
        // \x -> x + 1, built twice with different fresh variables
        let build = || {
            let x = fresh_var();
            Exp::Lam(
                x,
                Rc::new(Exp::Prim2(
                    Prim2::Add,
                    Rc::new(Exp::Var(x, Ty::Int)),
                    int(1),
                    Ty::Int,
                )),
                Ty::fun(Ty::Int, Ty::Int),
            )
        };
        let (a, b) = (build(), build());
        assert_eq!(a.stable_hash(), b.stable_hash());
    }

    #[test]
    fn stable_hash_separates_different_terms() {
        let one = Exp::Prim2(Prim2::Add, int(1), int(2), Ty::Int);
        let two = Exp::Prim2(Prim2::Add, int(1), int(3), Ty::Int);
        let op = Exp::Prim2(Prim2::Mul, int(1), int(2), Ty::Int);
        assert_ne!(one.stable_hash(), two.stable_hash());
        assert_ne!(one.stable_hash(), op.stable_hash());
        // nested binders: \x -> \y -> x  vs  \x -> \y -> y
        let (x, y) = (fresh_var(), fresh_var());
        let ii = Ty::fun(Ty::Int, Ty::Int);
        let fst = Exp::Lam(
            x,
            Rc::new(Exp::Lam(y, Rc::new(Exp::Var(x, Ty::Int)), ii.clone())),
            Ty::fun(Ty::Int, ii.clone()),
        );
        let snd = Exp::Lam(
            x,
            Rc::new(Exp::Lam(y, Rc::new(Exp::Var(y, Ty::Int)), ii.clone())),
            Ty::fun(Ty::Int, ii),
        );
        assert_ne!(fst.stable_hash(), snd.stable_hash());
    }
}

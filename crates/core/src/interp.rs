//! The reference interpreter: direct in-heap semantics of the kernel AST.
//!
//! This is the meaning the database-supported execution must reproduce —
//! DSH combinators "behave as their namesakes in the Haskell list prelude".
//! The property-test suite compares `compile → execute → stitch` against
//! this interpreter on randomised programs and databases (list order is
//! compared exactly: *List Order Preservation*, §4.1).
//!
//! Semantics notes (kept deliberately identical on both sides):
//! * integer `div`/`mod` truncate toward zero and overflow is an error
//!   (matching the engine, not Haskell's flooring `div`),
//! * partial operations (`head`, `the`, `maximum`, out-of-range `!!`) on
//!   empty input are [`FerryError::Partial`],
//! * `the` returns the first element of a non-empty list (its precondition
//!   — all elements equal — is the caller's obligation, as in GHC),
//! * `group_with` sorts groups by key and preserves element order within a
//!   group; `sort_with` is a stable sort.

use crate::error::FerryError;
use crate::exp::{Exp, Fun1, Fun2, Prim1, Prim2};
#[cfg(test)]
use crate::types::Ty;
use crate::types::Val;
use std::collections::HashMap;
use std::rc::Rc;

/// Provider of in-heap table contents for `table "name"`: the rows as a
/// `Val::List` of flat tuples, in canonical (key) order with columns in
/// alphabetical order — exactly the view the compiler gives the database
/// side.
pub type Tables = HashMap<String, Val>;

/// Interpret a closed kernel term.
pub fn interpret(exp: &Exp, tables: &Tables) -> Result<Val, FerryError> {
    eval(exp, &mut Vec::new(), tables)
}

type Env = Vec<(u32, Val)>;

fn lookup(env: &Env, x: u32) -> Result<Val, FerryError> {
    env.iter()
        .rev()
        .find(|(y, _)| *y == x)
        .map(|(_, v)| v.clone())
        .ok_or_else(|| FerryError::IllTyped(format!("unbound variable x{x}")))
}

fn as_list(v: Val) -> Vec<Val> {
    match v {
        Val::List(vs) => vs,
        v => panic!("expected a list, got {v:?} (surface typing should prevent this)"),
    }
}

fn eval(exp: &Exp, env: &mut Env, tables: &Tables) -> Result<Val, FerryError> {
    match exp {
        Exp::Const(v, _) => Ok(v.clone()),
        Exp::Var(x, _) => lookup(env, *x),
        Exp::Tuple(es, _) => {
            let vs: Result<Vec<Val>, _> = es.iter().map(|e| eval(e, env, tables)).collect();
            Ok(Val::Tuple(vs?))
        }
        Exp::ListE(es, _) => {
            let vs: Result<Vec<Val>, _> = es.iter().map(|e| eval(e, env, tables)).collect();
            Ok(Val::List(vs?))
        }
        Exp::Table(name, _) => tables
            .get(name)
            .cloned()
            .ok_or_else(|| FerryError::Table(format!("no such table: {name}"))),
        Exp::Lam(..) => Err(FerryError::IllTyped(
            "lambda in value position (first-class functions are unsupported)".into(),
        )),
        Exp::Prim2(op, a, b, _) => {
            // short-circuit And/Or like the engine
            if matches!(op, Prim2::And | Prim2::Or) {
                let av = eval(a, env, tables)?;
                return match (op, av) {
                    (Prim2::And, Val::Bool(false)) => Ok(Val::Bool(false)),
                    (Prim2::Or, Val::Bool(true)) => Ok(Val::Bool(true)),
                    (_, Val::Bool(_)) => eval(b, env, tables),
                    _ => Err(FerryError::IllTyped("logic on non-bool".into())),
                };
            }
            let av = eval(a, env, tables)?;
            let bv = eval(b, env, tables)?;
            prim2(*op, av, bv)
        }
        Exp::Prim1(op, e, _) => {
            let v = eval(e, env, tables)?;
            match (op, v) {
                (Prim1::Not, Val::Bool(b)) => Ok(Val::Bool(!b)),
                (Prim1::Neg, Val::Int(i)) => i
                    .checked_neg()
                    .map(Val::Int)
                    .ok_or_else(|| FerryError::Engine("integer overflow".into())),
                (Prim1::Neg, Val::Dbl(d)) => Ok(Val::Dbl(-d)),
                (Prim1::IntToDbl, Val::Int(i)) => Ok(Val::Dbl(i as f64)),
                (op, v) => Err(FerryError::IllTyped(format!("{op:?} on {v:?}"))),
            }
        }
        Exp::If(c, t, e, _) => match eval(c, env, tables)? {
            Val::Bool(true) => eval(t, env, tables),
            Val::Bool(false) => eval(e, env, tables),
            v => Err(FerryError::IllTyped(format!("if on {v:?}"))),
        },
        Exp::Proj(i, e, _) => match eval(e, env, tables)? {
            Val::Tuple(mut vs) if *i < vs.len() => Ok(vs.swap_remove(*i)),
            v => Err(FerryError::IllTyped(format!("proj {i} on {v:?}"))),
        },
        Exp::App1(f, e, _) => {
            let v = eval(e, env, tables)?;
            fun1(*f, v)
        }
        Exp::App2(f, a, b, _) => fun2(*f, a, b, env, tables),
    }
}

fn prim2(op: Prim2, a: Val, b: Val) -> Result<Val, FerryError> {
    use Prim2::*;
    if op.is_cmp() {
        let o = a.cmp_total(&b);
        let r = match op {
            Eq => o.is_eq(),
            Ne => o.is_ne(),
            Lt => o.is_lt(),
            Le => o.is_le(),
            Gt => o.is_gt(),
            Ge => o.is_ge(),
            _ => unreachable!(),
        };
        return Ok(Val::Bool(r));
    }
    let overflow = || FerryError::Engine("integer overflow".into());
    match (op, a, b) {
        (Conc, Val::Text(x), Val::Text(y)) => Ok(Val::Text(x + &y)),
        (Add, Val::Int(x), Val::Int(y)) => x.checked_add(y).map(Val::Int).ok_or_else(overflow),
        (Sub, Val::Int(x), Val::Int(y)) => x.checked_sub(y).map(Val::Int).ok_or_else(overflow),
        (Mul, Val::Int(x), Val::Int(y)) => x.checked_mul(y).map(Val::Int).ok_or_else(overflow),
        (Div, Val::Int(x), Val::Int(y)) => {
            if y == 0 {
                Err(FerryError::Engine("division by zero".into()))
            } else {
                Ok(Val::Int(x.wrapping_div(y)))
            }
        }
        (Mod, Val::Int(x), Val::Int(y)) => {
            if y == 0 {
                Err(FerryError::Engine("modulo by zero".into()))
            } else {
                Ok(Val::Int(x.wrapping_rem(y)))
            }
        }
        (Add, Val::Dbl(x), Val::Dbl(y)) => Ok(Val::Dbl(x + y)),
        (Sub, Val::Dbl(x), Val::Dbl(y)) => Ok(Val::Dbl(x - y)),
        (Mul, Val::Dbl(x), Val::Dbl(y)) => Ok(Val::Dbl(x * y)),
        (Div, Val::Dbl(x), Val::Dbl(y)) => {
            if y == 0.0 {
                Err(FerryError::Engine("division by zero".into()))
            } else {
                Ok(Val::Dbl(x / y))
            }
        }
        (Mod, Val::Dbl(x), Val::Dbl(y)) => {
            if y == 0.0 {
                Err(FerryError::Engine("modulo by zero".into()))
            } else {
                Ok(Val::Dbl(x % y))
            }
        }
        (op, a, b) => Err(FerryError::IllTyped(format!("{op:?} on {a:?} and {b:?}"))),
    }
}

fn empty(err: &str) -> FerryError {
    FerryError::Partial(format!("{err} of an empty list"))
}

fn fun1(f: Fun1, v: Val) -> Result<Val, FerryError> {
    use Fun1::*;
    let vs = as_list(v);
    match f {
        Concat => {
            let mut out = Vec::new();
            for inner in vs {
                out.extend(as_list(inner));
            }
            Ok(Val::List(out))
        }
        Head | The => vs.into_iter().next().ok_or_else(|| empty("head/the")),
        Last => vs.into_iter().last().ok_or_else(|| empty("last")),
        Tail => {
            let mut it = vs.into_iter();
            if it.next().is_none() {
                return Err(empty("tail"));
            }
            Ok(Val::List(it.collect()))
        }
        Init => {
            let mut vs = vs;
            if vs.pop().is_none() {
                return Err(empty("init"));
            }
            Ok(Val::List(vs))
        }
        Reverse => {
            let mut vs = vs;
            vs.reverse();
            Ok(Val::List(vs))
        }
        Length => Ok(Val::Int(vs.len() as i64)),
        Null => Ok(Val::Bool(vs.is_empty())),
        Sum => {
            if vs.iter().all(|v| matches!(v, Val::Dbl(_))) && !vs.is_empty() {
                let s: f64 = vs
                    .iter()
                    .map(|v| if let Val::Dbl(d) = v { *d } else { 0.0 })
                    .sum();
                return Ok(Val::Dbl(s));
            }
            let mut acc: i64 = 0;
            let mut dbl: f64 = 0.0;
            let mut is_dbl = false;
            for v in &vs {
                match v {
                    Val::Int(i) => {
                        acc = acc
                            .checked_add(*i)
                            .ok_or_else(|| FerryError::Engine("overflow in sum".into()))?
                    }
                    Val::Dbl(d) => {
                        is_dbl = true;
                        dbl += d;
                    }
                    v => return Err(FerryError::IllTyped(format!("sum of {v:?}"))),
                }
            }
            Ok(if is_dbl { Val::Dbl(dbl) } else { Val::Int(acc) })
        }
        Avg => {
            if vs.is_empty() {
                return Err(empty("avg"));
            }
            let mut s = 0.0;
            for v in &vs {
                s += match v {
                    Val::Int(i) => *i as f64,
                    Val::Dbl(d) => *d,
                    v => return Err(FerryError::IllTyped(format!("avg of {v:?}"))),
                };
            }
            Ok(Val::Dbl(s / vs.len() as f64))
        }
        Maximum => vs
            .into_iter()
            .reduce(|a, b| if b.cmp_total(&a).is_gt() { b } else { a })
            .ok_or_else(|| empty("maximum")),
        Minimum => vs
            .into_iter()
            .reduce(|a, b| if b.cmp_total(&a).is_lt() { b } else { a })
            .ok_or_else(|| empty("minimum")),
        And => Ok(Val::Bool(vs.iter().all(|v| *v == Val::Bool(true)))),
        Or => Ok(Val::Bool(vs.contains(&Val::Bool(true)))),
        Nub => {
            let mut out: Vec<Val> = Vec::new();
            for v in vs {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
            Ok(Val::List(out))
        }
        Unzip => {
            let mut xs = Vec::with_capacity(vs.len());
            let mut ys = Vec::with_capacity(vs.len());
            for v in vs {
                match v {
                    Val::Tuple(mut p) if p.len() == 2 => {
                        ys.push(p.pop().unwrap());
                        xs.push(p.pop().unwrap());
                    }
                    v => return Err(FerryError::IllTyped(format!("unzip of {v:?}"))),
                }
            }
            Ok(Val::Tuple(vec![Val::List(xs), Val::List(ys)]))
        }
        Number => Ok(Val::List(
            vs.into_iter()
                .enumerate()
                .map(|(i, v)| Val::Tuple(vec![v, Val::Int(i as i64 + 1)]))
                .collect(),
        )),
    }
}

fn apply_lam(lam: &Exp, arg: Val, env: &mut Env, tables: &Tables) -> Result<Val, FerryError> {
    match lam {
        Exp::Lam(x, body, _) => {
            env.push((*x, arg));
            let r = eval(body, env, tables);
            env.pop();
            r
        }
        e => Err(FerryError::IllTyped(format!("expected a lambda, got {e}"))),
    }
}

fn fun2(
    f: Fun2,
    a: &Rc<Exp>,
    b: &Rc<Exp>,
    env: &mut Env,
    tables: &Tables,
) -> Result<Val, FerryError> {
    use Fun2::*;
    match f {
        Map | ConcatMap | Filter | GroupWith | SortWith | TakeWhile | DropWhile => {
            let xs = as_list(eval(b, env, tables)?);
            match f {
                Map => {
                    let mut out = Vec::with_capacity(xs.len());
                    for x in xs {
                        out.push(apply_lam(a, x, env, tables)?);
                    }
                    Ok(Val::List(out))
                }
                ConcatMap => {
                    let mut out = Vec::new();
                    for x in xs {
                        out.extend(as_list(apply_lam(a, x, env, tables)?));
                    }
                    Ok(Val::List(out))
                }
                Filter => {
                    let mut out = Vec::new();
                    for x in xs {
                        if apply_lam(a, x.clone(), env, tables)? == Val::Bool(true) {
                            out.push(x);
                        }
                    }
                    Ok(Val::List(out))
                }
                TakeWhile => {
                    let mut out = Vec::new();
                    for x in xs {
                        if apply_lam(a, x.clone(), env, tables)? == Val::Bool(true) {
                            out.push(x);
                        } else {
                            break;
                        }
                    }
                    Ok(Val::List(out))
                }
                DropWhile => {
                    let mut out = Vec::new();
                    let mut dropping = true;
                    for x in xs {
                        if dropping && apply_lam(a, x.clone(), env, tables)? == Val::Bool(true) {
                            continue;
                        }
                        dropping = false;
                        out.push(x);
                    }
                    Ok(Val::List(out))
                }
                SortWith => {
                    let mut keyed = Vec::with_capacity(xs.len());
                    for x in xs {
                        let k = apply_lam(a, x.clone(), env, tables)?;
                        keyed.push((k, x));
                    }
                    keyed.sort_by(|(k1, _), (k2, _)| k1.cmp_total(k2));
                    Ok(Val::List(keyed.into_iter().map(|(_, x)| x).collect()))
                }
                GroupWith => {
                    let mut keyed = Vec::with_capacity(xs.len());
                    for x in xs {
                        let k = apply_lam(a, x.clone(), env, tables)?;
                        keyed.push((k, x));
                    }
                    keyed.sort_by(|(k1, _), (k2, _)| k1.cmp_total(k2));
                    let mut groups: Vec<Val> = Vec::new();
                    let mut current: Vec<Val> = Vec::new();
                    let mut current_key: Option<Val> = None;
                    for (k, x) in keyed {
                        if current_key.as_ref() != Some(&k) {
                            if !current.is_empty() {
                                groups.push(Val::List(std::mem::take(&mut current)));
                            }
                            current_key = Some(k);
                        }
                        current.push(x);
                    }
                    if !current.is_empty() {
                        groups.push(Val::List(current));
                    }
                    Ok(Val::List(groups))
                }
                _ => unreachable!(),
            }
        }
        Append => {
            let mut xs = as_list(eval(a, env, tables)?);
            xs.extend(as_list(eval(b, env, tables)?));
            Ok(Val::List(xs))
        }
        Cons => {
            let x = eval(a, env, tables)?;
            let mut xs = as_list(eval(b, env, tables)?);
            xs.insert(0, x);
            Ok(Val::List(xs))
        }
        Index => {
            let xs = as_list(eval(a, env, tables)?);
            let i = match eval(b, env, tables)? {
                Val::Int(i) => i,
                v => return Err(FerryError::IllTyped(format!("index {v:?}"))),
            };
            if i < 0 || i as usize >= xs.len() {
                return Err(FerryError::Partial(format!(
                    "index {i} out of range (length {})",
                    xs.len()
                )));
            }
            Ok(xs.into_iter().nth(i as usize).unwrap())
        }
        Zip => {
            let xs = as_list(eval(a, env, tables)?);
            let ys = as_list(eval(b, env, tables)?);
            Ok(Val::List(
                xs.into_iter()
                    .zip(ys)
                    .map(|(x, y)| Val::Tuple(vec![x, y]))
                    .collect(),
            ))
        }
        Take | Drop => {
            let n = match eval(a, env, tables)? {
                Val::Int(i) => i.max(0) as usize,
                v => return Err(FerryError::IllTyped(format!("take/drop {v:?}"))),
            };
            let xs = as_list(eval(b, env, tables)?);
            let out = if f == Take {
                xs.into_iter().take(n).collect()
            } else {
                xs.into_iter().skip(n).collect()
            };
            Ok(Val::List(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::fresh_var;

    fn int(i: i64) -> Rc<Exp> {
        Rc::new(Exp::Const(Val::Int(i), Ty::Int))
    }

    fn ints(is: &[i64]) -> Rc<Exp> {
        Rc::new(Exp::Const(
            Val::List(is.iter().map(|i| Val::Int(*i)).collect()),
            Ty::list(Ty::Int),
        ))
    }

    fn run(e: Exp) -> Val {
        interpret(&e, &Tables::new()).unwrap()
    }

    #[test]
    fn map_square() {
        let x = fresh_var();
        let lam = Rc::new(Exp::Lam(
            x,
            Rc::new(Exp::Prim2(
                Prim2::Mul,
                Rc::new(Exp::Var(x, Ty::Int)),
                Rc::new(Exp::Var(x, Ty::Int)),
                Ty::Int,
            )),
            Ty::fun(Ty::Int, Ty::Int),
        ));
        let e = Exp::App2(Fun2::Map, lam, ints(&[1, 2, 3]), Ty::list(Ty::Int));
        assert_eq!(
            run(e),
            Val::List(vec![Val::Int(1), Val::Int(4), Val::Int(9)])
        );
    }

    #[test]
    fn group_with_sorts_groups_and_preserves_element_order() {
        // group_with (x mod 2) [3,1,4,1,5] = [[4], [3,1,1,5]]
        let x = fresh_var();
        let lam = Rc::new(Exp::Lam(
            x,
            Rc::new(Exp::Prim2(
                Prim2::Mod,
                Rc::new(Exp::Var(x, Ty::Int)),
                int(2),
                Ty::Int,
            )),
            Ty::fun(Ty::Int, Ty::Int),
        ));
        let e = Exp::App2(
            Fun2::GroupWith,
            lam,
            ints(&[3, 1, 4, 1, 5]),
            Ty::list(Ty::list(Ty::Int)),
        );
        assert_eq!(
            run(e),
            Val::List(vec![
                Val::List(vec![Val::Int(4)]),
                Val::List(vec![Val::Int(3), Val::Int(1), Val::Int(1), Val::Int(5)]),
            ])
        );
    }

    #[test]
    fn aggregates() {
        assert_eq!(
            run(Exp::App1(Fun1::Sum, ints(&[1, 2, 3]), Ty::Int)),
            Val::Int(6)
        );
        assert_eq!(run(Exp::App1(Fun1::Sum, ints(&[]), Ty::Int)), Val::Int(0));
        assert_eq!(
            run(Exp::App1(Fun1::Length, ints(&[7, 7]), Ty::Int)),
            Val::Int(2)
        );
        assert_eq!(
            run(Exp::App1(Fun1::Null, ints(&[]), Ty::Bool)),
            Val::Bool(true)
        );
        assert_eq!(
            run(Exp::App1(Fun1::Maximum, ints(&[2, 9, 4]), Ty::Int)),
            Val::Int(9)
        );
        assert!(matches!(
            interpret(
                &Exp::App1(Fun1::Maximum, ints(&[]), Ty::Int),
                &Tables::new()
            ),
            Err(FerryError::Partial(_))
        ));
        assert_eq!(
            run(Exp::App1(Fun1::Avg, ints(&[1, 2]), Ty::Dbl)),
            Val::Dbl(1.5)
        );
    }

    #[test]
    fn list_surgery() {
        assert_eq!(
            run(Exp::App1(
                Fun1::Reverse,
                ints(&[1, 2, 3]),
                Ty::list(Ty::Int)
            )),
            Val::List(vec![Val::Int(3), Val::Int(2), Val::Int(1)])
        );
        assert_eq!(
            run(Exp::App1(Fun1::Tail, ints(&[1, 2, 3]), Ty::list(Ty::Int))),
            Val::List(vec![Val::Int(2), Val::Int(3)])
        );
        assert_eq!(
            run(Exp::App1(Fun1::Init, ints(&[1, 2, 3]), Ty::list(Ty::Int))),
            Val::List(vec![Val::Int(1), Val::Int(2)])
        );
        assert_eq!(
            run(Exp::App2(
                Fun2::Take,
                int(2),
                ints(&[1, 2, 3]),
                Ty::list(Ty::Int)
            )),
            Val::List(vec![Val::Int(1), Val::Int(2)])
        );
        assert_eq!(
            run(Exp::App2(
                Fun2::Drop,
                int(2),
                ints(&[1, 2, 3]),
                Ty::list(Ty::Int)
            )),
            Val::List(vec![Val::Int(3)])
        );
        assert_eq!(
            run(Exp::App2(Fun2::Index, ints(&[10, 20, 30]), int(1), Ty::Int)),
            Val::Int(20)
        );
    }

    #[test]
    fn nub_keeps_first_occurrences() {
        assert_eq!(
            run(Exp::App1(
                Fun1::Nub,
                ints(&[2, 1, 2, 3, 1]),
                Ty::list(Ty::Int)
            )),
            Val::List(vec![Val::Int(2), Val::Int(1), Val::Int(3)])
        );
    }

    #[test]
    fn zip_truncates_to_shorter() {
        let e = Exp::App2(
            Fun2::Zip,
            ints(&[1, 2, 3]),
            ints(&[10, 20]),
            Ty::list(Ty::Tuple(vec![Ty::Int, Ty::Int])),
        );
        assert_eq!(
            run(e),
            Val::List(vec![
                Val::Tuple(vec![Val::Int(1), Val::Int(10)]),
                Val::Tuple(vec![Val::Int(2), Val::Int(20)]),
            ])
        );
    }

    #[test]
    fn table_lookup() {
        let mut tables = Tables::new();
        tables.insert("t".into(), Val::List(vec![Val::Int(1), Val::Int(2)]));
        let e = Exp::Table("t".into(), Ty::list(Ty::Int));
        assert_eq!(
            interpret(&e, &tables).unwrap(),
            Val::List(vec![Val::Int(1), Val::Int(2)])
        );
        let missing = Exp::Table("ghost".into(), Ty::list(Ty::Int));
        assert!(matches!(
            interpret(&missing, &tables),
            Err(FerryError::Table(_))
        ));
    }
}

//! # `ferry` — database-supported program execution
//!
//! A Rust implementation of **Ferry** (Grust, Mayr, Rittinger, Schreiber,
//! SIGMOD 2009), following the detailed description in *"Haskell Boards the
//! Ferry"* (Giorgidze, Grust, Schreiber, Weijers): data-intensive
//! list-processing program fragments are written against a typed, deeply
//! embedded DSL, compiled *in their entirety* into a constant-size bundle of
//! relational queries by **loop-lifting**, executed on a relational database
//! coprocessor, and their tabular results stitched back into ordinary
//! nested Rust values.
//!
//! ## The headline guarantee: avalanche safety
//!
//! The number of queries in the emitted bundle is determined **solely by the
//! static type** of the program's result — one query per list type
//! constructor — never by the size of the queried data. `Q<Vec<(String,
//! Vec<String>)>>` compiles to exactly two queries whether the database
//! holds ten rows or ten million.
//!
//! ## Quick tour
//!
//! ```
//! use ferry::prelude::*;
//!
//! // a database with one table
//! let mut db = ferry_engine::Database::new();
//! db.create_table("nums",
//!     ferry_algebra::Schema::of(&[("n", ferry_algebra::Ty::Int)]),
//!     vec!["n"]).unwrap();
//! db.insert("nums", vec![
//!     vec![ferry_algebra::Value::Int(3)],
//!     vec![ferry_algebra::Value::Int(1)],
//!     vec![ferry_algebra::Value::Int(2)],
//! ]).unwrap();
//! let conn = Connection::new(db);
//!
//! // a query: squares of the numbers below 3, in table (key) order
//! let q = map(|x: Q<i64>| x.clone() * x,
//!             filter(|x: Q<i64>| x.lt(&toq(&3i64)), table::<i64>("nums")));
//! let result: Vec<i64> = conn.from_q(&q).unwrap();
//! assert_eq!(result, vec![1, 4]);
//! ```
//!
//! Modules:
//! * [`types`]/[`exp`] — the kernel: DSL types, nested values, the typed AST,
//! * [`qa`] — the `QA`/`TA` traits and the phantom-typed [`Q<T>`](qa::Q),
//! * [`ops`] — the list-prelude combinators (`map`, `filter`, `group_with`, …),
//! * [`comp`](mod@comp) — the `comp!` comprehension macro (stand-in for `[qc| … |]`),
//! * [`interp`] — the reference interpreter (in-heap semantics; test oracle),
//! * [`compile`] — loop-lifting into table algebra,
//! * [`shred`] — query-bundle emission (avalanche safety lives here),
//! * [`stitch`] — tabular results back to nested values,
//! * [`backend`] — pluggable execution backends (algebra-direct here,
//!   the SQL:1999 round trip in `ferry-sql`),
//! * [`runtime`] — [`runtime::Connection`]: `from_q` end to end, plus
//!   [`runtime::Prepared`] handles and the plan cache,
//! * [`pipeline`] — stage-by-stage artefacts of Figure 2.

#![allow(clippy::type_complexity, clippy::items_after_test_module)]

pub mod backend;
pub mod comp;
pub mod compile;
pub mod error;
pub mod exp;
pub mod interp;
pub mod ops;
pub mod pipeline;
pub mod qa;
pub mod record;
pub mod runtime;
pub mod shred;
pub mod stitch;
pub mod types;

pub use backend::{AlgebraBackend, Backend};
pub use error::FerryError;
pub use ferry_engine::{
    DurabilityConfig, FsyncPolicy, NodeProfile, ParConfig, ProfileRing, QueryProfile, QueryStats,
    RecoveryReport,
};
pub use ferry_telemetry::{
    chrome_trace_json, OptReport, PassStat, QueryTrace, Telemetry, TelemetryConfig,
};
pub use qa::{Q, QA, TA};
pub use runtime::{Connection, PlanRewriter, Prepared, TraceStatus};
pub use types::{Ty, Val};

/// Everything needed to write Ferry programs.
pub mod prelude {
    pub use crate::backend::{AlgebraBackend, Backend};
    pub use crate::comp;
    pub use crate::ops::*;
    pub use crate::qa::{toq, Q, QA, TA};
    pub use crate::runtime::{Connection, Prepared, TraceStatus};
    pub use crate::FerryError;
    pub use ferry_engine::{DurabilityConfig, FsyncPolicy};
    pub use ferry_telemetry::TelemetryConfig;
}

//! Execution backends: the pluggable boundary between compiled bundles
//! and the database coprocessor.
//!
//! The paper's pipeline (Fig. 2) ends in two interchangeable tails: the
//! table-algebra plan can be executed *directly* (steps 4–5 on the
//! in-process engine), or first serialised to SQL:1999 text, shipped to
//! the database, parsed, bound and then executed — the round trip a real
//! client/server deployment performs. [`Backend`] makes that choice a
//! first-class, swappable property of a [`crate::Connection`] instead of
//! ad-hoc test plumbing: both paths consume the same [`CompiledBundle`]
//! and must produce identical relations (property-tested in
//! `ferry-sql`).
//!
//! * [`AlgebraBackend`] — dispatch each bundle member's plan straight to
//!   [`ferry_engine::Snapshot::execute`] (the default, today's path);
//! * `SqlBackend` (in the `ferry-sql` crate) — generate SQL:1999 per
//!   member, then parse → bind → execute, exercising the full textual
//!   boundary.

use crate::error::FerryError;
use crate::shred::CompiledBundle;
use ferry_algebra::{NodeId, Plan, Rel};
use ferry_engine::Snapshot;

/// One execution strategy for compiled bundles. Backends run against a
/// pinned [`Snapshot`] — one immutable catalog version — so every member
/// of a bundle (and the hit/miss bookkeeping around it) observes exactly
/// one epoch, however many writers commit meanwhile. Implementations
/// must be stateless with respect to the query (any state is
/// configuration), so a backend can be shared by every clone of a
/// `Connection` and called from many threads at once.
pub trait Backend: Send + Sync {
    /// Short name used in `explain` output and diagnostics.
    fn name(&self) -> &str;

    /// Execute one bundle member and return its relation. Exactly one
    /// engine query must be dispatched per call — the unit the paper's
    /// Table 1 counts.
    fn execute_root(
        &self,
        snap: &Snapshot<'_>,
        plan: &Plan,
        root: NodeId,
    ) -> Result<Rel, FerryError>;

    /// Render one bundle member the way this backend would ship it to
    /// the database: the algebra plan for direct execution, the
    /// generated SQL:1999 text for the SQL round trip.
    fn render_root(
        &self,
        snap: &Snapshot<'_>,
        plan: &Plan,
        root: NodeId,
    ) -> Result<String, FerryError>;

    /// Execute a whole bundle (one `execute_root` per member, in bundle
    /// order).
    fn execute_bundle(
        &self,
        snap: &Snapshot<'_>,
        bundle: &CompiledBundle,
    ) -> Result<Vec<Rel>, FerryError> {
        bundle
            .queries
            .iter()
            .map(|q| self.execute_root(snap, &bundle.plan, q.root))
            .collect()
    }
}

/// The direct path: hand each member's algebra plan to the engine.
#[derive(Debug, Default, Clone, Copy)]
pub struct AlgebraBackend;

impl Backend for AlgebraBackend {
    fn name(&self) -> &str {
        "algebra"
    }

    fn execute_root(
        &self,
        snap: &Snapshot<'_>,
        plan: &Plan,
        root: NodeId,
    ) -> Result<Rel, FerryError> {
        Ok(snap.execute(plan, root)?)
    }

    fn render_root(
        &self,
        _snap: &Snapshot<'_>,
        plan: &Plan,
        root: NodeId,
    ) -> Result<String, FerryError> {
        Ok(ferry_algebra::pretty::render(plan, root))
    }

    /// The direct path can do better than member-at-a-time: hand the whole
    /// bundle to the engine in one pass, so sub-plans shared between
    /// members evaluate once and independent members overlap on the DAG
    /// wavefront scheduler. Query accounting is identical to the default
    /// (one query per member).
    fn execute_bundle(
        &self,
        snap: &Snapshot<'_>,
        bundle: &CompiledBundle,
    ) -> Result<Vec<Rel>, FerryError> {
        let roots: Vec<NodeId> = bundle.queries.iter().map(|q| q.root).collect();
        // thread the bundle's provenance into the dispatch so the slow-
        // query log and `ferry.queries` can attribute it to its source
        // expression (and its `ferry.plan_cache` entry)
        let ctx = ferry_engine::DispatchCtx {
            plan_hash: bundle.exp_hash,
            opt: bundle.opt.as_ref(),
        };
        Ok(snap.execute_bundle_ctx(&bundle.plan, &roots, ctx)?)
    }
}

//! Optimizer correctness: every query of the core end-to-end suite must
//! produce identical results with and without optimisation, and the
//! optimizer must actually shrink loop-lifted plans.

use ferry::prelude::*;
use ferry_algebra::{Schema, Ty, Value};
use ferry_engine::Database;
use ferry_optimizer::{optimize_with_stats, reachable_size};

fn database() -> Database {
    let db = Database::new();
    db.create_table("nums", Schema::of(&[("n", Ty::Int)]), vec!["n"])
        .unwrap();
    db.insert(
        "nums",
        (1..=7).map(|i| vec![Value::Int(i * 3 % 5)]).collect(),
    )
    .unwrap();
    db.create_table(
        "emp",
        Schema::of(&[("dept", Ty::Str), ("name", Ty::Str), ("sal", Ty::Int)]),
        vec!["name"],
    )
    .unwrap();
    db.insert(
        "emp",
        vec![
            vec![Value::str("eng"), Value::str("ada"), Value::Int(90)],
            vec![Value::str("eng"), Value::str("bob"), Value::Int(70)],
            vec![Value::str("ops"), Value::str("cy"), Value::Int(50)],
        ],
    )
    .unwrap();
    db
}

/// Execute `q` with and without the optimizer; results must match and the
/// optimized plan must not be larger.
fn check<T: QA + PartialEq + std::fmt::Debug>(q: &Q<T>) -> T {
    let plain = Connection::new(database());
    let optimized = Connection::new(database()).with_optimizer(ferry_optimizer::rewriter());
    let a = plain.from_q(q).expect("unoptimized run");
    let b = optimized.from_q(q).expect("optimized run");
    assert_eq!(a, b, "optimizer changed the result");

    let bundle = plain.compile(q).expect("compile");
    let roots = bundle.roots();
    let (p2, r2, stats) = optimize_with_stats(&bundle.plan, &roots);
    // join recovery may add a bounded number of operators (rotated
    // projections) in exchange for dissolving cross products — the plan
    // must stay within a small constant factor
    assert!(
        stats.nodes_after <= stats.nodes_before * 2,
        "optimizer exploded the plan: {stats:?}"
    );
    for r in r2 {
        ferry_algebra::validate(&p2, r).expect("optimized plan validates");
    }
    a
}

fn emp() -> Q<Vec<(String, String, i64)>> {
    table::<(String, String, i64)>("emp")
}

#[test]
fn simple_pipelines() {
    check(&table::<i64>("nums"));
    check(&map(|x: Q<i64>| x.clone() * x, table::<i64>("nums")));
    check(&filter(|x: Q<i64>| x.gt(&toq(&1i64)), table::<i64>("nums")));
    check(&sum(table::<i64>("nums")));
}

#[test]
fn nested_results() {
    check(&group_with(
        |x: Q<i64>| x % toq(&2i64),
        table::<i64>("nums"),
    ));
    check(&map(|x: Q<i64>| list([x.clone(), x]), table::<i64>("nums")));
    check(&toq(&vec![vec![1i64], vec![], vec![2, 3]]));
}

#[test]
fn grouping_aggregation_pipeline() {
    let q = map(
        |g: Q<Vec<(String, String, i64)>>| {
            pair(
                the(map(|e: Q<(String, String, i64)>| e.proj3_0(), g.clone())),
                sum(map(|e: Q<(String, String, i64)>| e.proj3_2(), g)),
            )
        },
        group_with(|e: Q<(String, String, i64)>| e.proj3_0(), emp()),
    );
    let r = check(&q);
    assert_eq!(r, vec![("eng".to_string(), 160), ("ops".to_string(), 50)]);
}

#[test]
fn conditionals_and_appends() {
    check(&cond(
        length(emp()).gt(&toq(&2i64)),
        toq(&vec![1i64, 2]),
        toq(&vec![3i64]),
    ));
    check(&append(table::<i64>("nums"), toq(&vec![99i64])));
    check(&concat_map(
        |x: Q<i64>| {
            cond(
                (x.clone() % toq(&2i64)).eq(&toq(&0i64)),
                list([x]),
                empty::<i64>(),
            )
        },
        table::<i64>("nums"),
    ));
}

#[test]
fn optimizer_narrows_realistic_plans() {
    // the query touches only dept and sal; the name column is dead weight
    // that loop-lifting drags through every join — pruning must remove it
    let conn = Connection::new(database());
    let q = map(
        |g: Q<Vec<(String, String, i64)>>| {
            pair(
                the(map(|e: Q<(String, String, i64)>| e.proj3_0(), g.clone())),
                sum(map(|e: Q<(String, String, i64)>| e.proj3_2(), g)),
            )
        },
        group_with(|e: Q<(String, String, i64)>| e.proj3_0(), emp()),
    );
    let bundle = conn.compile(&q).unwrap();
    let roots = bundle.roots();
    let before_nodes = reachable_size(&bundle.plan, &roots);
    let before_width = ferry_optimizer::reachable_width(&bundle.plan, &roots);
    let (p2, r2, stats) = optimize_with_stats(&bundle.plan, &roots);
    assert_eq!(stats.nodes_before, before_nodes);
    assert_eq!(stats.nodes_after, reachable_size(&p2, &r2));
    let after_width = ferry_optimizer::reachable_width(&p2, &r2);
    // join recovery may add thin projections; total column traffic must
    // stay in the same ballpark
    assert!(
        after_width <= before_width * 2,
        "width exploded: {before_width} → {after_width}"
    );
}

#[test]
fn optimized_plans_still_validate() {
    let conn = Connection::new(database());
    let q = group_with(|x: Q<i64>| x % toq(&2i64), table::<i64>("nums"));
    let bundle = conn.compile(&q).unwrap();
    let (p2, r2) = ferry_optimizer::optimize(&bundle.plan, &bundle.roots());
    for r in r2 {
        ferry_algebra::validate(&p2, r).expect("optimized plan validates");
    }
}

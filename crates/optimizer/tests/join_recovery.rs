//! Focused tests of the join-recovery pass: the quadratic
//! `σ/⋈(loop × table)` patterns of loop-lifted plans must dissolve into
//! equi-joins.

use ferry_algebra::{plan::cn, JoinCols, Node, NodeId, Plan, Schema, Ty, Value};
use ferry_optimizer::joins::recover_joins;

fn lit(p: &mut Plan, cols: &[(&str, Ty)], n: usize) -> NodeId {
    let schema = Schema::of(cols);
    let rows = (0..n)
        .map(|i| {
            cols.iter()
                .map(|(_, t)| match t {
                    Ty::Nat => Value::Nat(i as u64 + 1),
                    Ty::Int => Value::Int(i as i64),
                    Ty::Str => Value::str(format!("s{i}")),
                    _ => Value::Bool(true),
                })
                .collect()
        })
        .collect();
    p.lit(schema, rows)
}

fn crosses(p: &Plan, root: NodeId) -> usize {
    p.reachable(root)
        .into_iter()
        .filter(|id| matches!(p.node(*id), Node::CrossJoin { .. }))
        .count()
}

#[test]
fn select_over_cross_becomes_join() {
    let mut p = Plan::new();
    let a = lit(&mut p, &[("ai", Ty::Nat), ("ak", Ty::Str)], 4);
    let b = lit(&mut p, &[("bi", Ty::Nat), ("bk", Ty::Str)], 4);
    let x = p.cross(a, b);
    let s = p.select(
        x,
        ferry_algebra::Expr::eq(
            ferry_algebra::Expr::col("ak"),
            ferry_algebra::Expr::col("bk"),
        ),
    );
    let (p2, r2) = recover_joins(&p, &[s]);
    assert_eq!(
        crosses(&p2, r2[0]),
        0,
        "{}",
        ferry_algebra::pretty::render(&p2, r2[0])
    );
    ferry_algebra::validate(&p2, r2[0]).unwrap();
}

#[test]
fn mixed_key_join_over_projected_cross_dissolves() {
    // the stuck pattern of the running example:
    //   ⋈_{p1 = rk, p2 = rv} ( π(loop × T), T' )
    // with p1 from the T side and p2 from the loop side of the cross
    let mut p = Plan::new();
    let lp = lit(&mut p, &[("li", Ty::Nat), ("lv", Ty::Str)], 5);
    let t = lit(&mut p, &[("tp", Ty::Nat), ("tk", Ty::Str)], 5);
    let x = p.cross(lp, t);
    let proj = p.project(
        x,
        vec![
            (cn("p1"), cn("tp")),
            (cn("p2"), cn("lv")),
            (cn("li"), cn("li")),
        ],
    );
    // the right side reuses the *same* T node (shared base — the collision
    // case) with fresh names
    let t2 = p.project(t, vec![(cn("rk"), cn("tp")), (cn("rv"), cn("tk"))]);
    let j = p.equi_join(
        proj,
        t2,
        JoinCols::new(vec![cn("p1"), cn("p2")], vec![cn("rk"), cn("rv")]),
    );
    let (p2, r2) = recover_joins(&p, &[j]);
    ferry_algebra::validate(&p2, r2[0]).unwrap();
    assert_eq!(
        crosses(&p2, r2[0]),
        0,
        "cross should dissolve:\n{}",
        ferry_algebra::pretty::render(&p2, r2[0])
    );
}

#[test]
fn collision_join_with_shared_right_base() {
    // ⋈( π(loop × T), T ) — the right side IS the cross's factor itself
    let mut p = Plan::new();
    let lp = lit(&mut p, &[("li", Ty::Nat), ("lv", Ty::Str)], 5);
    let t = lit(&mut p, &[("tp", Ty::Nat), ("tk", Ty::Str)], 5);
    let x = p.cross(lp, t);
    let proj = p.project(
        x,
        vec![
            (cn("p1"), cn("tp")),
            (cn("p2"), cn("lv")),
            (cn("li"), cn("li")),
        ],
    );
    let j = p.equi_join(
        proj,
        t,
        JoinCols::new(vec![cn("p1"), cn("p2")], vec![cn("tp"), cn("tk")]),
    );
    let (p2, r2) = recover_joins(&p, &[j]);
    ferry_algebra::validate(&p2, r2[0]).unwrap();
    assert_eq!(
        crosses(&p2, r2[0]),
        0,
        "cross should dissolve:\n{}",
        ferry_algebra::pretty::render(&p2, r2[0])
    );
}

#[test]
fn recovery_preserves_results() {
    let db = ferry_engine::Database::new();
    let mut p = Plan::new();
    let a = lit(&mut p, &[("ai", Ty::Nat), ("ak", Ty::Str)], 6);
    let b = lit(&mut p, &[("bi", Ty::Nat), ("bk", Ty::Str)], 6);
    let x = p.cross(a, b);
    let s = p.select(
        x,
        ferry_algebra::Expr::eq(
            ferry_algebra::Expr::col("ak"),
            ferry_algebra::Expr::col("bk"),
        ),
    );
    let before = db.execute(&p, s).unwrap();
    let (p2, r2) = recover_joins(&p, &[s]);
    let after = db.execute(&p2, r2[0]).unwrap();
    assert!(before.same_bag(&after));
}
